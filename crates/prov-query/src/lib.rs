//! # prov-query — PQL, a query language designed for provenance
//!
//! §2.2 of the tutorial: provenance systems "require users to write queries
//! in languages like SQL, Prolog and SPARQL … none of them have been
//! designed for provenance. For that reason, simple queries can be awkward
//! and complex." PQL makes the tutorial's running questions one-liners:
//!
//! ```text
//! lineage of artifact 3f2a90bc41d07e55            -- who/what created this?
//! lineage of artifact 3f2a… depth 4 where module = "Histogram@1"
//! impact of artifact 3f2a90bc41d07e55             -- what must be invalidated?
//! count runs where status = failed
//! list artifacts where dtype = grid
//! paths from artifact 3f2a… to artifact 9c01…     -- derivation routes
//! ```
//!
//! The crate contains a hand-written [`lexer`] and recursive-descent
//! [`parser`], a tiny [`ast`] with a canonical [`render`]er
//! (`query.to_string()` reparses to the same AST), an [`eval`]uator over
//! the native graph store, and a [`qbe`] (query-by-example) subgraph
//! matcher — the engine that would sit beneath the visual query interfaces
//! of [4, 34]. Filters support `and`/`or` (DNF) over the fields `module`,
//! `status`, `dtype`, `exec`, and `attempts` (retried runs have
//! `attempts > 1`); `count`/`list` work over `runs`, `artifacts`, and
//! `executions`.

//!
//! Query observability (EXPLAIN / EXPLAIN ANALYZE) lives in [`plan`]: an
//! explicit logical operator tree per query, an analyzing executor that
//! annotates every operator with rows, self-time, and store accesses, and
//! a backend ANALYZE over the shared `ProvenanceStore` surface. [`obs`]
//! adds the runtime side: query spans, labeled metrics, and a ring-buffer
//! slow-query log. [`optimize`] rewrites plans cost-based — predicate
//! pushdown into secondary indexes, metadata-backed counts, adjacency
//! probes — plus a bounded LRU result cache; optimized evaluation is
//! result-identical to the naive evaluator by construction and by the
//! four-backend differential test harness. [`sharded`] scales the engine
//! horizontally: [`sharded::ShardedEngine`] partitions the corpus by a
//! seeded execution hash over N inner engines and evaluates plans by
//! scatter-gather (parallel per-shard fan-out, order-preserving merges, a
//! coordinator for the artifact joints), bit-identical to a single engine
//! and pinned by the `sharded(N)` differential modes.

pub mod ast;
pub mod error;
pub mod eval;
pub mod lexer;
pub mod obs;
pub mod optimize;
pub mod parser;
pub mod plan;
pub mod qbe;
pub mod render;
pub mod sharded;

pub use ast::{Comparison, Condition, Direction, Entity, Field, Op, Query, Target};
pub use error::PqlError;
pub use eval::{PqlEngine, QueryResult, ResultNode};
pub use obs::{QueryObserver, SlowQueryEntry, SlowQueryLog, DEFAULT_JSONL_CAP};
pub use optimize::{
    analyze_optimized, eval_cached, eval_optimized, optimize, Optimization, QueryCache,
};
pub use parser::parse;
pub use plan::{
    analyze, analyze_store, Analysis, CostModel, OpReport, Plan, PlanNode, PlanOp, StoreAnalysis,
};
pub use qbe::{ExampleGraph, Match};
pub use sharded::ShardedEngine;
