//! E11 bench: the cost of verifying reproducibility from retrospective
//! provenance (re-execution + hash comparison).

use criterion::{criterion_group, criterion_main, Criterion};
use prov_core::capture::{CaptureLevel, ProvenanceCapture};
use prov_core::repro::verify_reproduction;
use wf_engine::synth::{challenge_workflow, figure1_workflow};
use wf_engine::{standard_registry, Executor};

fn bench_repro(c: &mut Criterion) {
    let exec = Executor::new(standard_registry());
    let mut group = c.benchmark_group("reproducibility");
    group.sample_size(20);

    let (fig1, _) = figure1_workflow(1);
    let mut cap = ProvenanceCapture::new(CaptureLevel::Fine);
    let r = exec.run_observed(&fig1, &mut cap).expect("runs");
    let retro1 = cap.take(r.exec).expect("captured");
    group.bench_function("verify_fig1", |b| {
        b.iter(|| {
            verify_reproduction(&exec, &fig1, &retro1)
                .expect("re-run")
                .matched()
        })
    });

    let fmri = challenge_workflow(42, 4, 3);
    let mut cap = ProvenanceCapture::new(CaptureLevel::Fine);
    let r = exec.run_observed(&fmri, &mut cap).expect("runs");
    let retro2 = cap.take(r.exec).expect("captured");
    group.bench_function("verify_fmri_challenge", |b| {
        b.iter(|| {
            verify_reproduction(&exec, &fmri, &retro2)
                .expect("re-run")
                .matched()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_repro);
criterion_main!(benches);
