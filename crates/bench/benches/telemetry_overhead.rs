//! E15 bench: engine runtime unobserved vs. with telemetry (spans +
//! metrics) vs. with telemetry and provenance capture fanned out on one
//! stream. The claim under test: watching a run costs a few percent, not
//! a constant factor.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use prov_core::capture::{CaptureLevel, ProvenanceCapture};
use prov_telemetry::Telemetry;
use wf_engine::synth::{layered_dag, LayeredSpec};
use wf_engine::{standard_registry, Executor, FanoutObserver};

fn bench_telemetry(c: &mut Criterion) {
    let exec = Executor::new(standard_registry());
    for work in [100i64, 10_000] {
        let (wf, _) = layered_dag(
            1,
            LayeredSpec {
                depth: 4,
                width: 4,
                fan_in: 2,
                work,
                seed: 42,
            },
        );
        let mut group = c.benchmark_group(format!("telemetry_overhead/work={work}"));
        group.bench_with_input(BenchmarkId::from_parameter("unobserved"), &wf, |b, wf| {
            b.iter(|| exec.run(wf).expect("runs"))
        });
        group.bench_with_input(BenchmarkId::from_parameter("telemetry"), &wf, |b, wf| {
            b.iter(|| {
                let mut tel = Telemetry::new();
                exec.run_observed(wf, &mut tel).expect("runs");
                tel.take_trace().len()
            })
        });
        group.bench_with_input(
            BenchmarkId::from_parameter("telemetry+capture"),
            &wf,
            |b, wf| {
                b.iter(|| {
                    let mut tel = Telemetry::new();
                    let mut cap = ProvenanceCapture::new(CaptureLevel::Coarse);
                    let mut fan = FanoutObserver::new().with(&mut tel).with(&mut cap);
                    exec.run_observed(wf, &mut fan).expect("runs");
                    cap.finish_all()
                })
            },
        );
        group.finish();
    }
}

criterion_group!(benches, bench_telemetry);
criterion_main!(benches);
