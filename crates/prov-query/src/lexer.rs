//! The PQL lexer: hand-written, zero-dependency tokenizer.

use crate::error::PqlError;

/// A PQL token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Token {
    /// Bare word: keyword or identifier (case-insensitive keywords).
    Word(String),
    /// Quoted string literal (double quotes, `\"` and `\\` escapes).
    Str(String),
    /// Unsigned integer literal.
    Int(u64),
    /// Hex literal (8–16 hex digits, an artifact digest).
    Hex(u64),
    /// `=`.
    Eq,
    /// `!=`.
    Neq,
    /// `/` (separator inside run references).
    Slash,
}

impl Token {
    /// Human-readable token description for error messages.
    pub fn describe(&self) -> String {
        match self {
            Token::Word(w) => format!("'{w}'"),
            Token::Str(s) => format!("string {s:?}"),
            Token::Int(i) => format!("integer {i}"),
            Token::Hex(h) => format!("hex {h:x}"),
            Token::Eq => "'='".into(),
            Token::Neq => "'!='".into(),
            Token::Slash => "'/'".into(),
        }
    }
}

/// Tokenize a PQL query. Comments run from `--` to end of line.
pub fn lex(input: &str) -> Result<Vec<Token>, PqlError> {
    let bytes = input.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        if c == '-' && bytes.get(i + 1) == Some(&b'-') {
            while i < bytes.len() && bytes[i] != b'\n' {
                i += 1;
            }
            continue;
        }
        match c {
            '=' => {
                tokens.push(Token::Eq);
                i += 1;
            }
            '!' if bytes.get(i + 1) == Some(&b'=') => {
                tokens.push(Token::Neq);
                i += 2;
            }
            '/' => {
                tokens.push(Token::Slash);
                i += 1;
            }
            '"' => {
                let mut s = String::new();
                i += 1;
                let mut closed = false;
                while i < bytes.len() {
                    let ch = bytes[i] as char;
                    if ch == '\\' && bytes.get(i + 1) == Some(&b'"') {
                        s.push('"');
                        i += 2;
                    } else if ch == '\\' && bytes.get(i + 1) == Some(&b'\\') {
                        s.push('\\');
                        i += 2;
                    } else if ch == '"' {
                        closed = true;
                        i += 1;
                        break;
                    } else {
                        s.push(ch);
                        i += 1;
                    }
                }
                if !closed {
                    return Err(PqlError::Parse {
                        expected: "closing '\"'".into(),
                        found: "end of input".into(),
                    });
                }
                tokens.push(Token::Str(s));
            }
            c if c.is_ascii_alphanumeric() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric()
                        || bytes[i] == b'_'
                        || bytes[i] == b'@'
                        || bytes[i] == b'.'
                        || bytes[i] == b'-'
                            && i + 1 < bytes.len()
                            && (bytes[i + 1] as char).is_ascii_alphanumeric())
                {
                    i += 1;
                }
                let word = &input[start..i];
                // Classification: exactly 16 hex chars → hex digest (the
                // canonical digest width — even when every digit happens to
                // be decimal, so rendered digests reparse as digests, not as
                // decimal integers); all digits → integer; all-hex & 8..=15
                // chars with at least one alpha hex digit → hex digest;
                // otherwise a word.
                if word.len() == 16 && word.chars().all(|c| c.is_ascii_hexdigit()) {
                    tokens.push(Token::Hex(u64::from_str_radix(word, 16).map_err(|_| {
                        PqlError::Parse {
                            expected: "hex digest".into(),
                            found: word.to_string(),
                        }
                    })?));
                } else if word.chars().all(|c| c.is_ascii_digit()) {
                    tokens.push(Token::Int(word.parse().map_err(|_| PqlError::Parse {
                        expected: "integer".into(),
                        found: word.to_string(),
                    })?));
                } else if word.len() >= 8
                    && word.len() <= 16
                    && word.chars().all(|c| c.is_ascii_hexdigit())
                {
                    tokens.push(Token::Hex(u64::from_str_radix(word, 16).map_err(|_| {
                        PqlError::Parse {
                            expected: "hex digest".into(),
                            found: word.to_string(),
                        }
                    })?));
                } else {
                    tokens.push(Token::Word(word.to_lowercase()));
                }
            }
            other => {
                return Err(PqlError::Lex { at: i, ch: other });
            }
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexes_keywords_and_literals() {
        let toks = lex("lineage of artifact 3f2a90bc41d07e55 depth 4").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Word("lineage".into()),
                Token::Word("of".into()),
                Token::Word("artifact".into()),
                Token::Hex(0x3f2a90bc41d07e55),
                Token::Word("depth".into()),
                Token::Int(4),
            ]
        );
    }

    #[test]
    fn lexes_strings_with_escapes() {
        let toks = lex(r#"where module = "Histo\"gram""#).unwrap();
        assert_eq!(toks[3], Token::Str("Histo\"gram".into()));
    }

    #[test]
    fn unterminated_string_is_an_error() {
        assert!(lex("\"oops").is_err());
    }

    #[test]
    fn comments_are_skipped() {
        let toks = lex("count runs -- how many?\nwhere status = failed").unwrap();
        assert_eq!(toks.len(), 6);
    }

    #[test]
    fn operators() {
        let toks = lex("a = b != 0/1").unwrap();
        assert!(toks.contains(&Token::Eq));
        assert!(toks.contains(&Token::Neq));
        assert!(toks.contains(&Token::Slash));
    }

    #[test]
    fn keywords_are_case_insensitive() {
        let toks = lex("LINEAGE Of Artifact 00000000000000ff").unwrap();
        assert_eq!(toks[0], Token::Word("lineage".into()));
    }

    #[test]
    fn module_identity_stays_a_word() {
        let toks = lex("Histogram@1").unwrap();
        assert_eq!(toks, vec![Token::Word("histogram@1".into())]);
    }

    #[test]
    fn short_digit_runs_are_ints_not_hex() {
        assert_eq!(lex("1234567").unwrap(), vec![Token::Int(1234567)]);
        // 8 digits, all numeric → still an integer by the all-digits rule.
        assert_eq!(lex("12345678").unwrap(), vec![Token::Int(12345678)]);
        // Mixed hex digits of the right length → hex.
        assert_eq!(lex("00ff00ff").unwrap(), vec![Token::Hex(0x00ff00ff)]);
    }

    #[test]
    fn backslash_escapes_roundtrip_in_strings() {
        // `\\` is a literal backslash; a value may even end in one.
        let toks = lex(r#"where module = "a\\b""#).unwrap();
        assert_eq!(toks[3], Token::Str("a\\b".into()));
        let toks = lex(r#"where module = "trailing\\""#).unwrap();
        assert_eq!(toks[3], Token::Str("trailing\\".into()));
        // Escaped backslash before an escaped quote.
        let toks = lex(r#"where module = "a\\\"b""#).unwrap();
        assert_eq!(toks[3], Token::Str("a\\\"b".into()));
    }

    #[test]
    fn sixteen_decimal_digits_are_a_digest_not_an_int() {
        // The canonical digest rendering is 16 hex chars; when all of them
        // happen to be decimal the word must still reparse as a digest.
        assert_eq!(
            lex("0000000000000010").unwrap(),
            vec![Token::Hex(0x0000000000000010)]
        );
        assert_eq!(
            lex("1111222233334444").unwrap(),
            vec![Token::Hex(0x1111222233334444)]
        );
        // 17 decimal digits exceed the digest width → plain integer.
        assert_eq!(
            lex("10000000000000000").unwrap(),
            vec![Token::Int(10_000_000_000_000_000)]
        );
    }

    #[test]
    fn bad_character_reports_position() {
        let err = lex("count ?").unwrap_err();
        assert_eq!(err, PqlError::Lex { at: 6, ch: '?' });
    }
}
