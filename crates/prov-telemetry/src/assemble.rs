//! Distributed span assembly: turn a stitched multi-site event order into
//! one [`Trace`] under a single W3C trace context.
//!
//! The distributed driver's probes record engine events per site; the
//! collector (`prov-probe`) orders them; this module assembles the spans a
//! single-process [`crate::SpanCollector`] would have produced — one run
//! span, one module span per module run — and annotates every span with
//! the site that executed it plus a `traceparent` header
//! ([`crate::TraceContext`]) so the cross-worker trace joins the same
//! causal story the server's request spans already speak.

use crate::context::TraceContext;
use crate::span::{Span, SpanId, SpanKind, Trace};
use prov_probe::{LogEntry, Stitched};
use std::collections::BTreeMap;
use wf_engine::wire::decode_event;
use wf_engine::{EngineEvent, ExecId};
use wf_model::NodeId;

/// Assemble the spans of a stitched distributed run.
///
/// Spans carry a `site` attribute naming the probe that recorded them.
/// When the stitched record carries a distributed trace id, every span
/// also carries the `traceparent` it would send downstream (the run span
/// re-parented under itself, each module span under the run span).
pub fn assemble_distributed(stitched: &Stitched) -> Trace {
    let mut next_id: u64 = 1;
    let mut alloc = || {
        let id = SpanId(next_id);
        next_id += 1;
        id
    };

    let ctx = stitched.trace_id.map(|trace_id| TraceContext {
        trace_id,
        span_id: 1,
        sampled: true,
    });

    let mut spans: Vec<Span> = Vec::new();
    // One open run span per exec, one open module span per (exec, node).
    let mut open_runs: BTreeMap<ExecId, usize> = BTreeMap::new();
    let mut open_modules: BTreeMap<(ExecId, NodeId), usize> = BTreeMap::new();

    for e in &stitched.entries {
        let LogEntry::Event(payload) = &e.entry else {
            continue;
        };
        let Ok(event) = decode_event(payload) else {
            continue;
        };
        let site = format!("{}", e.probe);
        match event {
            EngineEvent::WorkflowStarted {
                exec,
                name,
                at_millis,
                ..
            } => {
                let id = alloc();
                let mut attrs = vec![("site".to_string(), site)];
                if let Some(c) = ctx {
                    attrs.push(("traceparent".to_string(), c.child(id.0).render()));
                }
                open_runs.insert(exec, spans.len());
                spans.push(Span {
                    id,
                    parent: None,
                    kind: SpanKind::Run,
                    name,
                    exec,
                    node: None,
                    start_micros: at_millis.saturating_mul(1000),
                    end_micros: at_millis.saturating_mul(1000),
                    attrs,
                });
            }
            EngineEvent::ModuleStarted {
                exec,
                node,
                identity,
                at_millis,
                ..
            } => {
                let id = alloc();
                let parent = open_runs.get(&exec).map(|&i| spans[i].id);
                let mut attrs = vec![("site".to_string(), site)];
                if let Some(c) = ctx {
                    attrs.push(("traceparent".to_string(), c.child(id.0).render()));
                }
                open_modules.insert((exec, node), spans.len());
                spans.push(Span {
                    id,
                    parent,
                    kind: SpanKind::Module,
                    name: identity,
                    exec,
                    node: Some(node),
                    start_micros: at_millis.saturating_mul(1000),
                    end_micros: at_millis.saturating_mul(1000),
                    attrs,
                });
            }
            EngineEvent::ModuleFinished {
                exec,
                node,
                status,
                elapsed_micros,
                from_cache,
                error,
            } => {
                let idx = match open_modules.remove(&(exec, node)) {
                    Some(i) => i,
                    None => {
                        // Skipped modules never emit ModuleStarted; open a
                        // zero-length span at the recording site (the
                        // coordinator) anchored to the run's start.
                        let id = alloc();
                        let parent = open_runs.get(&exec).map(|&i| spans[i].id);
                        let start = open_runs
                            .get(&exec)
                            .map(|&i| spans[i].start_micros)
                            .unwrap_or(0);
                        let mut attrs = vec![("site".to_string(), site.clone())];
                        if let Some(c) = ctx {
                            attrs.push(("traceparent".to_string(), c.child(id.0).render()));
                        }
                        spans.push(Span {
                            id,
                            parent,
                            kind: SpanKind::Module,
                            name: String::new(),
                            exec,
                            node: Some(node),
                            start_micros: start,
                            end_micros: start,
                            attrs,
                        });
                        spans.len() - 1
                    }
                };
                let span = &mut spans[idx];
                span.end_micros = span.start_micros.saturating_add(elapsed_micros);
                span.attrs
                    .push(("status".to_string(), format!("{status:?}").to_lowercase()));
                if from_cache {
                    span.attrs.push(("cache".to_string(), "hit".to_string()));
                }
                if let Some(err) = error {
                    span.attrs.push(("error".to_string(), err));
                }
            }
            EngineEvent::WorkflowFinished {
                exec,
                status,
                at_millis,
            } => {
                if let Some(&i) = open_runs.get(&exec) {
                    let span = &mut spans[i];
                    span.end_micros = at_millis.saturating_mul(1000).max(span.start_micros);
                    span.attrs
                        .push(("status".to_string(), format!("{status:?}").to_lowercase()));
                }
            }
            _ => {}
        }
    }

    spans.sort_by_key(|s| (s.start_micros, s.id));
    Trace { spans }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prov_probe::Collector;
    use wf_engine::synth::figure1_workflow;
    use wf_engine::{standard_registry, DistribOptions, Executor};

    fn stitched_fig1(trace_id: u128) -> Stitched {
        let (wf, _) = figure1_workflow(1);
        let exec = Executor::new(standard_registry());
        let dist = exec
            .run_distributed(&wf, DistribOptions::new(3).with_trace_id(trace_id))
            .unwrap();
        let mut c = Collector::new();
        for r in dist.reports {
            c.ingest(r);
        }
        c.stitch()
    }

    #[test]
    fn assembles_one_run_span_and_all_module_spans() {
        let trace = assemble_distributed(&stitched_fig1(0xabc));
        assert_eq!(trace.of_kind(SpanKind::Run).count(), 1);
        assert_eq!(trace.of_kind(SpanKind::Module).count(), 8);
        let run = trace.of_kind(SpanKind::Run).next().unwrap();
        for m in trace.of_kind(SpanKind::Module) {
            assert_eq!(m.parent, Some(run.id), "modules hang off the run span");
            assert!(m.attr("site").is_some());
            assert_eq!(m.attr("status"), Some("succeeded"));
        }
        // Work really crossed sites: more than one distinct site attr.
        let sites: std::collections::BTreeSet<_> = trace
            .of_kind(SpanKind::Module)
            .filter_map(|s| s.attr("site"))
            .collect();
        assert!(sites.len() > 1, "sites: {sites:?}");
    }

    #[test]
    fn spans_carry_the_w3c_trace_context() {
        let trace = assemble_distributed(&stitched_fig1(0xabc));
        for s in &trace.spans {
            let header = s.attr("traceparent").expect("every span carries context");
            let ctx = TraceContext::parse(header).unwrap();
            assert_eq!(ctx.trace_id, 0xabc);
            assert_eq!(ctx.span_id, s.id.0);
        }
    }

    #[test]
    fn untraced_runs_assemble_without_context() {
        let trace = assemble_distributed(&stitched_fig1(0));
        assert!(!trace.is_empty());
        assert!(trace.spans.iter().all(|s| s.attr("traceparent").is_none()));
    }
}
