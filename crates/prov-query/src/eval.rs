//! The PQL evaluator.
//!
//! Evaluates parsed queries over ingested retrospective provenance using a
//! native adjacency representation — the "designed for provenance" query
//! path that experiment E5 compares against relational join chains and
//! triple-pattern fixpoints.

use crate::ast::*;
use crate::error::PqlError;
use crate::parser::parse;
use prov_core::model::RetrospectiveProvenance;
use prov_store::StoreStats;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use wf_engine::ExecId;
use wf_model::NodeId;

/// Internal graph node (crate-visible so the plan executor can traverse).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub(crate) enum PNode {
    Artifact(u64),
    Run(ExecId, NodeId),
}

/// An entity enumerated by a scan: a graph node or a whole execution.
/// Executions are not graph nodes (no edges), so the plan's Scan operator
/// needs this wider item type to cover `list executions`.
#[derive(Debug, Clone, Copy)]
pub(crate) enum ScanItem {
    Node(PNode),
    Exec(ExecId),
}

/// A node in a query result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ResultNode {
    /// A module run.
    Run {
        /// Execution id.
        exec: u64,
        /// Node id.
        node: u64,
        /// Module identity.
        identity: String,
        /// Run status.
        status: String,
    },
    /// A data artifact.
    Artifact {
        /// Content hash.
        hash: u64,
        /// Data type.
        dtype: String,
    },
    /// A whole workflow execution.
    Execution {
        /// Execution id.
        exec: u64,
        /// Workflow name.
        workflow: String,
        /// Overall status.
        status: String,
    },
}

impl ResultNode {
    /// One-line rendering.
    pub fn render(&self) -> String {
        match self {
            ResultNode::Run {
                exec,
                node,
                identity,
                status,
            } => format!("run {exec}/{node} {identity} [{status}]"),
            ResultNode::Artifact { hash, dtype } => {
                format!("artifact {hash:016x} ({dtype})")
            }
            ResultNode::Execution {
                exec,
                workflow,
                status,
            } => format!("execution {exec} '{workflow}' [{status}]"),
        }
    }
}

/// The result of a PQL query.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryResult {
    /// Nodes, from closure or list queries.
    Nodes(Vec<ResultNode>),
    /// A count.
    Count(usize),
    /// Simple paths, each a node sequence in dataflow direction.
    Paths(Vec<Vec<ResultNode>>),
}

impl QueryResult {
    /// Render as text, one entry per line.
    pub fn render(&self) -> String {
        match self {
            QueryResult::Count(n) => n.to_string(),
            QueryResult::Nodes(nodes) => nodes
                .iter()
                .map(ResultNode::render)
                .collect::<Vec<_>>()
                .join("\n"),
            QueryResult::Paths(paths) => paths
                .iter()
                .map(|p| {
                    p.iter()
                        .map(ResultNode::render)
                        .collect::<Vec<_>>()
                        .join(" -> ")
                })
                .collect::<Vec<_>>()
                .join("\n"),
        }
    }

    /// Number of result entries (nodes, paths, or the count itself).
    pub fn len(&self) -> usize {
        match self {
            QueryResult::Count(n) => *n,
            QueryResult::Nodes(v) => v.len(),
            QueryResult::Paths(v) => v.len(),
        }
    }

    /// Is the result empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[derive(Debug, Clone)]
struct RunInfo {
    identity: String,
    status: String,
    attempts: u32,
}

#[derive(Debug, Clone)]
struct ExecInfo {
    workflow: String,
    status: String,
}

/// The PQL query engine: ingest provenance, evaluate query strings.
#[derive(Debug, Default)]
pub struct PqlEngine {
    runs: BTreeMap<(ExecId, NodeId), RunInfo>,
    execs: BTreeMap<ExecId, ExecInfo>,
    artifacts: BTreeMap<u64, String>,
    succ: BTreeMap<PNode, Vec<PNode>>,
    pred: BTreeMap<PNode, Vec<PNode>>,
    stats: StoreStats,
    // Secondary indexes for the cost-based optimizer (crate::optimize).
    // Keys are lowercased; module identities are indexed under both the
    // full `name@version` form and the bare name, mirroring the module
    // `=` semantics in `compare`. Postings are rebuilt after each ingest
    // by iterating the primary maps, so they stay in scan (key) order —
    // index-driven evaluation preserves naive result order.
    module_index: BTreeMap<String, Vec<(ExecId, NodeId)>>,
    status_index: BTreeMap<String, Vec<(ExecId, NodeId)>>,
    dtype_index: BTreeMap<String, Vec<u64>>,
    generation: u64,
}

impl PqlEngine {
    /// An empty engine.
    pub fn new() -> Self {
        Self::default()
    }

    /// Ingest one execution's provenance.
    pub fn ingest(&mut self, retro: &RetrospectiveProvenance) {
        self.execs.insert(
            retro.exec,
            ExecInfo {
                workflow: retro.workflow_name.clone(),
                status: retro.status.to_string(),
            },
        );
        for (h, a) in &retro.artifacts {
            self.artifacts.entry(*h).or_insert_with(|| a.dtype.clone());
        }
        for run in &retro.runs {
            let r = PNode::Run(retro.exec, run.node);
            self.runs.insert(
                (retro.exec, run.node),
                RunInfo {
                    identity: run.identity.clone(),
                    status: run.status.to_string(),
                    attempts: run.attempts,
                },
            );
            for (_, h) in &run.inputs {
                self.artifacts.entry(*h).or_default();
                self.edge(PNode::Artifact(*h), r);
            }
            for (_, h) in &run.outputs {
                self.artifacts.entry(*h).or_default();
                self.edge(r, PNode::Artifact(*h));
            }
        }
        self.rebuild_indexes();
    }

    /// Rebuild the secondary indexes from the primary maps. Iterating the
    /// BTreeMaps keeps every posting list in scan order; bumping the
    /// generation invalidates cached results (see `optimize::QueryCache`).
    fn rebuild_indexes(&mut self) {
        self.generation += 1;
        self.module_index.clear();
        self.status_index.clear();
        self.dtype_index.clear();
        for (&key, info) in &self.runs {
            let full = info.identity.to_lowercase();
            let bare = full.split('@').next().unwrap_or_default().to_string();
            if bare != full {
                self.module_index.entry(bare).or_default().push(key);
            }
            self.module_index.entry(full).or_default().push(key);
            self.status_index
                .entry(info.status.to_lowercase())
                .or_default()
                .push(key);
        }
        for (&h, dtype) in &self.artifacts {
            self.dtype_index
                .entry(dtype.to_lowercase())
                .or_default()
                .push(h);
        }
    }

    fn edge(&mut self, from: PNode, to: PNode) {
        let s = self.succ.entry(from).or_default();
        if !s.contains(&to) {
            s.push(to);
            self.pred.entry(to).or_default().push(from);
        }
    }

    /// Parse and evaluate a PQL query string.
    pub fn eval(&self, query: &str) -> Result<QueryResult, PqlError> {
        self.eval_query(&parse(query)?)
    }

    /// Evaluate a parsed query.
    pub fn eval_query(&self, query: &Query) -> Result<QueryResult, PqlError> {
        match query {
            Query::Closure {
                direction,
                target,
                depth,
                filter,
            } => {
                let start = self.resolve(*target)?;
                let reverse = *direction == Direction::Upstream;
                let mut out = Vec::new();
                let mut seen: BTreeSet<PNode> = [start].into();
                let mut q: VecDeque<(PNode, usize)> = [(start, 0usize)].into();
                while let Some((n, d)) = q.pop_front() {
                    if let Some(limit) = depth {
                        if d == *limit {
                            continue;
                        }
                    }
                    let next = if reverse { &self.pred } else { &self.succ };
                    if let Some(ns) = next.get(&n) {
                        for &m in ns {
                            if seen.insert(m) {
                                if self.matches(m, filter) {
                                    out.push(self.describe(m));
                                }
                                q.push_back((m, d + 1));
                            }
                        }
                    }
                }
                Ok(QueryResult::Nodes(out))
            }
            Query::Count { entity, filter } => {
                Ok(QueryResult::Count(self.select(*entity, filter).len()))
            }
            Query::List { entity, filter } => Ok(QueryResult::Nodes(self.select(*entity, filter))),
            Query::Paths { from, to, max_len } => {
                let from = self.resolve(*from)?;
                let to = self.resolve(*to)?;
                let cap = max_len.unwrap_or(16);
                let mut paths = Vec::new();
                let mut stack = vec![from];
                let mut on_path: BTreeSet<PNode> = [from].into();
                self.dfs_paths(from, to, cap, &mut stack, &mut on_path, &mut paths);
                Ok(QueryResult::Paths(
                    paths
                        .into_iter()
                        .map(|p| p.into_iter().map(|n| self.describe(n)).collect())
                        .collect(),
                ))
            }
        }
    }

    fn dfs_paths(
        &self,
        cur: PNode,
        to: PNode,
        budget: usize,
        stack: &mut Vec<PNode>,
        on_path: &mut BTreeSet<PNode>,
        out: &mut Vec<Vec<PNode>>,
    ) {
        if cur == to {
            out.push(stack.clone());
            return;
        }
        if budget == 0 {
            return;
        }
        if let Some(ns) = self.succ.get(&cur) {
            for &n in ns {
                if on_path.insert(n) {
                    stack.push(n);
                    self.dfs_paths(n, to, budget - 1, stack, on_path, out);
                    stack.pop();
                    on_path.remove(&n);
                }
            }
        }
    }

    fn resolve(&self, t: Target) -> Result<PNode, PqlError> {
        match t {
            Target::Artifact(h) => {
                if self.artifacts.contains_key(&h) {
                    Ok(PNode::Artifact(h))
                } else {
                    Err(PqlError::Eval(format!("unknown artifact {h:016x}")))
                }
            }
            Target::Run(e, n) => {
                let key = (ExecId(e), NodeId(n));
                if self.runs.contains_key(&key) {
                    Ok(PNode::Run(key.0, key.1))
                } else {
                    Err(PqlError::Eval(format!("unknown run {e}/{n}")))
                }
            }
        }
    }

    fn select(&self, entity: Entity, filter: &Condition) -> Vec<ResultNode> {
        match entity {
            Entity::Runs => self
                .runs
                .keys()
                .map(|&(e, n)| PNode::Run(e, n))
                .filter(|n| self.matches(*n, filter))
                .map(|n| self.describe(n))
                .collect(),
            Entity::Artifacts => self
                .artifacts
                .keys()
                .map(|&h| PNode::Artifact(h))
                .filter(|n| self.matches(*n, filter))
                .map(|n| self.describe(n))
                .collect(),
            Entity::Executions => self
                .execs
                .keys()
                .filter(|&&e| self.exec_matches(e, filter))
                .map(|&e| self.describe_exec(e))
                .collect(),
        }
    }

    /// Condition evaluation for a whole execution (shared by `select` and
    /// the plan executor so both use identical field-resolution rules).
    fn exec_matches(&self, e: ExecId, cond: &Condition) -> bool {
        let Some(info) = self.execs.get(&e) else {
            return false;
        };
        Self::dnf_matches(cond, |field| match field {
            Field::Status => Some(info.status.clone()),
            Field::Exec => Some(e.0.to_string()),
            Field::Module => Some(info.workflow.clone()),
            Field::Dtype | Field::Attempts => None,
        })
    }

    fn describe_exec(&self, e: ExecId) -> ResultNode {
        let info = self.execs.get(&e);
        ResultNode::Execution {
            exec: e.0,
            workflow: info.map(|i| i.workflow.clone()).unwrap_or_default(),
            status: info.map(|i| i.status.clone()).unwrap_or_default(),
        }
    }

    /// Evaluate a condition given a field resolver (DNF semantics). An
    /// associated function so other evaluators in this crate (the sharded
    /// coordinator) reuse the exact comparison rules.
    pub(crate) fn dnf_matches(cond: &Condition, resolve: impl Fn(Field) -> Option<String>) -> bool {
        if cond.is_trivial() {
            return true;
        }
        cond.any_of.iter().any(|conj| {
            conj.iter().all(|c| {
                let Some(actual) = resolve(c.field) else {
                    return false;
                };
                Self::compare(c, &actual)
            })
        })
    }

    /// One comparison against a resolved field value.
    fn compare(c: &Comparison, actual: &str) -> bool {
        let actual_l = actual.to_lowercase();
        let value_l = c.value.to_lowercase();
        match c.op {
            Op::Eq => {
                actual_l == value_l
                    || (c.field == Field::Module
                        && actual_l.split('@').next() == Some(value_l.as_str()))
            }
            Op::Neq => actual_l != value_l,
            Op::Contains => actual_l.contains(&value_l),
        }
    }

    fn matches(&self, n: PNode, cond: &Condition) -> bool {
        Self::dnf_matches(cond, |field| match (n, field) {
            (PNode::Run(e, node), Field::Module) => {
                self.runs.get(&(e, node)).map(|r| r.identity.clone())
            }
            (PNode::Run(e, node), Field::Status) => {
                self.runs.get(&(e, node)).map(|r| r.status.clone())
            }
            (PNode::Run(e, _), Field::Exec) => Some(e.0.to_string()),
            (PNode::Run(e, node), Field::Attempts) => {
                self.runs.get(&(e, node)).map(|r| r.attempts.to_string())
            }
            (PNode::Artifact(h), Field::Dtype) => self.artifacts.get(&h).cloned(),
            // A field that does not apply to this node kind: the node
            // fails the filter (so `where module = X` selects runs only).
            _ => None,
        })
    }

    fn describe(&self, n: PNode) -> ResultNode {
        match n {
            PNode::Run(e, node) => {
                let info = self.runs.get(&(e, node));
                ResultNode::Run {
                    exec: e.0,
                    node: node.raw(),
                    identity: info.map(|r| r.identity.clone()).unwrap_or_default(),
                    status: info.map(|r| r.status.clone()).unwrap_or_default(),
                }
            }
            PNode::Artifact(h) => ResultNode::Artifact {
                hash: h,
                dtype: self.artifacts.get(&h).cloned().unwrap_or_default(),
            },
        }
    }

    // ---- counted accessors (the plan executor's access layer) ----------
    //
    // `eval_query` above is deliberately left un-instrumented: it is the
    // reference implementation the plan executor must match (the property
    // test in tests/property_query_plan.rs checks result equality). The
    // accessors below do the same primitive reads but bump the engine's
    // `StoreStats`, so EXPLAIN ANALYZE can attribute access counts to
    // individual plan operators via snapshot deltas.

    /// The engine's access recorder (bumped only by the plan executor).
    pub fn stats(&self) -> &StoreStats {
        &self.stats
    }

    /// Replace the engine's recorder with a (cheaply cloned) handle onto
    /// `stats`, so several engines bump one shared counter block. The
    /// sharded engine adopts one recorder into every shard, making EXPLAIN
    /// ANALYZE access totals sum exactly across shards.
    pub(crate) fn adopt_stats(&mut self, stats: &StoreStats) {
        self.stats = stats.clone();
    }

    /// Counted anchor resolution: one keyed lookup + one node read.
    pub(crate) fn resolve_counted(&self, t: Target) -> Result<PNode, PqlError> {
        self.stats.add_keyed_lookups(1);
        self.stats.add_node_reads(1);
        self.resolve(t)
    }

    /// Counted adjacency access: one keyed lookup, one node read, and one
    /// edge read per adjacency entry.
    pub(crate) fn neighbors_counted(&self, n: PNode, reverse: bool) -> &[PNode] {
        self.stats.add_keyed_lookups(1);
        self.stats.add_node_reads(1);
        let m = if reverse { &self.pred } else { &self.succ };
        let ns = m.get(&n).map(|v| v.as_slice()).unwrap_or(&[]);
        self.stats.add_edge_reads(ns.len() as u64);
        ns
    }

    /// Counted entity enumeration: one scan + one node read per entity, in
    /// the same (key) order `select` iterates.
    pub(crate) fn scan_entity(&self, entity: Entity) -> Vec<ScanItem> {
        self.stats.add_scans(1);
        let items: Vec<ScanItem> = match entity {
            Entity::Runs => self
                .runs
                .keys()
                .map(|&(e, n)| ScanItem::Node(PNode::Run(e, n)))
                .collect(),
            Entity::Artifacts => self
                .artifacts
                .keys()
                .map(|&h| ScanItem::Node(PNode::Artifact(h)))
                .collect(),
            Entity::Executions => self.execs.keys().map(|&e| ScanItem::Exec(e)).collect(),
        };
        self.stats.add_node_reads(items.len() as u64);
        items
    }

    /// Counted filter check: reads the item's metadata (one node read)
    /// unless the condition is trivially true.
    pub(crate) fn item_matches(&self, item: ScanItem, cond: &Condition) -> bool {
        if cond.is_trivial() {
            return true;
        }
        self.stats.add_node_reads(1);
        match item {
            ScanItem::Node(n) => self.matches(n, cond),
            ScanItem::Exec(e) => self.exec_matches(e, cond),
        }
    }

    /// Counted result materialization: one node read for the metadata.
    pub(crate) fn describe_item(&self, item: ScanItem) -> ResultNode {
        self.stats.add_node_reads(1);
        match item {
            ScanItem::Node(n) => self.describe(n),
            ScanItem::Exec(e) => self.describe_exec(e),
        }
    }

    /// Number of ingested runs.
    pub fn run_count(&self) -> usize {
        self.runs.len()
    }

    /// Number of known artifacts.
    pub fn artifact_count(&self) -> usize {
        self.artifacts.len()
    }

    /// Number of ingested executions.
    pub fn exec_count(&self) -> usize {
        self.execs.len()
    }

    /// Number of dataflow edges (each counted once, in the succ direction).
    pub fn edge_count(&self) -> usize {
        self.succ.values().map(Vec::len).sum()
    }

    /// Index generation: bumped on every ingest. Cached query results tagged
    /// with an older generation are stale.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Restore the generation counter after WAL replay. Recovery replays a
    /// *compacted* history (fewer ingests than the pre-crash process saw),
    /// so the counter must be set to the durable watermark explicitly or
    /// cached query results from before the crash would appear fresh.
    pub fn restore_generation(&mut self, generation: u64) {
        self.generation = self.generation.max(generation);
    }

    // ---- secondary-index accessors (the optimizer's access layer) -------

    /// Counted probe of a run index (`module` or `status`): one keyed
    /// lookup plus one node read per posting entry. Returns `None` for
    /// fields that have no run index; an unknown key is an empty posting.
    pub(crate) fn probe_run_index(&self, field: Field, value: &str) -> Option<&[(ExecId, NodeId)]> {
        let index = match field {
            Field::Module => &self.module_index,
            Field::Status => &self.status_index,
            _ => return None,
        };
        self.stats.add_keyed_lookups(1);
        let posting = index
            .get(&value.to_lowercase())
            .map(Vec::as_slice)
            .unwrap_or(&[]);
        self.stats.add_node_reads(posting.len() as u64);
        Some(posting)
    }

    /// Counted probe of the artifact `dtype` index.
    pub(crate) fn probe_artifact_index(&self, value: &str) -> &[u64] {
        self.stats.add_keyed_lookups(1);
        let posting = self
            .dtype_index
            .get(&value.to_lowercase())
            .map(Vec::as_slice)
            .unwrap_or(&[]);
        self.stats.add_node_reads(posting.len() as u64);
        posting
    }

    /// Uncounted posting length, for cost estimation only. `None` means the
    /// (entity, field) pair has no index.
    pub(crate) fn posting_len(&self, entity: Entity, field: Field, value: &str) -> Option<usize> {
        let key = value.to_lowercase();
        match (entity, field) {
            (Entity::Runs, Field::Module) => Some(self.module_index.get(&key).map_or(0, Vec::len)),
            (Entity::Runs, Field::Status) => Some(self.status_index.get(&key).map_or(0, Vec::len)),
            (Entity::Artifacts, Field::Dtype) => {
                Some(self.dtype_index.get(&key).map_or(0, Vec::len))
            }
            _ => None,
        }
    }

    /// Counted metadata cardinality: answers trivial `count` queries from
    /// stored sizes (one keyed lookup, no scan).
    pub(crate) fn meta_count(&self, entity: Entity) -> usize {
        self.stats.add_keyed_lookups(1);
        match entity {
            Entity::Runs => self.runs.len(),
            Entity::Artifacts => self.artifacts.len(),
            Entity::Executions => self.execs.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prov_core::capture::{CaptureLevel, ProvenanceCapture};
    use wf_engine::synth::figure1_workflow;
    use wf_engine::{standard_registry, Executor};

    fn engine() -> (
        PqlEngine,
        RetrospectiveProvenance,
        wf_engine::synth::Figure1Nodes,
    ) {
        let (wf, nodes) = figure1_workflow(1);
        let exec = Executor::new(standard_registry());
        let mut cap = ProvenanceCapture::new(CaptureLevel::Fine);
        let r = exec.run_observed(&wf, &mut cap).unwrap();
        let retro = cap.take(r.exec).unwrap();
        let mut e = PqlEngine::new();
        e.ingest(&retro);
        (e, retro, nodes)
    }

    #[test]
    fn lineage_query_end_to_end() {
        let (e, retro, nodes) = engine();
        let file = retro.produced(nodes.save_hist, "file").unwrap();
        let q = format!("lineage of artifact {}", file.digest());
        let result = e.eval(&q).unwrap();
        let rendered = result.render();
        assert!(rendered.contains("LoadVolume@1"));
        assert!(rendered.contains("Histogram@1"));
        assert!(!rendered.contains("Isosurface@1"));
    }

    #[test]
    fn lineage_with_module_filter() {
        let (e, retro, nodes) = engine();
        let file = retro.produced(nodes.save_hist, "file").unwrap();
        let q = format!(
            "lineage of artifact {} where module = \"Histogram@1\"",
            file.digest()
        );
        let result = e.eval(&q).unwrap();
        assert_eq!(result.len(), 1);
        // Bare module name matches any version.
        let q = format!(
            "lineage of artifact {} where module = histogram",
            file.digest()
        );
        assert_eq!(e.eval(&q).unwrap().len(), 1);
    }

    #[test]
    fn impact_query_finds_derived_products() {
        let (e, retro, nodes) = engine();
        let grid = retro.produced(nodes.load, "grid").unwrap();
        let q = format!("impact of artifact {} where dtype = bytes", grid.digest());
        let result = e.eval(&q).unwrap();
        assert_eq!(result.len(), 2, "both saved files derive from the scan");
    }

    #[test]
    fn count_and_list() {
        let (e, ..) = engine();
        assert_eq!(e.eval("count runs").unwrap(), QueryResult::Count(8));
        assert_eq!(
            e.eval("count runs where status = succeeded").unwrap(),
            QueryResult::Count(8)
        );
        assert_eq!(
            e.eval("count runs where module contains save").unwrap(),
            QueryResult::Count(2)
        );
        let grids = e.eval("list artifacts where dtype = grid").unwrap();
        assert_eq!(grids.len(), 1);
    }

    #[test]
    fn depth_bound_respected() {
        let (e, retro, nodes) = engine();
        let file = retro.produced(nodes.save_hist, "file").unwrap();
        let shallow = e
            .eval(&format!("lineage of artifact {} depth 1", file.digest()))
            .unwrap();
        assert_eq!(shallow.len(), 1, "only the SaveFile run at depth 1");
        let deep = e
            .eval(&format!("lineage of artifact {}", file.digest()))
            .unwrap();
        assert!(deep.len() > shallow.len());
    }

    #[test]
    fn paths_enumerates_derivation_routes() {
        let (e, retro, nodes) = engine();
        let grid = retro.produced(nodes.load, "grid").unwrap();
        let file = retro.produced(nodes.save_iso, "file").unwrap();
        let q = format!(
            "paths from artifact {} to artifact {}",
            grid.digest(),
            file.digest()
        );
        let result = e.eval(&q).unwrap();
        assert_eq!(result.len(), 1, "a single derivation route");
        if let QueryResult::Paths(paths) = &result {
            // grid -> iso -> mesh -> smooth -> mesh' -> render -> image -> save -> file
            assert_eq!(paths[0].len(), 9);
        } else {
            panic!("expected paths");
        }
    }

    #[test]
    fn paths_max_bound_prunes() {
        let (e, retro, nodes) = engine();
        let grid = retro.produced(nodes.load, "grid").unwrap();
        let file = retro.produced(nodes.save_iso, "file").unwrap();
        let q = format!(
            "paths from artifact {} to artifact {} max 3",
            grid.digest(),
            file.digest()
        );
        assert!(e.eval(&q).unwrap().is_empty());
    }

    #[test]
    fn unknown_targets_error() {
        let (e, ..) = engine();
        let err = e.eval("lineage of artifact 00000000000000aa").unwrap_err();
        assert!(matches!(err, PqlError::Eval(_)));
        let err = e.eval("impact of run 9/9").unwrap_err();
        assert!(err.to_string().contains("unknown run"));
    }

    #[test]
    fn run_target_closure() {
        let (e, retro, nodes) = engine();
        let q = format!("impact of run {}/{}", retro.exec.0, nodes.load.raw());
        let result = e.eval(&q).unwrap();
        // Everything downstream of the load: 7 runs + their artifacts.
        assert!(result.len() >= 7);
    }

    #[test]
    fn multiple_executions_scoped_by_exec_filter() {
        let (wf, _) = figure1_workflow(1);
        let exec = Executor::new(standard_registry());
        let mut cap = ProvenanceCapture::new(CaptureLevel::Fine);
        exec.run_observed(&wf, &mut cap).unwrap();
        exec.run_observed(&wf, &mut cap).unwrap();
        let mut e = PqlEngine::new();
        for retro in cap.finish_all() {
            e.ingest(&retro);
        }
        assert_eq!(e.eval("count runs").unwrap(), QueryResult::Count(16));
        assert_eq!(
            e.eval("count runs where exec = 0").unwrap(),
            QueryResult::Count(8)
        );
    }

    #[test]
    fn secondary_indexes_track_ingest_and_preserve_scan_order() {
        let (mut e, ..) = engine();
        assert_eq!(e.generation(), 1);
        // Bare and full module keys point at the same runs.
        let full = e.probe_run_index(Field::Module, "Histogram@1").unwrap();
        assert_eq!(full.len(), 1);
        let bare: Vec<_> = e
            .probe_run_index(Field::Module, "histogram")
            .unwrap()
            .to_vec();
        assert_eq!(bare, full.to_vec());
        // Status postings cover every run, in scan (key) order.
        let all: Vec<_> = e
            .probe_run_index(Field::Status, "succeeded")
            .unwrap()
            .to_vec();
        assert_eq!(all.len(), e.run_count());
        let mut sorted = all.clone();
        sorted.sort();
        assert_eq!(all, sorted, "postings stay in scan order");
        // Unknown keys are empty postings, unindexed fields are None.
        assert!(e.probe_run_index(Field::Status, "nope").unwrap().is_empty());
        assert!(e.probe_run_index(Field::Exec, "0").is_none());
        assert_eq!(
            e.posting_len(Entity::Artifacts, Field::Dtype, "grid"),
            Some(1)
        );
        // Re-ingesting bumps the generation and refreshes postings.
        let (wf, _) = figure1_workflow(1);
        let exec = Executor::new(standard_registry());
        let mut cap = ProvenanceCapture::new(CaptureLevel::Fine);
        let r = exec.run_observed(&wf, &mut cap).unwrap();
        e.ingest(&cap.take(r.exec).unwrap());
        assert_eq!(e.generation(), 2);
        assert_eq!(
            e.probe_run_index(Field::Status, "succeeded").unwrap().len(),
            e.run_count()
        );
    }

    #[test]
    fn attempts_field_finds_retried_runs() {
        use wf_engine::{ExecPolicy, FaultPlan, RetryPolicy};
        let (wf, nodes) = figure1_workflow(1);
        let exec = Executor::new(standard_registry())
            .with_policy(ExecPolicy::new().with_retry(RetryPolicy::attempts(3)))
            .with_faults(FaultPlan::new().fail_on(nodes.hist, 1, "transient"));
        let mut cap = ProvenanceCapture::new(CaptureLevel::Fine);
        let r = exec.run_observed(&wf, &mut cap).unwrap();
        let retro = cap.take(r.exec).unwrap();
        let mut e = PqlEngine::new();
        e.ingest(&retro);
        // The retried histogram run is the only one with attempts != 1.
        let retried = e.eval("list runs where attempts != 1").unwrap();
        assert_eq!(retried.len(), 1);
        assert!(retried.render().contains("Histogram"));
        assert_eq!(
            e.eval("count runs where attempts = 2").unwrap(),
            QueryResult::Count(1)
        );
        assert_eq!(
            e.eval("count runs where attempts = 1").unwrap(),
            QueryResult::Count(7)
        );
    }
}
