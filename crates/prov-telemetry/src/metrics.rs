//! Counters, gauges, and fixed-bucket histograms with a Prometheus
//! text-exposition renderer, plus an [`ExecObserver`] that populates a
//! standard set of workflow metrics from the engine's event stream.
//!
//! Instruments are `Arc`-shared and atomic, so holders can record from
//! any thread while a scraper renders concurrently; the registry itself
//! is only locked to register or render.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use wf_engine::{EngineEvent, ExecObserver, RunStatus};

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Increment by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increment by `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A gauge that can go up and down.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// Increment by one.
    pub fn inc(&self) {
        self.value.fetch_add(1, Ordering::Relaxed);
    }

    /// Decrement by one.
    pub fn dec(&self) {
        self.value.fetch_sub(1, Ordering::Relaxed);
    }

    /// Set to an absolute value.
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A fixed-bucket histogram of `u64` observations.
///
/// Buckets are defined by inclusive upper bounds; one implicit overflow
/// bucket (`+Inf`) catches everything above the last bound. Bounds are
/// fixed at construction — no allocation or rebinning on the hot path.
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<u64>,
    buckets: Vec<AtomicU64>,
    sum: AtomicU64,
    count: AtomicU64,
}

impl Histogram {
    /// A histogram with the given inclusive upper bounds (must be
    /// strictly increasing; an `+Inf` bucket is added implicitly).
    pub fn new(bounds: &[u64]) -> Self {
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]));
        Self {
            bounds: bounds.to_vec(),
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }

    /// Default bounds for microsecond latencies: 10us … 10s, roughly
    /// logarithmic.
    pub fn latency_bounds() -> Vec<u64> {
        vec![
            10, 50, 100, 500, 1_000, 5_000, 10_000, 50_000, 100_000, 500_000, 1_000_000, 10_000_000,
        ]
    }

    /// Default bounds for value sizes in bytes: 64B … 64MB.
    pub fn size_bounds() -> Vec<u64> {
        vec![
            64,
            1 << 10,
            16 << 10,
            256 << 10,
            1 << 20,
            16 << 20,
            64 << 20,
        ]
    }

    /// Record one observation.
    pub fn observe(&self, v: u64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.bounds.len());
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Mean observation, or 0 when empty.
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() as f64 / n as f64
        }
    }

    /// Cumulative count of observations `<= bound` for each configured
    /// bound, ending with the total (the `+Inf` bucket).
    pub fn cumulative(&self) -> Vec<(Option<u64>, u64)> {
        let mut acc = 0u64;
        let mut out = Vec::with_capacity(self.buckets.len());
        for (i, b) in self.buckets.iter().enumerate() {
            acc += b.load(Ordering::Relaxed);
            out.push((self.bounds.get(i).copied(), acc));
        }
        out
    }
}

enum Instrument {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

impl Instrument {
    /// Prometheus metric type keyword.
    fn type_name(&self) -> &'static str {
        match self {
            Instrument::Counter(_) => "counter",
            Instrument::Gauge(_) => "gauge",
            Instrument::Histogram(_) => "histogram",
        }
    }
}

struct Registered {
    name: String,
    help: String,
    /// Label set, in registration order; empty for unlabeled instruments.
    labels: Vec<(String, String)>,
    instrument: Instrument,
}

/// Escape a label value for Prometheus text exposition: backslash, double
/// quote, and line feed must be escaped (in that order of care — escaping
/// the backslash first keeps the others unambiguous).
fn escape_label_value(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Render a label set as `{k="v",…}` with escaped values; empty string for
/// no labels. `extra` appends one more pair (used for histogram `le`).
fn render_labels(labels: &[(String, String)], extra: Option<(&str, &str)>) -> String {
    let mut pairs: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label_value(v)))
        .collect();
    if let Some((k, v)) = extra {
        pairs.push(format!("{k}=\"{}\"", escape_label_value(v)));
    }
    if pairs.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", pairs.join(","))
    }
}

/// A named collection of instruments with a Prometheus text renderer.
///
/// Registration returns `Arc` handles; recording through a handle never
/// touches the registry lock.
#[derive(Default)]
pub struct MetricsRegistry {
    instruments: Mutex<Vec<Registered>>,
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsRegistry")
            .field("instruments", &self.instruments.lock().len())
            .finish()
    }
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register (or fetch the existing) counter called `name`.
    pub fn counter(&self, name: &str, help: &str) -> Arc<Counter> {
        self.counter_with(name, help, &[])
    }

    /// Register (or fetch the existing) counter called `name` with a label
    /// set. The identity of an instrument is (name, labels): the same name
    /// with different labels yields distinct counters in one family.
    pub fn counter_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        let labels = owned_labels(labels);
        let mut reg = self.instruments.lock();
        if let Some(r) = reg.iter().find(|r| r.name == name && r.labels == labels) {
            if let Instrument::Counter(c) = &r.instrument {
                return Arc::clone(c);
            }
        }
        let c = Arc::new(Counter::default());
        reg.push(Registered {
            name: name.into(),
            help: help.into(),
            labels,
            instrument: Instrument::Counter(Arc::clone(&c)),
        });
        c
    }

    /// Register (or fetch the existing) gauge called `name`.
    pub fn gauge(&self, name: &str, help: &str) -> Arc<Gauge> {
        self.gauge_with(name, help, &[])
    }

    /// Register (or fetch the existing) gauge called `name` with a label
    /// set (see [`MetricsRegistry::counter_with`] for identity rules).
    pub fn gauge_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        let labels = owned_labels(labels);
        let mut reg = self.instruments.lock();
        if let Some(r) = reg.iter().find(|r| r.name == name && r.labels == labels) {
            if let Instrument::Gauge(g) = &r.instrument {
                return Arc::clone(g);
            }
        }
        let g = Arc::new(Gauge::default());
        reg.push(Registered {
            name: name.into(),
            help: help.into(),
            labels,
            instrument: Instrument::Gauge(Arc::clone(&g)),
        });
        g
    }

    /// Register (or fetch the existing) histogram called `name`.
    pub fn histogram(&self, name: &str, help: &str, bounds: &[u64]) -> Arc<Histogram> {
        self.histogram_with(name, help, bounds, &[])
    }

    /// Register (or fetch the existing) histogram called `name` with a
    /// label set (see [`MetricsRegistry::counter_with`] for identity
    /// rules). The `le` bucket label is appended after the instrument's
    /// own labels when rendering.
    pub fn histogram_with(
        &self,
        name: &str,
        help: &str,
        bounds: &[u64],
        labels: &[(&str, &str)],
    ) -> Arc<Histogram> {
        let labels = owned_labels(labels);
        let mut reg = self.instruments.lock();
        if let Some(r) = reg.iter().find(|r| r.name == name && r.labels == labels) {
            if let Instrument::Histogram(h) = &r.instrument {
                return Arc::clone(h);
            }
        }
        let h = Arc::new(Histogram::new(bounds));
        reg.push(Registered {
            name: name.into(),
            help: help.into(),
            labels,
            instrument: Instrument::Histogram(Arc::clone(&h)),
        });
        h
    }

    /// Render every instrument in the Prometheus text exposition format.
    ///
    /// Instruments sharing a name form one metric family: `# HELP` and
    /// `# TYPE` are emitted once per family (from its first registration)
    /// and all of the family's samples follow contiguously, as the
    /// exposition format requires.
    pub fn render_prometheus(&self) -> String {
        let reg = self.instruments.lock();
        let mut out = String::new();
        let mut rendered: Vec<&str> = Vec::new();
        for r in reg.iter() {
            if rendered.contains(&r.name.as_str()) {
                continue;
            }
            rendered.push(&r.name);
            out.push_str(&format!("# HELP {} {}\n", r.name, r.help));
            out.push_str(&format!("# TYPE {} {}\n", r.name, r.instrument.type_name()));
            for member in reg.iter().filter(|m| m.name == r.name) {
                let labels = render_labels(&member.labels, None);
                match &member.instrument {
                    Instrument::Counter(c) => {
                        out.push_str(&format!("{}{} {}\n", member.name, labels, c.get()));
                    }
                    Instrument::Gauge(g) => {
                        out.push_str(&format!("{}{} {}\n", member.name, labels, g.get()));
                    }
                    Instrument::Histogram(h) => {
                        for (bound, cum) in h.cumulative() {
                            let le = match bound {
                                Some(b) => b.to_string(),
                                None => "+Inf".into(),
                            };
                            let bucket_labels =
                                render_labels(&member.labels, Some(("le", le.as_str())));
                            out.push_str(&format!(
                                "{}_bucket{} {}\n",
                                member.name, bucket_labels, cum
                            ));
                        }
                        out.push_str(&format!("{}_sum{} {}\n", member.name, labels, h.sum()));
                        out.push_str(&format!("{}_count{} {}\n", member.name, labels, h.count()));
                    }
                }
            }
        }
        out
    }
}

fn owned_labels(labels: &[(&str, &str)]) -> Vec<(String, String)> {
    labels
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect()
}

/// The standard workflow metric set, fed from the engine event stream.
///
/// All instrument handles are public so callers can read them directly
/// in tests and benchmarks without text-scraping.
#[derive(Debug)]
pub struct MetricsObserver {
    registry: Arc<MetricsRegistry>,
    /// Workflow runs started.
    pub runs_started: Arc<Counter>,
    /// Workflow runs that finished successfully.
    pub runs_succeeded: Arc<Counter>,
    /// Workflow runs that finished failed.
    pub runs_failed: Arc<Counter>,
    /// Runs resumed from a previous execution.
    pub runs_resumed: Arc<Counter>,
    /// Module executions started (cache hits included).
    pub modules_started: Arc<Counter>,
    /// Modules that finished failed.
    pub modules_failed: Arc<Counter>,
    /// Modules skipped because an upstream failed.
    pub modules_skipped: Arc<Counter>,
    /// Module body attempts (first tries and retries).
    pub attempts: Arc<Counter>,
    /// Attempts that failed.
    pub attempt_failures: Arc<Counter>,
    /// Attempts that timed out against a deadline.
    pub timeouts: Arc<Counter>,
    /// Retry-backoff waits entered.
    pub backoffs: Arc<Counter>,
    /// Memoization cache hits.
    pub cache_hits: Arc<Counter>,
    /// Memoization cache misses.
    pub cache_misses: Arc<Counter>,
    /// Modules currently executing.
    pub inflight_modules: Arc<Gauge>,
    /// Workflow runs currently executing.
    pub active_runs: Arc<Gauge>,
    /// Module wall latency in microseconds.
    pub module_latency: Arc<Histogram>,
    /// Backoff delays in microseconds.
    pub backoff_delay: Arc<Histogram>,
    /// Produced output value sizes in bytes (from `ValueMeta.size`).
    pub output_bytes: Arc<Histogram>,
    /// Cache lookup latency in microseconds.
    pub cache_lookup_latency: Arc<Histogram>,
}

impl Default for MetricsObserver {
    fn default() -> Self {
        Self::new()
    }
}

impl MetricsObserver {
    /// An observer over a fresh registry.
    pub fn new() -> Self {
        Self::with_registry(Arc::new(MetricsRegistry::new()))
    }

    /// An observer registering its instruments into `registry`.
    pub fn with_registry(registry: Arc<MetricsRegistry>) -> Self {
        let r = &registry;
        let lat = Histogram::latency_bounds();
        let sz = Histogram::size_bounds();
        Self {
            runs_started: r.counter("wf_runs_started_total", "Workflow runs started"),
            runs_succeeded: r.counter("wf_runs_succeeded_total", "Workflow runs succeeded"),
            runs_failed: r.counter("wf_runs_failed_total", "Workflow runs failed"),
            runs_resumed: r.counter("wf_runs_resumed_total", "Runs resumed from a checkpoint"),
            modules_started: r.counter("wf_modules_started_total", "Module executions started"),
            modules_failed: r.counter("wf_modules_failed_total", "Module executions failed"),
            modules_skipped: r.counter(
                "wf_modules_skipped_total",
                "Modules skipped after upstream failure",
            ),
            attempts: r.counter("wf_attempts_total", "Module body attempts"),
            attempt_failures: r.counter("wf_attempt_failures_total", "Failed attempts"),
            timeouts: r.counter("wf_timeouts_total", "Attempts exceeding their deadline"),
            backoffs: r.counter("wf_backoffs_total", "Retry-backoff waits entered"),
            cache_hits: r.counter("wf_cache_hits_total", "Memoization cache hits"),
            cache_misses: r.counter("wf_cache_misses_total", "Memoization cache misses"),
            inflight_modules: r.gauge("wf_inflight_modules", "Modules currently executing"),
            active_runs: r.gauge("wf_active_runs", "Workflow runs currently executing"),
            module_latency: r.histogram(
                "wf_module_latency_micros",
                "Module wall latency (us)",
                &lat,
            ),
            backoff_delay: r.histogram("wf_backoff_delay_micros", "Retry backoff delay (us)", &lat),
            output_bytes: r.histogram(
                "wf_output_value_bytes",
                "Produced output value sizes (bytes)",
                &sz,
            ),
            cache_lookup_latency: r.histogram(
                "wf_cache_lookup_micros",
                "Memoization cache lookup latency (us)",
                &lat,
            ),
            registry,
        }
    }

    /// The registry holding this observer's instruments.
    pub fn registry(&self) -> &Arc<MetricsRegistry> {
        &self.registry
    }

    /// Render all instruments in Prometheus text format.
    pub fn render_prometheus(&self) -> String {
        self.registry.render_prometheus()
    }
}

impl ExecObserver for MetricsObserver {
    fn on_event(&mut self, event: &EngineEvent) {
        match event {
            EngineEvent::WorkflowStarted { .. } => {
                self.runs_started.inc();
                self.active_runs.inc();
            }
            EngineEvent::RunResumed { .. } => self.runs_resumed.inc(),
            EngineEvent::ModuleStarted { .. } => {
                self.modules_started.inc();
                self.inflight_modules.inc();
                // The first attempt is implicit in ModuleStarted; retries
                // arrive as explicit AttemptStarted events.
                self.attempts.inc();
            }
            EngineEvent::AttemptStarted { .. } => self.attempts.inc(),
            EngineEvent::AttemptFailed { .. } => self.attempt_failures.inc(),
            EngineEvent::ModuleTimedOut { .. } => self.timeouts.inc(),
            EngineEvent::BackoffStarted { delay_micros, .. } => {
                self.backoffs.inc();
                self.backoff_delay.observe(*delay_micros);
            }
            EngineEvent::CacheChecked {
                hit,
                elapsed_micros,
                ..
            } => {
                if *hit {
                    self.cache_hits.inc();
                } else {
                    self.cache_misses.inc();
                }
                self.cache_lookup_latency.observe(*elapsed_micros);
            }
            EngineEvent::OutputProduced { meta, .. } => {
                self.output_bytes.observe(meta.size as u64);
            }
            EngineEvent::ModuleFinished {
                status,
                elapsed_micros,
                ..
            } => match status {
                RunStatus::Skipped => self.modules_skipped.inc(),
                other => {
                    self.inflight_modules.dec();
                    self.module_latency.observe(*elapsed_micros);
                    if *other == RunStatus::Failed {
                        self.modules_failed.inc();
                    }
                }
            },
            EngineEvent::WorkflowFinished { status, .. } => {
                self.active_runs.dec();
                match status {
                    RunStatus::Succeeded => self.runs_succeeded.inc(),
                    _ => self.runs_failed.inc(),
                }
            }
            EngineEvent::InputBound { .. } => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wf_engine::{standard_registry, Executor};
    use wf_model::WorkflowBuilder;

    fn small_wf() -> wf_model::Workflow {
        let mut b = WorkflowBuilder::new(1, "m");
        let a = b.add("ConstInt");
        b.param(a, "value", 7i64);
        let c = b.add("Identity");
        b.connect(a, "out", c, "in");
        b.build()
    }

    #[test]
    fn histogram_buckets_and_render() {
        let h = Histogram::new(&[10, 100, 1000]);
        for v in [5, 7, 50, 500, 5000, 50000] {
            h.observe(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 5 + 7 + 50 + 500 + 5000 + 50000);
        let cum = h.cumulative();
        assert_eq!(cum[0], (Some(10), 2));
        assert_eq!(cum[1], (Some(100), 3));
        assert_eq!(cum[2], (Some(1000), 4));
        assert_eq!(cum[3], (None, 6));
    }

    #[test]
    fn registry_renders_prometheus_text() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("demo_total", "a demo counter");
        c.add(3);
        let g = reg.gauge("demo_gauge", "a demo gauge");
        g.set(-2);
        let h = reg.histogram("demo_micros", "a demo histogram", &[10, 100]);
        h.observe(5);
        h.observe(500);
        let text = reg.render_prometheus();
        assert!(text.contains("# TYPE demo_total counter"));
        assert!(text.contains("demo_total 3"));
        assert!(text.contains("demo_gauge -2"));
        assert!(text.contains("demo_micros_bucket{le=\"10\"} 1"));
        assert!(text.contains("demo_micros_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("demo_micros_sum 505"));
        assert!(text.contains("demo_micros_count 2"));
    }

    #[test]
    fn registering_twice_returns_the_same_instrument() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("same_total", "h");
        let b = reg.counter("same_total", "h");
        a.inc();
        b.inc();
        assert_eq!(a.get(), 2);
    }

    #[test]
    fn labeled_instruments_form_one_family_with_escaped_values() {
        let reg = MetricsRegistry::new();
        let graph = reg.counter_with("pql_queries_total", "queries", &[("backend", "graph")]);
        let triple = reg.counter_with("pql_queries_total", "queries", &[("backend", "triple")]);
        graph.add(4);
        triple.add(1);
        // Same (name, labels) => same instrument; different labels => distinct.
        let again = reg.counter_with("pql_queries_total", "queries", &[("backend", "graph")]);
        again.inc();
        assert_eq!(graph.get(), 5);
        assert_eq!(triple.get(), 1);

        // A value exercising every escape the exposition format requires:
        // backslash, double quote, and newline.
        let nasty = reg.counter_with("pql_slow_total", "slow", &[("query", "a\\b\"c\nd")]);
        nasty.inc();

        let h = reg.histogram_with("pql_latency_micros", "lat", &[10], &[("backend", "rel")]);
        h.observe(3);

        let text = reg.render_prometheus();
        // One HELP/TYPE per family even with two members.
        assert_eq!(text.matches("# HELP pql_queries_total").count(), 1);
        assert_eq!(text.matches("# TYPE pql_queries_total counter").count(), 1);
        assert!(text.contains("pql_queries_total{backend=\"graph\"} 5"));
        assert!(text.contains("pql_queries_total{backend=\"triple\"} 1"));
        // Escapes: \ -> \\, " -> \", newline -> \n (two characters).
        assert!(text.contains("pql_slow_total{query=\"a\\\\b\\\"c\\nd\"} 1"));
        // Histogram appends `le` after the instrument's own labels.
        assert!(text.contains("pql_latency_micros_bucket{backend=\"rel\",le=\"10\"} 1"));
        assert!(text.contains("pql_latency_micros_bucket{backend=\"rel\",le=\"+Inf\"} 1"));
        assert!(text.contains("pql_latency_micros_sum{backend=\"rel\"} 3"));
        assert!(text.contains("pql_latency_micros_count{backend=\"rel\"} 1"));
    }

    #[test]
    fn observer_counts_runs_modules_and_cache_traffic() {
        let wf = small_wf();
        let exec = Executor::new(standard_registry()).with_cache(16);
        let mut m = MetricsObserver::new();
        exec.run_observed(&wf, &mut m).unwrap();
        exec.run_observed(&wf, &mut m).unwrap();
        assert_eq!(m.runs_started.get(), 2);
        assert_eq!(m.runs_succeeded.get(), 2);
        assert_eq!(m.modules_started.get(), 4);
        assert_eq!(m.cache_misses.get(), 2);
        assert_eq!(m.cache_hits.get(), 2);
        assert_eq!(m.inflight_modules.get(), 0, "gauge returns to zero");
        assert_eq!(m.active_runs.get(), 0);
        assert_eq!(m.module_latency.count(), 4);
        assert!(m.output_bytes.count() >= 4);
        let text = m.render_prometheus();
        assert!(text.contains("wf_runs_started_total 2"));
        assert!(text.contains("wf_cache_hits_total 2"));
    }

    #[test]
    fn observer_counts_failures_and_skips() {
        let mut b = WorkflowBuilder::new(1, "f");
        let bad = b.add("FailIf");
        b.param(bad, "fail", true);
        let down = b.add("Identity");
        b.connect(bad, "out", down, "in");
        let exec = Executor::new(standard_registry());
        let mut m = MetricsObserver::new();
        exec.run_observed(&b.build(), &mut m).unwrap();
        assert_eq!(m.runs_failed.get(), 1);
        assert_eq!(m.modules_failed.get(), 1);
        assert_eq!(m.modules_skipped.get(), 1);
        assert_eq!(m.attempt_failures.get(), 1);
        assert_eq!(m.inflight_modules.get(), 0);
    }
}
