//! Query-observability integration tests: EXPLAIN ANALYZE access counts
//! are verified exactly against the `StoreStats` recorders of all four
//! store backends, the engine-side analyzer is verified against the
//! un-instrumented evaluator, and the observer front end (spans, labeled
//! metrics, slow-query log) is exercised end to end.

use provenance_workflows::prelude::*;
use provenance_workflows::telemetry::{spans_jsonl, SpanKind};
use std::collections::{BTreeMap, BTreeSet};
use wf_engine::synth::figure1_workflow;

/// One captured figure-1 run plus the digests of a downstream artifact
/// (lineage/generators anchor) and an upstream one (impact anchor).
fn captured() -> (RetrospectiveProvenance, String, String) {
    let (wf, nodes) = figure1_workflow(1);
    let exec = Executor::new(standard_registry());
    let mut cap = ProvenanceCapture::new(CaptureLevel::Fine);
    let r = exec.run_observed(&wf, &mut cap).expect("workflow runs");
    let retro = cap.take(r.exec).expect("capture completes");
    let target = retro.produced(nodes.save_hist, "file").unwrap().digest();
    let source = retro.produced(nodes.load, "grid").unwrap().digest();
    (retro, target, source)
}

fn all_backends(retro: &RetrospectiveProvenance) -> Vec<Box<dyn ProvenanceStore>> {
    let mut stores: Vec<Box<dyn ProvenanceStore>> = vec![
        Box::new(GraphStore::new()),
        Box::new(TripleStore::new()),
        Box::new(RelStore::new()),
        Box::new(LogStore::ephemeral()),
    ];
    for s in &mut stores {
        s.ingest(retro);
    }
    stores
}

#[test]
fn analyze_store_counts_match_store_stats_exactly_on_all_four_backends() {
    let (retro, target, source) = captured();
    let stores = all_backends(&retro);
    let queries = [
        format!("lineage of artifact {target}"),
        format!("lineage of artifact {target} depth 1"),
        format!("impact of artifact {source}"),
        "count runs".to_string(),
    ];

    // rows per query, per backend, for cross-backend agreement below.
    let mut rows_by_query: BTreeMap<&str, BTreeSet<usize>> = BTreeMap::new();
    let mut names = BTreeSet::new();

    for store in &stores {
        let name = store.backend_name();
        names.insert(name.to_string());
        for q in &queries {
            let parsed = parse_pql(q).unwrap();

            // The access counts ANALYZE reports must equal the StoreStats
            // delta observed from outside across the whole call.
            let before = store.stats().snapshot();
            let sa = analyze_store(store.as_ref(), &parsed).unwrap();
            let outer = store.stats().snapshot().delta(&before);
            assert_eq!(
                sa.total_accesses(),
                outer,
                "[{name}] {q}: ANALYZE accesses != StoreStats delta"
            );

            // Counters are deterministic: replaying the same query costs
            // exactly the same accesses and yields the same rows.
            let again = analyze_store(store.as_ref(), &parsed).unwrap();
            assert_eq!(again.total_accesses(), sa.total_accesses(), "[{name}] {q}");
            assert_eq!(again.rows, sa.rows, "[{name}] {q}");

            assert!(
                sa.render().starts_with(&format!("backend: {name}")),
                "render names the backend"
            );
            rows_by_query.entry(q).or_default().insert(sa.rows);
        }

        // The full-closure lineage query does real, itemized work on
        // every backend (count runs is served from uncounted metadata).
        let parsed = parse_pql(&queries[0]).unwrap();
        let sa = analyze_store(store.as_ref(), &parsed).unwrap();
        assert!(
            sa.total_accesses().total_reads() > 0,
            "[{name}] lineage reports no element reads"
        );
    }

    assert_eq!(
        names.into_iter().collect::<Vec<_>>(),
        ["graph", "log", "relational", "triple"],
        "all four backends covered"
    );
    for (q, rows) in rows_by_query {
        assert_eq!(rows.len(), 1, "backends disagree on '{q}': {rows:?}");
    }
}

#[test]
fn engine_analyze_counts_match_engine_stats_and_eval() {
    let (retro, target, source) = captured();
    let mut engine = PqlEngine::new();
    engine.ingest(&retro);

    for q in [
        format!("lineage of artifact {target}"),
        format!("lineage of artifact {target} where module = histogram"),
        format!("impact of artifact {source}"),
        "count runs".to_string(),
        "list artifacts where dtype = grid".to_string(),
    ] {
        let parsed = parse_pql(&q).unwrap();
        let before = engine.stats().snapshot();
        let analysis = analyze(&engine, &parsed).unwrap();
        let delta = engine.stats().snapshot().delta(&before);
        assert_eq!(
            analysis.total_accesses(),
            delta,
            "{q}: per-operator deltas do not partition the engine's work"
        );
        assert_eq!(
            analysis.result,
            engine.eval_query(&parsed).unwrap(),
            "{q}: ANALYZE result diverges from plain evaluation"
        );
        // ops are in render order, root first: the root operator's output
        // is the result cardinality.
        assert_eq!(analysis.ops[0].rows_out, analysis.result.len(), "{q}");
        assert!(analysis.render().contains("total:"));
    }
}

#[test]
fn analyze_store_counts_stay_exact_on_index_paths() {
    // Same contract as the naive-mode test above, with the backends in
    // optimized mode: ANALYZE's access counts must still equal the
    // externally observed StoreStats delta, the rows must match naive
    // mode, and indexed lookups must register as keyed reads — never as
    // scans pretending to be fast.
    let (retro, target, source) = captured();
    let stores = all_backends(&retro);
    let queries = [
        format!("lineage of artifact {target}"),
        format!("lineage of artifact {target} depth 1"),
        format!("impact of artifact {source}"),
        "count runs".to_string(),
    ];
    for store in &stores {
        let name = store.backend_name();
        for q in &queries {
            let parsed = parse_pql(q).unwrap();
            store.set_optimized(false);
            let naive = analyze_store(store.as_ref(), &parsed).unwrap();

            store.set_optimized(true);
            let before = store.stats().snapshot();
            let fast = analyze_store(store.as_ref(), &parsed).unwrap();
            let outer = store.stats().snapshot().delta(&before);
            store.set_optimized(false);

            assert_eq!(
                fast.total_accesses(),
                outer,
                "[{name}] {q}: optimized ANALYZE accesses != StoreStats delta"
            );
            assert_eq!(fast.rows, naive.rows, "[{name}] {q}: rows differ by mode");
            assert!(
                fast.render().contains("(indexed)"),
                "[{name}] {q}: optimized plan not labeled"
            );
        }

        // The aggregate is the index showcase on every backend: optimized
        // `count runs` is a keyed metadata read, not a scan.
        store.set_optimized(true);
        let parsed = parse_pql("count runs").unwrap();
        let sa = analyze_store(store.as_ref(), &parsed).unwrap();
        store.set_optimized(false);
        let acc = sa.total_accesses();
        assert_eq!(acc.scans, 0, "[{name}] optimized count runs still scans");
        assert!(
            acc.keyed_lookups > 0,
            "[{name}] optimized count runs recorded no keyed lookup"
        );
    }
}

#[test]
fn engine_optimized_analyze_counts_match_engine_stats_and_eval() {
    // analyze_optimized must satisfy the same partition invariant as the
    // naive analyzer: per-operator access deltas sum to the engine-wide
    // StoreStats delta, and the result is identical to plain evaluation.
    let (retro, target, _) = captured();
    let mut engine = PqlEngine::new();
    engine.ingest(&retro);

    for q in [
        format!("lineage of artifact {target} depth 1"),
        "count runs".to_string(),
        "count runs where module = histogram".to_string(),
        "list artifacts where dtype = grid".to_string(),
        "count executions where status = succeeded".to_string(),
    ] {
        let parsed = parse_pql(&q).unwrap();
        let before = engine.stats().snapshot();
        let analysis = analyze_optimized(&engine, &parsed).unwrap();
        let delta = engine.stats().snapshot().delta(&before);
        assert_eq!(
            analysis.total_accesses(),
            delta,
            "{q}: optimized per-operator deltas do not partition the work"
        );
        assert_eq!(
            analysis.result,
            engine.eval_query(&parsed).unwrap(),
            "{q}: optimized ANALYZE result diverges from naive evaluation"
        );
        assert_eq!(analysis.ops[0].rows_out, analysis.result.len(), "{q}");
    }

    // Rewritten shapes hit the secondary indexes: keyed reads, zero scans.
    for q in ["count runs", "count runs where module = histogram"] {
        let parsed = parse_pql(q).unwrap();
        let acc = analyze_optimized(&engine, &parsed)
            .unwrap()
            .total_accesses();
        assert_eq!(acc.scans, 0, "{q}: optimized engine path scans");
        assert!(acc.keyed_lookups > 0, "{q}: no keyed lookup recorded");
    }
}

#[test]
fn observer_front_end_covers_every_backend_and_exports_cleanly() {
    let (retro, target, _) = captured();
    let mut engine = PqlEngine::new();
    engine.ingest(&retro);
    let stores = all_backends(&retro);
    let q = parse_pql(&format!("lineage of artifact {target}")).unwrap();

    let mut obs = QueryObserver::new().with_slowlog(0, 32);
    let r = obs.eval_observed(&engine, &q).unwrap();
    assert_eq!(
        r,
        engine.eval_query(&q).unwrap(),
        "observation changes nothing"
    );
    // The store surface answers the runs-only projection of the same
    // closure; all four backends must agree with each other.
    let mut store_rows = BTreeSet::new();
    for store in &stores {
        store_rows.insert(
            obs.eval_store_observed(store.as_ref(), store.backend_name(), &q)
                .unwrap(),
        );
    }
    assert_eq!(store_rows.len(), 1, "backends disagree: {store_rows:?}");

    // Labeled metrics: one family, one member per backend label.
    let text = obs.registry.render_prometheus();
    for backend in ["engine", "graph", "triple", "relational", "log"] {
        assert!(
            text.contains(&format!("pql_queries_total{{backend=\"{backend}\"}} 1")),
            "missing member for {backend} in:\n{text}"
        );
    }
    assert_eq!(
        text.matches("# HELP pql_queries_total").count(),
        1,
        "labeled members share one family header"
    );

    // Slow log: threshold 0 admits all five; JSONL dump parses back.
    assert_eq!(obs.slowlog.len(), 5);
    assert_eq!(obs.slowlog.to_jsonl().lines().count(), 5);
    for line in obs.slowlog.to_jsonl().lines() {
        let doc = provenance_workflows::telemetry::parse_json(line).unwrap();
        assert!(doc.get("accesses").is_some());
    }
    assert!(obs.slowlog.render().contains("5 retained"));

    // Spans: one query span per evaluation, exportable as JSONL and
    // re-ingestible by the span store without loss.
    let trace = obs.take_trace();
    assert_eq!(trace.spans.len(), 5);
    assert!(trace.spans.iter().all(|s| s.kind == SpanKind::Query));
    let (back, skipped) = SpanStore::from_jsonl(&spans_jsonl(&trace));
    assert!(skipped.is_empty());
    assert_eq!(back.len(), 5);
}
