//! Module upgrades as evolution provenance.
//!
//! Module libraries evolve under a workflow's feet: the retrospective log
//! records that `Histogram@1` computed last year's figure, while the
//! catalog now offers `Histogram@3`. Upgrading is itself an *edit* — so it
//! belongs in the version tree as ordinary [`Action::SetVersion`] commits,
//! keeping the old behaviour reachable forever (reproducibility) while the
//! head moves forward.
//!
//! [`plan_upgrades`] computes a safe upgrade plan against a catalog:
//! a node is upgraded only if the newer kind still offers every port its
//! existing connections use and every parameter it binds; anything else is
//! reported as skipped with the reason.

use crate::action::Action;
use wf_model::{ModuleCatalog, NodeId, Workflow};

/// The result of planning upgrades for one workflow.
#[derive(Debug, Clone, Default)]
pub struct UpgradePlan {
    /// Ready-to-commit actions (one `SetVersion` per upgraded node).
    pub actions: Vec<Action>,
    /// Nodes upgraded: (node, from, to).
    pub upgraded: Vec<(NodeId, u32, u32)>,
    /// Nodes already at the newest version.
    pub current: Vec<NodeId>,
    /// Nodes that could not be upgraded: (node, reason).
    pub skipped: Vec<(NodeId, String)>,
}

impl UpgradePlan {
    /// Is there anything to do?
    pub fn is_empty(&self) -> bool {
        self.actions.is_empty()
    }

    /// Render one line per decision.
    pub fn render(&self) -> String {
        let mut s = String::new();
        for (n, from, to) in &self.upgraded {
            s.push_str(&format!("upgrade {n}: v{from} -> v{to}\n"));
        }
        for n in &self.current {
            s.push_str(&format!("current {n}: already newest\n"));
        }
        for (n, reason) in &self.skipped {
            s.push_str(&format!("skip    {n}: {reason}\n"));
        }
        s
    }
}

/// Plan upgrading every node of `wf` to the newest version of its module
/// kind available in `catalog`.
pub fn plan_upgrades(wf: &Workflow, catalog: &ModuleCatalog) -> UpgradePlan {
    let mut plan = UpgradePlan::default();
    for node in wf.nodes.values() {
        let Some(latest) = catalog.latest(&node.module) else {
            plan.skipped
                .push((node.id, format!("kind '{}' not in catalog", node.module)));
            continue;
        };
        if latest.version <= node.version {
            plan.current.push(node.id);
            continue;
        }
        // Safety: every input port fed by a connection must still exist
        // (with a type accepting what flows in is checked by validate();
        // here we check presence), every output port used must still
        // exist, and every bound parameter must still be declared.
        let mut reason = None;
        for conn in wf.inputs_of(node.id) {
            if latest.input_port(&conn.to.port).is_none() {
                reason = Some(format!(
                    "v{} dropped input port '{}'",
                    latest.version, conn.to.port
                ));
                break;
            }
        }
        if reason.is_none() {
            for conn in wf.outputs_of(node.id) {
                if latest.output_port(&conn.from.port).is_none() {
                    reason = Some(format!(
                        "v{} dropped output port '{}'",
                        latest.version, conn.from.port
                    ));
                    break;
                }
            }
        }
        if reason.is_none() {
            for pname in node.params.keys() {
                if latest.param_spec(pname).is_none() {
                    reason = Some(format!("v{} dropped parameter '{pname}'", latest.version));
                    break;
                }
            }
        }
        match reason {
            Some(r) => plan.skipped.push((node.id, r)),
            None => {
                plan.upgraded.push((node.id, node.version, latest.version));
                plan.actions.push(Action::SetVersion {
                    node: node.id,
                    new: latest.version,
                    old: node.version,
                });
            }
        }
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::VersionTree;
    use wf_model::{ModuleKind, ParamSpec, PortSpec, WorkflowBuilder, WorkflowId};

    fn catalog() -> ModuleCatalog {
        let mut c = ModuleCatalog::new();
        c.register(
            ModuleKind::new("Histogram")
                .version(1)
                .input(PortSpec::required("data", wf_model::DataType::Grid))
                .output(PortSpec::required("table", wf_model::DataType::Table))
                .param(ParamSpec::new("bins", 64i64)),
        );
        c.register(
            ModuleKind::new("Histogram")
                .version(3)
                .input(PortSpec::required("data", wf_model::DataType::Grid))
                .output(PortSpec::required("table", wf_model::DataType::Table))
                .param(ParamSpec::new("bins", 64i64))
                .param(ParamSpec::new("normalize", false)),
        );
        c.register(
            ModuleKind::new("Render")
                .version(1)
                .input(PortSpec::required("table", wf_model::DataType::Table))
                .output(PortSpec::required("image", wf_model::DataType::Image)),
        );
        c.register(
            // v2 renamed its input port: incompatible with wired instances.
            ModuleKind::new("Render")
                .version(2)
                .input(PortSpec::required("data", wf_model::DataType::Table))
                .output(PortSpec::required("image", wf_model::DataType::Image)),
        );
        c.register(
            ModuleKind::new("Load")
                .version(1)
                .output(PortSpec::required("grid", wf_model::DataType::Grid)),
        );
        c
    }

    fn wf() -> Workflow {
        let mut b = WorkflowBuilder::new(1, "upgrade-me");
        let l = b.add("Load");
        let h = b.add("Histogram");
        b.param(h, "bins", 32i64);
        let r = b.add("Render");
        b.connect(l, "grid", h, "data")
            .connect(h, "table", r, "table");
        b.build()
    }

    #[test]
    fn compatible_upgrade_planned_incompatible_skipped() {
        let wf = wf();
        let plan = plan_upgrades(&wf, &catalog());
        assert_eq!(plan.upgraded.len(), 1, "{}", plan.render());
        assert_eq!(plan.upgraded[0].1, 1);
        assert_eq!(plan.upgraded[0].2, 3);
        // Render v2 renamed 'table' -> 'data': must be skipped.
        assert_eq!(plan.skipped.len(), 1);
        assert!(plan.skipped[0].1.contains("dropped input port 'table'"));
        // Load is already newest.
        assert_eq!(plan.current.len(), 1);
        let rendered = plan.render();
        assert!(rendered.contains("upgrade") && rendered.contains("skip"));
    }

    #[test]
    fn dropped_parameter_blocks_upgrade() {
        let mut c = catalog();
        c.register(
            ModuleKind::new("Histogram")
                .version(4)
                .input(PortSpec::required("data", wf_model::DataType::Grid))
                .output(PortSpec::required("table", wf_model::DataType::Table)),
            // no params at all: the bound 'bins' is gone
        );
        let plan = plan_upgrades(&wf(), &c);
        assert!(plan
            .skipped
            .iter()
            .any(|(_, r)| r.contains("dropped parameter 'bins'")));
    }

    #[test]
    fn unknown_kind_reported() {
        let wf = wf();
        let plan = plan_upgrades(&wf, &ModuleCatalog::new());
        assert_eq!(plan.skipped.len(), 3);
        assert!(plan.is_empty());
    }

    #[test]
    fn upgrades_commit_into_the_version_tree_and_invert() {
        let base = wf();
        let mut tree = VersionTree::new(WorkflowId(1), "upgrade-me");
        let v1 = tree.import_workflow(tree.root(), &base, "susan").unwrap();
        let plan = plan_upgrades(&base, &catalog());
        let v2 = tree.commit_all(v1, plan.actions.clone(), "susan").unwrap();
        let upgraded = tree.materialize(v2).unwrap();
        let hist = upgraded
            .nodes
            .values()
            .find(|n| n.module == "Histogram")
            .unwrap();
        assert_eq!(hist.version, 3);
        // The old behaviour stays reachable at v1.
        let old = tree.materialize(v1).unwrap();
        assert_eq!(
            old.nodes
                .values()
                .find(|n| n.module == "Histogram")
                .unwrap()
                .version,
            1
        );
        // And the action inverts cleanly.
        let mut back = upgraded.clone();
        for a in plan.actions.iter().rev() {
            a.invert().apply(&mut back).unwrap();
        }
        assert_eq!(back.nodes, old.nodes);
    }

    #[test]
    fn idempotent_after_upgrade() {
        let mut w = wf();
        for a in plan_upgrades(&w, &catalog()).actions {
            a.apply(&mut w).unwrap();
        }
        let again = plan_upgrades(&w, &catalog());
        assert!(again.upgraded.is_empty());
        assert_eq!(again.current.len(), 2, "Load and Histogram now current");
    }
}
