//! The provenance instrumentation surface of the engine.
//!
//! "One of the major advantages to using workflow systems is that they can
//! be easily instrumented to automatically capture provenance — this
//! information can be accessed directly through system APIs" (§2.2).
//! [`ExecObserver`] is that API: the executor emits one [`EngineEvent`] per
//! lifecycle transition, and provenance capture (in `prov-core`), progress
//! displays, and tests all subscribe to the same stream.

use crate::exec::{ExecId, RunStatus};
use crate::value::Value;
use wf_model::{NodeId, ParamValue, WorkflowId};

/// Lightweight description of a value that crossed a port: its type, its
/// content hash, and its approximate size — everything retrospective
/// provenance needs without retaining the payload.
#[derive(Debug, Clone, PartialEq)]
pub struct ValueMeta {
    /// Rendered data type (e.g. `grid`, `table`).
    pub dtype: String,
    /// Stable content hash of the value.
    pub hash: u64,
    /// Approximate payload size in bytes.
    pub size: usize,
    /// Inline preview for small scalar values (fine-grained capture);
    /// `None` for bulk data.
    pub preview: Option<String>,
}

impl ValueMeta {
    /// Describe a value; `with_preview` controls whether small scalars are
    /// inlined (fine-grained capture).
    pub fn of(value: &Value, with_preview: bool) -> Self {
        let preview = if with_preview && value.size_bytes() <= 64 {
            Some(value.to_string())
        } else {
            None
        };
        Self {
            dtype: value.dtype().to_string(),
            hash: value.content_hash(),
            size: value.size_bytes(),
            preview,
        }
    }
}

/// One engine lifecycle event.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineEvent {
    /// A workflow run began.
    WorkflowStarted {
        /// The run.
        exec: ExecId,
        /// The workflow specification being run.
        workflow: WorkflowId,
        /// Specification name.
        name: String,
        /// Wall-clock timestamp, milliseconds since the Unix epoch.
        at_millis: u64,
    },
    /// A module run began.
    ModuleStarted {
        /// The enclosing workflow run.
        exec: ExecId,
        /// The node being executed.
        node: NodeId,
        /// Module identity `name@version`.
        identity: String,
        /// Effective parameters (defaults merged with instance bindings).
        params: Vec<(String, ParamValue)>,
        /// Wall-clock timestamp, ms since epoch.
        at_millis: u64,
    },
    /// A value arrived on a module's input port.
    InputBound {
        /// The enclosing workflow run.
        exec: ExecId,
        /// Consuming node.
        node: NodeId,
        /// Input port name.
        port: String,
        /// Description of the consumed value.
        meta: ValueMeta,
    },
    /// A module produced a value on an output port.
    OutputProduced {
        /// The enclosing workflow run.
        exec: ExecId,
        /// Producing node.
        node: NodeId,
        /// Output port name.
        port: String,
        /// Description of the produced value.
        meta: ValueMeta,
    },
    /// The memoization cache was consulted for a module run. Emitted once
    /// per executed module on executors with a cache attached — telemetry
    /// turns these into cache-lookup spans and hit/miss counters.
    CacheChecked {
        /// The enclosing workflow run.
        exec: ExecId,
        /// The node whose key was probed.
        node: NodeId,
        /// Whether the probe hit (outputs were replayed from the cache).
        hit: bool,
        /// Time spent in the lookup itself, in microseconds.
        elapsed_micros: u64,
    },
    /// A module run ended.
    ModuleFinished {
        /// The enclosing workflow run.
        exec: ExecId,
        /// The node.
        node: NodeId,
        /// Outcome.
        status: RunStatus,
        /// Duration of the module body in microseconds.
        elapsed_micros: u64,
        /// Whether the result came from the memoization cache.
        from_cache: bool,
        /// Failure message when `status` is `Failed`.
        error: Option<String>,
    },
    /// The workflow run ended.
    WorkflowFinished {
        /// The run.
        exec: ExecId,
        /// Outcome of the run as a whole.
        status: RunStatus,
        /// Wall-clock timestamp, ms since epoch.
        at_millis: u64,
    },
    /// A retry attempt of a module body began (the first attempt is implied
    /// by [`EngineEvent::ModuleStarted`]; this event fires for attempt 2
    /// onward).
    AttemptStarted {
        /// The enclosing workflow run.
        exec: ExecId,
        /// The node being re-attempted.
        node: NodeId,
        /// Attempt number, 1-based.
        attempt: u32,
    },
    /// One attempt of a module body failed. Fires once per failed attempt;
    /// the final failure is additionally summarized by
    /// [`EngineEvent::ModuleFinished`] with `status: Failed`.
    AttemptFailed {
        /// The enclosing workflow run.
        exec: ExecId,
        /// The failing node.
        node: NodeId,
        /// Attempt number, 1-based.
        attempt: u32,
        /// Rendered error.
        error: String,
        /// Whether the retry policy schedules another attempt.
        will_retry: bool,
    },
    /// The engine is waiting out a retry backoff.
    BackoffStarted {
        /// The enclosing workflow run.
        exec: ExecId,
        /// The node awaiting retry.
        node: NodeId,
        /// The attempt that will run after the backoff, 1-based.
        next_attempt: u32,
        /// Backoff duration in microseconds (deterministic given the
        /// policy's jitter seed).
        delay_micros: u64,
    },
    /// A module body overran its deadline and was abandoned.
    ModuleTimedOut {
        /// The enclosing workflow run.
        exec: ExecId,
        /// The node that timed out.
        node: NodeId,
        /// The attempt that timed out, 1-based.
        attempt: u32,
        /// The enforced limit in microseconds.
        limit_micros: u64,
    },
    /// This run resumes an earlier, failed run: already-successful work was
    /// replayed from its checkpoint (run cache + run record) rather than
    /// re-executed. Fires immediately after
    /// [`EngineEvent::WorkflowStarted`].
    RunResumed {
        /// The resuming run.
        exec: ExecId,
        /// The failed run being resumed.
        resumed_from: ExecId,
        /// Number of module results replayed from the checkpoint.
        reused: usize,
    },
}

/// Subscriber to the engine's event stream.
///
/// Observers run synchronously inside the executor (capture overhead is
/// measured in experiment E3, exactly because it sits on this path).
pub trait ExecObserver: Send {
    /// Receive one event.
    fn on_event(&mut self, event: &EngineEvent);
}

/// An observer that retains every event — used by tests and by simple
/// capture pipelines.
#[derive(Debug, Default)]
pub struct RecordingObserver {
    /// All events seen so far, in emission order.
    pub events: Vec<EngineEvent>,
}

impl ExecObserver for RecordingObserver {
    fn on_event(&mut self, event: &EngineEvent) {
        self.events.push(event.clone());
    }
}

/// An observer that broadcasts every event to several sinks, in order —
/// how telemetry (spans, metrics) composes with provenance capture on a
/// single run: each subsystem stays an independent [`ExecObserver`] and the
/// executor sees one.
///
/// Per-node event ordering is preserved for every sink: each incoming event
/// is forwarded to all sinks before the next event is accepted.
#[derive(Default)]
pub struct FanoutObserver<'a> {
    sinks: Vec<&'a mut dyn ExecObserver>,
}

impl std::fmt::Debug for FanoutObserver<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FanoutObserver")
            .field("sinks", &self.sinks.len())
            .finish()
    }
}

impl<'a> FanoutObserver<'a> {
    /// An empty fan-out (events are dropped until a sink is attached).
    pub fn new() -> Self {
        Self { sinks: Vec::new() }
    }

    /// Attach a sink (builder style).
    pub fn with(mut self, sink: &'a mut dyn ExecObserver) -> Self {
        self.sinks.push(sink);
        self
    }

    /// Attach a sink.
    pub fn push(&mut self, sink: &'a mut dyn ExecObserver) {
        self.sinks.push(sink);
    }

    /// Number of attached sinks.
    pub fn len(&self) -> usize {
        self.sinks.len()
    }

    /// Whether no sinks are attached.
    pub fn is_empty(&self) -> bool {
        self.sinks.is_empty()
    }
}

impl ExecObserver for FanoutObserver<'_> {
    fn on_event(&mut self, event: &EngineEvent) {
        for sink in &mut self.sinks {
            sink.on_event(event);
        }
    }
}

/// Milliseconds since the Unix epoch (engine-wide wall clock).
pub fn now_millis() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

/// Monotonic microseconds since a process-wide anchor (the first call).
///
/// Unlike [`now_millis`] this clock never goes backwards and has the
/// resolution profiling needs; all span and [`crate::exec::NodeRunRecord`]
/// timestamps use it, so timings are comparable across runs and threads
/// within one process.
pub fn now_micros() -> u64 {
    use std::sync::OnceLock;
    static ANCHOR: OnceLock<std::time::Instant> = OnceLock::new();
    ANCHOR
        .get_or_init(std::time::Instant::now)
        .elapsed()
        .as_micros() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_meta_previews_small_scalars_only() {
        let m = ValueMeta::of(&Value::Int(7), true);
        assert_eq!(m.preview.as_deref(), Some("7"));
        assert_eq!(m.dtype, "int");
        let big = Value::Bytes(bytes::Bytes::from(vec![0u8; 1024]));
        let m = ValueMeta::of(&big, true);
        assert!(m.preview.is_none());
        let m = ValueMeta::of(&Value::Int(7), false);
        assert!(m.preview.is_none());
    }

    #[test]
    fn recording_observer_accumulates() {
        let mut obs = RecordingObserver::default();
        let ev = EngineEvent::WorkflowFinished {
            exec: ExecId(1),
            status: RunStatus::Succeeded,
            at_millis: 0,
        };
        obs.on_event(&ev);
        obs.on_event(&ev);
        assert_eq!(obs.events.len(), 2);
    }

    #[test]
    fn clock_is_monotonic_enough() {
        let a = now_millis();
        let b = now_millis();
        assert!(b >= a);
    }

    #[test]
    fn monotonic_clock_never_goes_backwards() {
        let mut prev = now_micros();
        for _ in 0..100 {
            let t = now_micros();
            assert!(t >= prev);
            prev = t;
        }
    }

    #[test]
    fn fanout_broadcasts_in_order_to_every_sink() {
        let mut a = RecordingObserver::default();
        let mut b = RecordingObserver::default();
        {
            let mut fan = FanoutObserver::new().with(&mut a).with(&mut b);
            assert_eq!(fan.len(), 2);
            assert!(!fan.is_empty());
            for i in 0..3 {
                fan.on_event(&EngineEvent::WorkflowFinished {
                    exec: ExecId(i),
                    status: RunStatus::Succeeded,
                    at_millis: i,
                });
            }
        }
        assert_eq!(a.events.len(), 3);
        assert_eq!(a.events, b.events, "identical streams at every sink");
    }
}
