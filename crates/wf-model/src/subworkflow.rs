//! Composite modules: a workflow packaged as a reusable module.
//!
//! Figure 1 of the tutorial shows "the sub-workflow on the left" deriving
//! `head-hist.png` — sub-workflows are both an authoring convenience and the
//! basis of *user views* over provenance (a composite is exactly the kind of
//! abstraction ZOOM exposes). A [`CompositeModule`] carries its inner
//! workflow plus mappings from its outer ports to inner endpoints;
//! [`flatten`] expands composites for execution while remembering which
//! composite each inner node came from (so provenance can be re-abstracted).

use crate::catalog::ModuleCatalog;
use crate::error::ModelError;
use crate::ident::NodeId;
use crate::module::ModuleKind;
use crate::workflow::{Endpoint, Workflow};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A workflow packaged as a module kind.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompositeModule {
    /// The outer-facing module kind (ports of the composite).
    pub kind: ModuleKind,
    /// The inner workflow implementing the composite.
    pub inner: Workflow,
    /// Outer input port → inner (node, input port) it feeds.
    pub input_map: BTreeMap<String, Endpoint>,
    /// Outer output port → inner (node, output port) it exposes.
    pub output_map: BTreeMap<String, Endpoint>,
}

impl CompositeModule {
    /// Check that every mapped endpoint exists in the inner workflow and
    /// every outer port is mapped.
    pub fn check(&self) -> Result<(), ModelError> {
        for port in &self.kind.inputs {
            let ep = self.input_map.get(&port.name).ok_or_else(|| {
                ModelError::BadCompositeMapping(format!("input '{}' unmapped", port.name))
            })?;
            if !self.inner.nodes.contains_key(&ep.node) {
                return Err(ModelError::BadCompositeMapping(format!(
                    "input '{}' maps to missing inner node {}",
                    port.name, ep.node
                )));
            }
        }
        for port in &self.kind.outputs {
            let ep = self.output_map.get(&port.name).ok_or_else(|| {
                ModelError::BadCompositeMapping(format!("output '{}' unmapped", port.name))
            })?;
            if !self.inner.nodes.contains_key(&ep.node) {
                return Err(ModelError::BadCompositeMapping(format!(
                    "output '{}' maps to missing inner node {}",
                    port.name, ep.node
                )));
            }
        }
        Ok(())
    }
}

/// Result of flattening: the expanded workflow plus, for every node that came
/// out of a composite, the originating (outer composite node, composite kind
/// name, inner node id).
#[derive(Debug, Clone, PartialEq)]
pub struct Flattened {
    /// The expanded, composite-free workflow.
    pub workflow: Workflow,
    /// For nodes produced by expansion: flattened node id → provenance of
    /// the expansion.
    pub origin: BTreeMap<NodeId, CompositeOrigin>,
}

/// Where a flattened node came from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompositeOrigin {
    /// The composite instance node in the outer workflow.
    pub outer_node: NodeId,
    /// The composite kind name.
    pub composite: String,
    /// The node id inside the composite's inner workflow.
    pub inner_node: NodeId,
}

/// Expand every node of `wf` whose module kind names a composite in
/// `composites`. One level of expansion per call; call repeatedly (or use
/// [`flatten_fully`]) for nested composites.
pub fn flatten(
    wf: &Workflow,
    composites: &BTreeMap<String, CompositeModule>,
) -> Result<Flattened, ModelError> {
    let mut out = Workflow::new(wf.id, &wf.name);
    let mut origin: BTreeMap<NodeId, CompositeOrigin> = BTreeMap::new();
    // Old plain node -> new node id. Plain nodes KEEP their identifiers
    // (flattening must not renumber untouched nodes: provenance and origin
    // metadata reference them across repeated expansion passes).
    let mut plain: BTreeMap<NodeId, NodeId> = BTreeMap::new();
    // (composite outer node, inner node) -> new node id.
    let mut expanded: BTreeMap<(NodeId, NodeId), NodeId> = BTreeMap::new();

    // First pass: copy plain nodes verbatim, so their ids survive and the
    // id generator is positioned past every retained id.
    for node in wf.nodes.values() {
        if !composites.contains_key(&node.module) {
            out.insert_node(node.clone());
            plain.insert(node.id, node.id);
        }
    }
    // Expansion must not recycle the ids of the composite instances it
    // removes either: retire the whole input id range.
    if let Some(max_id) = wf.nodes.keys().map(|n| n.raw()).max() {
        out.retire_node_ids(max_id);
    }

    for node in wf.nodes.values() {
        match composites.get(&node.module) {
            None => {}
            Some(comp) => {
                comp.check()?;
                for inner in comp.inner.nodes.values() {
                    let id = out.add_node(&inner.module, inner.version);
                    out.set_label(id, &format!("{}/{}", node.label, inner.label))?;
                    for (k, v) in &inner.params {
                        out.set_param(id, k, v.clone())?;
                    }
                    // Parameters set on the composite instance override inner
                    // defaults when names collide (the composite re-exports
                    // its knobs).
                    for (k, v) in &node.params {
                        if comp
                            .inner
                            .nodes
                            .get(&inner.id)
                            .map(|n| n.params.contains_key(k))
                            .unwrap_or(false)
                            || inner.params.contains_key(k)
                        {
                            out.set_param(id, k, v.clone())?;
                        }
                    }
                    expanded.insert((node.id, inner.id), id);
                    origin.insert(
                        id,
                        CompositeOrigin {
                            outer_node: node.id,
                            composite: node.module.clone(),
                            inner_node: inner.id,
                        },
                    );
                }
                // Inner connections.
                for c in comp.inner.conns.values() {
                    let from = expanded[&(node.id, c.from.node)];
                    let to = expanded[&(node.id, c.to.node)];
                    out.connect(
                        Endpoint::new(from, &c.from.port),
                        Endpoint::new(to, &c.to.port),
                    )?;
                }
            }
        }
    }

    // Outer connections, rerouting composite endpoints through the maps.
    for c in wf.conns.values() {
        let from_node = wf.node(c.from.node)?;
        let to_node = wf.node(c.to.node)?;
        let from_ep = match composites.get(&from_node.module) {
            None => Endpoint::new(plain[&c.from.node], &c.from.port),
            Some(comp) => {
                let inner = comp.output_map.get(&c.from.port).ok_or_else(|| {
                    ModelError::BadCompositeMapping(format!(
                        "composite '{}' has no output '{}'",
                        from_node.module, c.from.port
                    ))
                })?;
                Endpoint::new(expanded[&(c.from.node, inner.node)], &inner.port)
            }
        };
        let to_ep = match composites.get(&to_node.module) {
            None => Endpoint::new(plain[&c.to.node], &c.to.port),
            Some(comp) => {
                let inner = comp.input_map.get(&c.to.port).ok_or_else(|| {
                    ModelError::BadCompositeMapping(format!(
                        "composite '{}' has no input '{}'",
                        to_node.module, c.to.port
                    ))
                })?;
                Endpoint::new(expanded[&(c.to.node, inner.node)], &inner.port)
            }
        };
        out.connect(from_ep, to_ep)?;
    }

    Ok(Flattened {
        workflow: out,
        origin,
    })
}

/// Flatten until no composite instances remain (bounded by a depth limit of
/// 32 to catch accidental recursive composites).
pub fn flatten_fully(
    wf: &Workflow,
    composites: &BTreeMap<String, CompositeModule>,
) -> Result<Flattened, ModelError> {
    let mut current = flatten(wf, composites)?;
    for _ in 0..32 {
        let has_composite = current
            .workflow
            .nodes
            .values()
            .any(|n| composites.contains_key(&n.module));
        if !has_composite {
            return Ok(current);
        }
        let next = flatten(&current.workflow, composites)?;
        // Chain origins: a node expanded at level k+1 descends from whatever
        // its level-k ancestor descended from.
        let mut origin = next.origin.clone();
        for (new_id, o) in &next.origin {
            if let Some(prev) = current.origin.get(&o.outer_node) {
                origin.insert(*new_id, prev.clone());
            }
        }
        for (id, o) in &current.origin {
            // Plain-copied nodes keep their old origin if still present.
            if next.workflow.nodes.contains_key(id) && !origin.contains_key(id) {
                origin.insert(*id, o.clone());
            }
        }
        current = Flattened {
            workflow: next.workflow,
            origin,
        };
    }
    Err(ModelError::BadCompositeMapping(
        "composite expansion did not terminate (recursive composite?)".into(),
    ))
}

/// Register a composite's outer kind in a catalog so validation can resolve
/// instances of it before flattening.
pub fn register_composite(catalog: &mut ModuleCatalog, comp: &CompositeModule) {
    catalog.register(comp.kind.clone());
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module::{ModuleKind, PortSpec};
    use crate::types::DataType;
    use crate::WorkflowBuilder;

    /// Composite "HistoPlot" = Histogram -> Plot, exposing input `data`
    /// and output `image`.
    fn histoplot() -> CompositeModule {
        let mut b = WorkflowBuilder::new(100, "histoplot-inner");
        let h = b.add("Histogram");
        let p = b.add("Plot");
        b.connect(h, "table", p, "table");
        b.param(h, "bins", 16i64);
        let inner = b.build();
        let kind = ModuleKind::new("HistoPlot")
            .category("composite")
            .input(PortSpec::required("data", DataType::Grid))
            .output(PortSpec::required("image", DataType::Image));
        let mut input_map = BTreeMap::new();
        input_map.insert("data".to_string(), Endpoint::new(h, "data"));
        let mut output_map = BTreeMap::new();
        output_map.insert("image".to_string(), Endpoint::new(p, "image"));
        CompositeModule {
            kind,
            inner,
            input_map,
            output_map,
        }
    }

    fn composites() -> BTreeMap<String, CompositeModule> {
        let mut m = BTreeMap::new();
        m.insert("HistoPlot".to_string(), histoplot());
        m
    }

    #[test]
    fn composite_check_catches_unmapped_port() {
        let mut c = histoplot();
        c.input_map.clear();
        assert!(matches!(c.check(), Err(ModelError::BadCompositeMapping(_))));
    }

    #[test]
    fn flatten_expands_and_rewires() {
        let mut b = WorkflowBuilder::new(1, "outer");
        let src = b.add("Source");
        let hp = b.add("HistoPlot");
        let save = b.add("Save");
        b.connect(src, "grid", hp, "data");
        b.connect(hp, "image", save, "in");
        let outer = b.build();

        let flat = flatten(&outer, &composites()).unwrap();
        // Source, Histogram, Plot, Save
        assert_eq!(flat.workflow.node_count(), 4);
        assert_eq!(flat.workflow.conn_count(), 3);
        // No composite nodes remain.
        assert!(flat
            .workflow
            .nodes
            .values()
            .all(|n| n.module != "HistoPlot"));
        // Two nodes carry composite origin.
        assert_eq!(flat.origin.len(), 2);
        assert!(flat
            .origin
            .values()
            .all(|o| o.composite == "HistoPlot" && o.outer_node == hp));
        // The chain is connected end to end.
        let topo = flat.workflow.topo_nodes().unwrap();
        let modules: Vec<&str> = topo
            .iter()
            .map(|id| flat.workflow.node(*id).unwrap().module.as_str())
            .collect();
        assert_eq!(modules, vec!["Source", "Histogram", "Plot", "Save"]);
    }

    #[test]
    fn composite_params_propagate_by_name() {
        let mut b = WorkflowBuilder::new(1, "outer");
        let src = b.add("Source");
        let hp = b.add("HistoPlot");
        b.connect(src, "grid", hp, "data");
        b.param(hp, "bins", 99i64);
        let outer = b.build();
        let flat = flatten(&outer, &composites()).unwrap();
        let hist = flat
            .workflow
            .nodes
            .values()
            .find(|n| n.module == "Histogram")
            .unwrap();
        assert_eq!(
            hist.params.get("bins"),
            Some(&crate::module::ParamValue::Int(99))
        );
    }

    #[test]
    fn labels_carry_composite_path() {
        let mut b = WorkflowBuilder::new(1, "outer");
        let src = b.add("Source");
        let hp = b.add_labeled("HistoPlot", "hp1");
        b.connect(src, "grid", hp, "data");
        let flat = flatten(&b.build(), &composites()).unwrap();
        assert!(flat
            .workflow
            .nodes
            .values()
            .any(|n| n.label == "hp1/Histogram"));
    }

    #[test]
    fn flatten_fully_expands_nested_composites() {
        // "DoublePlot" contains a HistoPlot instance — two levels deep.
        let mut b = WorkflowBuilder::new(200, "doubleplot-inner");
        let hp = b.add("HistoPlot");
        let save = b.add("Save");
        b.connect(hp, "image", save, "in");
        let inner = b.build();
        let kind = ModuleKind::new("DoublePlot")
            .category("composite")
            .input(PortSpec::required("data", DataType::Grid))
            .output(PortSpec::required("file", DataType::Bytes));
        let mut input_map = BTreeMap::new();
        input_map.insert("data".to_string(), Endpoint::new(hp, "data"));
        let mut output_map = BTreeMap::new();
        output_map.insert("file".to_string(), Endpoint::new(save, "out"));
        let double = CompositeModule {
            kind,
            inner,
            input_map,
            output_map,
        };
        let mut comps = composites();
        comps.insert("DoublePlot".to_string(), double);

        let mut b = WorkflowBuilder::new(1, "outer");
        let src = b.add("Source");
        let dp = b.add("DoublePlot");
        b.connect(src, "grid", dp, "data");
        let outer = b.build();

        let flat = flatten_fully(&outer, &comps).unwrap();
        // Source + (Histogram + Plot from HistoPlot) + Save
        assert_eq!(flat.workflow.node_count(), 4);
        assert!(flat
            .workflow
            .nodes
            .values()
            .all(|n| !comps.contains_key(&n.module)));
        // The expansion is fully wired end to end.
        let topo = flat.workflow.topo_nodes().unwrap();
        let modules: Vec<&str> = topo
            .iter()
            .map(|id| flat.workflow.node(*id).unwrap().module.as_str())
            .collect();
        assert_eq!(modules, vec!["Source", "Histogram", "Plot", "Save"]);
        // Every expanded node has composite origin metadata.
        assert_eq!(flat.origin.len(), 3);
    }

    #[test]
    fn recursive_composites_terminate_with_error() {
        // A composite whose inner workflow instantiates itself.
        let mut b = WorkflowBuilder::new(300, "loop-inner");
        let selfref = b.add("Ouroboros");
        let _ = selfref;
        let inner = b.build();
        let kind = ModuleKind::new("Ouroboros").category("composite");
        let comp = CompositeModule {
            kind,
            inner,
            input_map: BTreeMap::new(),
            output_map: BTreeMap::new(),
        };
        let mut comps = BTreeMap::new();
        comps.insert("Ouroboros".to_string(), comp);
        let mut b = WorkflowBuilder::new(1, "outer");
        b.add("Ouroboros");
        let err = flatten_fully(&b.build(), &comps).unwrap_err();
        assert!(err.to_string().contains("did not terminate"));
    }

    #[test]
    fn register_composite_makes_instances_validate() {
        use crate::validate::validate;
        let comp = histoplot();
        let mut catalog = ModuleCatalog::new();
        // Register the leaf kinds the outer workflow uses.
        catalog
            .register(ModuleKind::new("Source").output(PortSpec::required("grid", DataType::Grid)));
        let mut b = WorkflowBuilder::new(1, "outer");
        let src = b.add("Source");
        let hp = b.add("HistoPlot");
        b.connect(src, "grid", hp, "data");
        let wf = b.build();
        // Before registration the composite kind is unknown.
        assert!(!validate(&wf, &catalog).is_valid());
        register_composite(&mut catalog, &comp);
        let report = validate(&wf, &catalog);
        assert!(report.is_valid(), "{}", report.render());
    }

    #[test]
    fn flatten_fully_handles_no_composites() {
        let mut b = WorkflowBuilder::new(1, "plain");
        let a = b.add("A");
        let c = b.add("B");
        b.connect(a, "out", c, "in");
        let wf = b.build();
        let flat = flatten_fully(&wf, &BTreeMap::new()).unwrap();
        assert_eq!(flat.workflow.node_count(), 2);
        assert!(flat.origin.is_empty());
    }
}
