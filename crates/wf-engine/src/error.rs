//! Typed errors for workflow execution.

use std::fmt;
use wf_model::{ModelError, NodeId};

/// Errors raised while executing a workflow.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecError {
    /// The specification failed validation; run `validate` for details.
    InvalidWorkflow(String),
    /// No executor is registered for a module kind.
    NoExecutor {
        /// The unresolvable `name@version`.
        identity: String,
    },
    /// A required input port received no value at runtime.
    MissingInput {
        /// Node whose input is missing.
        node: NodeId,
        /// Port name.
        port: String,
    },
    /// A module body failed.
    ModuleFailed {
        /// Failing node.
        node: NodeId,
        /// Module identity.
        identity: String,
        /// Failure message from the module body.
        message: String,
    },
    /// A module received a value of the wrong type (stdlib-level check).
    BadInputType {
        /// Expected description.
        expected: String,
        /// What arrived instead.
        got: String,
    },
    /// A parameter was missing or had the wrong type.
    BadParam {
        /// Parameter name.
        name: String,
        /// What was wrong.
        message: String,
    },
    /// An underlying model error.
    Model(String),
    /// A module declared an output port it then failed to produce.
    MissingOutput {
        /// Node at fault.
        node: NodeId,
        /// The undelivered port.
        port: String,
    },
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::InvalidWorkflow(msg) => write!(f, "invalid workflow: {msg}"),
            ExecError::NoExecutor { identity } => {
                write!(f, "no executor registered for {identity}")
            }
            ExecError::MissingInput { node, port } => {
                write!(f, "node {node}: required input '{port}' has no value")
            }
            ExecError::ModuleFailed {
                node,
                identity,
                message,
            } => write!(f, "node {node} ({identity}) failed: {message}"),
            ExecError::BadInputType { expected, got } => {
                write!(f, "bad input type: expected {expected}, got {got}")
            }
            ExecError::BadParam { name, message } => {
                write!(f, "bad parameter '{name}': {message}")
            }
            ExecError::Model(msg) => write!(f, "model error: {msg}"),
            ExecError::MissingOutput { node, port } => {
                write!(f, "node {node}: module did not produce output '{port}'")
            }
        }
    }
}

impl std::error::Error for ExecError {}

impl From<ModelError> for ExecError {
    fn from(e: ModelError) -> Self {
        ExecError::Model(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        let e = ExecError::ModuleFailed {
            node: NodeId(2),
            identity: "AlignWarp@1".into(),
            message: "reference grid is empty".into(),
        };
        let s = e.to_string();
        assert!(s.contains("n2") && s.contains("AlignWarp@1") && s.contains("empty"));
    }

    #[test]
    fn model_errors_convert() {
        let e: ExecError = ModelError::UnknownNode(NodeId(1)).into();
        assert!(matches!(e, ExecError::Model(_)));
    }
}
