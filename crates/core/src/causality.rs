//! The causality graph: "the dependency relationships among data products
//! and the processes that generate them" (§2.2).
//!
//! Nodes are data artifacts and module runs; edges point in *dataflow
//! direction* (cause → effect): an artifact has an edge to every run that
//! used it, and a run has an edge to every artifact it generated.
//!
//! * **upstream closure** (walk edges backwards) = lineage: "what was the
//!   process used to create this data product?"
//! * **downstream closure** (walk edges forwards) = impact: "in the event
//!   that the CT scanner used to generate `head.120.vtk` is found to be
//!   defective, results that depend on the scan can be invalidated."
//! * **data–data dependencies** are obtained by composing the two edge
//!   kinds and skipping the runs.

use crate::model::{ArtifactHash, RetrospectiveProvenance};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use wf_model::graph::Digraph;
use wf_model::NodeId;

/// A node of the causality graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ProvNodeRef {
    /// A data artifact, by content hash.
    Artifact(ArtifactHash),
    /// A module run, by node id (unique within one execution).
    Run(NodeId),
}

impl fmt::Display for ProvNodeRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProvNodeRef::Artifact(h) => write!(f, "artifact:{h:016x}"),
            ProvNodeRef::Run(n) => write!(f, "run:{n}"),
        }
    }
}

/// The causality graph of one execution.
#[derive(Debug, Clone)]
pub struct CausalityGraph {
    graph: Digraph,
    nodes: Vec<ProvNodeRef>,
    index: BTreeMap<ProvNodeRef, usize>,
    /// Labels for runs (module identities), for rendering.
    run_labels: BTreeMap<NodeId, String>,
}

impl CausalityGraph {
    /// Build from retrospective provenance captured at `Fine` level (input
    /// bindings present). Coarse provenance yields a graph with generated
    /// edges only — see [`CausalityGraph::from_retrospective_with_spec`].
    pub fn from_retrospective(retro: &RetrospectiveProvenance) -> Self {
        Self::build(retro, None)
    }

    /// Build from coarse provenance plus the specification: input edges are
    /// inferred by matching each connection's upstream output artifact —
    /// causality "can be inferred from both prospective and retrospective
    /// provenance" (§2.2).
    pub fn from_retrospective_with_spec(
        retro: &RetrospectiveProvenance,
        spec: &wf_model::Workflow,
    ) -> Self {
        Self::build(retro, Some(spec))
    }

    fn build(retro: &RetrospectiveProvenance, spec: Option<&wf_model::Workflow>) -> Self {
        let mut nodes: Vec<ProvNodeRef> = Vec::new();
        let mut index: BTreeMap<ProvNodeRef, usize> = BTreeMap::new();
        let mut run_labels = BTreeMap::new();
        let mut intern = |r: ProvNodeRef, nodes: &mut Vec<ProvNodeRef>| -> usize {
            *index.entry(r).or_insert_with(|| {
                nodes.push(r);
                nodes.len() - 1
            })
        };

        // Pre-intern all nodes.
        let mut edges: Vec<(usize, usize)> = Vec::new();
        for run in &retro.runs {
            let r = intern(ProvNodeRef::Run(run.node), &mut nodes);
            run_labels.insert(run.node, run.identity.clone());
            for (_, h) in &run.outputs {
                let a = intern(ProvNodeRef::Artifact(*h), &mut nodes);
                edges.push((r, a));
            }
            for (_, h) in &run.inputs {
                let a = intern(ProvNodeRef::Artifact(*h), &mut nodes);
                edges.push((a, r));
            }
        }
        // Inferred input edges from the specification (coarse capture).
        if let Some(wf) = spec {
            for run in &retro.runs {
                for conn in wf.inputs_of(run.node) {
                    if let Some(up) = retro.run_of(conn.from.node) {
                        if let Some((_, h)) = up.outputs.iter().find(|(p, _)| *p == conn.from.port)
                        {
                            let a = intern(ProvNodeRef::Artifact(*h), &mut nodes);
                            let r = intern(ProvNodeRef::Run(run.node), &mut nodes);
                            edges.push((a, r));
                        }
                    }
                }
            }
        }

        let mut graph = Digraph::with_nodes(nodes.len());
        edges.sort_unstable();
        edges.dedup();
        for (u, v) in edges {
            graph.add_edge(u, v);
        }
        Self {
            graph,
            nodes,
            index,
            run_labels,
        }
    }

    /// Number of nodes (artifacts + runs).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of dependency edges.
    pub fn edge_count(&self) -> usize {
        self.graph.edge_count()
    }

    /// All nodes.
    pub fn nodes(&self) -> &[ProvNodeRef] {
        &self.nodes
    }

    /// The module identity of a run node, if known.
    pub fn run_label(&self, node: NodeId) -> Option<&str> {
        self.run_labels.get(&node).map(String::as_str)
    }

    /// Direct causes of a node (immediate predecessors).
    pub fn causes(&self, of: ProvNodeRef) -> Vec<ProvNodeRef> {
        match self.index.get(&of) {
            None => Vec::new(),
            Some(&i) => self
                .graph
                .predecessors(i)
                .iter()
                .map(|&p| self.nodes[p])
                .collect(),
        }
    }

    /// Direct effects of a node (immediate successors).
    pub fn effects(&self, of: ProvNodeRef) -> Vec<ProvNodeRef> {
        match self.index.get(&of) {
            None => Vec::new(),
            Some(&i) => self
                .graph
                .successors(i)
                .iter()
                .map(|&s| self.nodes[s])
                .collect(),
        }
    }

    /// Upstream closure (lineage) of a node, optionally depth-bounded,
    /// excluding the node itself. Depth counts graph edges (an
    /// artifact→run→artifact hop is depth 2).
    pub fn upstream(&self, of: ProvNodeRef, max_depth: Option<usize>) -> Vec<ProvNodeRef> {
        self.closure(of, true, max_depth)
    }

    /// Downstream closure (impact set) of a node, excluding the node itself.
    pub fn downstream(&self, of: ProvNodeRef, max_depth: Option<usize>) -> Vec<ProvNodeRef> {
        self.closure(of, false, max_depth)
    }

    fn closure(
        &self,
        of: ProvNodeRef,
        reverse: bool,
        max_depth: Option<usize>,
    ) -> Vec<ProvNodeRef> {
        let Some(&start) = self.index.get(&of) else {
            return Vec::new();
        };
        let depths = self.graph.bfs_depths(start, reverse, max_depth);
        let mut out: Vec<ProvNodeRef> = depths
            .iter()
            .enumerate()
            .filter(|&(i, d)| d.is_some() && i != start)
            .map(|(i, _)| self.nodes[i])
            .collect();
        out.sort();
        out
    }

    /// Data–data dependencies: every artifact in the upstream closure of
    /// `artifact` ("were two data products derived from the same raw
    /// data?" reduces to intersecting these sets).
    pub fn data_dependencies(&self, artifact: ArtifactHash) -> BTreeSet<ArtifactHash> {
        self.upstream(ProvNodeRef::Artifact(artifact), None)
            .into_iter()
            .filter_map(|n| match n {
                ProvNodeRef::Artifact(h) => Some(h),
                ProvNodeRef::Run(_) => None,
            })
            .collect()
    }

    /// Was `product` (transitively) derived from `source`?
    pub fn derived_from(&self, product: ArtifactHash, source: ArtifactHash) -> bool {
        self.data_dependencies(product).contains(&source)
    }

    /// Do two products share any raw-data ancestor? Returns the shared
    /// ancestors.
    pub fn common_ancestors(&self, a: ArtifactHash, b: ArtifactHash) -> BTreeSet<ArtifactHash> {
        let da = self.data_dependencies(a);
        let db = self.data_dependencies(b);
        da.intersection(&db).copied().collect()
    }

    /// The invalidation set of an artifact: every artifact transitively
    /// derived from it (the defective-scanner query of §2.2).
    pub fn invalidated_by(&self, artifact: ArtifactHash) -> BTreeSet<ArtifactHash> {
        self.downstream(ProvNodeRef::Artifact(artifact), None)
            .into_iter()
            .filter_map(|n| match n {
                ProvNodeRef::Artifact(h) => Some(h),
                ProvNodeRef::Run(_) => None,
            })
            .collect()
    }

    /// The reproduction slice of an artifact: the module runs (as node ids)
    /// that must re-execute to re-derive it, in dependency order.
    pub fn reproduction_slice(&self, artifact: ArtifactHash) -> Vec<NodeId> {
        let mut runs: BTreeSet<NodeId> = self
            .upstream(ProvNodeRef::Artifact(artifact), None)
            .into_iter()
            .filter_map(|n| match n {
                ProvNodeRef::Run(id) => Some(id),
                ProvNodeRef::Artifact(_) => None,
            })
            .collect();
        // The direct generator is upstream at depth 1 and included above;
        // also include generators reachable at depth 0? (none — artifact
        // itself is excluded). Order by topological order of the graph.
        let order = self
            .graph
            .topo_order()
            .unwrap_or_else(|| (0..self.nodes.len()).collect());
        let mut slice = Vec::with_capacity(runs.len());
        for i in order {
            if let ProvNodeRef::Run(id) = self.nodes[i] {
                if runs.remove(&id) {
                    slice.push(id);
                }
            }
        }
        slice
    }

    /// All edges as (cause, effect) pairs.
    pub fn edge_list(&self) -> Vec<(ProvNodeRef, ProvNodeRef)> {
        let mut out = Vec::with_capacity(self.graph.edge_count());
        for (i, n) in self.nodes.iter().enumerate() {
            for &j in self.graph.successors(i) {
                out.push((*n, self.nodes[j]));
            }
        }
        out
    }

    /// Render as Graphviz DOT (used by examples and docs).
    pub fn render_dot(&self) -> String {
        let mut s = String::from("digraph causality {\n  rankdir=LR;\n");
        for n in &self.nodes {
            match n {
                ProvNodeRef::Artifact(h) => {
                    s.push_str(&format!(
                        "  \"a{h:x}\" [shape=ellipse, label=\"{h:08x}\"];\n"
                    ));
                }
                ProvNodeRef::Run(id) => {
                    let label = self
                        .run_labels
                        .get(id)
                        .cloned()
                        .unwrap_or_else(|| id.to_string());
                    s.push_str(&format!("  \"r{id}\" [shape=box, label=\"{label}\"];\n"));
                }
            }
        }
        for (i, n) in self.nodes.iter().enumerate() {
            let from = match n {
                ProvNodeRef::Artifact(h) => format!("a{h:x}"),
                ProvNodeRef::Run(id) => format!("r{id}"),
            };
            for &j in self.graph.successors(i) {
                let to = match &self.nodes[j] {
                    ProvNodeRef::Artifact(h) => format!("a{h:x}"),
                    ProvNodeRef::Run(id) => format!("r{id}"),
                };
                s.push_str(&format!("  \"{from}\" -> \"{to}\";\n"));
            }
        }
        s.push_str("}\n");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capture::{CaptureLevel, ProvenanceCapture};
    use wf_engine::synth::figure1_workflow;
    use wf_engine::{standard_registry, Executor};

    fn fig1() -> (RetrospectiveProvenance, wf_engine::synth::Figure1Nodes) {
        let (wf, nodes) = figure1_workflow(1);
        let exec = Executor::new(standard_registry());
        let mut cap = ProvenanceCapture::new(CaptureLevel::Fine);
        let r = exec.run_observed(&wf, &mut cap).unwrap();
        (cap.take(r.exec).unwrap(), nodes)
    }

    #[test]
    fn graph_has_runs_and_artifacts() {
        let (retro, _) = fig1();
        let g = CausalityGraph::from_retrospective(&retro);
        assert_eq!(
            g.nodes()
                .iter()
                .filter(|n| matches!(n, ProvNodeRef::Run(_)))
                .count(),
            8
        );
        assert!(g.edge_count() >= 8 + 7, "outputs + input bindings");
    }

    #[test]
    fn lineage_of_histogram_file_excludes_iso_branch() {
        let (retro, nodes) = fig1();
        let g = CausalityGraph::from_retrospective(&retro);
        let hist_file = retro.produced(nodes.save_hist, "file").unwrap().hash;
        let up = g.upstream(ProvNodeRef::Artifact(hist_file), None);
        let runs: BTreeSet<NodeId> = up
            .iter()
            .filter_map(|n| match n {
                ProvNodeRef::Run(id) => Some(*id),
                _ => None,
            })
            .collect();
        assert!(runs.contains(&nodes.load));
        assert!(runs.contains(&nodes.hist));
        assert!(runs.contains(&nodes.plot));
        assert!(runs.contains(&nodes.save_hist));
        assert!(!runs.contains(&nodes.iso), "iso branch is not a cause");
        assert!(!runs.contains(&nodes.render));
    }

    #[test]
    fn defective_scanner_invalidates_both_products() {
        let (retro, nodes) = fig1();
        let g = CausalityGraph::from_retrospective(&retro);
        let scan = retro.produced(nodes.load, "grid").unwrap().hash;
        let invalid = g.invalidated_by(scan);
        let hist_file = retro.produced(nodes.save_hist, "file").unwrap().hash;
        let iso_file = retro.produced(nodes.save_iso, "file").unwrap().hash;
        assert!(invalid.contains(&hist_file));
        assert!(invalid.contains(&iso_file));
    }

    #[test]
    fn common_ancestors_answers_same_raw_data_question() {
        let (retro, nodes) = fig1();
        let g = CausalityGraph::from_retrospective(&retro);
        let scan = retro.produced(nodes.load, "grid").unwrap().hash;
        let hist_file = retro.produced(nodes.save_hist, "file").unwrap().hash;
        let iso_file = retro.produced(nodes.save_iso, "file").unwrap().hash;
        let shared = g.common_ancestors(hist_file, iso_file);
        assert!(shared.contains(&scan), "both derive from the CT scan");
        assert!(g.derived_from(hist_file, scan));
        assert!(!g.derived_from(scan, hist_file));
    }

    #[test]
    fn depth_bound_limits_lineage() {
        let (retro, nodes) = fig1();
        let g = CausalityGraph::from_retrospective(&retro);
        let hist_file = retro.produced(nodes.save_hist, "file").unwrap().hash;
        // Depth 1 reaches only the SaveFile run.
        let d1 = g.upstream(ProvNodeRef::Artifact(hist_file), Some(1));
        assert_eq!(d1, vec![ProvNodeRef::Run(nodes.save_hist)]);
        let all = g.upstream(ProvNodeRef::Artifact(hist_file), None);
        assert!(all.len() > d1.len());
    }

    #[test]
    fn reproduction_slice_is_in_dependency_order() {
        let (retro, nodes) = fig1();
        let g = CausalityGraph::from_retrospective(&retro);
        let iso_file = retro.produced(nodes.save_iso, "file").unwrap().hash;
        let slice = g.reproduction_slice(iso_file);
        let pos = |id: NodeId| slice.iter().position(|&x| x == id).unwrap();
        assert!(pos(nodes.load) < pos(nodes.iso));
        assert!(pos(nodes.iso) < pos(nodes.smooth));
        assert!(pos(nodes.smooth) < pos(nodes.render));
        assert!(pos(nodes.render) < pos(nodes.save_iso));
        assert!(!slice.contains(&nodes.hist), "histogram branch not needed");
    }

    #[test]
    fn coarse_provenance_plus_spec_recovers_dependencies() {
        let (wf, nodes) = figure1_workflow(1);
        let exec = Executor::new(standard_registry());
        let mut cap = ProvenanceCapture::new(CaptureLevel::Coarse);
        let r = exec.run_observed(&wf, &mut cap).unwrap();
        let retro = cap.take(r.exec).unwrap();
        // Without the spec: no input edges, so lineage is shallow.
        let g0 = CausalityGraph::from_retrospective(&retro);
        let hist_file = retro.produced(nodes.save_hist, "file").unwrap().hash;
        let up0 = g0.upstream(ProvNodeRef::Artifact(hist_file), None);
        // With the spec: full lineage recovered.
        let g1 = CausalityGraph::from_retrospective_with_spec(&retro, &wf);
        let up1 = g1.upstream(ProvNodeRef::Artifact(hist_file), None);
        assert!(up1.len() > up0.len());
        assert!(up1.contains(&ProvNodeRef::Run(nodes.load)));
    }

    #[test]
    fn unknown_node_queries_are_empty() {
        let (retro, _) = fig1();
        let g = CausalityGraph::from_retrospective(&retro);
        assert!(g.upstream(ProvNodeRef::Artifact(0xdead), None).is_empty());
        assert!(g.causes(ProvNodeRef::Run(NodeId(999))).is_empty());
    }

    #[test]
    fn dot_rendering_contains_nodes_and_edges() {
        let (retro, _) = fig1();
        let g = CausalityGraph::from_retrospective(&retro);
        let dot = g.render_dot();
        assert!(dot.starts_with("digraph causality"));
        assert!(dot.contains("LoadVolume@1"));
        assert!(dot.contains("->"));
    }
}
