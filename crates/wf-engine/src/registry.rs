//! The module-executor registry: binding module kinds to Rust
//! implementations.

use crate::error::ExecError;
use crate::policy::RetryPolicy;
use crate::value::Value;
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;
use wf_model::{ModuleCatalog, ModuleKind, NodeId, ParamValue};

/// Everything a module body sees when it runs: its effective parameters
/// (instance bindings merged over kind defaults) and the values bound to its
/// input ports.
#[derive(Debug, Clone)]
pub struct ExecInput {
    /// The node being executed (for error reporting).
    pub node: NodeId,
    /// Effective parameters.
    pub params: BTreeMap<String, ParamValue>,
    /// Values on input ports.
    pub inputs: BTreeMap<String, Value>,
}

impl ExecInput {
    /// Required input port; error if absent.
    pub fn input(&self, port: &str) -> Result<&Value, ExecError> {
        self.inputs
            .get(port)
            .ok_or_else(|| ExecError::MissingInput {
                node: self.node,
                port: port.to_string(),
            })
    }

    /// Optional input port.
    pub fn input_opt(&self, port: &str) -> Option<&Value> {
        self.inputs.get(port)
    }

    /// Required grid input.
    pub fn grid(&self, port: &str) -> Result<&crate::value::Grid, ExecError> {
        let v = self.input(port)?;
        v.as_grid().ok_or_else(|| ExecError::BadInputType {
            expected: format!("grid on port '{port}'"),
            got: v.dtype().to_string(),
        })
    }

    /// Required table input.
    pub fn table(&self, port: &str) -> Result<&crate::value::Table, ExecError> {
        let v = self.input(port)?;
        v.as_table().ok_or_else(|| ExecError::BadInputType {
            expected: format!("table on port '{port}'"),
            got: v.dtype().to_string(),
        })
    }

    /// Required mesh input.
    pub fn mesh(&self, port: &str) -> Result<&crate::value::Mesh, ExecError> {
        let v = self.input(port)?;
        v.as_mesh().ok_or_else(|| ExecError::BadInputType {
            expected: format!("mesh on port '{port}'"),
            got: v.dtype().to_string(),
        })
    }

    /// Required image input.
    pub fn image(&self, port: &str) -> Result<&crate::value::Image, ExecError> {
        let v = self.input(port)?;
        v.as_image().ok_or_else(|| ExecError::BadInputType {
            expected: format!("image on port '{port}'"),
            got: v.dtype().to_string(),
        })
    }

    /// Integer parameter (must exist — kinds declare defaults).
    pub fn param_i64(&self, name: &str) -> Result<i64, ExecError> {
        self.params
            .get(name)
            .and_then(ParamValue::as_i64)
            .ok_or_else(|| ExecError::BadParam {
                name: name.to_string(),
                message: "expected an integer".into(),
            })
    }

    /// Float parameter (integers widen).
    pub fn param_f64(&self, name: &str) -> Result<f64, ExecError> {
        self.params
            .get(name)
            .and_then(ParamValue::as_f64)
            .ok_or_else(|| ExecError::BadParam {
                name: name.to_string(),
                message: "expected a number".into(),
            })
    }

    /// Text parameter.
    pub fn param_text(&self, name: &str) -> Result<&str, ExecError> {
        self.params
            .get(name)
            .and_then(ParamValue::as_text)
            .ok_or_else(|| ExecError::BadParam {
                name: name.to_string(),
                message: "expected text".into(),
            })
    }

    /// Boolean parameter.
    pub fn param_bool(&self, name: &str) -> Result<bool, ExecError> {
        self.params
            .get(name)
            .and_then(ParamValue::as_bool)
            .ok_or_else(|| ExecError::BadParam {
                name: name.to_string(),
                message: "expected a boolean".into(),
            })
    }
}

/// Output map produced by a module body: port name → value.
pub type Outputs = BTreeMap<String, Value>;

/// A module implementation.
pub trait ModuleExec: Send + Sync {
    /// Run the module body.
    fn execute(&self, input: &ExecInput) -> Result<Outputs, ExecError>;
}

impl<F> ModuleExec for F
where
    F: Fn(&ExecInput) -> Result<Outputs, ExecError> + Send + Sync,
{
    fn execute(&self, input: &ExecInput) -> Result<Outputs, ExecError> {
        self(input)
    }
}

/// Registry pairing a [`ModuleCatalog`] (the *declarations*) with executor
/// implementations (the *bodies*), keyed by kind identity `name@version`.
#[derive(Clone)]
pub struct ModuleRegistry {
    catalog: ModuleCatalog,
    impls: HashMap<String, Arc<dyn ModuleExec>>,
    retry_hints: HashMap<String, RetryPolicy>,
}

impl std::fmt::Debug for ModuleRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ModuleRegistry")
            .field("kinds", &self.catalog.len())
            .field("impls", &self.impls.len())
            .field("retry_hints", &self.retry_hints.len())
            .finish()
    }
}

impl Default for ModuleRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl ModuleRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self {
            catalog: ModuleCatalog::new(),
            impls: HashMap::new(),
            retry_hints: HashMap::new(),
        }
    }

    /// Declare a default retry policy for every instance of a module kind
    /// (e.g. a remote-fetch module known to be flaky). Node-level overrides
    /// in [`crate::ExecPolicy`] take precedence; the workflow-wide policy is
    /// the fallback.
    pub fn declare_retry(&mut self, identity: &str, policy: RetryPolicy) {
        self.retry_hints.insert(identity.to_string(), policy);
    }

    /// The declared retry hint for a kind identity, if any.
    pub fn retry_hint(&self, identity: &str) -> Option<&RetryPolicy> {
        self.retry_hints.get(identity)
    }

    /// Register a kind together with its implementation.
    pub fn register(&mut self, kind: ModuleKind, body: impl ModuleExec + 'static) {
        let identity = kind.identity();
        self.catalog.register(kind);
        self.impls.insert(identity, Arc::new(body));
    }

    /// Register a declaration only (validation without execution — e.g.
    /// composite kinds that are flattened away before running).
    pub fn declare(&mut self, kind: ModuleKind) {
        self.catalog.register(kind);
    }

    /// The catalog of declared kinds.
    pub fn catalog(&self) -> &ModuleCatalog {
        &self.catalog
    }

    /// Resolve an implementation by identity.
    pub fn executor(&self, identity: &str) -> Result<Arc<dyn ModuleExec>, ExecError> {
        self.impls
            .get(identity)
            .cloned()
            .ok_or_else(|| ExecError::NoExecutor {
                identity: identity.to_string(),
            })
    }

    /// Effective parameters for a node: kind defaults overlaid with the
    /// node's bindings.
    pub fn effective_params(
        &self,
        module: &str,
        version: u32,
        bindings: &BTreeMap<String, ParamValue>,
    ) -> Result<BTreeMap<String, ParamValue>, ExecError> {
        let kind = self
            .catalog
            .get(module, version)
            .map_err(|e| ExecError::Model(e.to_string()))?;
        let mut params: BTreeMap<String, ParamValue> = kind
            .params
            .iter()
            .map(|p| (p.name.clone(), p.default.clone()))
            .collect();
        for (k, v) in bindings {
            params.insert(k.clone(), v.clone());
        }
        Ok(params)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wf_model::{ParamSpec, PortSpec};

    fn double_kind() -> ModuleKind {
        ModuleKind::new("Double")
            .input(PortSpec::required("in", wf_model::DataType::Integer))
            .output(PortSpec::required("out", wf_model::DataType::Integer))
            .param(ParamSpec::new("offset", 0i64))
    }

    fn registry() -> ModuleRegistry {
        let mut r = ModuleRegistry::new();
        r.register(double_kind(), |input: &ExecInput| {
            let v = input.input("in")?.as_i64().unwrap_or(0);
            let off = input.param_i64("offset")?;
            let mut out = Outputs::new();
            out.insert("out".into(), Value::Int(v * 2 + off));
            Ok(out)
        });
        r
    }

    #[test]
    fn registered_body_executes() {
        let r = registry();
        let body = r.executor("Double@1").unwrap();
        let mut inputs = BTreeMap::new();
        inputs.insert("in".to_string(), Value::Int(21));
        let input = ExecInput {
            node: NodeId(0),
            params: r.effective_params("Double", 1, &BTreeMap::new()).unwrap(),
            inputs,
        };
        let out = body.execute(&input).unwrap();
        assert_eq!(out.get("out"), Some(&Value::Int(42)));
    }

    #[test]
    fn effective_params_merge_defaults_and_bindings() {
        let r = registry();
        let mut b = BTreeMap::new();
        b.insert("offset".to_string(), ParamValue::Int(5));
        let p = r.effective_params("Double", 1, &b).unwrap();
        assert_eq!(p.get("offset"), Some(&ParamValue::Int(5)));
        let p = r.effective_params("Double", 1, &BTreeMap::new()).unwrap();
        assert_eq!(p.get("offset"), Some(&ParamValue::Int(0)));
    }

    #[test]
    fn missing_executor_is_an_error() {
        let r = registry();
        assert!(matches!(
            r.executor("Nope@1"),
            Err(ExecError::NoExecutor { .. })
        ));
    }

    #[test]
    fn exec_input_typed_accessors_enforce_types() {
        let mut inputs = BTreeMap::new();
        inputs.insert("g".to_string(), Value::Int(1));
        let input = ExecInput {
            node: NodeId(3),
            params: BTreeMap::new(),
            inputs,
        };
        assert!(matches!(
            input.grid("g"),
            Err(ExecError::BadInputType { .. })
        ));
        assert!(matches!(
            input.input("missing"),
            Err(ExecError::MissingInput { .. })
        ));
        assert!(matches!(
            input.param_i64("absent"),
            Err(ExecError::BadParam { .. })
        ));
    }

    #[test]
    fn declare_without_body_resolves_in_catalog_only() {
        let mut r = ModuleRegistry::new();
        r.declare(double_kind());
        assert!(r.catalog().get("Double", 1).is_ok());
        assert!(r.executor("Double@1").is_err());
    }
}
