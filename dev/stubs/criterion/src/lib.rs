//! Offline typecheck stub for `criterion` (resolution placeholder only).
