//! Scalable exploration of parameter spaces (§2.3): sweep the isovalue of
//! a visualization pipeline, let provenance-based caching skip the shared
//! upstream work, and use provenance analytics to see where the time went.
//!
//! Run with: `cargo run --example parameter_sweep`

use provenance_workflows::engine::sweep::{run_sweep, SweepAxis};
use provenance_workflows::prelude::*;
use provenance_workflows::provenance::analytics;

fn main() {
    // load -> smooth -> isosurface: the expensive prefix is shared by
    // every configuration of the sweep.
    let mut b = WorkflowBuilder::new(1, "iso-sweep");
    let load = b.add("LoadVolume");
    b.param(load, "nx", 20i64);
    b.param(load, "ny", 20i64);
    b.param(load, "nz", 20i64);
    let smooth = b.add("SmoothGrid");
    b.param(smooth, "iterations", 3i64);
    let iso = b.add("Isosurface");
    b.connect(load, "grid", smooth, "data")
        .connect(smooth, "smoothed", iso, "data");
    let wf = b.build();

    let n = 12;
    let axes = vec![SweepAxis::new(
        iso,
        "isovalue",
        (0..n)
            .map(|i| (0.1 + 0.8 * i as f64 / n as f64).into())
            .collect(),
    )];

    // --- without caching -----------------------------------------------------
    let plain = Executor::new(standard_registry());
    let t0 = std::time::Instant::now();
    let uncached = run_sweep(&plain, &wf, &axes).expect("sweep runs");
    let uncached_ms = t0.elapsed().as_secs_f64() * 1e3;

    // --- with provenance-based caching --------------------------------------
    let cached_exec = Executor::new(standard_registry()).with_cache(4096);
    let t0 = std::time::Instant::now();
    let cached = run_sweep(&cached_exec, &wf, &axes).expect("sweep runs");
    let cached_ms = t0.elapsed().as_secs_f64() * 1e3;

    println!("== sweep of {n} isovalues over a 3-stage pipeline ==");
    println!(
        "without cache: {} module runs executed in {uncached_ms:.0} ms",
        uncached.total_module_runs - uncached.cached_module_runs
    );
    println!(
        "with cache:    {} module runs executed in {cached_ms:.0} ms ({} served from cache, {:.0}% hit rate)",
        cached.total_module_runs - cached.cached_module_runs,
        cached.cached_module_runs,
        cached.cache_ratio() * 100.0
    );
    assert!(cached.cached_module_runs > 0);

    // --- every configuration is a real, distinct result ----------------------
    println!("== results ==");
    for p in cached.points.iter().take(4) {
        let mesh = p.result.output(iso, "mesh").expect("mesh produced");
        println!("  {}: {}", p, mesh);
    }
    println!("  … {} configurations total", cached.points.len());
    let distinct: std::collections::BTreeSet<u64> = cached
        .points
        .iter()
        .map(|p| p.result.output(iso, "mesh").expect("mesh").content_hash())
        .collect();
    assert_eq!(distinct.len(), n, "each isovalue yields a distinct mesh");

    // --- provenance analytics on one configuration ---------------------------
    let mut cap = ProvenanceCapture::new(CaptureLevel::Fine);
    plain.run_observed(&wf, &mut cap).expect("runs");
    let retro = cap.finish_all().pop().expect("captured");
    println!("== where does one configuration spend its time? ==");
    print!("{}", analytics::profile(&retro).render());
}
