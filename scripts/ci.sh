#!/usr/bin/env bash
# The full CI gate, runnable locally: build, test, lint, format.
# Usage: scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test"
cargo test -q --workspace

echo "==> telemetry smoke: trace a demo run, validate the Chrome trace"
SMOKE_DIR="$(mktemp -d)"
trap 'rm -rf "$SMOKE_DIR"' EXIT
./target/release/provctl demo fig1 "$SMOKE_DIR/wf.json"
./target/release/provctl trace "$SMOKE_DIR/wf.json" "$SMOKE_DIR/trace.json" \
    "spans=$SMOKE_DIR/spans.jsonl" threads=4
./target/release/provctl tracecheck "$SMOKE_DIR/trace.json"
./target/release/provctl metrics "$SMOKE_DIR/wf.json" | grep -q "wf_runs_started_total 1"

echo "==> cargo clippy"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "CI gate passed."
