//! # wf-engine — dataflow workflow execution engine
//!
//! Executes [`wf_model::Workflow`] specifications under the dataflow model
//! the tutorial describes (§2.1): "the execution order of workflow modules
//! is determined by the flow of data through the workflow".
//!
//! The engine is *instrumented for provenance* (§2.2): every run emits a
//! stream of [`event::EngineEvent`]s through the [`event::ExecObserver`]
//! trait; `prov-core` turns that stream into retrospective provenance.
//!
//! Contents:
//!
//! * [`value`] — runtime values (scalars, grids, tables, meshes, images)
//!   with stable content hashing for artifact identity,
//! * [`registry`] — module-executor registry,
//! * [`stdlib`] — the builtin scientific module library (everything
//!   Figure 1 and the Provenance Challenge pipelines need),
//! * [`exec`] — sequential and parallel execution drivers,
//! * [`policy`] — retry policies, backoff, and deadlines (fault-tolerant
//!   execution with provenance-recorded recovery),
//! * [`fault`] — deterministic fault injection for testing recovery,
//! * [`cache`] — provenance-based memoization of module runs,
//! * [`dbops`] — database operators as workflow modules with row-level
//!   provenance (the §2.4 "connecting database and workflow provenance"
//!   substrate),
//! * [`sweep`] — parameter-space exploration on top of the cache,
//! * [`synth`] — synthetic workload generators for tests and benchmarks,
//! * [`distrib`] — the multi-worker driver simulating distributed sites,
//!   with per-worker capture probes (`prov-probe`) and snapshot exchange
//!   piggybacked on dataflow edges,
//! * [`wire`] — a dependency-free binary codec for [`EngineEvent`], so
//!   event streams can cross process boundaries inside probe reports.

pub mod cache;
pub mod dbops;
pub mod distrib;
pub mod error;
pub mod event;
pub mod exec;
pub mod fault;
pub mod policy;
pub mod registry;
pub mod stdlib;
pub mod sweep;
pub mod synth;
pub mod value;
pub mod wire;

pub use cache::RunCache;
pub use distrib::{site_of, DistribOptions, DistributedRun, COORDINATOR_SITE_OFFSET};
pub use error::{ErrorClass, ExecError};
pub use event::{EngineEvent, ExecObserver, FanoutObserver, ValueMeta};
pub use exec::{ExecId, ExecutionResult, Executor, NodeRunRecord, NullObserver, RunStatus};
pub use fault::{FaultAction, FaultPlan};
pub use policy::{Deadline, ExecPolicy, RetryPolicy};
pub use registry::{ExecInput, ModuleExec, ModuleRegistry};
pub use stdlib::standard_registry;
pub use value::{Grid, Image, Mesh, Table, Value};
