//! Recursive-descent parser for PQL.

use crate::ast::*;
use crate::error::PqlError;
use crate::lexer::{lex, Token};

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn err(&self, expected: &str) -> PqlError {
        PqlError::Parse {
            expected: expected.to_string(),
            found: self
                .peek()
                .map(|t| t.describe())
                .unwrap_or_else(|| "end of input".into()),
        }
    }

    fn expect_word(&mut self, word: &str) -> Result<(), PqlError> {
        match self.peek() {
            Some(Token::Word(w)) if w == word => {
                self.pos += 1;
                Ok(())
            }
            _ => Err(self.err(&format!("'{word}'"))),
        }
    }

    fn eat_word(&mut self, word: &str) -> bool {
        matches!(self.peek(), Some(Token::Word(w)) if w == word) && {
            self.pos += 1;
            true
        }
    }

    fn target(&mut self) -> Result<Target, PqlError> {
        if self.eat_word("artifact") {
            match self.next() {
                Some(Token::Hex(h)) => Ok(Target::Artifact(h)),
                Some(Token::Int(i)) => Ok(Target::Artifact(i)),
                _ => Err(self.err("artifact digest")),
            }
        } else if self.eat_word("run") {
            let exec = match self.next() {
                Some(Token::Int(i)) => i,
                _ => return Err(self.err("execution id")),
            };
            match self.peek() {
                Some(Token::Slash) => {
                    self.pos += 1;
                }
                _ => return Err(self.err("'/'")),
            }
            let node = match self.next() {
                Some(Token::Int(i)) => i,
                _ => return Err(self.err("node id")),
            };
            Ok(Target::Run(exec, node))
        } else {
            Err(self.err("'artifact' or 'run'"))
        }
    }

    fn condition(&mut self) -> Result<Condition, PqlError> {
        if !self.eat_word("where") {
            return Ok(Condition::default());
        }
        let mut any_of = Vec::new();
        loop {
            any_of.push(self.conjunction()?);
            if !self.eat_word("or") {
                break;
            }
        }
        Ok(Condition { any_of })
    }

    /// One `and`-separated conjunction of comparisons.
    fn conjunction(&mut self) -> Result<Vec<Comparison>, PqlError> {
        let mut clauses = Vec::new();
        loop {
            let field = match self.next() {
                Some(Token::Word(w)) => match w.as_str() {
                    "module" => Field::Module,
                    "status" => Field::Status,
                    "dtype" => Field::Dtype,
                    "exec" => Field::Exec,
                    "attempts" => Field::Attempts,
                    other => {
                        return Err(PqlError::Parse {
                            expected: "field (module|status|dtype|exec|attempts)".into(),
                            found: format!("'{other}'"),
                        })
                    }
                },
                _ => return Err(self.err("field name")),
            };
            let op = match self.next() {
                Some(Token::Eq) => Op::Eq,
                Some(Token::Neq) => Op::Neq,
                Some(Token::Word(w)) if w == "contains" => Op::Contains,
                _ => return Err(self.err("'=', '!=' or 'contains'")),
            };
            let value = match self.next() {
                Some(Token::Str(s)) => s,
                Some(Token::Word(w)) => w,
                Some(Token::Int(i)) => i.to_string(),
                Some(Token::Hex(h)) => format!("{h:016x}"),
                _ => return Err(self.err("value")),
            };
            clauses.push(Comparison { field, op, value });
            if !self.eat_word("and") {
                break;
            }
        }
        Ok(clauses)
    }

    fn depth(&mut self) -> Result<Option<usize>, PqlError> {
        if self.eat_word("depth") {
            match self.next() {
                Some(Token::Int(i)) => Ok(Some(i as usize)),
                _ => Err(self.err("depth bound")),
            }
        } else {
            Ok(None)
        }
    }

    fn entity(&mut self) -> Result<Entity, PqlError> {
        if self.eat_word("runs") {
            Ok(Entity::Runs)
        } else if self.eat_word("artifacts") {
            Ok(Entity::Artifacts)
        } else if self.eat_word("executions") {
            Ok(Entity::Executions)
        } else {
            Err(self.err("'runs', 'artifacts' or 'executions'"))
        }
    }

    fn query(&mut self) -> Result<Query, PqlError> {
        let q = if self.eat_word("lineage") || self.eat_word("impact") {
            let direction = match &self.tokens[self.pos - 1] {
                Token::Word(w) if w == "lineage" => Direction::Upstream,
                _ => Direction::Downstream,
            };
            self.expect_word("of")?;
            let target = self.target()?;
            let depth = self.depth()?;
            let filter = self.condition()?;
            Query::Closure {
                direction,
                target,
                depth,
                filter,
            }
        } else if self.eat_word("happens_before") {
            // `happens_before of run E/N [depth D] [where …]` — the
            // distributed-capture reachability shape: every module run
            // that causally precedes the target. Desugars to an upstream
            // closure restricted to runs: the synthetic `module contains
            // ""` clause holds for every run and for no artifact (the
            // Module field resolves to nothing on artifacts), so the
            // result set is exactly the happens-before cone at module
            // granularity — and every backend, planner, and optimizer
            // handles it with zero new AST surface.
            self.expect_word("of")?;
            let target = self.target()?;
            let depth = self.depth()?;
            let mut filter = self.condition()?;
            let runs_only = Comparison {
                field: Field::Module,
                op: Op::Contains,
                value: String::new(),
            };
            if filter.any_of.is_empty() {
                filter.any_of.push(vec![runs_only]);
            } else {
                for conj in &mut filter.any_of {
                    conj.push(runs_only.clone());
                }
            }
            Query::Closure {
                direction: Direction::Upstream,
                target,
                depth,
                filter,
            }
        } else if self.eat_word("count") {
            Query::Count {
                entity: self.entity()?,
                filter: self.condition()?,
            }
        } else if self.eat_word("list") {
            Query::List {
                entity: self.entity()?,
                filter: self.condition()?,
            }
        } else if self.eat_word("paths") {
            self.expect_word("from")?;
            let from = self.target()?;
            self.expect_word("to")?;
            let to = self.target()?;
            let max_len = if self.eat_word("max") {
                match self.next() {
                    Some(Token::Int(i)) => Some(i as usize),
                    _ => return Err(self.err("path length bound")),
                }
            } else {
                None
            };
            Query::Paths { from, to, max_len }
        } else {
            return Err(
                self.err("'lineage', 'impact', 'happens_before', 'count', 'list' or 'paths'")
            );
        };
        if self.pos != self.tokens.len() {
            return Err(self.err("end of query"));
        }
        Ok(q)
    }
}

/// Parse a PQL query string.
pub fn parse(input: &str) -> Result<Query, PqlError> {
    let tokens = lex(input)?;
    Parser { tokens, pos: 0 }.query()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_lineage_with_depth_and_filter() {
        let q =
            parse("lineage of artifact 3f2a90bc41d07e55 depth 4 where module = \"Histogram@1\"")
                .unwrap();
        assert_eq!(
            q,
            Query::Closure {
                direction: Direction::Upstream,
                target: Target::Artifact(0x3f2a90bc41d07e55),
                depth: Some(4),
                filter: Condition::all(vec![Comparison {
                    field: Field::Module,
                    op: Op::Eq,
                    value: "Histogram@1".into()
                }])
            }
        );
    }

    #[test]
    fn parses_impact() {
        let q = parse("impact of artifact 00ff00ff00ff00ff").unwrap();
        assert!(matches!(
            q,
            Query::Closure {
                direction: Direction::Downstream,
                depth: None,
                ..
            }
        ));
    }

    #[test]
    fn parses_happens_before_as_a_runs_only_upstream_closure() {
        let q = parse("happens_before of run 3/7 depth 2").unwrap();
        let Query::Closure {
            direction,
            target,
            depth,
            filter,
        } = q
        else {
            panic!("expected closure");
        };
        assert_eq!(direction, Direction::Upstream);
        assert_eq!(target, Target::Run(3, 7));
        assert_eq!(depth, Some(2));
        assert_eq!(
            filter.any_of,
            vec![vec![Comparison {
                field: Field::Module,
                op: Op::Contains,
                value: String::new(),
            }]]
        );
    }

    #[test]
    fn happens_before_merges_user_filters_conjunctively() {
        let q = parse("happens_before of run 1/2 where status = failed or module contains align")
            .unwrap();
        let Query::Closure { filter, .. } = q else {
            panic!("expected closure");
        };
        assert_eq!(filter.any_of.len(), 2, "both or-branches survive");
        for conj in &filter.any_of {
            assert!(
                conj.iter().any(|c| c.field == Field::Module
                    && c.op == Op::Contains
                    && c.value.is_empty()),
                "runs-only clause is added to every branch"
            );
        }
    }

    #[test]
    fn happens_before_requires_a_run_target_shapeable_input() {
        assert!(parse("happens_before of run 1").is_err());
        assert!(parse("happens_before run 1/2").is_err());
        assert!(parse("happens_before of artifact 00ff00ff00ff00ff").is_ok());
    }

    #[test]
    fn parses_count_with_conjunction() {
        let q = parse("count runs where status = failed and module contains align").unwrap();
        let Query::Count { entity, filter } = q else {
            panic!()
        };
        assert_eq!(entity, Entity::Runs);
        assert_eq!(filter.any_of.len(), 1);
        assert_eq!(filter.any_of[0].len(), 2);
        assert_eq!(filter.any_of[0][1].op, Op::Contains);
    }

    #[test]
    fn parses_list_artifacts() {
        let q = parse("list artifacts where dtype = grid").unwrap();
        assert!(matches!(
            q,
            Query::List {
                entity: Entity::Artifacts,
                ..
            }
        ));
    }

    #[test]
    fn parses_paths_with_bound() {
        let q = parse("paths from artifact 00000000000000aa to run 0/5 max 6").unwrap();
        assert_eq!(
            q,
            Query::Paths {
                from: Target::Artifact(0xaa),
                to: Target::Run(0, 5),
                max_len: Some(6)
            }
        );
    }

    #[test]
    fn trailing_tokens_rejected() {
        let err = parse("count runs bogus").unwrap_err();
        assert!(err.to_string().contains("end of query"));
    }

    #[test]
    fn missing_of_reported() {
        let err = parse("lineage artifact 00000000000000aa").unwrap_err();
        assert!(err.to_string().contains("'of'"), "{err}");
    }

    #[test]
    fn unknown_field_reported() {
        let err = parse("count runs where color = red").unwrap_err();
        assert!(err.to_string().contains("field"));
    }

    #[test]
    fn run_target_requires_slash() {
        assert!(parse("lineage of run 0 5").is_err());
        assert!(parse("lineage of run 0/5").is_ok());
    }
}
