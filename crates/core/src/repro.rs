//! Reproducibility: re-executing from provenance and verifying the results.
//!
//! §2.3: "a detailed record of the steps followed to produce a result
//! allows others to reproduce and validate these results" — SIGMOD'08
//! itself introduced the "experimental repeatability requirement" this
//! module mechanizes: re-run the recipe, compare every artifact hash
//! against the retrospective record, and report fidelity.

use crate::model::RetrospectiveProvenance;
use std::fmt;
use wf_engine::{ExecError, Executor, RunStatus};
use wf_model::{NodeId, Workflow};

/// One artifact comparison.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArtifactCheck {
    /// Producing node.
    pub node: NodeId,
    /// Output port.
    pub port: String,
    /// Hash recorded in the original provenance.
    pub expected: u64,
    /// Hash observed in the re-execution (`None` = not produced).
    pub actual: Option<u64>,
}

impl ArtifactCheck {
    /// Did the re-execution reproduce this artifact bit-identically?
    pub fn matched(&self) -> bool {
        self.actual == Some(self.expected)
    }
}

/// The reproduction report.
#[derive(Debug, Clone)]
pub struct ReproReport {
    /// All artifact comparisons (one per recorded output).
    pub checks: Vec<ArtifactCheck>,
    /// Status of the re-execution.
    pub rerun_status: RunStatus,
}

impl ReproReport {
    /// Number of artifacts reproduced exactly.
    pub fn matched(&self) -> usize {
        self.checks.iter().filter(|c| c.matched()).count()
    }

    /// Total recorded artifacts compared.
    pub fn total(&self) -> usize {
        self.checks.len()
    }

    /// Fidelity in [0, 1]: fraction of artifacts reproduced exactly.
    pub fn fidelity(&self) -> f64 {
        if self.checks.is_empty() {
            1.0
        } else {
            self.matched() as f64 / self.total() as f64
        }
    }

    /// Fully reproducible?
    pub fn is_exact(&self) -> bool {
        self.matched() == self.total() && self.rerun_status == RunStatus::Succeeded
    }

    /// The failing checks.
    pub fn mismatches(&self) -> Vec<&ArtifactCheck> {
        self.checks.iter().filter(|c| !c.matched()).collect()
    }
}

impl fmt::Display for ReproReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "reproduced {}/{} artifacts ({:.1}%), rerun {}",
            self.matched(),
            self.total(),
            self.fidelity() * 100.0,
            self.rerun_status
        )
    }
}

/// Re-execute `workflow` (the prospective provenance that `retro` was
/// recorded against) and compare every recorded output artifact.
pub fn verify_reproduction(
    executor: &Executor,
    workflow: &Workflow,
    retro: &RetrospectiveProvenance,
) -> Result<ReproReport, ExecError> {
    let result = executor.run(workflow)?;
    let mut checks = Vec::new();
    for run in &retro.runs {
        for (port, expected) in &run.outputs {
            let actual = result.output(run.node, port).map(|v| v.content_hash());
            checks.push(ArtifactCheck {
                node: run.node,
                port: port.clone(),
                expected: *expected,
                actual,
            });
        }
    }
    Ok(ReproReport {
        checks,
        rerun_status: result.status,
    })
}

/// Validation of a resumed run against the failed run it recovered from,
/// computed purely from the two retrospective records.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResumeCheck {
    /// Does the resumed record link back to the original run's id?
    pub links_back: bool,
    /// Nodes replayed from the checkpoint whose recorded outputs match the
    /// original run's outputs exactly.
    pub reused_consistent: bool,
    /// Nodes that failed or were skipped originally and succeeded in the
    /// resumed run — the work the resume actually recovered.
    pub recovered: Vec<NodeId>,
}

impl ResumeCheck {
    /// Is the resumed run a valid recovery: linked back, with every reused
    /// result consistent and at least everything failed/skipped recovered?
    pub fn is_valid(&self) -> bool {
        self.links_back && self.reused_consistent
    }
}

/// Compare a resumed run's provenance against the failed run it resumed.
///
/// Checks that the resumed record's lineage points at `original`, that
/// every cache-replayed module reproduces the original output hashes, and
/// reports which originally failed or skipped nodes now succeeded.
pub fn check_resume(
    original: &RetrospectiveProvenance,
    resumed: &RetrospectiveProvenance,
) -> ResumeCheck {
    let links_back = resumed.resumed_from == Some(original.exec);
    // A cache hit in the resumed run is checkpoint reuse only when that
    // node succeeded originally; other hits are ordinary intra-run
    // memoization (e.g. two identical modules fed the same input) and say
    // nothing about the checkpoint.
    let reused_consistent = resumed
        .runs
        .iter()
        .filter(|r| r.from_cache)
        .filter_map(|r| Some((r, original.run_of(r.node)?)))
        .filter(|(_, orig)| orig.status == RunStatus::Succeeded)
        .all(|(r, orig)| orig.outputs == r.outputs);
    let recovered = original
        .runs
        .iter()
        .filter(|r| r.status != RunStatus::Succeeded)
        .filter_map(|r| {
            let now = resumed.run_of(r.node)?;
            (now.status == RunStatus::Succeeded).then_some(r.node)
        })
        .collect();
    ResumeCheck {
        links_back,
        reused_consistent,
        recovered,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capture::{CaptureLevel, ProvenanceCapture};
    use wf_engine::registry::{ExecInput, Outputs};
    use wf_engine::synth::figure1_workflow;
    use wf_engine::{standard_registry, Value};
    use wf_model::{ModuleKind, ParamValue, PortSpec, WorkflowBuilder};

    #[test]
    fn deterministic_workflow_reproduces_exactly() {
        let (wf, _) = figure1_workflow(1);
        let exec = Executor::new(standard_registry());
        let mut cap = ProvenanceCapture::new(CaptureLevel::Fine);
        let r = exec.run_observed(&wf, &mut cap).unwrap();
        let retro = cap.take(r.exec).unwrap();
        let report = verify_reproduction(&exec, &wf, &retro).unwrap();
        assert!(report.is_exact(), "{report}");
        assert_eq!(report.fidelity(), 1.0);
        assert_eq!(report.total(), 8);
    }

    #[test]
    fn changed_spec_fails_reproduction_downstream_only() {
        let (wf, nodes) = figure1_workflow(1);
        let exec = Executor::new(standard_registry());
        let mut cap = ProvenanceCapture::new(CaptureLevel::Fine);
        let r = exec.run_observed(&wf, &mut cap).unwrap();
        let retro = cap.take(r.exec).unwrap();
        // Re-run against a tampered recipe.
        let mut wf2 = wf.clone();
        wf2.set_param(nodes.hist, "bins", ParamValue::Int(7))
            .unwrap();
        let report = verify_reproduction(&exec, &wf2, &retro).unwrap();
        assert!(!report.is_exact());
        assert!(report.fidelity() < 1.0);
        // The isosurface branch is untouched: its artifacts still match.
        assert!(report
            .checks
            .iter()
            .filter(|c| c.node == nodes.save_iso)
            .all(|c| c.matched()));
        // The histogram branch does not.
        assert!(report
            .checks
            .iter()
            .filter(|c| c.node == nodes.plot)
            .all(|c| !c.matched()));
    }

    /// A module whose output depends on a process-local counter — the kind
    /// of hidden nondeterminism that breaks repeatability.
    fn nondet_registry() -> wf_engine::ModuleRegistry {
        use std::sync::atomic::{AtomicI64, Ordering};
        static COUNTER: AtomicI64 = AtomicI64::new(0);
        let mut r = standard_registry();
        r.register(
            ModuleKind::new("WallClock")
                .output(PortSpec::required("out", wf_model::DataType::Integer)),
            |_input: &ExecInput| {
                let mut out = Outputs::new();
                out.insert(
                    "out".into(),
                    Value::Int(COUNTER.fetch_add(1, Ordering::Relaxed)),
                );
                Ok(out)
            },
        );
        r
    }

    #[test]
    fn injected_nondeterminism_is_detected() {
        let mut b = WorkflowBuilder::new(1, "nondet");
        let clock = b.add("WallClock");
        let stable = b.add("ConstInt");
        b.param(stable, "value", 5i64);
        let sum = b.add("AddInt");
        b.connect(clock, "out", sum, "a")
            .connect(stable, "out", sum, "b");
        let wf = b.build();
        let exec = Executor::new(nondet_registry());
        let mut cap = ProvenanceCapture::new(CaptureLevel::Fine);
        let r = exec.run_observed(&wf, &mut cap).unwrap();
        let retro = cap.take(r.exec).unwrap();
        let report = verify_reproduction(&exec, &wf, &retro).unwrap();
        assert!(!report.is_exact());
        // ConstInt still reproduces; WallClock and AddInt do not.
        assert_eq!(report.matched(), 1);
        assert_eq!(report.mismatches().len(), 2);
        let mism = report.mismatches();
        assert!(mism.iter().all(|c| c.actual.is_some()));
    }

    #[test]
    fn check_resume_validates_recovery_lineage() {
        use wf_engine::FaultPlan;
        let mut b = WorkflowBuilder::new(1, "recoverable");
        let src = b.add("ConstInt");
        let bad = b.add("Identity");
        let sink = b.add("Identity");
        b.connect(src, "out", bad, "in")
            .connect(bad, "out", sink, "in");
        let wf = b.build();

        let failing = Executor::new(standard_registry())
            .with_faults(FaultPlan::new().fail_always(bad, "dead"));
        let mut cap = ProvenanceCapture::new(CaptureLevel::Fine);
        let r1 = failing.run_observed(&wf, &mut cap).unwrap();
        let original = cap.take(r1.exec).unwrap();
        assert_eq!(original.status, RunStatus::Failed);

        let healthy = Executor::new(standard_registry()).with_cache(64);
        let r2 = healthy.resume(&wf, &r1, &mut cap).unwrap();
        let resumed = cap.take(r2.exec).unwrap();

        let check = check_resume(&original, &resumed);
        assert!(check.is_valid(), "{check:?}");
        assert!(check.links_back);
        assert!(check.reused_consistent);
        assert_eq!(check.recovered, vec![bad, sink], "failed + skipped nodes");

        // An unrelated clean run does not validate as a resume.
        let clean_exec = Executor::new(standard_registry());
        let r3 = clean_exec.run_observed(&wf, &mut cap).unwrap();
        let unrelated = cap.take(r3.exec).unwrap();
        assert!(!check_resume(&original, &unrelated).links_back);
    }

    #[test]
    fn empty_provenance_is_trivially_exact() {
        let report = ReproReport {
            checks: vec![],
            rerun_status: RunStatus::Succeeded,
        };
        assert!(report.is_exact());
        assert_eq!(report.fidelity(), 1.0);
    }
}
