//! Stable identifiers for workflow entities.
//!
//! Provenance is only as good as the identity of the things it talks about.
//! All identifiers are plain `u64` newtypes: they are cheap to copy, hash,
//! order, and serialize, and they remain stable across edits so that
//! retrospective provenance collected last year still points at the right
//! node of the (versioned) specification.

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! id_newtype {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        #[serde(transparent)]
        pub struct $name(pub u64);

        impl $name {
            /// Raw numeric value of the identifier.
            #[inline]
            pub fn raw(self) -> u64 {
                self.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<u64> for $name {
            fn from(v: u64) -> Self {
                Self(v)
            }
        }
    };
}

id_newtype!(
    /// Identifier of a module instance (node) within one workflow.
    NodeId,
    "n"
);
id_newtype!(
    /// Identifier of a connection (edge) within one workflow.
    ConnId,
    "c"
);
id_newtype!(
    /// Identifier of a workflow specification.
    WorkflowId,
    "wf"
);

/// Monotonic generator for the `u64` identifier space.
///
/// Each [`crate::Workflow`] carries its own generator so that node and
/// connection identifiers are dense, deterministic, and never reused within
/// a specification — deletions leave holes on purpose, because retrospective
/// provenance may still reference the deleted entity.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct IdGen {
    next: u64,
}

impl IdGen {
    /// A generator starting at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// A generator that will hand out identifiers starting at `next`.
    pub fn starting_at(next: u64) -> Self {
        Self { next }
    }

    /// Allocate the next raw identifier.
    pub fn next_raw(&mut self) -> u64 {
        let v = self.next;
        self.next += 1;
        v
    }

    /// Make sure the generator will never emit `used` again.
    ///
    /// Used when replaying edit actions that carry explicit identifiers.
    pub fn reserve(&mut self, used: u64) {
        if used >= self.next {
            self.next = used + 1;
        }
    }

    /// The identifier the next call to [`IdGen::next_raw`] would return.
    pub fn peek(&self) -> u64 {
        self.next
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idgen_is_monotonic_and_dense() {
        let mut g = IdGen::new();
        assert_eq!(g.next_raw(), 0);
        assert_eq!(g.next_raw(), 1);
        assert_eq!(g.next_raw(), 2);
    }

    #[test]
    fn idgen_reserve_skips_used_ids() {
        let mut g = IdGen::new();
        g.reserve(10);
        assert_eq!(g.next_raw(), 11);
        g.reserve(5); // already past it, no effect
        assert_eq!(g.next_raw(), 12);
    }

    #[test]
    fn ids_display_with_prefix() {
        assert_eq!(NodeId(3).to_string(), "n3");
        assert_eq!(ConnId(7).to_string(), "c7");
        assert_eq!(WorkflowId(1).to_string(), "wf1");
    }

    #[test]
    fn ids_roundtrip_serde() {
        let id = NodeId(42);
        let s = serde_json::to_string(&id).unwrap();
        assert_eq!(s, "42");
        let back: NodeId = serde_json::from_str(&s).unwrap();
        assert_eq!(back, id);
    }
}
