//! Multi-system OPM integration.
//!
//! Merges the OPM accounts produced by different systems' dialect
//! translators into one graph, runs the OPM completion rules, and reports
//! how well the accounts actually joined — the "preliminary results are
//! promising" measurement of the Second Provenance Challenge, made
//! concrete.

use prov_core::opm::{OpmGraph, OpmNodeKind};
use std::collections::{BTreeMap, BTreeSet};

/// Statistics of an integration.
#[derive(Debug, Clone)]
pub struct IntegrationReport {
    /// The merged, completion-closed graph.
    pub graph: OpmGraph,
    /// Accounts merged.
    pub accounts: Vec<String>,
    /// Artifacts appearing in ≥ 2 accounts (the cross-system joins).
    pub shared_artifacts: usize,
    /// Artifacts total.
    pub total_artifacts: usize,
    /// Edges inferred by the completion rules.
    pub inferred_edges: usize,
}

impl IntegrationReport {
    /// Fraction of artifacts that joined across systems.
    pub fn join_ratio(&self) -> f64 {
        if self.total_artifacts == 0 {
            0.0
        } else {
            self.shared_artifacts as f64 / self.total_artifacts as f64
        }
    }

    /// One-line summary.
    pub fn summary(&self) -> String {
        format!(
            "integrated {} accounts: {} artifacts ({} shared across systems), {} inferred edges",
            self.accounts.len(),
            self.total_artifacts,
            self.shared_artifacts,
            self.inferred_edges
        )
    }
}

/// Merge OPM graphs from multiple systems and close them under the OPM
/// completion rules.
pub fn integrate(graphs: &[OpmGraph]) -> IntegrationReport {
    let mut merged = OpmGraph::new();
    for g in graphs {
        merged.merge(g);
    }
    // Count per-artifact account coverage before inference muddies accounts.
    let mut artifact_accounts: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    for g in graphs {
        for e in g.edges() {
            use prov_core::opm::OpmEdge;
            let (art, account) = match e {
                OpmEdge::Used {
                    artifact, account, ..
                }
                | OpmEdge::WasGeneratedBy {
                    artifact, account, ..
                } => (Some(*artifact), account.clone()),
                _ => (None, e.account().to_string()),
            };
            if let Some(a) = art {
                if let Some(node) = g.get(a) {
                    artifact_accounts
                        .entry(node.label.clone())
                        .or_default()
                        .insert(account);
                }
            }
        }
    }
    let shared = artifact_accounts.values().filter(|s| s.len() >= 2).count();
    let inferred = merged.infer_completions();
    let total_artifacts = merged
        .nodes()
        .iter()
        .filter(|n| n.kind == OpmNodeKind::Artifact)
        .count();
    let accounts = merged
        .accounts()
        .into_iter()
        .filter(|a| a != "inferred")
        .collect();
    IntegrationReport {
        graph: merged,
        accounts,
        shared_artifacts: shared,
        total_artifacts,
        inferred_edges: inferred,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dialect::{changelog, eventlog, rdfish, slice_runs};
    use prov_core::capture::{CaptureLevel, ProvenanceCapture};
    use wf_engine::{standard_registry, Executor};

    #[test]
    fn integration_joins_split_provenance() {
        // Split Figure 1 provenance across three systems along branch
        // boundaries, then integrate.
        let (wf, _) = wf_engine::synth::figure1_workflow(1);
        let exec = Executor::new(standard_registry());
        let mut cap = ProvenanceCapture::new(CaptureLevel::Fine);
        let r = exec.run_observed(&wf, &mut cap).unwrap();
        let retro = cap.take(r.exec).unwrap();

        let part_a = slice_runs(&retro, &["LoadVolume"]);
        let part_b = slice_runs(&retro, &["Histogram", "PlotTable", "SaveFile"]);
        let part_c = slice_runs(&retro, &["Isosurface", "SmoothMesh", "RenderMesh"]);

        let ga = rdfish::RdfProvenance::capture(&part_a).to_opm("sysA");
        let gb = eventlog::EventLogProvenance::capture(&part_b).to_opm("sysB");
        let gc = changelog::ChangelogProvenance::capture(&part_c, &wf).to_opm("sysC");

        let report = integrate(&[ga, gb, gc]);
        assert_eq!(report.accounts.len(), 3);
        // The CT grid joins sysA (produced) with sysB and sysC (consumed).
        assert!(report.shared_artifacts >= 1, "{}", report.summary());
        assert!(report.inferred_edges > 0);
        assert!(report.join_ratio() > 0.0);

        // After integration, derivation chains cross system boundaries:
        // some artifact of sysB transitively derives from sysA's grid.
        let g = &report.graph;
        let load_grid = retro
            .runs
            .iter()
            .find(|r| r.identity == "LoadVolume@1")
            .unwrap()
            .outputs[0]
            .1;
        let grid = g
            .find(
                prov_core::opm::OpmNodeKind::Artifact,
                &format!("{load_grid:016x}"),
            )
            .unwrap();
        let derived_somewhere = g
            .nodes()
            .iter()
            .filter(|n| n.kind == OpmNodeKind::Artifact && n.id != grid)
            .any(|n| g.derived_star(n.id).contains(&grid));
        assert!(derived_somewhere);
    }

    #[test]
    fn single_account_integration_has_no_shared_artifacts() {
        let (wf, _) = wf_engine::synth::figure1_workflow(1);
        let exec = Executor::new(standard_registry());
        let mut cap = ProvenanceCapture::new(CaptureLevel::Fine);
        let r = exec.run_observed(&wf, &mut cap).unwrap();
        let retro = cap.take(r.exec).unwrap();
        let g = rdfish::RdfProvenance::capture(&retro).to_opm("only");
        let report = integrate(&[g]);
        assert_eq!(report.accounts.len(), 1);
        assert_eq!(report.shared_artifacts, 0);
        assert_eq!(report.join_ratio(), 0.0);
    }

    #[test]
    fn empty_integration() {
        let report = integrate(&[]);
        assert_eq!(report.total_artifacts, 0);
        assert_eq!(report.join_ratio(), 0.0);
    }
}
