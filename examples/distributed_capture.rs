//! Distributed capture walkthrough: a fan-out/fan-in workflow spread over
//! four simulated worker sites, each with its own causal-clock probe.
//! Every site leaves behind one compact report blob; a collector stitches
//! the blobs — deliberately fed out of order, with one straggler arriving
//! last — back into a single coherent provenance record with cross-site
//! happens-before edges and a W3C-contexted span tree.
//!
//! Run with: `cargo run --example distributed_capture`

use provenance_workflows::prelude::*;
use provenance_workflows::provenance::stitch::stitch_provenance;
use provenance_workflows::telemetry::assemble_distributed;

fn main() {
    // A fan-out/fan-in shape: one loader feeds four parallel smoothing
    // branches that Softmean joins back into an atlas — wide enough that
    // round-robin placement genuinely crosses sites.
    let mut b = WorkflowBuilder::new(21, "fanout-fanin");
    let load = b.add("LoadVolume");
    b.param(load, "nx", 8i64);
    b.param(load, "ny", 8i64);
    b.param(load, "nz", 8i64);
    let mean = b.add("Softmean");
    for i in 0..4i64 {
        let smooth = b.add("SmoothGrid");
        b.param(smooth, "iterations", i + 1);
        b.connect(load, "grid", smooth, "data");
        b.connect(smooth, "smoothed", mean, &format!("i{}", i + 1));
    }
    let hist = b.add("Histogram");
    b.param(hist, "bins", 8i64);
    b.connect(mean, "atlas", hist, "data");
    let wf = b.build();

    // 1. Run it across 4 worker sites, probed, under one trace id.
    let exec = Executor::new(standard_registry());
    let opts = DistribOptions::new(4).with_trace_id(0xd15c0);
    let dist = exec.run_distributed(&wf, opts).expect("distributed run");
    println!("run {}: {}", dist.result.exec, dist.result.status);
    println!("placement (node -> site):");
    for (node, site) in &dist.sites {
        println!("  {node} -> site{site}");
    }

    // 2. Each site's probe yields one report blob — the only thing that
    //    must survive the worker. Encode them as they would travel.
    let mut blobs: Vec<Vec<u8>> = dist.reports.iter().map(|r| r.encode()).collect();
    println!(
        "\n{} report blobs, {} bytes total",
        blobs.len(),
        blobs.iter().map(Vec::len).sum::<usize>()
    );

    // 3. Deliver them badly: shuffled, one duplicated, and site0's blob —
    //    the straggler — held back until everyone else has arrived.
    let straggler = blobs.remove(0);
    blobs.reverse();
    let dup = blobs[0].clone();
    blobs.push(dup);
    let mut collector = Collector::new();
    for blob in &blobs {
        collector.ingest_blob(blob).expect("blob decodes");
    }
    let early = stitch_provenance(&collector.stitch());
    println!(
        "\nbefore the straggler: complete={} gaps={}",
        early.is_complete(),
        early.gaps.len()
    );
    for gap in &early.gaps {
        println!("  gap: {gap}");
    }

    // 4. The straggler lands. Now the record closes: no gaps, and the
    //    stitched graph is isomorphic to what a single-process run of the
    //    same workflow would have captured.
    collector
        .ingest_blob(&straggler)
        .expect("straggler decodes");
    let stitched = collector.stitch();
    let sp = stitch_provenance(&stitched);
    assert!(sp.is_complete(), "late arrival completes the record");
    let retro = sp.retro().expect("one finished run");
    println!(
        "\nafter the straggler: {} module runs, {} artifacts, {} duplicate entries absorbed",
        retro.run_count(),
        retro.artifacts.len(),
        sp.duplicates
    );
    let mut single = ProvenanceCapture::new(CaptureLevel::Fine);
    let reference = exec.run_observed(&wf, &mut single).expect("reference run");
    let reference = single.take(reference.exec).expect("captured");
    assert_eq!(
        graph_signature(retro),
        graph_signature(&reference),
        "stitched graph is isomorphic to the single-process capture"
    );
    println!("stitched graph matches the single-process reference");

    // 5. Causality across sites, at module granularity.
    println!("\n== cross-site happens-before ({}) ==", sp.hb_edges.len());
    print!("{}", sp.render_hb());

    // 6. The same stitched order assembles into a span tree that carries
    //    the W3C trace context across every worker.
    let trace = assemble_distributed(&stitched);
    println!("\n== spans ({}) ==", trace.spans.len());
    for span in trace.spans.iter().take(6) {
        println!(
            "  [{}] {:<16} site={} {:>6} us",
            span.kind.label(),
            span.name,
            span.attr("site").unwrap_or("?"),
            span.duration_micros()
        );
    }
    if let Some(tp) = trace.spans.first().and_then(|s| s.attr("traceparent")) {
        println!("traceparent: {tp}");
    }
}
