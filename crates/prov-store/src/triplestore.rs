//! An RDF-style triple store with SPO/POS/OSP indexes.
//!
//! Represents the Semantic-Web end of the storage spectrum (Taverna's RDF
//! provenance, the SPARQL-queried systems of §2.2). Terms are interned
//! strings; triples live in three B-tree indexes so any single-bound
//! pattern is a range scan; conjunctive queries are basic graph patterns
//! evaluated by backtracking joins.
//!
//! Lineage over a triple store needs *repeated* pattern joins (SPARQL 1.0
//! had no transitive closure) — exactly the "simple queries can be awkward"
//! pain the tutorial describes, and measurably slower than the native graph
//! traversal (experiment E5).

use crate::api::{sort_artifacts, sort_runs, Frontier, ProvenanceStore, RunRef};
use crate::stats::StoreStats;
use prov_core::model::{ArtifactHash, RetrospectiveProvenance};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::atomic::{AtomicBool, Ordering};
use wf_engine::ExecId;
use wf_model::NodeId;

/// An interned term.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Term(pub u32);

/// A position in a triple pattern: constant or named variable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Pat {
    /// A constant term.
    Const(Term),
    /// A variable, named for binding.
    Var(&'static str),
}

/// One triple pattern of a basic graph pattern.
#[derive(Debug, Clone)]
pub struct TriplePattern {
    /// Subject position.
    pub s: Pat,
    /// Predicate position.
    pub p: Pat,
    /// Object position.
    pub o: Pat,
}

/// The triple store.
#[derive(Debug, Default)]
pub struct TripleStore {
    dict: Vec<String>,
    dict_index: HashMap<String, u32>,
    spo: BTreeSet<(u32, u32, u32)>,
    pos: BTreeSet<(u32, u32, u32)>,
    osp: BTreeSet<(u32, u32, u32)>,
    /// Adjacency indexes over the lineage predicates, maintained on
    /// insert (only for triples new to SPO, so they stay duplicate-free).
    /// They let the optimized traversals replace B-tree range scans with
    /// hash probes.
    adj_generated_by: HashMap<u32, Vec<u32>>, // artifact -> generating runs
    adj_generates: HashMap<u32, Vec<u32>>, // run -> generated artifacts
    adj_used: HashMap<u32, Vec<u32>>,      // run -> used artifacts
    adj_used_by: HashMap<u32, Vec<u32>>,   // artifact -> consuming runs
    /// Aggregate index: count of `prov:identity` triples per identity term.
    module_counts: BTreeMap<u32, usize>,
    identity_triples: usize,
    optimized: AtomicBool,
    stats: StoreStats,
}

impl TripleStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern a string as a term.
    pub fn term(&mut self, s: &str) -> Term {
        if let Some(&i) = self.dict_index.get(s) {
            return Term(i);
        }
        let i = self.dict.len() as u32;
        self.dict.push(s.to_string());
        self.dict_index.insert(s.to_string(), i);
        Term(i)
    }

    /// Look up an existing term without interning.
    pub fn lookup(&self, s: &str) -> Option<Term> {
        self.dict_index.get(s).map(|&i| Term(i))
    }

    /// The string of a term.
    pub fn resolve(&self, t: Term) -> &str {
        &self.dict[t.0 as usize]
    }

    /// Insert a triple of strings.
    pub fn insert(&mut self, s: &str, p: &str, o: &str) {
        let (s, p, o) = (self.term(s).0, self.term(p).0, self.term(o).0);
        if self.spo.insert((s, p, o)) {
            // A genuinely new triple: mirror it into the secondary
            // adjacency/aggregate indexes (duplicates never reach here).
            match self.dict[p as usize].as_str() {
                "prov:generatedBy" => {
                    self.adj_generated_by.entry(s).or_default().push(o);
                    self.adj_generates.entry(o).or_default().push(s);
                }
                "prov:used" => {
                    self.adj_used.entry(s).or_default().push(o);
                    self.adj_used_by.entry(o).or_default().push(s);
                }
                "prov:identity" => {
                    *self.module_counts.entry(o).or_default() += 1;
                    self.identity_triples += 1;
                }
                _ => {}
            }
        }
        self.pos.insert((p, o, s));
        self.osp.insert((o, s, p));
    }

    /// Probe one adjacency index, with keyed-lookup accounting.
    fn adj<'a>(&self, index: &'a HashMap<u32, Vec<u32>>, key: u32) -> &'a [u32] {
        self.stats.add_keyed_lookups(1);
        let out = index.get(&key).map(Vec::as_slice).unwrap_or(&[]);
        self.stats.add_triple_reads(out.len() as u64);
        out
    }

    /// Number of triples.
    pub fn len(&self) -> usize {
        self.spo.len()
    }

    /// Is the store empty?
    pub fn is_empty(&self) -> bool {
        self.spo.is_empty()
    }

    /// Match a single pattern with optional bound positions; returns
    /// matching triples as (s, p, o) terms. Chooses the index with the
    /// longest bound prefix.
    pub fn pattern(
        &self,
        s: Option<Term>,
        p: Option<Term>,
        o: Option<Term>,
    ) -> Vec<(Term, Term, Term)> {
        const MAX: u32 = u32::MAX;
        // The all-unbound pattern is the one shape no index prefix serves:
        // it walks the whole SPO index. Everything else is a keyed range.
        if s.is_none() && p.is_none() && o.is_none() {
            self.stats.add_scans(1);
        } else {
            self.stats.add_keyed_lookups(1);
        }
        let out: Vec<(u32, u32, u32)> = match (s, p, o) {
            (Some(s), Some(p), Some(o)) => {
                if self.spo.contains(&(s.0, p.0, o.0)) {
                    vec![(s.0, p.0, o.0)]
                } else {
                    vec![]
                }
            }
            (Some(s), Some(p), None) => self
                .spo
                .range((s.0, p.0, 0)..=(s.0, p.0, MAX))
                .copied()
                .collect(),
            (Some(s), None, None) => self
                .spo
                .range((s.0, 0, 0)..=(s.0, MAX, MAX))
                .copied()
                .collect(),
            (Some(s), None, Some(o)) => self
                .osp
                .range((o.0, s.0, 0)..=(o.0, s.0, MAX))
                .map(|&(oo, ss, pp)| (ss, pp, oo))
                .collect(),
            (None, Some(p), Some(o)) => self
                .pos
                .range((p.0, o.0, 0)..=(p.0, o.0, MAX))
                .map(|&(pp, oo, ss)| (ss, pp, oo))
                .collect(),
            (None, Some(p), None) => self
                .pos
                .range((p.0, 0, 0)..=(p.0, MAX, MAX))
                .map(|&(pp, oo, ss)| (ss, pp, oo))
                .collect(),
            (None, None, Some(o)) => self
                .osp
                .range((o.0, 0, 0)..=(o.0, MAX, MAX))
                .map(|&(oo, ss, pp)| (ss, pp, oo))
                .collect(),
            (None, None, None) => self.spo.iter().copied().collect(),
        };
        self.stats.add_triple_reads(out.len() as u64);
        out.into_iter()
            .map(|(s, p, o)| (Term(s), Term(p), Term(o)))
            .collect()
    }

    /// Evaluate a basic graph pattern by backtracking joins in pattern
    /// order. Returns all variable bindings.
    pub fn query(&self, bgp: &[TriplePattern]) -> Vec<HashMap<&'static str, Term>> {
        let mut results = Vec::new();
        let mut binding: HashMap<&'static str, Term> = HashMap::new();
        self.join(bgp, 0, &mut binding, &mut results);
        results
    }

    fn join(
        &self,
        bgp: &[TriplePattern],
        i: usize,
        binding: &mut HashMap<&'static str, Term>,
        results: &mut Vec<HashMap<&'static str, Term>>,
    ) {
        if i == bgp.len() {
            results.push(binding.clone());
            return;
        }
        let pat = &bgp[i];
        let resolve = |p: &Pat, binding: &HashMap<&'static str, Term>| match p {
            Pat::Const(t) => (Some(*t), None),
            Pat::Var(v) => (binding.get(v).copied(), Some(*v)),
        };
        let (s, sv) = resolve(&pat.s, binding);
        let (p, pv) = resolve(&pat.p, binding);
        let (o, ov) = resolve(&pat.o, binding);
        for (ts, tp, to) in self.pattern(s, p, o) {
            let mut added: Vec<&'static str> = Vec::new();
            let mut ok = true;
            for (val, var, bound) in [(ts, sv, s), (tp, pv, p), (to, ov, o)] {
                if bound.is_none() {
                    if let Some(v) = var {
                        match binding.get(v) {
                            Some(&existing) if existing != val => {
                                ok = false;
                                break;
                            }
                            Some(_) => {}
                            None => {
                                binding.insert(v, val);
                                added.push(v);
                            }
                        }
                    }
                }
            }
            if ok {
                self.join(bgp, i + 1, binding, results);
            }
            for v in added {
                binding.remove(v);
            }
        }
    }

    /// Approximate resident bytes (dictionary + three indexes).
    pub fn approx_bytes_internal(&self) -> usize {
        let dict: usize = self.dict.iter().map(|s| s.len() + 24 + s.len() + 8).sum();
        let idx = self.spo.len() * 12 * 3;
        dict + idx
    }
}

// ---- provenance encoding -------------------------------------------------

fn run_iri(exec: ExecId, node: NodeId) -> String {
    format!("run:{}/{}", exec.0, node.raw())
}

fn artifact_iri(h: ArtifactHash) -> String {
    format!("artifact:{h:016x}")
}

fn parse_run_iri(s: &str) -> Option<RunRef> {
    let rest = s.strip_prefix("run:")?;
    let (e, n) = rest.split_once('/')?;
    Some((ExecId(e.parse().ok()?), NodeId(n.parse().ok()?)))
}

fn parse_artifact_iri(s: &str) -> Option<ArtifactHash> {
    u64::from_str_radix(s.strip_prefix("artifact:")?, 16).ok()
}

impl ProvenanceStore for TripleStore {
    fn backend_name(&self) -> &'static str {
        "triple"
    }

    fn stats(&self) -> &StoreStats {
        &self.stats
    }

    fn ingest(&mut self, retro: &RetrospectiveProvenance) {
        for run in &retro.runs {
            let r = run_iri(retro.exec, run.node);
            self.insert(&r, "prov:type", "prov:Run");
            self.insert(&r, "prov:identity", &run.identity);
            self.insert(&r, "prov:status", &run.status.to_string());
            self.insert(&r, "prov:inExecution", &format!("exec:{}", retro.exec.0));
            for (port, h) in &run.inputs {
                let a = artifact_iri(*h);
                self.insert(&r, "prov:used", &a);
                self.insert(&a, "prov:type", "prov:Artifact");
                let _ = port;
            }
            for (port, h) in &run.outputs {
                let a = artifact_iri(*h);
                self.insert(&a, "prov:generatedBy", &r);
                self.insert(&a, "prov:type", "prov:Artifact");
                let _ = port;
            }
        }
    }

    fn generators(&self, artifact: ArtifactHash) -> Vec<RunRef> {
        let Some(a) = self.lookup(&artifact_iri(artifact)) else {
            return Vec::new();
        };
        if self.optimized.load(Ordering::Relaxed) {
            return sort_runs(
                self.adj(&self.adj_generated_by, a.0)
                    .iter()
                    .filter_map(|&r| parse_run_iri(self.resolve(Term(r))))
                    .collect(),
            );
        }
        let Some(p) = self.lookup("prov:generatedBy") else {
            return Vec::new();
        };
        sort_runs(
            self.pattern(Some(a), Some(p), None)
                .into_iter()
                .filter_map(|(_, _, o)| parse_run_iri(self.resolve(o)))
                .collect(),
        )
    }

    fn lineage_runs(&self, artifact: ArtifactHash) -> Vec<RunRef> {
        // Iterated pattern joins: frontier of artifacts -> generating runs
        // -> artifacts those runs used -> ... until fixpoint. This is the
        // only way to express transitivity with plain BGPs.
        if self.optimized.load(Ordering::Relaxed) {
            // Same fixpoint, but each probe is a hash-indexed adjacency
            // read instead of a B-tree range scan.
            let mut runs: BTreeSet<u32> = BTreeSet::new();
            let mut seen_art: BTreeSet<u32> = BTreeSet::new();
            let mut frontier: Vec<u32> = match self.lookup(&artifact_iri(artifact)) {
                Some(t) => vec![t.0],
                None => return Vec::new(),
            };
            seen_art.insert(frontier[0]);
            while !frontier.is_empty() {
                let mut next = Vec::new();
                for a in frontier.drain(..) {
                    for &r in self.adj(&self.adj_generated_by, a) {
                        if runs.insert(r) {
                            for &a2 in self.adj(&self.adj_used, r) {
                                if seen_art.insert(a2) {
                                    next.push(a2);
                                }
                            }
                        }
                    }
                }
                frontier = next;
            }
            return sort_runs(
                runs.into_iter()
                    .filter_map(|r| parse_run_iri(self.resolve(Term(r))))
                    .collect(),
            );
        }
        let Some(gen_p) = self.lookup("prov:generatedBy") else {
            return Vec::new();
        };
        let used_p = self.lookup("prov:used");
        let mut runs: BTreeSet<Term> = BTreeSet::new();
        let mut seen_art: BTreeSet<Term> = BTreeSet::new();
        let mut frontier: Vec<Term> = match self.lookup(&artifact_iri(artifact)) {
            Some(t) => vec![t],
            None => return Vec::new(),
        };
        seen_art.insert(frontier[0]);
        while !frontier.is_empty() {
            let mut next = Vec::new();
            for a in frontier.drain(..) {
                for (_, _, r) in self.pattern(Some(a), Some(gen_p), None) {
                    if runs.insert(r) {
                        if let Some(used_p) = used_p {
                            for (_, _, a2) in self.pattern(Some(r), Some(used_p), None) {
                                if seen_art.insert(a2) {
                                    next.push(a2);
                                }
                            }
                        }
                    }
                }
            }
            frontier = next;
        }
        sort_runs(
            runs.into_iter()
                .filter_map(|r| parse_run_iri(self.resolve(r)))
                .collect(),
        )
    }

    fn derived_artifacts(&self, artifact: ArtifactHash) -> Vec<ArtifactHash> {
        if self.optimized.load(Ordering::Relaxed) {
            let mut arts: BTreeSet<u32> = BTreeSet::new();
            let mut seen_run: BTreeSet<u32> = BTreeSet::new();
            let mut frontier: Vec<u32> = match self.lookup(&artifact_iri(artifact)) {
                Some(t) => vec![t.0],
                None => return Vec::new(),
            };
            let start = frontier[0];
            while !frontier.is_empty() {
                let mut next = Vec::new();
                for a in frontier.drain(..) {
                    for &r in self.adj(&self.adj_used_by, a) {
                        if seen_run.insert(r) {
                            for &a2 in self.adj(&self.adj_generates, r) {
                                if arts.insert(a2) {
                                    next.push(a2);
                                }
                            }
                        }
                    }
                }
                frontier = next;
            }
            arts.remove(&start);
            return sort_artifacts(
                arts.into_iter()
                    .filter_map(|a| parse_artifact_iri(self.resolve(Term(a))))
                    .collect(),
            );
        }
        let Some(used_p) = self.lookup("prov:used") else {
            return Vec::new();
        };
        let Some(gen_p) = self.lookup("prov:generatedBy") else {
            return Vec::new();
        };
        let mut arts: BTreeSet<Term> = BTreeSet::new();
        let mut seen_run: BTreeSet<Term> = BTreeSet::new();
        let mut frontier: Vec<Term> = match self.lookup(&artifact_iri(artifact)) {
            Some(t) => vec![t],
            None => return Vec::new(),
        };
        let start = frontier[0];
        while !frontier.is_empty() {
            let mut next = Vec::new();
            for a in frontier.drain(..) {
                // runs that used a
                for (r, _, _) in self.pattern(None, Some(used_p), Some(a)) {
                    if seen_run.insert(r) {
                        // artifacts generated by r
                        for (a2, _, _) in self.pattern(None, Some(gen_p), Some(r)) {
                            if arts.insert(a2) {
                                next.push(a2);
                            }
                        }
                    }
                }
            }
            frontier = next;
        }
        arts.remove(&start);
        sort_artifacts(
            arts.into_iter()
                .filter_map(|a| parse_artifact_iri(self.resolve(a)))
                .collect(),
        )
    }

    fn expand_frontier(&self, seeds: &[ArtifactHash], upstream: bool) -> Frontier {
        let mut out = Frontier::default();
        if self.optimized.load(Ordering::Relaxed) {
            // Hash-indexed adjacency probes, multi-seed variant of the
            // optimized lineage/impact fixpoints.
            let (run_adj, art_adj) = if upstream {
                (&self.adj_generated_by, &self.adj_used)
            } else {
                (&self.adj_used_by, &self.adj_generates)
            };
            let mut seen_run: BTreeSet<u32> = BTreeSet::new();
            let mut seen_art: BTreeSet<u32> = BTreeSet::new();
            let mut frontier: Vec<u32> = Vec::new();
            for &h in seeds {
                if let Some(t) = self.lookup(&artifact_iri(h)) {
                    if seen_art.insert(t.0) {
                        frontier.push(t.0);
                    }
                }
            }
            while !frontier.is_empty() {
                let mut next = Vec::new();
                for a in frontier.drain(..) {
                    for &r in self.adj(run_adj, a) {
                        if seen_run.insert(r) {
                            if let Some(run) = parse_run_iri(self.resolve(Term(r))) {
                                out.runs.push(run);
                            }
                            for &a2 in self.adj(art_adj, r) {
                                if seen_art.insert(a2) {
                                    if let Some(h) = parse_artifact_iri(self.resolve(Term(a2))) {
                                        out.artifacts.push(h);
                                    }
                                    next.push(a2);
                                }
                            }
                        }
                    }
                }
                frontier = next;
            }
            return out;
        }
        // Naive BGP fixpoint. Upstream chases generatedBy then used;
        // downstream chases used-by then generates (object-bound patterns).
        let (run_p, art_p) = if upstream {
            let Some(gen_p) = self.lookup("prov:generatedBy") else {
                return out;
            };
            (gen_p, self.lookup("prov:used"))
        } else {
            let Some(used_p) = self.lookup("prov:used") else {
                return out;
            };
            let Some(gen_p) = self.lookup("prov:generatedBy") else {
                return out;
            };
            (used_p, Some(gen_p))
        };
        let mut seen_run: BTreeSet<Term> = BTreeSet::new();
        let mut seen_art: BTreeSet<Term> = BTreeSet::new();
        let mut frontier: Vec<Term> = Vec::new();
        for &h in seeds {
            if let Some(t) = self.lookup(&artifact_iri(h)) {
                if seen_art.insert(t) {
                    frontier.push(t);
                }
            }
        }
        while !frontier.is_empty() {
            let mut next = Vec::new();
            for a in frontier.drain(..) {
                let runs = if upstream {
                    self.pattern(Some(a), Some(run_p), None)
                        .into_iter()
                        .map(|(_, _, r)| r)
                        .collect::<Vec<_>>()
                } else {
                    self.pattern(None, Some(run_p), Some(a))
                        .into_iter()
                        .map(|(r, _, _)| r)
                        .collect::<Vec<_>>()
                };
                for r in runs {
                    if seen_run.insert(r) {
                        if let Some(run) = parse_run_iri(self.resolve(r)) {
                            out.runs.push(run);
                        }
                        let Some(art_p) = art_p else { continue };
                        let arts = if upstream {
                            self.pattern(Some(r), Some(art_p), None)
                                .into_iter()
                                .map(|(_, _, a2)| a2)
                                .collect::<Vec<_>>()
                        } else {
                            self.pattern(None, Some(art_p), Some(r))
                                .into_iter()
                                .map(|(a2, _, _)| a2)
                                .collect::<Vec<_>>()
                        };
                        for a2 in arts {
                            if seen_art.insert(a2) {
                                if let Some(h) = parse_artifact_iri(self.resolve(a2)) {
                                    out.artifacts.push(h);
                                }
                                next.push(a2);
                            }
                        }
                    }
                }
            }
            frontier = next;
        }
        out
    }

    fn adopt_stats(&mut self, stats: &StoreStats) {
        self.stats = stats.clone();
    }

    fn runs_per_module(&self) -> Vec<(String, usize)> {
        if self.optimized.load(Ordering::Relaxed) {
            // The per-identity counts are maintained on insert; only the
            // aggregate entries themselves are read back.
            self.stats.add_keyed_lookups(1);
            self.stats.add_triple_reads(self.module_counts.len() as u64);
            let mut counts: BTreeMap<String, usize> = BTreeMap::new();
            for (&term, &n) in &self.module_counts {
                counts.insert(self.resolve(Term(term)).to_string(), n);
            }
            return counts.into_iter().collect();
        }
        let Some(p) = self.lookup("prov:identity") else {
            return Vec::new();
        };
        let mut counts: std::collections::BTreeMap<String, usize> = Default::default();
        for (_, _, o) in self.pattern(None, Some(p), None) {
            *counts.entry(self.resolve(o).to_string()).or_default() += 1;
        }
        counts.into_iter().collect()
    }

    fn run_count(&self) -> usize {
        if self.optimized.load(Ordering::Relaxed) {
            self.stats.add_keyed_lookups(1);
            return self.identity_triples;
        }
        self.lookup("prov:identity")
            .map(|p| self.pattern(None, Some(p), None).len())
            .unwrap_or(0)
    }

    fn set_optimized(&self, on: bool) {
        self.optimized.store(on, Ordering::Relaxed);
    }

    fn optimized(&self) -> bool {
        self.optimized.load(Ordering::Relaxed)
    }

    fn approx_bytes(&self) -> usize {
        self.approx_bytes_internal()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prov_core::capture::{CaptureLevel, ProvenanceCapture};
    use wf_engine::synth::figure1_workflow;
    use wf_engine::{standard_registry, Executor};

    fn fig1_store() -> (
        TripleStore,
        RetrospectiveProvenance,
        wf_engine::synth::Figure1Nodes,
    ) {
        let (wf, nodes) = figure1_workflow(1);
        let exec = Executor::new(standard_registry());
        let mut cap = ProvenanceCapture::new(CaptureLevel::Fine);
        let r = exec.run_observed(&wf, &mut cap).unwrap();
        let retro = cap.take(r.exec).unwrap();
        let mut s = TripleStore::new();
        s.ingest(&retro);
        (s, retro, nodes)
    }

    #[test]
    fn interning_is_stable() {
        let mut s = TripleStore::new();
        let a = s.term("x");
        let b = s.term("x");
        assert_eq!(a, b);
        assert_eq!(s.resolve(a), "x");
        assert_eq!(s.lookup("x"), Some(a));
        assert_eq!(s.lookup("y"), None);
    }

    #[test]
    fn pattern_single_bound_positions() {
        let mut s = TripleStore::new();
        s.insert("a", "knows", "b");
        s.insert("a", "knows", "c");
        s.insert("b", "knows", "c");
        let a = s.lookup("a").unwrap();
        let knows = s.lookup("knows").unwrap();
        let c = s.lookup("c").unwrap();
        assert_eq!(s.pattern(Some(a), Some(knows), None).len(), 2);
        assert_eq!(s.pattern(None, Some(knows), Some(c)).len(), 2);
        assert_eq!(s.pattern(Some(a), None, Some(c)).len(), 1);
        assert_eq!(s.pattern(None, None, None).len(), 3);
        assert_eq!(s.pattern(Some(c), Some(knows), None).len(), 0);
    }

    #[test]
    fn bgp_join_with_shared_variable() {
        let mut s = TripleStore::new();
        s.insert("a", "knows", "b");
        s.insert("b", "knows", "c");
        s.insert("c", "knows", "d");
        let knows = s.lookup("knows").unwrap();
        // ?x knows ?y . ?y knows ?z — two-hop paths
        let bgp = vec![
            TriplePattern {
                s: Pat::Var("x"),
                p: Pat::Const(knows),
                o: Pat::Var("y"),
            },
            TriplePattern {
                s: Pat::Var("y"),
                p: Pat::Const(knows),
                o: Pat::Var("z"),
            },
        ];
        let results = s.query(&bgp);
        assert_eq!(results.len(), 2, "a-b-c and b-c-d");
        for b in &results {
            assert!(b.contains_key("x") && b.contains_key("y") && b.contains_key("z"));
        }
    }

    #[test]
    fn bgp_repeated_variable_filters() {
        let mut s = TripleStore::new();
        s.insert("a", "p", "a");
        s.insert("a", "p", "b");
        let p = s.lookup("p").unwrap();
        // ?x p ?x — self-loops only
        let bgp = vec![TriplePattern {
            s: Pat::Var("x"),
            p: Pat::Const(p),
            o: Pat::Var("x"),
        }];
        let results = s.query(&bgp);
        assert_eq!(results.len(), 1);
        assert_eq!(s.resolve(results[0]["x"]), "a");
    }

    #[test]
    fn provenance_queries_match_expectations() {
        let (s, retro, nodes) = fig1_store();
        let grid = retro.produced(nodes.load, "grid").unwrap().hash;
        assert_eq!(s.generators(grid), vec![(retro.exec, nodes.load)]);
        let hist_file = retro.produced(nodes.save_hist, "file").unwrap().hash;
        let lineage = s.lineage_runs(hist_file);
        let ids: Vec<_> = lineage.iter().map(|(_, n)| *n).collect();
        assert!(ids.contains(&nodes.load) && ids.contains(&nodes.hist));
        assert!(!ids.contains(&nodes.iso));
        let derived = s.derived_artifacts(grid);
        assert!(derived.contains(&hist_file));
        assert_eq!(s.run_count(), 8);
        assert!(s.runs_per_module().contains(&("SaveFile@1".to_string(), 2)));
    }

    #[test]
    fn triple_and_graph_store_agree() {
        use crate::graphstore::GraphStore;
        let (ts, retro, nodes) = fig1_store();
        let mut gs = GraphStore::new();
        gs.ingest(&retro);
        let iso_file = retro.produced(nodes.save_iso, "file").unwrap().hash;
        assert_eq!(ts.lineage_runs(iso_file), gs.lineage_runs(iso_file));
        assert_eq!(ts.generators(iso_file), gs.generators(iso_file));
        let grid = retro.produced(nodes.load, "grid").unwrap().hash;
        assert_eq!(ts.derived_artifacts(grid), gs.derived_artifacts(grid));
        assert_eq!(ts.runs_per_module(), gs.runs_per_module());
    }

    #[test]
    fn stats_distinguish_keyed_patterns_from_full_scans() {
        let (s, retro, nodes) = fig1_store();
        assert_eq!(s.stats().snapshot().total_reads(), 0, "ingest not counted");
        let grid = retro.produced(nodes.load, "grid").unwrap().hash;
        let before = s.stats().snapshot();
        let _ = s.generators(grid);
        let d = s.stats().snapshot().delta(&before);
        assert_eq!(d.keyed_lookups, 1);
        assert_eq!(d.scans, 0);
        assert!(d.triple_reads >= 1);
        let before = s.stats().snapshot();
        let _ = s.pattern(None, None, None);
        let d = s.stats().snapshot().delta(&before);
        assert_eq!(d.scans, 1);
        assert_eq!(d.triple_reads, s.len() as u64);
    }

    #[test]
    fn optimized_adjacency_paths_agree_with_pattern_joins() {
        let (s, retro, nodes) = fig1_store();
        let grid = retro.produced(nodes.load, "grid").unwrap().hash;
        let hist_file = retro.produced(nodes.save_hist, "file").unwrap().hash;
        let naive = (
            s.generators(grid),
            s.lineage_runs(hist_file),
            s.derived_artifacts(grid),
            s.runs_per_module(),
            s.run_count(),
        );
        s.set_optimized(true);
        assert!(s.optimized());
        let before = s.stats().snapshot();
        let fast = (
            s.generators(grid),
            s.lineage_runs(hist_file),
            s.derived_artifacts(grid),
            s.runs_per_module(),
            s.run_count(),
        );
        let d = s.stats().snapshot().delta(&before);
        assert_eq!(fast, naive, "adjacency answers must equal pattern joins");
        assert_eq!(d.scans, 0, "optimized paths never scan");
        assert!(d.keyed_lookups >= 5, "every probe is keyed");
        s.set_optimized(false);
        // Unknown anchors stay empty in optimized mode too.
        s.set_optimized(true);
        assert!(s.generators(0xdead).is_empty());
        assert!(s.lineage_runs(0xdead).is_empty());
        assert!(s.derived_artifacts(0xdead).is_empty());
    }

    #[test]
    fn empty_store_queries_are_empty() {
        let s = TripleStore::new();
        assert!(s.generators(1).is_empty());
        assert!(s.lineage_runs(1).is_empty());
        assert!(s.is_empty());
        assert_eq!(s.run_count(), 0);
    }
}
