//! E16: what does watching a *query* cost?
//!
//! The store instrumentation (`StoreStats`) stays on by default, so its
//! price must be negligible. This experiment runs the Provenance
//! Challenge query suite (lineage, generating runs, impact, runs per
//! module) against all four backends twice — recorder disabled
//! (unobserved baseline) and enabled — measured interleaved like E15 so
//! machine drift hits both variants equally. Each timed sample loops the
//! query many times: single evaluations are microsecond-scale and would
//! drown in timer noise. Results land in `BENCH_query.json`, including
//! the access profile that explains *why* the backends differ.

use prov_core::capture::{CaptureLevel, ProvenanceCapture};
use prov_core::model::{ArtifactHash, RetrospectiveProvenance};
use prov_store::{GraphStore, LogStore, ProvenanceStore, RelStore, StatsSnapshot, TripleStore};
use wf_engine::synth::challenge_workflow;
use wf_engine::{standard_registry, Executor};

/// Query evaluations per timed sample (one "rep" = this many runs of the
/// query). Raises each sample well above timer resolution.
const INNER_LOOP: usize = 32;

/// One backend × query measurement.
#[derive(Debug)]
pub struct QueryObsRow {
    /// Backend name (`graph` / `relational` / `triple` / `log`).
    pub backend: String,
    /// Query name from the challenge suite.
    pub query: String,
    /// Result rows the query produces.
    pub rows: usize,
    /// Median time per sample with the recorder disabled (µs, whole
    /// inner loop).
    pub unobserved_us: f64,
    /// Median time per sample with the recorder enabled (µs).
    pub observed_us: f64,
    /// Access profile of one observed evaluation.
    pub accesses: StatsSnapshot,
}

impl QueryObsRow {
    /// Observation overhead relative to the disabled recorder, in percent.
    pub fn overhead_pct(&self) -> f64 {
        (self.observed_us / self.unobserved_us - 1.0) * 100.0
    }
}

/// Median wall times of two variants measured interleaved (one sample of
/// each per round, after a warm-up round).
pub(crate) fn medians2(reps: usize, mut a: impl FnMut(), mut b: impl FnMut()) -> (f64, f64) {
    let mut sa = Vec::with_capacity(reps);
    let mut sb = Vec::with_capacity(reps);
    a();
    b();
    let sample = |f: &mut dyn FnMut()| {
        let t = std::time::Instant::now();
        f();
        t.elapsed().as_secs_f64() * 1e6
    };
    for _ in 0..reps {
        sa.push(sample(&mut a));
        sb.push(sample(&mut b));
    }
    let med = |s: &mut Vec<f64>| {
        s.sort_by(|x, y| x.partial_cmp(y).unwrap());
        s[s.len() / 2]
    };
    (med(&mut sa), med(&mut sb))
}

/// A corpus of captured Provenance Challenge executions.
pub fn challenge_corpus(n_execs: usize) -> Vec<RetrospectiveProvenance> {
    let exec = Executor::new(standard_registry());
    let mut out = Vec::with_capacity(n_execs);
    for i in 0..n_execs {
        let wf = challenge_workflow(i as u64 + 1, 3, 3);
        let mut cap = ProvenanceCapture::new(CaptureLevel::Fine);
        let r = exec.run_observed(&wf, &mut cap).expect("runs");
        out.push(cap.take(r.exec).expect("captured"));
    }
    out
}

/// The query suite's anchors: a deep lineage target (last artifact of the
/// last execution) and an impact source (first artifact of the first).
pub(crate) fn anchors(corpus: &[RetrospectiveProvenance]) -> (ArtifactHash, ArtifactHash) {
    let target = corpus
        .last()
        .and_then(|r| r.runs.last())
        .and_then(|run| run.outputs.first())
        .map(|(_, h)| *h)
        .expect("corpus non-empty");
    let source = corpus
        .first()
        .and_then(|r| r.runs.first())
        .and_then(|run| run.outputs.first())
        .map(|(_, h)| *h)
        .expect("corpus non-empty");
    (target, source)
}

/// Run E16 over the four backends. The log backend runs ephemeral — the
/// comparison is about access patterns, not disk framing.
pub fn experiment_queryobs(corpus: &[RetrospectiveProvenance], reps: usize) -> Vec<QueryObsRow> {
    let (target, source) = anchors(corpus);

    type Maker = Box<dyn Fn() -> Box<dyn ProvenanceStore>>;
    let makers: Vec<Maker> = vec![
        Box::new(|| Box::new(GraphStore::new())),
        Box::new(|| Box::new(RelStore::new())),
        Box::new(|| Box::new(TripleStore::new())),
        Box::new(|| Box::new(LogStore::ephemeral())),
    ];

    type Q = (&'static str, Box<dyn Fn(&dyn ProvenanceStore) -> usize>);
    let suite: Vec<Q> = vec![
        ("lineage", Box::new(move |s| s.lineage_runs(target).len())),
        ("generators", Box::new(move |s| s.generators(target).len())),
        (
            "impact",
            Box::new(move |s| s.derived_artifacts(source).len()),
        ),
        ("runs_per_module", Box::new(|s| s.runs_per_module().len())),
    ];

    let mut rows = Vec::new();
    for maker in &makers {
        let mut store = maker();
        for r in corpus {
            store.ingest(r);
        }
        let store = &*store;
        for (name, q) in &suite {
            let (unobserved_us, observed_us) = medians2(
                reps,
                || {
                    store.stats().set_enabled(false);
                    for _ in 0..INNER_LOOP {
                        std::hint::black_box(q(store));
                    }
                },
                || {
                    store.stats().set_enabled(true);
                    for _ in 0..INNER_LOOP {
                        std::hint::black_box(q(store));
                    }
                },
            );
            store.stats().set_enabled(true);
            let before = store.stats().snapshot();
            let rows_out = q(store);
            let accesses = store.stats().snapshot().delta(&before);
            rows.push(QueryObsRow {
                backend: store.backend_name().to_string(),
                query: name.to_string(),
                rows: rows_out,
                unobserved_us,
                observed_us,
                accesses,
            });
        }
    }
    rows
}

/// Aggregate overhead across all rows: total observed time vs total
/// unobserved time, in percent (time-weighted, so fast queries cannot
/// dominate through ratio noise).
pub fn overall_overhead_pct(rows: &[QueryObsRow]) -> f64 {
    let unob: f64 = rows.iter().map(|r| r.unobserved_us).sum();
    let obs: f64 = rows.iter().map(|r| r.observed_us).sum();
    (obs / unob - 1.0) * 100.0
}

/// Render E16 rows as the stable machine-readable `BENCH_query.json`
/// document (hand-rendered: no JSON library on this path).
pub fn query_obs_json(rows: &[QueryObsRow]) -> String {
    let mut out =
        String::from("{\n  \"experiment\": \"E16 query observability overhead\",\n  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let a = &r.accesses;
        out.push_str(&format!(
            "    {{\"backend\": \"{}\", \"query\": \"{}\", \"rows\": {}, \
             \"unobserved_us\": {:.1}, \"observed_us\": {:.1}, \"overhead_pct\": {:.2}, \
             \"accesses\": {{\"nodes\": {}, \"edges\": {}, \"triples\": {}, \"rows\": {}, \
             \"records\": {}, \"keyed\": {}, \"scans\": {}}}}}{}\n",
            r.backend,
            r.query,
            r.rows,
            r.unobserved_us,
            r.observed_us,
            r.overhead_pct(),
            a.node_reads,
            a.edge_reads,
            a.triple_reads,
            a.row_reads,
            a.record_reads,
            a.keyed_lookups,
            a.scans,
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    out.push_str(&format!(
        "  ],\n  \"overall_overhead_pct\": {:.2}\n}}\n",
        overall_overhead_pct(rows)
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_covers_four_backends_and_four_queries() {
        let corpus = challenge_corpus(3);
        let rows = experiment_queryobs(&corpus, 1);
        assert_eq!(rows.len(), 16);
        let backends: std::collections::BTreeSet<&str> =
            rows.iter().map(|r| r.backend.as_str()).collect();
        assert_eq!(
            backends.into_iter().collect::<Vec<_>>(),
            ["graph", "log", "relational", "triple"]
        );
        for r in &rows {
            assert!(r.unobserved_us > 0.0 && r.observed_us > 0.0);
        }
        // Backends agree on every answer (same rows for the same query).
        for q in ["lineage", "generators", "impact", "runs_per_module"] {
            let answers: std::collections::BTreeSet<usize> = rows
                .iter()
                .filter(|r| r.query == q)
                .map(|r| r.rows)
                .collect();
            assert_eq!(answers.len(), 1, "backends disagree on {q}: {answers:?}");
        }
        // The access profiles explain the work: every lineage evaluation
        // touched *something*, and the log backend always scans.
        for r in rows.iter().filter(|r| r.query == "lineage") {
            assert!(
                r.accesses.total_reads() + r.accesses.keyed_lookups + r.accesses.scans > 0,
                "{} lineage recorded no accesses",
                r.backend
            );
        }
        assert!(rows
            .iter()
            .filter(|r| r.backend == "log")
            .all(|r| r.accesses.scans > 0));
    }

    #[test]
    fn json_report_is_parseable_and_has_the_aggregate() {
        let corpus = challenge_corpus(2);
        let rows = experiment_queryobs(&corpus, 1);
        let doc = query_obs_json(&rows);
        let parsed = prov_telemetry::parse_json(&doc).expect("valid JSON");
        let arr = parsed.get("rows").and_then(|r| r.as_array()).unwrap();
        assert_eq!(arr.len(), rows.len());
        for row in arr {
            assert!(row.get("overhead_pct").is_some());
            assert!(row.get("accesses").unwrap().get("scans").is_some());
        }
        assert!(parsed.get("overall_overhead_pct").is_some());
    }
}
