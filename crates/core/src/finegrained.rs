//! Connecting database and workflow provenance (§2.4, open problems).
//!
//! "To understand the provenance of a result, it is therefore important to
//! be able to connect provenance information across databases and
//! workflows. Combining these disparate forms of provenance information
//! will require a framework in which database operators and workflow
//! modules can be treated uniformly, and a model in which the interaction
//! between the structure of data and the structure of workflows can be
//! captured."
//!
//! The engine half lives in `wf_engine::dbops`: relational operators run as
//! ordinary workflow modules (so module-level causality is captured the
//! normal way) and additionally emit a `rowprov` table mapping each output
//! row to its contributing input rows. This module composes those
//! per-operator maps across the workflow graph: [`RowLineageTracer`]
//! answers *"which base-table rows does this output row depend on?"* — the
//! fine-grained why-provenance question — while the ordinary
//! [`crate::causality`] graph keeps answering the module-level one. Both
//! views coexist over the same execution, which is exactly the uniform
//! treatment the paper asks for.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use wf_engine::{ExecutionResult, Value};
use wf_model::{NodeId, Workflow};

/// A reference to one row of one table value: the row `row` of the table
/// produced on `node`'s output port `port`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RowRef {
    /// Producing node.
    pub node: NodeId,
    /// Output port carrying the table.
    pub port: String,
    /// Row index within that table.
    pub row: usize,
}

impl RowRef {
    /// Construct a row reference.
    pub fn new(node: NodeId, port: &str, row: usize) -> Self {
        Self {
            node,
            port: port.to_string(),
            row,
        }
    }
}

impl std::fmt::Display for RowRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}.{}[{}]", self.node, self.port, self.row)
    }
}

/// Traces row-level lineage through an execution, composing the `rowprov`
/// outputs of database-operator modules across the workflow's connections.
#[derive(Debug)]
pub struct RowLineageTracer<'a> {
    result: &'a ExecutionResult,
    wf: &'a Workflow,
}

impl<'a> RowLineageTracer<'a> {
    /// Build a tracer over one execution of `wf`.
    pub fn new(wf: &'a Workflow, result: &'a ExecutionResult) -> Self {
        Self { result, wf }
    }

    /// Does this node participate in row-level provenance (i.e. did it
    /// produce a `rowprov` output)?
    pub fn has_row_provenance(&self, node: NodeId) -> bool {
        self.result.output(node, "rowprov").is_some()
    }

    /// The `rowprov` entries of a node: `(out_row, input_index, in_row)`.
    fn rowprov(&self, node: NodeId) -> Vec<(usize, usize, usize)> {
        match self.result.output(node, "rowprov") {
            Some(Value::Table(t)) => t
                .rows
                .iter()
                .map(|r| (r[0] as usize, r[1] as usize, r[2] as usize))
                .collect(),
            _ => Vec::new(),
        }
    }

    /// The input ports of `node`, in the lexicographic order the operators
    /// used when emitting `input` indexes, each resolved to its upstream
    /// endpoint.
    fn input_endpoints(&self, node: NodeId) -> Vec<(String, NodeId, String)> {
        let mut eps: Vec<(String, NodeId, String)> = self
            .wf
            .inputs_of(node)
            .map(|c| (c.to.port.clone(), c.from.node, c.from.port.clone()))
            .collect();
        eps.sort();
        eps
    }

    /// Immediate row-level contributors of `at`: the input rows the
    /// operator declared for that output row, re-addressed to the upstream
    /// nodes' output tables.
    pub fn contributors(&self, at: &RowRef) -> Vec<RowRef> {
        // Only the operator's primary table output carries row provenance.
        if at.port != "out" || !self.has_row_provenance(at.node) {
            return Vec::new();
        }
        let eps = self.input_endpoints(at.node);
        self.rowprov(at.node)
            .into_iter()
            .filter(|(o, _, _)| *o == at.row)
            .filter_map(|(_, input, in_row)| {
                eps.get(input)
                    .map(|(_, up_node, up_port)| RowRef::new(*up_node, up_port, in_row))
            })
            .collect()
    }

    /// Transitive row lineage of `at`, excluding `at` itself: every row of
    /// every upstream table that contributed. Rows of *source* operators
    /// (no contributors of their own) are the base facts.
    pub fn lineage(&self, at: &RowRef) -> BTreeSet<RowRef> {
        let mut seen: BTreeSet<RowRef> = BTreeSet::new();
        let mut queue: VecDeque<RowRef> = self.contributors(at).into();
        while let Some(r) = queue.pop_front() {
            if seen.insert(r.clone()) {
                for c in self.contributors(&r) {
                    if !seen.contains(&c) {
                        queue.push_back(c);
                    }
                }
            }
        }
        seen
    }

    /// The *base rows* of `at`'s lineage: contributing rows of tables whose
    /// producing operator has no row-level inputs of its own (e.g.
    /// `TableSource`). These are the database facts the output row depends
    /// on.
    pub fn base_rows(&self, at: &RowRef) -> BTreeSet<RowRef> {
        self.lineage(at)
            .into_iter()
            .filter(|r| self.contributors(r).is_empty())
            .collect()
    }

    /// Forward direction: which rows of `of_node`'s output (transitively)
    /// depend on the base row `base`? The row-level *invalidation* query —
    /// "this database fact was wrong; which result rows are tainted?"
    pub fn tainted_rows(&self, base: &RowRef, of_node: NodeId) -> BTreeSet<usize> {
        let mut tainted = BTreeSet::new();
        if let Some(Value::Table(t)) = self.result.output(of_node, "out") {
            for row in 0..t.len() {
                let r = RowRef::new(of_node, "out", row);
                if self.lineage(&r).contains(base) {
                    tainted.insert(row);
                }
            }
        }
        tainted
    }

    /// Per-node summary: (rows produced, rowprov entries) for every node
    /// that participates in row-level provenance.
    pub fn coverage(&self) -> BTreeMap<NodeId, (usize, usize)> {
        let mut out = BTreeMap::new();
        for node in self.wf.nodes.keys() {
            if self.has_row_provenance(*node) {
                let rows = match self.result.output(*node, "out") {
                    Some(Value::Table(t)) => t.len(),
                    _ => 0,
                };
                out.insert(*node, (rows, self.rowprov(*node).len()));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wf_engine::{standard_registry, Executor};
    use wf_model::WorkflowBuilder;

    /// source_a ⋈ source_b → filter → aggregate: the §2.4 scenario of data
    /// "selected from a database, joined with data from other databases …
    /// and used in an analysis".
    fn pipeline() -> (Workflow, NodeId, NodeId, NodeId, NodeId, NodeId) {
        let mut b = WorkflowBuilder::new(1, "db-pipeline");
        let src_a = b.add_labeled("TableSource", "measurements db");
        b.param(src_a, "rows", 12i64).param(src_a, "seed", 1i64);
        let src_b = b.add_labeled("TableSource", "reference db");
        b.param(src_b, "rows", 12i64).param(src_b, "seed", 2i64);
        let join = b.add("TableJoin");
        b.param(join, "left_col", "id")
            .param(join, "right_col", "id");
        let filter = b.add("TableFilter");
        b.param(filter, "column", "value")
            .param(filter, "min", 30.0f64);
        let agg = b.add("TableAggregate");
        b.param(agg, "group_col", "grp")
            .param(agg, "agg_col", "value");
        b.connect(src_a, "out", join, "left")
            .connect(src_b, "out", join, "right")
            .connect(join, "out", filter, "in")
            .connect(filter, "out", agg, "in");
        (b.build(), src_a, src_b, join, filter, agg)
    }

    fn run(wf: &Workflow) -> ExecutionResult {
        Executor::new(standard_registry()).run(wf).expect("runs")
    }

    #[test]
    fn contributors_walk_one_step() {
        let (wf, _, _, join, filter, _) = pipeline();
        let result = run(&wf);
        let tracer = RowLineageTracer::new(&wf, &result);
        let c = tracer.contributors(&RowRef::new(filter, "out", 0));
        assert_eq!(c.len(), 1, "filter rows have exactly one contributor");
        assert_eq!(c[0].node, join);
        assert_eq!(c[0].port, "out");
    }

    #[test]
    fn lineage_reaches_both_databases() {
        let (wf, src_a, src_b, _, _, agg) = pipeline();
        let result = run(&wf);
        let tracer = RowLineageTracer::new(&wf, &result);
        let out = result
            .output(agg, "out")
            .unwrap()
            .as_table()
            .unwrap()
            .clone();
        assert!(!out.is_empty(), "aggregate produced groups");
        let base = tracer.base_rows(&RowRef::new(agg, "out", 0));
        assert!(!base.is_empty());
        let nodes: BTreeSet<NodeId> = base.iter().map(|r| r.node).collect();
        assert!(
            nodes.contains(&src_a) && nodes.contains(&src_b),
            "an aggregate over a join depends on rows of BOTH source databases: {nodes:?}"
        );
    }

    #[test]
    fn base_rows_are_exactly_the_contributing_facts() {
        let (wf, src_a, _, _, filter, _) = pipeline();
        let result = run(&wf);
        let tracer = RowLineageTracer::new(&wf, &result);
        // For a filter row, the left-source base row's value must match the
        // filter row's value column (the join preserved left columns).
        let fil = result
            .output(filter, "out")
            .unwrap()
            .as_table()
            .unwrap()
            .clone();
        let src = result
            .output(src_a, "out")
            .unwrap()
            .as_table()
            .unwrap()
            .clone();
        let vi = fil.column_index("value").unwrap();
        for row in 0..fil.len() {
            let base = tracer.base_rows(&RowRef::new(filter, "out", row));
            let a_rows: Vec<usize> = base
                .iter()
                .filter(|r| r.node == src_a)
                .map(|r| r.row)
                .collect();
            assert_eq!(a_rows.len(), 1);
            assert_eq!(src.rows[a_rows[0]][vi], fil.rows[row][vi]);
        }
    }

    #[test]
    fn tainted_rows_is_the_inverse_of_lineage() {
        let (wf, src_a, _, _, _, agg) = pipeline();
        let result = run(&wf);
        let tracer = RowLineageTracer::new(&wf, &result);
        let out = result
            .output(agg, "out")
            .unwrap()
            .as_table()
            .unwrap()
            .clone();
        // Pick a base row that actually contributed to group 0.
        let base = tracer
            .base_rows(&RowRef::new(agg, "out", 0))
            .into_iter()
            .find(|r| r.node == src_a)
            .expect("group 0 has a left-source fact");
        let tainted = tracer.tainted_rows(&base, agg);
        assert!(tainted.contains(&0));
        // Consistency: every tainted row really has `base` in its lineage.
        for &row in &tainted {
            assert!(tracer
                .lineage(&RowRef::new(agg, "out", row))
                .contains(&base));
        }
        let _ = out;
    }

    #[test]
    fn non_database_nodes_have_no_row_provenance() {
        let mut b = WorkflowBuilder::new(1, "mixed");
        let src = b.add("TableSource");
        let grid = b.add("TableToGrid");
        b.connect(src, "out", grid, "in");
        let wf = b.build();
        let result = run(&wf);
        let tracer = RowLineageTracer::new(&wf, &result);
        assert!(tracer.has_row_provenance(src));
        assert!(!tracer.has_row_provenance(grid));
        assert!(tracer
            .contributors(&RowRef::new(grid, "grid", 0))
            .is_empty());
        let cov = tracer.coverage();
        assert!(cov.contains_key(&src));
        assert!(!cov.contains_key(&grid));
    }

    #[test]
    fn source_rows_are_their_own_base() {
        let (wf, src_a, ..) = pipeline();
        let result = run(&wf);
        let tracer = RowLineageTracer::new(&wf, &result);
        let r = RowRef::new(src_a, "out", 3);
        assert!(tracer.contributors(&r).is_empty());
        assert!(tracer.lineage(&r).is_empty());
    }

    #[test]
    fn row_and_module_provenance_coexist() {
        // The same execution supports BOTH granularities: module-level
        // causality via capture, row-level via the tracer — §2.4's uniform
        // treatment.
        use crate::capture::{CaptureLevel, ProvenanceCapture};
        use crate::causality::CausalityGraph;
        let (wf, src_a, _, _, _, agg) = pipeline();
        let exec = Executor::new(standard_registry());
        let mut cap = ProvenanceCapture::new(CaptureLevel::Fine);
        let result = exec.run_observed(&wf, &mut cap).expect("runs");
        let retro = cap.take(result.exec).expect("captured");
        // Module level: the aggregate derives from the measurements db.
        let g = CausalityGraph::from_retrospective(&retro);
        let agg_out = retro.produced(agg, "out").expect("agg table").hash;
        let src_out = retro.produced(src_a, "out").expect("src table").hash;
        assert!(g.derived_from(agg_out, src_out));
        // Row level: group 0 depends on specific rows of that db.
        let tracer = RowLineageTracer::new(&wf, &result);
        let base = tracer.base_rows(&RowRef::new(agg, "out", 0));
        assert!(base.iter().any(|r| r.node == src_a));
    }

    #[test]
    fn rowref_display_is_compact() {
        assert_eq!(RowRef::new(NodeId(4), "out", 7).to_string(), "n4.out[7]");
    }
}
