#!/usr/bin/env python3
"""Regenerate EXPERIMENTS.md from the `report` binary's output.

Usage:
    cargo run --release -p bench --bin report > /tmp/report.txt
    python3 scripts/gen_experiments.py /tmp/report.txt > EXPERIMENTS.md

The measured tables come from the report; the claim/expectation/verdict
prose is maintained here.
"""

import re
import sys

SECTIONS = [
    (
        "E1",
        "E1 — Figure 1: prospective vs. retrospective provenance",
        'Figure 1 shows a medical-imaging workflow whose definition is a "recipe" (prospective provenance) and whose run yields a detailed log (retrospective provenance); data dependencies let results be invalidated "in the event that the CT scanner … is found to be defective".',
        "The 8-module specification produces 8 module runs and 8 artifacts; invalidating the scan must invalidate every downstream artifact in both branches; the isosurface product's reproduction slice must contain exactly its 5-stage branch.",
        "Reproduced. All 7 downstream artifacts are invalidated by the defective scan, and the reproduction slice is exactly load → isosurface → smooth → render → save (5 runs), excluding the histogram branch.",
    ),
    (
        "E2",
        "E2 — Figure 2: refinement by analogy",
        '"The user chooses a pair of data products to serve as an analogy template … the system identifies the most likely match" even when "the surrounding modules do not match exactly".',
        "At zero structural noise the transfer succeeds cleanly with high matcher confidence; as labels are scrambled, decoys added, and backbone stages removed, confidence decays and some transfers fail.",
        "Reproduced. Clean-transfer rate and mean match score both decay with noise (score ≈0.91 → ≈0.66); transfer stays ~40–50 µs at these sizes.",
    ),
    (
        "E2b",
        "E2b — ablation: neighbourhood refinement in the matcher",
        "Figure 2's caption: \"the surrounding modules do not match exactly: the system identifies the most likely match\" — implying matching must exploit *structure*, not just labels.",
        "On pipelines with duplicate module kinds and scrambled labels (only position disambiguates), label-only matching (0 refinement iterations) should be near chance; with neighbourhood refinement, near perfect.",
        "Confirmed, decisively: one similarity-flooding iteration lifts duplicate-match accuracy from ≈0.12 (worse than the 1/3 chance level — ties break adversarially) to 1.00, at negligible cost. The structural component of the matcher is what makes Figure 2 possible.",
    ),
    (
        "E3",
        "E3 — provenance capture overhead",
        '"Workflow systems … can be easily instrumented to automatically capture provenance" (§2.2) — i.e., capture is cheap relative to real module work.',
        "Fine-grained capture costs more than coarse, which costs more than off; overhead shrinks toward zero as per-module work grows (capture cost is per-event, work is per-module).",
        "Reproduced. With tiny modules (200 hash rounds) fine capture adds ~10–25%; at realistic module weights (≥2000 rounds) the overhead is within measurement noise (≈±2%).",
    ),
    (
        "E4",
        "E4 — storage backends",
        '"A wide variety of data models and storage systems have been used … RDF and XML dialects stored as files … tuples stored in relational database tables", and query solutions are "closely tied to the storage models used" (§2.2).',
        "The purpose-built graph store should win lineage traversals and ingest; the relational layout should win flat aggregates; the unindexed log should be cheap to write but slow to query; the triple store pays dictionary + three-index overhead on ingest.",
        "Reproduced. The graph store is fastest on ingest and lineage; the relational store wins the flat aggregate (single indexed-column scan) but pays ~6× on lineage joins; the triple store has the slowest ingest (3 indexes + interning); the log's queries are full scans.",
    ),
    (
        "E4b",
        "E4b — ablation: relational hash indexes on/off",
        "The relational baseline of §2.2 is only competitive because real systems index their provenance tables.",
        "Index-backed lookups turn each join probe from O(rows) into ~O(1); the gap should widen with corpus size.",
        "Confirmed: the index speedup grows from 2× at 5 executions to ~16× at 80, with identical answers (asserted in the harness).",
    ),
    (
        "E5",
        "E5 — query approaches vs. provenance depth",
        '"Languages like SQL, Prolog and SPARQL … none of them have been designed for provenance. For that reason, simple queries can be awkward and complex" (§2.2) — lineage needs recursion that join-based engines emulate with one join round per depth level.',
        "Native graph traversal scales near-linearly with small constants; relational self-join chains and triple-pattern fixpoints grow markedly faster; PQL pays a small language overhead over the raw graph API.",
        "Reproduced. At depth 512 the native traversal is ~14–19× faster than the relational join chain and the triple fixpoint; PQL's language layer costs ~2× over raw adjacency at small depths, dominated by result materialization at large depths.",
    ),
    (
        "E6",
        "E6 — user views against information overload",
        '"The growth in the volume of provenance data also calls for techniques that deal with information overload" (§2.4); ZOOM-style user views abstract provenance without losing derivations.',
        "Fewer, larger composite groups hide more internal artifacts and shrink the graph monotonically; with one group per run (k = 24) nothing is hidden. Derivations between visible artifacts are never lost (property-tested).",
        "Reproduced. The 48-node provenance graph shrinks to 9 nodes (ratio 0.19) under a single-composite view and returns to 48 at singleton granularity; reduction is monotone in group size.",
    ),
    (
        "E7",
        "E7 — interoperability: the Provenance Challenge",
        '"It becomes necessary to integrate provenance derived from different systems and represented using different models. This was the goal of the Second Provenance Challenge … preliminary results … indicate that such an integration is possible" (§2.4).',
        "No single system's account can answer the cross-system queries (each holds only its stages); after OPM integration joined on artifact content hashes, all nine challenge queries become answerable.",
        "Reproduced. Alone, the three simulated systems see 0, 0, and 2 of the 16 processes in the atlas graphic's lineage; the integrated OPM graph sees all 16 and answers all nine challenge queries (including the annotation-joined ones).",
    ),
    (
        "E8",
        "E8 — workflow evolution: version materialization",
        '"Managing rapidly-evolving scientific workflows" (§2.3, [20]): change-based histories store actions, so materializing a version replays its path.',
        "Replay cost grows linearly with history depth; snapshot caching bounds the replayed suffix (depth mod interval), amortizing materialization.",
        "Reproduced. Pure replay grows linearly; with snapshots every 16 commits the replayed suffix stays ≤ 15 actions and materialization time flattens (dominated by the snapshot clone).",
    ),
    (
        "E9",
        "E9 — social analysis: mined recommendations",
        '"Useful knowledge is embedded in provenance which can be re-used to simplify the construction of workflows" (§2.3); mining it is "largely unexplored" (§2.4).',
        "Held-out completion accuracy rises with corpus size and saturates; mining cost grows with the corpus.",
        "Reproduced. hit@1 rises ≈0.70 → ≈0.99 from 10 to 100 corpus workflows; hit@3 saturates at 1.00 by 30 workflows; mining stays linear and cheap.",
    ),
    (
        "E10",
        "E10 — parameter exploration with provenance-based caching",
        'Provenance enables "scalable exploration of large parameter spaces" (§2.3): runs sharing upstream inputs need not recompute them.',
        "With memoization keyed on (module, params, input hashes), only the swept suffix re-executes: executed module runs drop from 3n to n+2 and the speedup grows with the sweep width toward the prefix/suffix cost ratio.",
        "Reproduced. Executed runs drop exactly as predicted (192 → 66 at 64 configs); wall-clock speedup grows with sweep size (bounded by the isosurface stage, which legitimately must re-run per configuration).",
    ),
    (
        "E11",
        "E11 — reproducibility",
        '"A detailed record of the steps followed to produce a result allows others to reproduce and validate these results" (§2.3; SIGMOD\'08\'s own repeatability requirement).',
        "Deterministic workflows reproduce bit-identically from their retrospective record; a tampered recipe or a nondeterministic module is detected as fidelity < 1, localized to the affected branch.",
        "Reproduced. The deterministic Figure 1 workflow reproduces 8/8 artifacts; tampering with one parameter drops exactly the downstream branch (5/8 — the untouched isosurface branch still reproduces); an injected clock module is caught (1/3).",
    ),
    (
        "E12",
        "E12 — connecting database and workflow provenance",
        '§2.4, open problems: "database operators and workflow modules can be treated uniformly" with "the interaction between the structure of data and the structure of workflows" captured — our database operators run as ordinary modules and additionally emit row-level why-provenance.',
        "When one database fact turns out to be wrong, module-level provenance must invalidate every downstream artifact (the whole aggregate table: taint 1.0), while row-level provenance invalidates only the aggregate groups the fact actually fed — about 1/groups on average.",
        "Confirmed. With 8 groups, the mean row-level taint per bad fact is ≈0.12 ≈ 1/8 — an 8× precision gain over module-level invalidation, independent of table size; single-row trace cost grows with the join's fan-in as expected.",
    ),
]

INTRO = """# EXPERIMENTS — paper vs. measured

The source paper (Davidson & Freire, SIGMOD'08) is a **tutorial**: it has no
numeric tables. Its empirical content is two figures and a set of qualitative
claims about the provenance design space. DESIGN.md §3 maps each claim to an
experiment (E1–E12 plus ablations); this file records, for each, the paper's
claim, the expected qualitative *shape*, and what our implementation
measures.

All numbers below were produced by `cargo run --release -p bench --bin
report` (regenerate this file with `scripts/gen_experiments.py`). Absolute
values are machine-dependent; the shapes are not. Criterion microbenchmarks
for the same workloads live in `crates/bench/benches/`.

"""

SUMMARY = """## Summary

Every qualitative claim the tutorial makes about the provenance design space
held in this implementation: capture is near-free against real module work
(E3), purpose-built provenance storage and querying beat standard-language
emulations with widening margins (E4, E4b, E5), views and reductions tame
overload without losing derivations (E6), OPM integration turns three
mutually unintelligible accounts into one queryable record (E7),
change-based evolution provenance is cheap to materialize and
snapshot-boundable (E8), and the provenance byproducts — caching,
diff-explanation, recommendation, reproducibility checking, row-level
invalidation — all behave as the paper envisioned (E1, E2, E9, E10, E11,
E12). The ablations additionally show *why*: structural neighbourhood
refinement (not labels) is what finds Figure 2's "most likely match" (E2b),
and indexing is what keeps the relational strategy in the race (E4b).
"""


def main() -> None:
    report = open(sys.argv[1]).read()
    sections: dict[str, list[str]] = {}
    cur = None
    for line in report.splitlines():
        m = re.match(r"## (E\d+b?) —", line)
        if m:
            cur = m.group(1)
            sections[cur] = []
        if cur:
            sections[cur].append(line)
    blocks = {k: "\n".join(v).strip() for k, v in sections.items()}

    out = [INTRO]
    for key, title, claim, expect, verdict in SECTIONS:
        table = blocks[key].split("\n\n", 1)[1]
        out.append(
            f"## {title}\n\n"
            f"**Paper claim.** {claim}\n\n"
            f"**Expected shape.** {expect}\n\n"
            f"```text\n{table}\n```\n\n"
            f"**Verdict.** {verdict}\n\n"
        )
    out.append(SUMMARY)
    sys.stdout.write("".join(out))


if __name__ == "__main__":
    main()
