//! # prov-social — social analysis of scientific workflows
//!
//! §2.3 of the tutorial: "a new class of Web site has emerged that enables
//! users to upload and collectively analyze many types of data … this trend
//! is expanding to the scientific domain where a number of collaboratories
//! are under development. Science collaboratories aim to bridge this gap by
//! allowing scientists to share, re-use and refine their workflows."
//!
//! This crate is the in-process substrate of such a collaboratory:
//!
//! * [`repo`] — a multi-user workflow repository with uploads, forks
//!   (derivation attribution), tags, and search;
//! * [`mine`] — provenance analytics (§2.4 "provenance analytics …
//!   largely unexplored"): frequent-fragment mining over the corpus and
//!   completion recommendations ("users who connected X usually follow
//!   with Y"), with a held-out evaluation harness (experiment E9);
//! * [`corpus`] — deterministic corpus generators simulating a community
//!   of users building variations of common pipelines.

pub mod corpus;
pub mod mine;
pub mod repo;

pub use mine::{evaluate_recommender, FragmentMiner, RecommendationEval};
pub use repo::{Collaboratory, Entry, EntryId, UserId};
