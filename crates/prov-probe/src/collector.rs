//! The collector: ingests report blobs from many probes — in any order,
//! with duplicates, or with windows missing — and stitches the surviving
//! entries into one deterministic total order consistent with
//! happens-before.
//!
//! Ordering constraints come from two places only: a probe's own entries
//! are ordered by sequence number, and a logged `SnapshotMerged` entry
//! must follow the origin's `SnapshotProduced` entry it references. Any
//! constraint whose origin entry is missing is reported as a gap, never
//! fabricated: the merge is then ordered only after the origin entries
//! that *are* known to precede the snapshot.

use crate::clock::{LogicalClock, ProbeId};
use crate::probe::LogEntry;
use crate::report::{CodecError, Report};
use std::collections::{BTreeMap, BinaryHeap};

/// Accumulated per-probe log state, merged across reports.
#[derive(Debug, Default, Clone)]
struct ProbeLog {
    entries: BTreeMap<u64, LogEntry>,
    dropped: u64,
    clock: LogicalClock,
    trace_id: u128,
}

/// Ingests reports and stitches them into a causal total order.
#[derive(Debug, Default, Clone)]
pub struct Collector {
    probes: BTreeMap<u32, ProbeLog>,
    duplicates: u64,
    conflicts: u64,
}

/// One entry in stitched order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StitchedEntry {
    /// The probe that recorded the entry.
    pub probe: ProbeId,
    /// Its sequence number at that probe.
    pub seq: u64,
    /// The entry itself.
    pub entry: LogEntry,
}

/// A hole in the evidence: something the stitcher knows it does *not*
/// know, reported instead of being papered over.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Gap {
    /// A contiguous range of sequence numbers never arrived for a probe
    /// (a lost or late report window).
    MissingEntries {
        /// The probe with the hole.
        probe: ProbeId,
        /// First missing sequence number.
        from_seq: u64,
        /// Last missing sequence number.
        to_seq: u64,
    },
    /// The probe itself evicted entries from its ring before reporting.
    DroppedEntries {
        /// The probe that dropped.
        probe: ProbeId,
        /// How many entries were evicted.
        count: u64,
    },
    /// A merge references a snapshot-production entry that never arrived;
    /// the cross-probe edge cannot be anchored.
    DanglingMerge {
        /// The probe that logged the merge.
        probe: ProbeId,
        /// The merge entry's sequence number.
        seq: u64,
        /// The referenced origin probe.
        origin: ProbeId,
        /// The referenced (missing) origin sequence number.
        origin_seq: u64,
    },
}

impl Gap {
    /// One human-readable line.
    pub fn render(&self) -> String {
        match self {
            Gap::MissingEntries {
                probe,
                from_seq,
                to_seq,
            } => format!("{probe}: entries {from_seq}..={to_seq} never arrived"),
            Gap::DroppedEntries { probe, count } => {
                format!("{probe}: {count} entries evicted at the probe")
            }
            Gap::DanglingMerge {
                probe,
                seq,
                origin,
                origin_seq,
            } => format!("{probe}#{seq}: merge references missing {origin}#{origin_seq}"),
        }
    }
}

/// The stitched result: a deterministic causal total order plus every
/// known hole in the evidence.
#[derive(Debug, Clone, Default)]
pub struct Stitched {
    /// All surviving entries, in an order consistent with happens-before.
    pub entries: Vec<StitchedEntry>,
    /// Everything the stitcher knows is missing.
    pub gaps: Vec<Gap>,
    /// Identical `(probe, seq)` entries seen more than once.
    pub duplicates: u64,
    /// Conflicting re-reports of a `(probe, seq)` (first write wins).
    pub conflicts: u64,
    /// The distributed trace id carried by the reports, if any.
    pub trace_id: Option<u128>,
}

impl Stitched {
    /// Whether the evidence was complete (no gaps, no conflicts).
    pub fn is_complete(&self) -> bool {
        self.gaps.is_empty() && self.conflicts == 0
    }
}

impl Collector {
    /// An empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Ingest one report. Reports may arrive in any order; duplicate
    /// entries are counted and ignored, conflicting re-reports of the
    /// same `(probe, seq)` keep the first-seen entry and count a
    /// conflict.
    pub fn ingest(&mut self, report: Report) {
        let log = self.probes.entry(report.probe.0).or_default();
        log.clock.merge(&report.clock);
        log.dropped = log.dropped.max(report.dropped);
        if log.trace_id == 0 {
            log.trace_id = report.trace_id;
        } else if report.trace_id != 0 && report.trace_id != log.trace_id {
            self.conflicts += 1;
        }
        for (seq, entry) in report.entries {
            match log.entries.get(&seq) {
                None => {
                    log.entries.insert(seq, entry);
                }
                Some(existing) if *existing == entry => self.duplicates += 1,
                Some(_) => self.conflicts += 1,
            }
        }
    }

    /// Decode and ingest one binary blob.
    pub fn ingest_blob(&mut self, bytes: &[u8]) -> Result<(), CodecError> {
        self.ingest(Report::decode(bytes)?);
        Ok(())
    }

    /// Number of distinct probes seen.
    pub fn probe_count(&self) -> usize {
        self.probes.len()
    }

    /// Total entries held across all probes.
    pub fn entry_count(&self) -> usize {
        self.probes.values().map(|l| l.entries.len()).sum()
    }

    /// The trace id carried by the ingested reports, if any probe had one.
    pub fn trace_id(&self) -> Option<u128> {
        self.probes.values().map(|l| l.trace_id).find(|&t| t != 0)
    }

    /// Stitch everything ingested so far into a deterministic total order
    /// consistent with happens-before, reporting every known gap.
    pub fn stitch(&self) -> Stitched {
        // Dense-index every known (probe, seq) entry.
        let mut index: BTreeMap<(u32, u64), usize> = BTreeMap::new();
        let mut nodes: Vec<(u32, u64)> = Vec::new();
        for (&pid, log) in &self.probes {
            for &seq in log.entries.keys() {
                index.insert((pid, seq), nodes.len());
                nodes.push((pid, seq));
            }
        }

        let mut gaps: Vec<Gap> = Vec::new();
        let mut succs: Vec<Vec<usize>> = vec![Vec::new(); nodes.len()];
        let mut indegree: Vec<usize> = vec![0; nodes.len()];
        fn edge(from: usize, to: usize, indegree: &mut [usize], succs: &mut [Vec<usize>]) {
            succs[from].push(to);
            indegree[to] += 1;
        }

        for (&pid, log) in &self.probes {
            if log.dropped > 0 {
                gaps.push(Gap::DroppedEntries {
                    probe: ProbeId(pid),
                    count: log.dropped,
                });
            }
            // Program order within a probe (certain even across holes).
            let seqs: Vec<u64> = log.entries.keys().copied().collect();
            for w in seqs.windows(2) {
                if w[1] > w[0] + 1 {
                    gaps.push(Gap::MissingEntries {
                        probe: ProbeId(pid),
                        from_seq: w[0] + 1,
                        to_seq: w[1] - 1,
                    });
                }
                edge(
                    index[&(pid, w[0])],
                    index[&(pid, w[1])],
                    &mut indegree,
                    &mut succs,
                );
            }
            // Cross-probe edges from logged merges.
            for (&seq, entry) in &log.entries {
                let LogEntry::SnapshotMerged {
                    origin, origin_seq, ..
                } = entry
                else {
                    continue;
                };
                if *origin == ProbeId(pid) {
                    continue; // self-merge: program order already covers it
                }
                let me = index[&(pid, seq)];
                if let Some(&o) = index.get(&(origin.0, *origin_seq)) {
                    edge(o, me, &mut indegree, &mut succs);
                } else {
                    gaps.push(Gap::DanglingMerge {
                        probe: ProbeId(pid),
                        seq,
                        origin: *origin,
                        origin_seq: *origin_seq,
                    });
                    // Do not fabricate the missing anchor; order the merge
                    // only after origin entries known to precede the
                    // snapshot (still sound, strictly weaker).
                    if let Some(log_o) = self.probes.get(&origin.0) {
                        if let Some((&prev, _)) = log_o.entries.range(..*origin_seq).next_back() {
                            edge(index[&(origin.0, prev)], me, &mut indegree, &mut succs);
                        }
                    }
                }
            }
        }

        // Kahn's algorithm with a deterministic (probe, seq) tiebreak.
        let mut heap: BinaryHeap<std::cmp::Reverse<(u32, u64, usize)>> = BinaryHeap::new();
        for (i, &(p, s)) in nodes.iter().enumerate() {
            if indegree[i] == 0 {
                heap.push(std::cmp::Reverse((p, s, i)));
            }
        }
        let mut order: Vec<usize> = Vec::with_capacity(nodes.len());
        while let Some(std::cmp::Reverse((_, _, i))) = heap.pop() {
            order.push(i);
            for &next in &succs[i] {
                indegree[next] -= 1;
                if indegree[next] == 0 {
                    let (p, s) = nodes[next];
                    heap.push(std::cmp::Reverse((p, s, next)));
                }
            }
        }
        let mut conflicts = self.conflicts;
        if order.len() < nodes.len() {
            // Corrupt evidence formed a cycle; append the remainder in
            // (probe, seq) order and flag it.
            conflicts += (nodes.len() - order.len()) as u64;
            let mut seen = vec![false; nodes.len()];
            for &i in &order {
                seen[i] = true;
            }
            order.extend((0..nodes.len()).filter(|&i| !seen[i]));
        }

        let entries = order
            .into_iter()
            .map(|i| {
                let (pid, seq) = nodes[i];
                StitchedEntry {
                    probe: ProbeId(pid),
                    seq,
                    entry: self.probes[&pid].entries[&seq].clone(),
                }
            })
            .collect();
        Stitched {
            entries,
            gaps,
            duplicates: self.duplicates,
            conflicts,
            trace_id: self.trace_id(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::probe::Probe;

    /// Two probes, one dataflow handoff a -> b.
    fn two_site_reports() -> (Report, Report) {
        let mut a = Probe::new(ProbeId(0)).with_trace_id(42);
        let mut b = Probe::new(ProbeId(1));
        a.record_event(b"a0".to_vec());
        let snap = a.produce_snapshot();
        b.merge_snapshot(&snap);
        b.record_event(b"b0".to_vec());
        (a.report(), b.report())
    }

    fn positions(s: &Stitched) -> BTreeMap<(u32, u64), usize> {
        s.entries
            .iter()
            .enumerate()
            .map(|(i, e)| ((e.probe.0, e.seq), i))
            .collect()
    }

    #[test]
    fn stitch_orders_across_the_handoff_in_any_ingest_order() {
        let (ra, rb) = two_site_reports();
        for reports in [vec![ra.clone(), rb.clone()], vec![rb, ra]] {
            let mut c = Collector::new();
            for r in reports {
                c.ingest(r);
            }
            let s = c.stitch();
            assert!(s.is_complete(), "gaps: {:?}", s.gaps);
            let pos = positions(&s);
            assert!(pos[&(0, 1)] < pos[&(1, 0)], "produce before merge");
            assert!(pos[&(0, 0)] < pos[&(1, 1)], "a's event before b's event");
            assert_eq!(s.trace_id, Some(42));
        }
    }

    #[test]
    fn duplicates_are_counted_and_harmless() {
        let (ra, rb) = two_site_reports();
        let mut c = Collector::new();
        c.ingest(ra.clone());
        c.ingest(ra.clone());
        c.ingest(rb);
        let reference = {
            let (ra, rb) = two_site_reports();
            let mut c = Collector::new();
            c.ingest(ra);
            c.ingest(rb);
            c.stitch().entries
        };
        let s = c.stitch();
        assert_eq!(s.duplicates, ra.entries.len() as u64);
        assert_eq!(s.entries, reference, "idempotent ingest");
    }

    #[test]
    fn dropped_report_surfaces_as_dangling_merge_gap() {
        let (ra, rb) = two_site_reports();
        let mut c = Collector::new();
        c.ingest(rb); // a's report never arrives
        let s = c.stitch();
        assert!(!s.is_complete());
        assert!(matches!(
            s.gaps.as_slice(),
            [Gap::DanglingMerge {
                origin: ProbeId(0),
                ..
            }]
        ));
        // b's own entries still come out in program order.
        let pos = positions(&s);
        assert!(pos[&(1, 0)] < pos[&(1, 1)]);
        let _ = ra;
    }

    #[test]
    fn missing_window_is_reported_as_a_hole() {
        let mut p = Probe::new(ProbeId(3));
        p.record_event(vec![0]);
        let _lost = p.report();
        p.record_event(vec![1]);
        let kept = p.report();
        let mut c = Collector::new();
        c.ingest(kept);
        // Entry 0 exists at the probe but its window was lost; the
        // collector cannot know seq 0 existed, so no hole is reported —
        // but a later window plus an early window with a gap between is.
        let mut q = Probe::new(ProbeId(4));
        q.record_event(vec![0]);
        let w1 = q.report();
        q.record_event(vec![1]);
        let _w2 = q.report();
        q.record_event(vec![2]);
        let w3 = q.report();
        c.ingest(w1);
        c.ingest(w3);
        let s = c.stitch();
        assert!(s.gaps.contains(&Gap::MissingEntries {
            probe: ProbeId(4),
            from_seq: 1,
            to_seq: 1
        }));
    }

    #[test]
    fn ring_eviction_is_reported() {
        let mut p = Probe::with_capacity(ProbeId(9), 1);
        p.record_event(vec![0]);
        p.record_event(vec![1]);
        let mut c = Collector::new();
        c.ingest(p.report());
        let s = c.stitch();
        assert!(s
            .gaps
            .iter()
            .any(|g| matches!(g, Gap::DroppedEntries { count: 1, .. })));
    }

    #[test]
    fn blob_roundtrip_through_ingest() {
        let (ra, rb) = two_site_reports();
        let mut c = Collector::new();
        c.ingest_blob(&ra.encode()).unwrap();
        c.ingest_blob(&rb.encode()).unwrap();
        assert_eq!(c.probe_count(), 2);
        assert!(c.ingest_blob(b"junk").is_err());
        assert_eq!(c.trace_id(), Some(42));
    }
}
