//! E4 bench: ingest and canned-query latency across the four storage
//! backends, on a shared corpus.

use bench::storage_corpus;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use prov_store::{GraphStore, LogStore, ProvenanceStore, RelStore, TripleStore};

fn bench_storage(c: &mut Criterion) {
    let corpus = storage_corpus(10, 5, 4);
    let target = corpus
        .last()
        .and_then(|r| r.runs.last())
        .and_then(|run| run.outputs.first())
        .map(|(_, h)| *h)
        .expect("corpus non-empty");
    let log_path = std::env::temp_dir().join(format!("crit-log-{}.bin", std::process::id()));

    // Ingest.
    let mut group = c.benchmark_group("storage/ingest");
    group.bench_function(BenchmarkId::from_parameter("graph"), |b| {
        b.iter(|| {
            let mut s = GraphStore::new();
            for r in &corpus {
                s.ingest(r);
            }
            s.run_count()
        })
    });
    group.bench_function(BenchmarkId::from_parameter("relational"), |b| {
        b.iter(|| {
            let mut s = RelStore::new();
            for r in &corpus {
                s.ingest(r);
            }
            s.run_count()
        })
    });
    group.bench_function(BenchmarkId::from_parameter("triple"), |b| {
        b.iter(|| {
            let mut s = TripleStore::new();
            for r in &corpus {
                s.ingest(r);
            }
            s.run_count()
        })
    });
    group.bench_function(BenchmarkId::from_parameter("log"), |b| {
        b.iter(|| {
            let _ = std::fs::remove_file(&log_path);
            let mut s = LogStore::open(&log_path).expect("log opens");
            for r in &corpus {
                s.ingest(r);
            }
            s.run_count()
        })
    });
    group.finish();

    // Queries on pre-populated stores.
    let mut graph = GraphStore::new();
    let mut rel = RelStore::new();
    let mut triple = TripleStore::new();
    let _ = std::fs::remove_file(&log_path);
    let mut log = LogStore::open(&log_path).expect("log opens");
    for r in &corpus {
        graph.ingest(r);
        rel.ingest(r);
        triple.ingest(r);
        log.ingest(r);
    }
    let stores: Vec<(&str, &dyn ProvenanceStore)> = vec![
        ("graph", &graph),
        ("relational", &rel),
        ("triple", &triple),
        ("log", &log),
    ];

    let mut group = c.benchmark_group("storage/lineage");
    for (name, s) in &stores {
        group.bench_function(BenchmarkId::from_parameter(*name), |b| {
            b.iter(|| s.lineage_runs(target).len())
        });
    }
    group.finish();

    let mut group = c.benchmark_group("storage/aggregate");
    for (name, s) in &stores {
        group.bench_function(BenchmarkId::from_parameter(*name), |b| {
            b.iter(|| s.runs_per_module().len())
        });
    }
    group.finish();
    let _ = std::fs::remove_file(&log_path);
}

criterion_group!(benches, bench_storage);
criterion_main!(benches);
