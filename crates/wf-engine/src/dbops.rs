//! Database operators as workflow modules, with row-level provenance.
//!
//! §2.4 of the tutorial (open problems): "In many scientific applications,
//! database manipulations co-exist with the execution of workflow modules:
//! Data is selected from a database, potentially joined with data from other
//! databases, reformatted, and used in an analysis. … Combining these
//! disparate forms of provenance information will require a framework in
//! which database operators and workflow modules can be treated uniformly."
//!
//! This module *is* that framework's engine half: relational operators
//! (source / filter / project / join / aggregate / union) that run as
//! ordinary workflow modules — so module-level causality falls out of the
//! normal capture path — and that additionally emit a **`rowprov`** output:
//! a table mapping each output row to the input rows that contributed to it
//! (why-provenance). `prov-core::finegrained` composes these per-operator
//! maps into end-to-end row lineage across the workflow.
//!
//! ## The `rowprov` convention
//!
//! Every operator's `rowprov` table has columns `[out_row, input, in_row]`:
//!
//! * `out_row` — row index in the operator's `out` table;
//! * `input` — index of the input port in the *lexicographic order of the
//!   bound input port names* (0 for unary operators);
//! * `in_row` — row index in the table that arrived on that port.

use crate::error::ExecError;
use crate::registry::{ExecInput, ModuleRegistry, Outputs};
use crate::stdlib::SplitMix64;
use crate::value::{Table, Value};
use wf_model::{DataType, ModuleKind, ParamSpec, PortSpec};

/// The `rowprov` schema shared by every database operator.
pub const ROWPROV_COLUMNS: [&str; 3] = ["out_row", "input", "in_row"];

fn rowprov_table(entries: Vec<(usize, usize, usize)>) -> Value {
    Value::Table(Table::new(
        ROWPROV_COLUMNS.iter().map(|s| s.to_string()).collect(),
        entries
            .into_iter()
            .map(|(o, p, i)| vec![o as f64, p as f64, i as f64])
            .collect(),
    ))
}

fn out2(table: Table, rowprov: Vec<(usize, usize, usize)>) -> Outputs {
    let mut m = Outputs::new();
    m.insert("out".into(), Value::Table(table));
    m.insert("rowprov".into(), rowprov_table(rowprov));
    m
}

fn fail(input: &ExecInput, identity: &str, message: impl Into<String>) -> ExecError {
    ExecError::ModuleFailed {
        node: input.node,
        identity: identity.to_string(),
        message: message.into(),
    }
}

fn db_kind(name: &str) -> ModuleKind {
    ModuleKind::new(name)
        .category("database")
        .output(PortSpec::required("out", DataType::Table))
        .output(
            PortSpec::required("rowprov", DataType::Table)
                .with_doc("row-level why-provenance: [out_row, input, in_row]"),
        )
}

/// Register the database-operator modules into a registry.
pub fn register_database(r: &mut ModuleRegistry) {
    r.register(
        db_kind("TableSource")
            .doc("Deterministic synthetic base table (id, value, grp) — the 'database' being queried")
            .param(ParamSpec::new("rows", 16i64))
            .param(ParamSpec::new("seed", 0i64))
            .param(ParamSpec::new("groups", 4i64)),
        |input: &ExecInput| {
            let n = input.param_i64("rows")?.max(0) as usize;
            let seed = input.param_i64("seed")? as u64;
            let groups = input.param_i64("groups")?.max(1) as f64;
            let mut rng = SplitMix64::new(seed);
            let rows = (0..n)
                .map(|i| {
                    vec![
                        i as f64,
                        (rng.next_f64() * 100.0 * 8.0).round() / 8.0,
                        (rng.next_u64() % groups as u64) as f64,
                    ]
                })
                .collect();
            let table = Table::new(
                vec!["id".into(), "value".into(), "grp".into()],
                rows,
            );
            // A source's rows have no upstream provenance.
            let mut m = Outputs::new();
            m.insert("out".into(), Value::Table(table));
            m.insert("rowprov".into(), rowprov_table(Vec::new()));
            Ok(m)
        },
    );

    r.register(
        db_kind("TableFilter")
            .doc("σ: keep rows where `column` >= `min` (why-provenance: one input row per output row)")
            .input(PortSpec::required("in", DataType::Table))
            .param(ParamSpec::new("column", "value"))
            .param(ParamSpec::new("min", 0.0f64)),
        |input: &ExecInput| {
            let t = input.table("in")?;
            let col = input.param_text("column")?;
            let min = input.param_f64("min")?;
            let ci = t
                .column_index(col)
                .ok_or_else(|| fail(input, "TableFilter@1", format!("no column '{col}'")))?;
            let mut rows = Vec::new();
            let mut prov = Vec::new();
            for (i, row) in t.rows.iter().enumerate() {
                if row[ci] >= min {
                    prov.push((rows.len(), 0, i));
                    rows.push(row.clone());
                }
            }
            Ok(out2(Table::new(t.columns.clone(), rows), prov))
        },
    );

    r.register(
        db_kind("TableProject")
            .doc("π: keep a comma-separated list of columns (rowprov is the identity map)")
            .input(PortSpec::required("in", DataType::Table))
            .param(ParamSpec::new("columns", "id,value")),
        |input: &ExecInput| {
            let t = input.table("in")?;
            let wanted: Vec<&str> = input
                .param_text("columns")?
                .split(',')
                .map(str::trim)
                .filter(|s| !s.is_empty())
                .collect();
            let mut idxs = Vec::with_capacity(wanted.len());
            for w in &wanted {
                idxs.push(
                    t.column_index(w)
                        .ok_or_else(|| fail(input, "TableProject@1", format!("no column '{w}'")))?,
                );
            }
            let rows: Vec<Vec<f64>> = t
                .rows
                .iter()
                .map(|r| idxs.iter().map(|&i| r[i]).collect())
                .collect();
            let prov = (0..rows.len()).map(|i| (i, 0, i)).collect();
            Ok(out2(
                Table::new(wanted.iter().map(|s| s.to_string()).collect(), rows),
                prov,
            ))
        },
    );

    r.register(
        db_kind("TableJoin")
            .doc(
                "⋈: equality join on `left_col` = `right_col`; right columns are prefixed r_; \
                  rowprov records both contributing rows per output row",
            )
            .input(PortSpec::required("left", DataType::Table))
            .input(PortSpec::required("right", DataType::Table))
            .param(ParamSpec::new("left_col", "id"))
            .param(ParamSpec::new("right_col", "id")),
        |input: &ExecInput| {
            let l = input.table("left")?;
            let rt = input.table("right")?;
            let lc = input.param_text("left_col")?;
            let rc = input.param_text("right_col")?;
            let li = l
                .column_index(lc)
                .ok_or_else(|| fail(input, "TableJoin@1", format!("no left column '{lc}'")))?;
            let ri = rt
                .column_index(rc)
                .ok_or_else(|| fail(input, "TableJoin@1", format!("no right column '{rc}'")))?;
            let mut cols = l.columns.clone();
            for c in &rt.columns {
                cols.push(format!("r_{c}"));
            }
            let mut rows = Vec::new();
            let mut prov = Vec::new();
            // Input index convention: lexicographic port order — "left" is
            // 0, "right" is 1 (happens to match).
            for (i, lrow) in l.rows.iter().enumerate() {
                for (j, rrow) in rt.rows.iter().enumerate() {
                    if lrow[li] == rrow[ri] {
                        let out_row = rows.len();
                        let mut row = lrow.clone();
                        row.extend(rrow.iter().copied());
                        rows.push(row);
                        prov.push((out_row, 0, i));
                        prov.push((out_row, 1, j));
                    }
                }
            }
            Ok(out2(Table::new(cols, rows), prov))
        },
    );

    r.register(
        db_kind("TableAggregate")
            .doc(
                "γ: group by `group_col`, aggregate `agg_col` with sum|count|mean; \
                  rowprov records every contributing input row per group",
            )
            .input(PortSpec::required("in", DataType::Table))
            .param(ParamSpec::new("group_col", "grp"))
            .param(ParamSpec::new("agg_col", "value"))
            .param(ParamSpec::new("op", "sum")),
        |input: &ExecInput| {
            let t = input.table("in")?;
            let gc = input.param_text("group_col")?;
            let ac = input.param_text("agg_col")?;
            let op = input.param_text("op")?;
            let gi = t
                .column_index(gc)
                .ok_or_else(|| fail(input, "TableAggregate@1", format!("no column '{gc}'")))?;
            let ai = t
                .column_index(ac)
                .ok_or_else(|| fail(input, "TableAggregate@1", format!("no column '{ac}'")))?;
            // Stable group order: first appearance.
            let mut order: Vec<f64> = Vec::new();
            let mut members: Vec<Vec<usize>> = Vec::new();
            for (i, row) in t.rows.iter().enumerate() {
                match order.iter().position(|&g| g == row[gi]) {
                    Some(k) => members[k].push(i),
                    None => {
                        order.push(row[gi]);
                        members.push(vec![i]);
                    }
                }
            }
            let mut rows = Vec::new();
            let mut prov = Vec::new();
            for (k, (g, ms)) in order.iter().zip(members.iter()).enumerate() {
                let vals: Vec<f64> = ms.iter().map(|&i| t.rows[i][ai]).collect();
                let agg = match op {
                    "sum" => vals.iter().sum::<f64>(),
                    "count" => vals.len() as f64,
                    "mean" => vals.iter().sum::<f64>() / vals.len().max(1) as f64,
                    other => {
                        return Err(fail(
                            input,
                            "TableAggregate@1",
                            format!("unknown op '{other}'"),
                        ))
                    }
                };
                rows.push(vec![*g, agg]);
                for &m in ms {
                    prov.push((k, 0, m));
                }
            }
            Ok(out2(
                Table::new(vec![gc.to_string(), format!("{op}_{ac}")], rows),
                prov,
            ))
        },
    );

    r.register(
        db_kind("TableUnion")
            .doc("∪ (bag union): concatenate two union-compatible tables")
            .input(PortSpec::required("a", DataType::Table))
            .input(PortSpec::required("b", DataType::Table)),
        |input: &ExecInput| {
            let a = input.table("a")?;
            let b = input.table("b")?;
            if a.columns != b.columns {
                return Err(fail(input, "TableUnion@1", "union-incompatible schemas"));
            }
            let mut rows = Vec::with_capacity(a.len() + b.len());
            let mut prov = Vec::with_capacity(a.len() + b.len());
            for (i, r) in a.rows.iter().enumerate() {
                prov.push((rows.len(), 0, i));
                rows.push(r.clone());
            }
            for (i, r) in b.rows.iter().enumerate() {
                prov.push((rows.len(), 1, i));
                rows.push(r.clone());
            }
            Ok(out2(Table::new(a.columns.clone(), rows), prov))
        },
    );

    r.register(
        ModuleKind::new("TableToGrid")
            .category("database")
            .doc("Bridge from the database world into the scientific world: pack a table column into a 1-D grid")
            .input(PortSpec::required("in", DataType::Table))
            .output(PortSpec::required("grid", DataType::Grid))
            .param(ParamSpec::new("column", "value")),
        |input: &ExecInput| {
            let t = input.table("in")?;
            let col = input.param_text("column")?;
            let vals = t.column(col).ok_or_else(|| {
                fail(input, "TableToGrid@1", format!("no column '{col}'"))
            })?;
            let n = vals.len().max(1);
            let mut data = vals;
            if data.is_empty() {
                data.push(0.0);
            }
            let mut m = Outputs::new();
            m.insert(
                "grid".into(),
                Value::Grid(crate::value::Grid::new((n, 1, 1), data)),
            );
            Ok(m)
        },
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stdlib::{run_module, standard_registry};

    fn reg() -> ModuleRegistry {
        standard_registry()
    }

    fn source(reg: &ModuleRegistry, rows: i64, seed: i64) -> Value {
        run_module(
            reg,
            "TableSource",
            vec![("rows", rows.into()), ("seed", seed.into())],
            vec![],
        )
        .unwrap()["out"]
            .clone()
    }

    fn prov_entries(v: &Value) -> Vec<(usize, usize, usize)> {
        let t = v.as_table().unwrap();
        t.rows
            .iter()
            .map(|r| (r[0] as usize, r[1] as usize, r[2] as usize))
            .collect()
    }

    #[test]
    fn source_is_deterministic_with_group_column() {
        let r = reg();
        let a = source(&r, 10, 1);
        let b = source(&r, 10, 1);
        assert_eq!(a.content_hash(), b.content_hash());
        let t = a.as_table().unwrap();
        assert_eq!(t.columns, vec!["id", "value", "grp"]);
        assert!(t.column("grp").unwrap().iter().all(|&g| g < 4.0));
    }

    #[test]
    fn filter_rowprov_maps_surviving_rows() {
        let r = reg();
        let src = source(&r, 12, 2);
        let out = run_module(
            &r,
            "TableFilter",
            vec![("column", "value".into()), ("min", 50.0f64.into())],
            vec![("in", src.clone())],
        )
        .unwrap();
        let kept = out["out"].as_table().unwrap();
        let prov = prov_entries(&out["rowprov"]);
        assert_eq!(prov.len(), kept.len());
        let src_t = src.as_table().unwrap();
        for (o, p, i) in prov {
            assert_eq!(p, 0);
            // The provenance pointer is correct: the rows really match.
            assert_eq!(kept.rows[o], src_t.rows[i]);
            assert!(src_t.rows[i][1] >= 50.0);
        }
    }

    #[test]
    fn project_keeps_and_orders_columns() {
        let r = reg();
        let src = source(&r, 5, 3);
        let out = run_module(
            &r,
            "TableProject",
            vec![("columns", "grp,id".into())],
            vec![("in", src)],
        )
        .unwrap();
        let t = out["out"].as_table().unwrap();
        assert_eq!(t.columns, vec!["grp", "id"]);
        assert_eq!(prov_entries(&out["rowprov"]).len(), 5);
        let err = run_module(
            &r,
            "TableProject",
            vec![("columns", "nope".into())],
            vec![("in", source(&reg(), 2, 1))],
        )
        .unwrap_err();
        assert!(err.to_string().contains("no column"));
    }

    #[test]
    fn join_records_both_sides() {
        let r = reg();
        let left = Value::Table(Table::new(
            vec!["id".into(), "x".into()],
            vec![vec![1.0, 10.0], vec![2.0, 20.0], vec![3.0, 30.0]],
        ));
        let right = Value::Table(Table::new(
            vec!["id".into(), "y".into()],
            vec![vec![2.0, 200.0], vec![2.0, 222.0], vec![9.0, 900.0]],
        ));
        let out = run_module(
            &r,
            "TableJoin",
            vec![],
            vec![("left", left), ("right", right)],
        )
        .unwrap();
        let t = out["out"].as_table().unwrap();
        assert_eq!(t.len(), 2, "id=2 matches twice");
        assert_eq!(t.columns, vec!["id", "x", "r_id", "r_y"]);
        let prov = prov_entries(&out["rowprov"]);
        // Each output row has exactly two provenance entries (left+right).
        assert_eq!(prov.len(), 4);
        assert!(prov.contains(&(0, 0, 1)) && prov.contains(&(0, 1, 0)));
        assert!(prov.contains(&(1, 0, 1)) && prov.contains(&(1, 1, 1)));
    }

    #[test]
    fn aggregate_links_every_group_member() {
        let r = reg();
        let t = Value::Table(Table::new(
            vec!["grp".into(), "value".into()],
            vec![
                vec![0.0, 1.0],
                vec![1.0, 10.0],
                vec![0.0, 2.0],
                vec![1.0, 20.0],
                vec![0.0, 3.0],
            ],
        ));
        let out = run_module(
            &r,
            "TableAggregate",
            vec![("op", "sum".into())],
            vec![("in", t)],
        )
        .unwrap();
        let agg = out["out"].as_table().unwrap();
        assert_eq!(agg.len(), 2);
        assert_eq!(agg.rows[0], vec![0.0, 6.0]);
        assert_eq!(agg.rows[1], vec![1.0, 30.0]);
        let prov = prov_entries(&out["rowprov"]);
        let g0: Vec<usize> = prov
            .iter()
            .filter(|(o, _, _)| *o == 0)
            .map(|(_, _, i)| *i)
            .collect();
        assert_eq!(g0, vec![0, 2, 4], "why-provenance of group 0's sum");
        // count and mean work too
        for (op, expect) in [("count", 3.0), ("mean", 2.0)] {
            let out = run_module(
                &r,
                "TableAggregate",
                vec![("op", op.into())],
                vec![(
                    "in",
                    Value::Table(Table::new(
                        vec!["grp".into(), "value".into()],
                        vec![vec![0.0, 1.0], vec![0.0, 2.0], vec![0.0, 3.0]],
                    )),
                )],
            )
            .unwrap();
            assert_eq!(out["out"].as_table().unwrap().rows[0][1], expect, "{op}");
        }
    }

    #[test]
    fn union_requires_compatible_schemas() {
        let r = reg();
        let a = Value::Table(Table::new(vec!["x".into()], vec![vec![1.0]]));
        let b = Value::Table(Table::new(vec!["x".into()], vec![vec![2.0], vec![3.0]]));
        let out = run_module(&r, "TableUnion", vec![], vec![("a", a.clone()), ("b", b)]).unwrap();
        assert_eq!(out["out"].as_table().unwrap().len(), 3);
        let prov = prov_entries(&out["rowprov"]);
        assert_eq!(prov, vec![(0, 0, 0), (1, 1, 0), (2, 1, 1)]);
        let bad = Value::Table(Table::new(vec!["y".into()], vec![vec![0.0]]));
        assert!(run_module(&r, "TableUnion", vec![], vec![("a", a), ("b", bad)]).is_err());
    }

    #[test]
    fn table_to_grid_bridges_worlds() {
        let r = reg();
        let src = source(&r, 8, 4);
        let out = run_module(&r, "TableToGrid", vec![], vec![("in", src)]).unwrap();
        let g = out["grid"].as_grid().unwrap();
        assert_eq!(g.dims, (8, 1, 1));
    }

    #[test]
    fn database_modules_are_in_standard_registry() {
        let r = reg();
        for m in [
            "TableSource",
            "TableFilter",
            "TableProject",
            "TableJoin",
            "TableAggregate",
            "TableUnion",
            "TableToGrid",
        ] {
            assert!(r.catalog().get(m, 1).is_ok(), "{m} missing");
            assert!(r.executor(&format!("{m}@1")).is_ok(), "{m} body missing");
        }
    }
}
