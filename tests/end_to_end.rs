//! Cross-crate integration tests: the full platform working together on
//! the paper's running examples.

use provenance_workflows::prelude::*;
use provenance_workflows::provenance::repro::verify_reproduction;
use wf_engine::synth::{challenge_workflow, figure1_workflow};

fn capture_run(wf: &Workflow) -> (Executor, RetrospectiveProvenance) {
    let exec = Executor::new(standard_registry());
    let mut cap = ProvenanceCapture::new(CaptureLevel::Fine);
    let r = exec.run_observed(wf, &mut cap).expect("workflow runs");
    let retro = cap.take(r.exec).expect("capture completes");
    (exec, retro)
}

#[test]
fn all_four_stores_agree_on_figure1_queries() {
    let (wf, nodes) = figure1_workflow(1);
    let (_, retro) = capture_run(&wf);

    let mut graph = GraphStore::new();
    let mut rel = RelStore::new();
    let mut triple = TripleStore::new();
    let mut path = std::env::temp_dir();
    path.push(format!("e2e-log-{}.bin", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let mut log = LogStore::open(&path).expect("log opens");

    for s in [
        &mut graph as &mut dyn ProvenanceStore,
        &mut rel,
        &mut triple,
        &mut log,
    ] {
        s.ingest(&retro);
    }

    let grid = retro.produced(nodes.load, "grid").unwrap().hash;
    let iso_file = retro.produced(nodes.save_iso, "file").unwrap().hash;

    let stores: Vec<&dyn ProvenanceStore> = vec![&graph, &rel, &triple, &log];
    let reference_lineage = graph.lineage_runs(iso_file);
    let reference_derived = graph.derived_artifacts(grid);
    assert!(!reference_lineage.is_empty());
    for s in &stores {
        assert_eq!(
            s.lineage_runs(iso_file),
            reference_lineage,
            "{} lineage differs",
            s.backend_name()
        );
        assert_eq!(
            s.derived_artifacts(grid),
            reference_derived,
            "{} derived differs",
            s.backend_name()
        );
        assert_eq!(s.run_count(), 8, "{}", s.backend_name());
        assert_eq!(
            s.generators(grid),
            vec![(retro.exec, nodes.load)],
            "{}",
            s.backend_name()
        );
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn pql_agrees_with_store_api() {
    let (wf, nodes) = figure1_workflow(1);
    let (_, retro) = capture_run(&wf);
    let mut store = GraphStore::new();
    store.ingest(&retro);
    let mut pql = PqlEngine::new();
    pql.ingest(&retro);

    let iso_file = retro.produced(nodes.save_iso, "file").unwrap();
    // PQL lineage runs == store lineage runs.
    let result = pql
        .eval(&format!(
            "lineage of artifact {} where status = succeeded",
            iso_file.digest()
        ))
        .unwrap();
    let api = store.lineage_runs(iso_file.hash);
    assert_eq!(result.len(), api.len());
}

#[test]
fn opm_conversion_preserves_causality_answers() {
    let (wf, nodes) = figure1_workflow(1);
    let (_, retro) = capture_run(&wf);
    let causality = CausalityGraph::from_retrospective(&retro);
    let mut opm = OpmGraph::from_retrospective(&retro, "engine", "tester");
    opm.infer_completions();

    let grid = retro.produced(nodes.load, "grid").unwrap().hash;
    let hist_file = retro.produced(nodes.save_hist, "file").unwrap().hash;

    // Causality says the histogram file derives from the grid.
    assert!(causality.derived_from(hist_file, grid));
    // OPM agrees after completion inference.
    let g_art = opm
        .find(
            provenance_workflows::provenance::opm::OpmNodeKind::Artifact,
            &format!("{grid:016x}"),
        )
        .unwrap();
    let f_art = opm
        .find(
            provenance_workflows::provenance::opm::OpmNodeKind::Artifact,
            &format!("{hist_file:016x}"),
        )
        .unwrap();
    assert!(opm.derived_star(f_art).contains(&g_art));
}

#[test]
fn sweep_with_cache_records_cached_provenance() {
    use provenance_workflows::engine::sweep::{run_sweep, SweepAxis};
    let mut b = WorkflowBuilder::new(1, "sweep");
    let load = b.add("LoadVolume");
    let iso = b.add("Isosurface");
    b.connect(load, "grid", iso, "data");
    let wf = b.build();
    let exec = Executor::new(standard_registry()).with_cache(256);
    let axes = vec![SweepAxis::new(
        iso,
        "isovalue",
        vec![0.2f64.into(), 0.4f64.into(), 0.6f64.into()],
    )];
    let sweep = run_sweep(&exec, &wf, &axes).expect("sweep runs");
    assert_eq!(sweep.points.len(), 3);
    // LoadVolume cached for points 2 and 3.
    assert_eq!(sweep.cached_module_runs, 2);
    // Different isovalues give different meshes.
    let meshes: std::collections::BTreeSet<u64> = sweep
        .points
        .iter()
        .map(|p| p.result.output(iso, "mesh").unwrap().content_hash())
        .collect();
    assert_eq!(meshes.len(), 3);
}

#[test]
fn parallel_and_sequential_runs_have_identical_provenance_structure() {
    let wf = challenge_workflow(5, 3, 2);
    let exec = Executor::new(standard_registry());
    let mut cap_seq = ProvenanceCapture::new(CaptureLevel::Fine);
    let r1 = exec.run_observed(&wf, &mut cap_seq).unwrap();
    let seq = cap_seq.take(r1.exec).unwrap();

    let mut cap_par = ProvenanceCapture::new(CaptureLevel::Fine).with_threads(4);
    let r2 = exec.run_parallel(&wf, 4, &mut cap_par).unwrap();
    let par = cap_par.take(r2.exec).unwrap();

    assert_eq!(seq.run_count(), par.run_count());
    // Same artifacts (identical hashes), regardless of scheduling.
    assert_eq!(
        seq.artifacts.keys().collect::<Vec<_>>(),
        par.artifacts.keys().collect::<Vec<_>>()
    );
    // Same causality answers.
    let gs = CausalityGraph::from_retrospective(&seq);
    let gp = CausalityGraph::from_retrospective(&par);
    for a in seq.artifacts.keys() {
        assert_eq!(
            gs.data_dependencies(*a),
            gp.data_dependencies(*a),
            "artifact {a:x}"
        );
    }
}

#[test]
fn versioned_workflow_runs_reproduce_across_materializations() {
    // Author in a version tree, materialize, run, check reproduction.
    let (wf, _) = figure1_workflow(1);
    let mut tree = VersionTree::new(wf.id, &wf.name);
    let v = tree.import_workflow(tree.root(), &wf, "author").unwrap();
    let materialized = tree.materialize(v).unwrap();

    let (exec, retro) = capture_run(&materialized);
    let report = verify_reproduction(&exec, &materialized, &retro).unwrap();
    assert!(report.is_exact(), "{report}");

    // The prospective provenance can reference the version.
    let pro = ProspectiveProvenance::of(&materialized).at_version(v.0);
    assert!(pro.render_recipe().contains(&format!("at version {}", v.0)));
}

#[test]
fn coarse_capture_plus_spec_supports_stores() {
    // Coarse capture lacks input bindings; the spec-augmented causality
    // graph restores lineage for analysis even then.
    let (wf, nodes) = figure1_workflow(1);
    let exec = Executor::new(standard_registry());
    let mut cap = ProvenanceCapture::new(CaptureLevel::Coarse);
    let r = exec.run_observed(&wf, &mut cap).unwrap();
    let retro = cap.take(r.exec).unwrap();
    let g = CausalityGraph::from_retrospective_with_spec(&retro, &wf);
    let iso_file = retro.produced(nodes.save_iso, "file").unwrap().hash;
    let slice = g.reproduction_slice(iso_file);
    assert!(slice.contains(&nodes.load));
    assert!(slice.contains(&nodes.render));
}

#[test]
fn annotations_survive_serde_with_full_bundle() {
    let (wf, nodes) = figure1_workflow(1);
    let (_, retro) = capture_run(&wf);
    let mut notes = AnnotationStore::new();
    notes.annotate(
        Subject::Run(retro.exec, nodes.hist),
        "method",
        "32 equal-width bins",
        "susan",
    );
    let bundle = ProvenanceBundle::new(ProspectiveProvenance::of(&wf), retro);
    let bundle_json = serde_json::to_string(&bundle).unwrap();
    let notes_json = serde_json::to_string(&notes).unwrap();
    let bundle2: ProvenanceBundle = serde_json::from_str(&bundle_json).unwrap();
    let notes2: AnnotationStore = serde_json::from_str(&notes_json).unwrap();
    assert_eq!(bundle2.retrospective.run_count(), 8);
    assert_eq!(
        notes2
            .on(Subject::Run(bundle2.retrospective.exec, nodes.hist))
            .len(),
        1
    );
}

#[test]
fn failed_run_diagnosis_via_pql() {
    let mut b = WorkflowBuilder::new(1, "flaky");
    let src = b.add("ConstInt");
    let bad = b.add("FailIf");
    b.param(bad, "fail", true);
    b.param(bad, "message", "disk full");
    let sink = b.add("Identity");
    b.connect(src, "out", bad, "in")
        .connect(bad, "out", sink, "in");
    let wf = b.build();
    let (_, retro) = capture_run(&wf);
    assert_eq!(retro.status, RunStatus::Failed);

    let mut pql = PqlEngine::new();
    pql.ingest(&retro);
    assert_eq!(
        pql.eval("count runs where status = failed").unwrap(),
        QueryResult::Count(1)
    );
    assert_eq!(
        pql.eval("count runs where status = skipped").unwrap(),
        QueryResult::Count(1)
    );
    let failed = pql
        .eval("list runs where status = failed")
        .unwrap()
        .render();
    assert!(failed.contains("FailIf@1"));
    // The recorded error message is in the retrospective log.
    let run = retro.run_of(bad).unwrap();
    assert_eq!(run.status, RunStatus::Failed);
}

#[test]
fn share_reuse_refine_collaboratory_cycle() {
    // §2.3's collaboratory vision end to end: alice shares a workflow,
    // records a refinement in her version tree, and the platform carries
    // the same refinement to bob's (different) workflow by analogy — then
    // bob's refined workflow actually runs, and his fork is attributed.
    use provenance_workflows::evolution::scenario;
    let (a, b, _) = scenario::figure2_triple();

    let mut collab = Collaboratory::new();
    let alice = collab.register("alice");
    let bob = collab.register("bob");

    // Alice shares `a`, then shares the refined `b` as a fork of it.
    let ea = collab.upload(alice, &a, "quick viz");
    let eb = collab.fork(alice, ea, &b, "with smoothing").unwrap();

    // Alice's evolution provenance records how a became b.
    let mut tree = VersionTree::new(a.id, &a.name);
    let va = tree.import_workflow(tree.root(), &a, "alice").unwrap();
    let d = diff_workflows(&a, &b);
    let mut actions = Vec::new();
    for conn in &d.conns_only_left {
        actions.push(Action::DeleteConnection { conn: conn.clone() });
    }
    for id in &d.only_right {
        actions.push(Action::AddNode {
            node: b.nodes[id].clone(),
        });
    }
    for conn in &d.conns_only_right {
        actions.push(Action::AddConnection { conn: conn.clone() });
    }
    let vb = tree.commit_all(va, actions, "alice").unwrap();
    assert_eq!(tree.materialize(vb).unwrap().node_count(), b.node_count());

    // Bob finds alice's refinement and applies it to HIS workflow.
    let found = collab.search("smoothing");
    assert!(found.iter().any(|e| e.id == eb));
    // Bob's workflow differs from alice's (other data, labels, an extra
    // branch) but has no unwired decoys — it must actually run.
    let bob_wf = scenario::noisy_target(3, 0.0);
    let refined = prov_evolution::apply_by_analogy(&a, &b, &bob_wf).unwrap();
    let ec = collab
        .fork(bob, eb, &refined.workflow, "smoothing via analogy")
        .unwrap();
    assert_eq!(collab.attribution_chain(ec), vec![ea, eb, ec]);

    // Bob's refined workflow really runs, with provenance.
    let exec = Executor::new(standard_registry());
    let mut cap = ProvenanceCapture::new(CaptureLevel::Fine);
    let result = exec.run_observed(&refined.workflow, &mut cap).unwrap();
    assert!(result.succeeded());
    let retro = cap.take(result.exec).unwrap();
    assert!(retro.runs.iter().any(|r| r.identity == "SmoothMesh@1"));
}

#[test]
fn research_object_full_cycle() {
    // Publish two results with annotations, serialize the research
    // object, reload it elsewhere, and pass the repeatability review.
    use provenance_workflows::provenance::publication::ResearchObject;
    use provenance_workflows::provenance::ProspectiveProvenance;
    let exec = Executor::new(standard_registry());
    let mut obj = ResearchObject::new("Atlas study", &["alice", "bob"]);

    let (fig1, nodes) = wf_engine::synth::figure1_workflow(1);
    let mut cap = ProvenanceCapture::new(CaptureLevel::Fine);
    let r = exec.run_observed(&fig1, &mut cap).unwrap();
    let retro = cap.take(r.exec).unwrap();
    obj.annotations.annotate(
        Subject::Run(retro.exec, nodes.hist),
        "method",
        "32 bins, equal width",
        "alice",
    );
    obj.publish(
        "figure-1",
        "CT visualization",
        ProspectiveProvenance::of(&fig1),
        retro,
    );

    let fmri = wf_engine::synth::challenge_workflow(7, 2, 2);
    let mut cap = ProvenanceCapture::new(CaptureLevel::Fine);
    let r = exec.run_observed(&fmri, &mut cap).unwrap();
    obj.publish(
        "figure-2",
        "fMRI atlas",
        ProspectiveProvenance::of(&fmri),
        cap.take(r.exec).unwrap(),
    );

    let json = obj.to_json().unwrap();
    let reviewer_copy = ResearchObject::from_json(&json).unwrap();
    let reviewer_exec = Executor::new(standard_registry());
    assert!(reviewer_copy.is_repeatable(&reviewer_exec).unwrap());
    assert_eq!(reviewer_copy.len(), 2);
    assert_eq!(reviewer_copy.annotations.len(), 1);
}

#[test]
fn transient_fault_recovery_is_visible_in_events_and_provenance() {
    // A module fails on its first attempt and succeeds on the second; the
    // recovery must be visible at every layer: engine events, the captured
    // retrospective record, the rendered log, and PQL.
    use wf_engine::event::{EngineEvent, RecordingObserver};
    let (wf, nodes) = figure1_workflow(1);
    let exec = Executor::new(standard_registry())
        .with_policy(
            ExecPolicy::new().with_retry(
                RetryPolicy::attempts(3)
                    .backoff(100, 2.0, 1_000)
                    .jitter(0.5),
            ),
        )
        .with_faults(FaultPlan::new().fail_on(nodes.hist, 1, "transient glitch"));

    let mut obs = RecordingObserver::default();
    let r = exec.run_observed(&wf, &mut obs).unwrap();
    assert_eq!(r.status, RunStatus::Succeeded, "second attempt recovers");
    assert!(obs.events.iter().any(|e| matches!(
        e,
        EngineEvent::AttemptFailed { node, attempt: 1, will_retry: true, .. }
            if *node == nodes.hist
    )));
    assert!(obs.events.iter().any(|e| matches!(
        e,
        EngineEvent::BackoffStarted { node, next_attempt: 2, delay_micros, .. }
            if *node == nodes.hist && *delay_micros > 0
    )));
    assert!(obs.events.iter().any(|e| matches!(
        e,
        EngineEvent::AttemptStarted { node, attempt: 2, .. } if *node == nodes.hist
    )));

    // Same run, captured as provenance: the record carries the recovery.
    let mut cap = ProvenanceCapture::new(CaptureLevel::Fine);
    let r = exec.run_observed(&wf, &mut cap).unwrap();
    let retro = cap.take(r.exec).unwrap();
    assert_eq!(retro.status, RunStatus::Succeeded);
    let hist = retro.run_of(nodes.hist).unwrap();
    assert_eq!(hist.attempts, 2);
    assert!(hist.backoff_micros > 0);
    assert!(retro.render_log().contains("2 attempts"));

    let mut pql = PqlEngine::new();
    pql.ingest(&retro);
    assert_eq!(
        pql.eval("count runs where attempts != 1").unwrap(),
        QueryResult::Count(1)
    );
    assert!(pql
        .eval("list runs where attempts = 2")
        .unwrap()
        .render()
        .contains("Histogram"));
}

#[test]
fn resume_reuses_checkpoint_and_links_lineage() {
    // A permanently faulted run leaves a checkpoint; the resume re-executes
    // only the failed/skipped nodes, serves everything else from cache, and
    // its provenance links back to the failed execution.
    let (wf, nodes) = figure1_workflow(1);
    let failing = Executor::new(standard_registry())
        .with_faults(FaultPlan::new().fail_always(nodes.iso, "scanner offline"));
    let mut cap = ProvenanceCapture::new(CaptureLevel::Fine);
    let r1 = failing.run_observed(&wf, &mut cap).unwrap();
    let original = cap.take(r1.exec).unwrap();
    assert_eq!(original.status, RunStatus::Failed);
    let succeeded_before = original
        .runs
        .iter()
        .filter(|r| r.status == RunStatus::Succeeded)
        .count();

    let healthy = Executor::new(standard_registry()).with_cache(64);
    let r2 = healthy.resume(&wf, &r1, &mut cap).unwrap();
    let resumed = cap.take(r2.exec).unwrap();
    assert_eq!(resumed.status, RunStatus::Succeeded);
    assert_eq!(
        resumed.resumed_from,
        Some(original.exec),
        "lineage links back"
    );
    assert!(resumed
        .render_log()
        .contains("resumed from failed execution"));

    // Exactly the originally-succeeded nodes come from the checkpoint; the
    // failed isosurface branch is re-executed.
    let from_cache: Vec<_> = resumed
        .runs
        .iter()
        .filter(|r| r.from_cache)
        .map(|r| r.node)
        .collect();
    assert_eq!(from_cache.len(), succeeded_before);
    assert!(!from_cache.contains(&nodes.iso));
    assert!(!from_cache.contains(&nodes.save_iso));

    let check = check_resume(&original, &resumed);
    assert!(check.is_valid(), "{check:?}");
    assert!(check.recovered.contains(&nodes.iso));
}

#[test]
fn failed_outputs_are_never_served_from_cache() {
    // A cache-enabled executor must not memoize failures: re-running a
    // faulted workflow re-executes the failed node (and fails again), while
    // its succeeded upstream work is a legitimate cache hit.
    let (wf, nodes) = figure1_workflow(1);
    let exec = Executor::new(standard_registry())
        .with_cache(64)
        .with_faults(FaultPlan::new().fail_always(nodes.render, "no GPU"));
    let r1 = exec.run(&wf).unwrap();
    assert_eq!(r1.status, RunStatus::Failed);
    let r2 = exec.run(&wf).unwrap();
    assert_eq!(r2.status, RunStatus::Failed, "failure is not cached away");
    assert!(!r2.node_runs[&nodes.render].from_cache);
    assert_eq!(r2.node_runs[&nodes.render].status, RunStatus::Failed);
    assert!(
        r2.node_runs[&nodes.smooth].from_cache,
        "good work is reused"
    );
    assert_eq!(r2.node_runs[&nodes.save_iso].status, RunStatus::Skipped);
}
