//! # prov-core — provenance for scientific workflows
//!
//! The subject of Davidson & Freire's SIGMOD'08 tutorial, as a library.
//! "The provenance of a data product contains information about the process
//! and data used to derive the data product" (§1); this crate captures,
//! models, and exploits that information:
//!
//! * [`model`] — the two forms of provenance (§2.2): **prospective**
//!   (the workflow specification, the "recipe") and **retrospective**
//!   (a detailed log of one execution: module runs, data artifacts,
//!   environment).
//! * [`capture`] — the engine observer that records retrospective
//!   provenance at configurable granularity (Off / Coarse / Fine).
//! * [`causality`] — the dependency graph between artifacts and runs, with
//!   lineage, downstream-invalidation, and reproduction-slice queries
//!   (the "defective CT scanner" scenario of §2.2).
//! * [`annotation`] — user-defined provenance at every granularity.
//! * [`opm`] — the Open Provenance Model interlingua with its inference
//!   rules (the interoperability substrate of §2.4).
//! * [`views`] — ZOOM-style user views that abstract provenance graphs
//!   without breaking visible reachability (§2.4 "information overload").
//! * [`reduce`] — structural overload reduction (transitive reduction,
//!   chain summarization).
//! * [`diffprov`] — explain differences between two data products by
//!   comparing their provenance (§1).
//! * [`finegrained`] — row-level (database) provenance composed across
//!   workflow operators (§2.4 "connecting database and workflow
//!   provenance").
//! * [`analytics`] — execution profiling from provenance: critical paths,
//!   bottlenecks, regression comparison (§2.4 "provenance analytics").
//! * [`stitch`] — cross-process trace assembly: replay per-site probe
//!   reports (`prov-probe`) into one coherent retrospective record with
//!   happens-before edges and explicit gap reports.
//! * [`repro`] — re-execute from provenance and verify artifact fidelity
//!   (§2.3 "provenance and scientific publications").
//! * [`publication`] — research objects: named, annotated, verifiable
//!   provenance bundles accompanying a publication.

pub mod analytics;
pub mod annotation;
pub mod capture;
pub mod causality;
pub mod diffprov;
pub mod finegrained;
pub mod model;
pub mod opm;
pub mod publication;
pub mod reduce;
pub mod repro;
pub mod stitch;
pub mod views;

pub use analytics::{profile, ExecutionProfile};
pub use annotation::{Annotation, AnnotationStore, Subject};
pub use capture::{CaptureLevel, ProvenanceCapture};
pub use causality::{CausalityGraph, ProvNodeRef};
pub use finegrained::{RowLineageTracer, RowRef};
pub use model::{
    Artifact, Environment, ModuleRun, ProspectiveProvenance, ProvenanceBundle,
    RetrospectiveProvenance,
};
pub use opm::{OpmEdge, OpmGraph, OpmNodeId};
pub use publication::ResearchObject;
pub use repro::{check_resume, ReproReport, ResumeCheck};
pub use stitch::{
    graph_signature, stitch_blobs, stitch_provenance, stitch_reports, HbEdge, StitchedProvenance,
};
pub use views::{UserView, ViewedGraph};
