//! Offline typecheck stub for `proptest` (resolution placeholder only).
