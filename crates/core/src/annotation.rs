//! User-defined provenance: annotations.
//!
//! "Another key component of provenance is user-defined information …
//! documentation that cannot be automatically captured but records important
//! decisions and notes. … annotations can be added at different levels of
//! granularity and associated with different components of both prospective
//! and retrospective provenance" (§2.2, Figure 1's yellow boxes).

use crate::model::ArtifactHash;
use serde::{Deserialize, Serialize};
use wf_engine::ExecId;
use wf_model::{ConnId, NodeId, WorkflowId};

/// What an annotation is attached to: any component of prospective or
/// retrospective provenance, at any granularity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Subject {
    /// A whole workflow specification.
    Workflow(WorkflowId),
    /// A module instance in a specification.
    Node(WorkflowId, NodeId),
    /// A connection in a specification.
    Connection(WorkflowId, ConnId),
    /// A whole execution.
    Execution(ExecId),
    /// One module run within an execution.
    Run(ExecId, NodeId),
    /// A data artifact, by content hash.
    Artifact(ArtifactHash),
    /// A version in a workflow's evolution history.
    Version(WorkflowId, u64),
}

/// One annotation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Annotation {
    /// Identifier within the store.
    pub id: u64,
    /// What the annotation is attached to.
    pub subject: Subject,
    /// Machine-usable key (e.g. `"quality"`, `"todo"`); free-form.
    pub key: String,
    /// The note text.
    pub text: String,
    /// Who wrote it.
    pub author: String,
    /// When (ms since epoch).
    pub at_millis: u64,
}

/// A store of annotations with subject/key/author indexes and free-text
/// search.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AnnotationStore {
    annotations: Vec<Annotation>,
    next_id: u64,
}

impl AnnotationStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add an annotation; returns its id.
    pub fn annotate(&mut self, subject: Subject, key: &str, text: &str, author: &str) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        self.annotations.push(Annotation {
            id,
            subject,
            key: key.to_string(),
            text: text.to_string(),
            author: author.to_string(),
            at_millis: wf_engine::event::now_millis(),
        });
        id
    }

    /// Remove an annotation by id. Returns it if present.
    pub fn remove(&mut self, id: u64) -> Option<Annotation> {
        let pos = self.annotations.iter().position(|a| a.id == id)?;
        Some(self.annotations.remove(pos))
    }

    /// All annotations on a subject.
    pub fn on(&self, subject: Subject) -> Vec<&Annotation> {
        self.annotations
            .iter()
            .filter(|a| a.subject == subject)
            .collect()
    }

    /// All annotations with a key.
    pub fn with_key<'a>(&'a self, key: &'a str) -> impl Iterator<Item = &'a Annotation> {
        self.annotations.iter().filter(move |a| a.key == key)
    }

    /// All annotations by an author.
    pub fn by_author<'a>(&'a self, author: &'a str) -> impl Iterator<Item = &'a Annotation> {
        self.annotations.iter().filter(move |a| a.author == author)
    }

    /// Case-insensitive substring search over text and keys.
    pub fn search(&self, needle: &str) -> Vec<&Annotation> {
        let needle = needle.to_lowercase();
        self.annotations
            .iter()
            .filter(|a| {
                a.text.to_lowercase().contains(&needle) || a.key.to_lowercase().contains(&needle)
            })
            .collect()
    }

    /// Iterate over all annotations in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &Annotation> {
        self.annotations.iter()
    }

    /// Number of annotations.
    pub fn len(&self) -> usize {
        self.annotations.len()
    }

    /// Is the store empty?
    pub fn is_empty(&self) -> bool {
        self.annotations.is_empty()
    }

    /// Merge another store into this one, reassigning ids.
    pub fn merge(&mut self, other: &AnnotationStore) {
        for a in &other.annotations {
            let id = self.next_id;
            self.next_id += 1;
            let mut a = a.clone();
            a.id = id;
            self.annotations.push(a);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> AnnotationStore {
        let mut s = AnnotationStore::new();
        s.annotate(
            Subject::Node(WorkflowId(1), NodeId(0)),
            "note",
            "CT scan from the defective scanner batch",
            "susan",
        );
        s.annotate(
            Subject::Artifact(0xabc),
            "quality",
            "verified against phantom data",
            "juliana",
        );
        s.annotate(
            Subject::Execution(ExecId(3)),
            "note",
            "re-run after parameter fix",
            "susan",
        );
        s
    }

    #[test]
    fn annotations_attach_at_every_granularity() {
        let s = store();
        assert_eq!(s.len(), 3);
        assert_eq!(s.on(Subject::Artifact(0xabc)).len(), 1);
        assert_eq!(s.on(Subject::Node(WorkflowId(1), NodeId(0))).len(), 1);
        assert!(s.on(Subject::Workflow(WorkflowId(9))).is_empty());
    }

    #[test]
    fn filters_by_key_and_author() {
        let s = store();
        assert_eq!(s.with_key("note").count(), 2);
        assert_eq!(s.by_author("susan").count(), 2);
        assert_eq!(s.by_author("nobody").count(), 0);
    }

    #[test]
    fn search_is_case_insensitive() {
        let s = store();
        assert_eq!(s.search("DEFECTIVE").len(), 1);
        assert_eq!(s.search("quality").len(), 1, "matches the key too");
        assert!(s.search("zzz").is_empty());
    }

    #[test]
    fn remove_by_id() {
        let mut s = store();
        let removed = s.remove(0).unwrap();
        assert!(removed.text.contains("defective"));
        assert_eq!(s.len(), 2);
        assert!(s.remove(0).is_none());
    }

    #[test]
    fn merge_reassigns_ids() {
        let mut a = store();
        let b = store();
        a.merge(&b);
        assert_eq!(a.len(), 6);
        let mut ids: Vec<u64> = a.iter().map(|x| x.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 6, "no duplicate ids after merge");
    }

    #[test]
    fn store_roundtrips_serde() {
        let s = store();
        let j = serde_json::to_string(&s).unwrap();
        let back: AnnotationStore = serde_json::from_str(&j).unwrap();
        assert_eq!(back.len(), s.len());
        assert_eq!(back.search("phantom").len(), 1);
    }
}
