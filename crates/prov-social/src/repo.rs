//! The collaboratory: a multi-user repository of shared workflows.

use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use wf_model::Workflow;

/// Identifier of a registered user.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct UserId(pub u64);

/// Identifier of a repository entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct EntryId(pub u64);

/// A shared workflow in the repository.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Entry {
    /// Entry id.
    pub id: EntryId,
    /// Owner.
    pub owner: UserId,
    /// The shared workflow specification.
    pub workflow: Workflow,
    /// Free-form tags.
    pub tags: BTreeSet<String>,
    /// Short description.
    pub description: String,
    /// The entry this one was forked from, if any — derivation
    /// *attribution*, social provenance.
    pub derived_from: Option<EntryId>,
    /// Upload time (ms since epoch).
    pub uploaded_millis: u64,
}

/// The collaboratory.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Collaboratory {
    users: BTreeMap<UserId, String>,
    entries: BTreeMap<EntryId, Entry>,
    next_user: u64,
    next_entry: u64,
}

impl Collaboratory {
    /// An empty collaboratory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a user.
    pub fn register(&mut self, name: &str) -> UserId {
        let id = UserId(self.next_user);
        self.next_user += 1;
        self.users.insert(id, name.to_string());
        id
    }

    /// A user's display name.
    pub fn user_name(&self, id: UserId) -> Option<&str> {
        self.users.get(&id).map(String::as_str)
    }

    /// Upload a workflow.
    pub fn upload(&mut self, owner: UserId, wf: &Workflow, description: &str) -> EntryId {
        self.insert(owner, wf, description, None)
    }

    /// Fork an existing entry: the new entry records its ancestry.
    pub fn fork(
        &mut self,
        owner: UserId,
        from: EntryId,
        wf: &Workflow,
        description: &str,
    ) -> Option<EntryId> {
        if !self.entries.contains_key(&from) {
            return None;
        }
        Some(self.insert(owner, wf, description, Some(from)))
    }

    fn insert(
        &mut self,
        owner: UserId,
        wf: &Workflow,
        description: &str,
        derived_from: Option<EntryId>,
    ) -> EntryId {
        let id = EntryId(self.next_entry);
        self.next_entry += 1;
        self.entries.insert(
            id,
            Entry {
                id,
                owner,
                workflow: wf.clone(),
                tags: BTreeSet::new(),
                description: description.to_string(),
                derived_from,
                uploaded_millis: now_millis(),
            },
        );
        id
    }

    /// Tag an entry.
    pub fn tag(&mut self, entry: EntryId, tag: &str) -> bool {
        match self.entries.get_mut(&entry) {
            Some(e) => {
                e.tags.insert(tag.to_string());
                true
            }
            None => false,
        }
    }

    /// Look up an entry.
    pub fn entry(&self, id: EntryId) -> Option<&Entry> {
        self.entries.get(&id)
    }

    /// All entries, in upload order.
    pub fn entries(&self) -> impl Iterator<Item = &Entry> {
        self.entries.values()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Is the repository empty?
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Entries owned by a user.
    pub fn by_user(&self, user: UserId) -> Vec<&Entry> {
        self.entries.values().filter(|e| e.owner == user).collect()
    }

    /// Case-insensitive search over names, descriptions, tags, and module
    /// names.
    pub fn search(&self, needle: &str) -> Vec<&Entry> {
        let needle = needle.to_lowercase();
        self.entries
            .values()
            .filter(|e| {
                e.workflow.name.to_lowercase().contains(&needle)
                    || e.description.to_lowercase().contains(&needle)
                    || e.tags.iter().any(|t| t.to_lowercase().contains(&needle))
                    || e.workflow
                        .nodes
                        .values()
                        .any(|n| n.module.to_lowercase().contains(&needle))
            })
            .collect()
    }

    /// The fork ancestry of an entry, oldest first (attribution chain).
    pub fn attribution_chain(&self, entry: EntryId) -> Vec<EntryId> {
        let mut chain = Vec::new();
        let mut cur = Some(entry);
        while let Some(id) = cur {
            chain.push(id);
            cur = self.entries.get(&id).and_then(|e| e.derived_from);
            if chain.len() > self.entries.len() {
                break; // cycle guard; cannot happen through the public API
            }
        }
        chain.reverse();
        chain
    }

    /// Direct forks of an entry.
    pub fn forks_of(&self, entry: EntryId) -> Vec<EntryId> {
        self.entries
            .values()
            .filter(|e| e.derived_from == Some(entry))
            .map(|e| e.id)
            .collect()
    }

    /// Module usage counts across the corpus ("wisdom of the crowds").
    pub fn popular_modules(&self) -> Vec<(String, usize)> {
        let mut counts: BTreeMap<String, usize> = BTreeMap::new();
        for e in self.entries.values() {
            for n in e.workflow.nodes.values() {
                *counts.entry(n.module.clone()).or_default() += 1;
            }
        }
        let mut v: Vec<(String, usize)> = counts.into_iter().collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v
    }
}

fn now_millis() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wf_model::WorkflowBuilder;

    fn wf(name: &str, modules: &[&str]) -> Workflow {
        let mut b = WorkflowBuilder::new(1, name);
        let nodes: Vec<_> = modules.iter().map(|m| b.add(m)).collect();
        for w in nodes.windows(2) {
            b.connect(w[0], "out", w[1], "in");
        }
        b.build()
    }

    fn seeded() -> (Collaboratory, UserId, UserId, EntryId) {
        let mut c = Collaboratory::new();
        let susan = c.register("susan");
        let juliana = c.register("juliana");
        let e = c.upload(
            susan,
            &wf("ct pipeline", &["LoadVolume", "Isosurface"]),
            "CT viz",
        );
        c.tag(e, "medical");
        (c, susan, juliana, e)
    }

    #[test]
    fn upload_tag_and_lookup() {
        let (c, susan, _, e) = seeded();
        let entry = c.entry(e).unwrap();
        assert_eq!(entry.owner, susan);
        assert!(entry.tags.contains("medical"));
        assert_eq!(c.user_name(susan), Some("susan"));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn fork_builds_attribution_chain() {
        let (mut c, _, juliana, e) = seeded();
        let f1 = c
            .fork(
                juliana,
                e,
                &wf("ct v2", &["LoadVolume", "Isosurface", "SmoothMesh"]),
                "smoother",
            )
            .unwrap();
        let f2 = c
            .fork(
                juliana,
                f1,
                &wf(
                    "ct v3",
                    &["LoadVolume", "Isosurface", "SmoothMesh", "RenderMesh"],
                ),
                "rendered",
            )
            .unwrap();
        assert_eq!(c.attribution_chain(f2), vec![e, f1, f2]);
        assert_eq!(c.forks_of(e), vec![f1]);
        assert!(c.fork(juliana, EntryId(99), &wf("x", &["A"]), "").is_none());
    }

    #[test]
    fn search_covers_all_facets() {
        let (mut c, susan, ..) = seeded();
        c.upload(susan, &wf("genomics", &["AlignWarp"]), "sequence study");
        assert_eq!(c.search("medical").len(), 1, "by tag");
        assert_eq!(c.search("GENOMICS").len(), 1, "by name, case-insensitive");
        assert_eq!(c.search("alignwarp").len(), 1, "by module");
        assert_eq!(c.search("study").len(), 1, "by description");
        assert!(c.search("zzz").is_empty());
    }

    #[test]
    fn popularity_counts_across_entries() {
        let (mut c, susan, ..) = seeded();
        c.upload(susan, &wf("second", &["LoadVolume", "Histogram"]), "");
        let pop = c.popular_modules();
        assert_eq!(pop[0], ("LoadVolume".to_string(), 2));
    }

    #[test]
    fn by_user_filters() {
        let (mut c, susan, juliana, _) = seeded();
        c.upload(juliana, &wf("hers", &["Histogram"]), "");
        assert_eq!(c.by_user(susan).len(), 1);
        assert_eq!(c.by_user(juliana).len(), 1);
    }

    #[test]
    fn repo_roundtrips_serde() {
        let (c, ..) = seeded();
        let j = serde_json::to_string(&c).unwrap();
        let back: Collaboratory = serde_json::from_str(&j).unwrap();
        assert_eq!(back.len(), 1);
        assert_eq!(back.search("medical").len(), 1);
    }
}
