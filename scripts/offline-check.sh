#!/usr/bin/env bash
# Build and test without network access by patching crates-io deps with the
# minimal stubs in dev/stubs/ (see dev/stubs/README.md for what the stubs
# do and do not cover: proptest-based tests and Criterion benches need the
# real crates, so this script checks libs/bins and runs the non-proptest
# test targets only).
#
# Usage: scripts/offline-check.sh
# The temporary .cargo/config.toml patch is removed on exit.
set -euo pipefail
cd "$(dirname "$0")/.."

if [ -e .cargo/config.toml ]; then
    echo "refusing to overwrite existing .cargo/config.toml" >&2
    exit 1
fi

mkdir -p .cargo
cleanup() { rm -f .cargo/config.toml; rmdir .cargo 2>/dev/null || true; }
trap cleanup EXIT

cat > .cargo/config.toml <<'EOF'
# Temporary offline patch written by scripts/offline-check.sh — do not commit.
[patch.crates-io]
serde = { path = "dev/stubs/serde" }
serde_derive = { path = "dev/stubs/serde_derive" }
serde_json = { path = "dev/stubs/serde_json" }
parking_lot = { path = "dev/stubs/parking_lot" }
crossbeam = { path = "dev/stubs/crossbeam" }
bytes = { path = "dev/stubs/bytes" }
rand = { path = "dev/stubs/rand" }
proptest = { path = "dev/stubs/proptest" }
criterion = { path = "dev/stubs/criterion" }
EOF

export CARGO_NET_OFFLINE=true

echo "==> cargo check (libs + bins)"
cargo check --workspace --lib --bins

echo "==> cargo test (non-proptest targets)"
cargo test -q -p wf-model -p wf-engine -p prov-query -p prov-evolution \
    -p prov-social -p prov-telemetry --lib
cargo test -q --test end_to_end --test cli || true

echo "offline check done (serde/proptest-dependent tests need real crates)."
