//! Cross-process trace assembly: from per-site probe reports back to one
//! retrospective provenance record.
//!
//! The distributed driver (`wf-engine::distrib`) leaves behind nothing but
//! per-site report blobs — there is no global event log to consume. This
//! module closes the loop: a [`prov_probe::Collector`] orders the blobs
//! into one causally-consistent sequence, and [`stitch_provenance`]
//! *replays* that sequence through the ordinary [`ProvenanceCapture`]
//! observer. The stitched record is therefore built by the same code path
//! as a single-process run — isomorphism with the reference capture is by
//! construction, not by a parallel re-implementation.
//!
//! On top of the replay, the stitcher derives **happens-before edges at
//! module granularity**: every non-control snapshot merge anchors an edge
//! from the last module finished at the producing site to the next module
//! started at the consuming site. Gaps reported by the collector (dropped
//! rings, missing blobs, dangling merges) are carried through verbatim —
//! a hole in the record is reported as a hole, never papered over with a
//! fabricated order.

use crate::capture::{CaptureLevel, ProvenanceCapture};
use crate::model::RetrospectiveProvenance;
use prov_probe::{Collector, LogEntry, Report, Stitched};
use std::collections::BTreeMap;
use wf_engine::wire::decode_event;
use wf_engine::{EngineEvent, ExecObserver};
use wf_model::NodeId;

/// One happens-before edge between module runs at different sites.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct HbEdge {
    /// Site whose output was consumed.
    pub from_site: u32,
    /// The module that finished there before the snapshot was produced
    /// (`None` when the producing site had not finished a module yet —
    /// e.g. the anchor entry fell into a dropped-ring hole).
    pub from_node: Option<NodeId>,
    /// Site that merged the snapshot.
    pub to_site: u32,
    /// The module that started there after the merge (`None` when the
    /// merge was the site's last recorded activity).
    pub to_node: Option<NodeId>,
}

impl HbEdge {
    /// Stable one-line rendering, e.g. `happens-before site0/n3 -> site2/n5`.
    pub fn render(&self) -> String {
        let end = |n: &Option<NodeId>| match n {
            Some(id) => format!("{id}"),
            None => "?".into(),
        };
        format!(
            "happens-before site{}/{} -> site{}/{}",
            self.from_site,
            end(&self.from_node),
            self.to_site,
            end(&self.to_node)
        )
    }
}

/// The result of stitching per-site reports into provenance.
#[derive(Debug)]
pub struct StitchedProvenance {
    /// Completed run records recovered by the replay (one per exec seen;
    /// empty when the coordinator's `WorkflowFinished` never arrived).
    pub retros: Vec<RetrospectiveProvenance>,
    /// Cross-site happens-before edges, deduplicated and sorted.
    pub hb_edges: Vec<HbEdge>,
    /// Human-readable gap reports (dropped entries, missing blobs,
    /// dangling merges, incomplete run records).
    pub gaps: Vec<String>,
    /// Duplicate report entries the collector absorbed.
    pub duplicates: u64,
    /// Clock/ordering conflicts the collector detected.
    pub conflicts: u64,
    /// The distributed trace id carried by the probes, if any.
    pub trace_id: Option<u128>,
    /// Event payloads that failed to decode (version skew or corruption).
    pub decode_errors: usize,
}

impl StitchedProvenance {
    /// The first (usually only) recovered run record.
    pub fn retro(&self) -> Option<&RetrospectiveProvenance> {
        self.retros.first()
    }

    /// Whether the stitched record is complete: no gaps, no conflicts,
    /// no undecodable events, and a finished run recovered.
    pub fn is_complete(&self) -> bool {
        self.gaps.is_empty()
            && self.conflicts == 0
            && self.decode_errors == 0
            && !self.retros.is_empty()
    }

    /// All happens-before edges rendered one per line.
    pub fn render_hb(&self) -> String {
        let mut out = String::new();
        for e in &self.hb_edges {
            out.push_str(&e.render());
            out.push('\n');
        }
        out
    }
}

/// Stitch a collector's ordered output into provenance.
pub fn stitch_provenance(stitched: &Stitched) -> StitchedProvenance {
    // Per-probe ordered event index, for anchoring hb edges.
    let mut by_probe: BTreeMap<u32, BTreeMap<u64, &LogEntry>> = BTreeMap::new();
    for e in &stitched.entries {
        by_probe
            .entry(e.probe.0)
            .or_default()
            .insert(e.seq, &e.entry);
    }
    let finished_before = |probe: u32, seq: u64| -> Option<NodeId> {
        let log = by_probe.get(&probe)?;
        log.range(..=seq).rev().find_map(|(_, entry)| {
            if let LogEntry::Event(payload) = entry {
                if let Ok(EngineEvent::ModuleFinished { node, .. }) = decode_event(payload) {
                    return Some(node);
                }
            }
            None
        })
    };
    let started_after = |probe: u32, seq: u64| -> Option<NodeId> {
        let log = by_probe.get(&probe)?;
        log.range(seq + 1..).find_map(|(_, entry)| {
            if let LogEntry::Event(payload) = entry {
                if let Ok(EngineEvent::ModuleStarted { node, .. }) = decode_event(payload) {
                    return Some(node);
                }
            }
            None
        })
    };

    // Replay the stitched order through the ordinary capture observer and
    // collect hb edges from non-control cross-site merges along the way.
    let mut capture = ProvenanceCapture::new(CaptureLevel::Fine);
    let mut decode_errors = 0usize;
    let mut hb_edges: Vec<HbEdge> = Vec::new();
    for e in &stitched.entries {
        match &e.entry {
            LogEntry::Event(payload) => match decode_event(payload) {
                Ok(event) => capture.on_event(&event),
                Err(_) => decode_errors += 1,
            },
            LogEntry::SnapshotMerged {
                origin,
                origin_seq,
                control,
            } if !control && *origin != e.probe => {
                hb_edges.push(HbEdge {
                    from_site: origin.0,
                    from_node: finished_before(origin.0, *origin_seq),
                    to_site: e.probe.0,
                    to_node: started_after(e.probe.0, e.seq),
                });
            }
            _ => {}
        }
    }
    hb_edges.sort();
    hb_edges.dedup();

    let mut gaps: Vec<String> = stitched.gaps.iter().map(|g| g.render()).collect();
    let retros = capture.finish_all();
    if retros.is_empty() {
        gaps.push(
            "incomplete run record: no WorkflowFinished event survived stitching".to_string(),
        );
    }
    StitchedProvenance {
        retros,
        hb_edges,
        gaps,
        duplicates: stitched.duplicates,
        conflicts: stitched.conflicts,
        trace_id: stitched.trace_id,
        decode_errors,
    }
}

/// Convenience: ingest raw reports (any order, duplicates tolerated) and
/// stitch them in one call.
pub fn stitch_reports<I: IntoIterator<Item = Report>>(reports: I) -> StitchedProvenance {
    let mut c = Collector::new();
    for r in reports {
        c.ingest(r);
    }
    stitch_provenance(&c.stitch())
}

/// Convenience: ingest encoded report blobs and stitch them; undecodable
/// blobs are reported as gaps, not errors.
pub fn stitch_blobs<'a, I: IntoIterator<Item = &'a [u8]>>(blobs: I) -> StitchedProvenance {
    let mut c = Collector::new();
    let mut bad = 0usize;
    for b in blobs {
        if c.ingest_blob(b).is_err() {
            bad += 1;
        }
    }
    let mut out = stitch_provenance(&c.stitch());
    if bad > 0 {
        out.gaps.push(format!(
            "{bad} report blob(s) failed to decode and were ignored"
        ));
    }
    out
}

/// A canonical, order- and timing-insensitive signature of a run record.
///
/// Two records have equal signatures iff they describe the same runs
/// (identity, parameters, status, attempts, cache flags, input/output
/// bindings) over the same artifacts — regardless of event arrival order
/// or wall-clock timings. This is the isomorphism check the differential
/// tests gate on.
pub fn graph_signature(retro: &RetrospectiveProvenance) -> u64 {
    let mut lines: Vec<String> = Vec::new();
    lines.push(format!(
        "wf|{:?}|{}|{:?}",
        retro.workflow, retro.workflow_name, retro.status
    ));
    for run in &retro.runs {
        let mut inputs = run.inputs.clone();
        inputs.sort();
        let mut outputs = run.outputs.clone();
        outputs.sort();
        lines.push(format!(
            "run|{}|{}|{:?}|{}|{}|{:?}|{:?}|{:?}",
            run.node.raw(),
            run.identity,
            run.status,
            run.from_cache,
            run.attempts,
            run.params,
            inputs,
            outputs
        ));
    }
    for art in retro.artifacts.values() {
        lines.push(format!("art|{}|{}|{}", art.hash, art.dtype, art.size));
    }
    lines.sort();
    let mut h: u64 = 0xcbf29ce484222325;
    for line in &lines {
        for b in line.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x100000001b3);
        }
        h ^= 0x0a;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use wf_engine::synth::figure1_workflow;
    use wf_engine::{standard_registry, DistribOptions, Executor, RunStatus};

    fn reference_signature(wf: &wf_model::Workflow) -> u64 {
        let exec = Executor::new(standard_registry());
        let mut cap = ProvenanceCapture::new(CaptureLevel::Fine);
        let result = exec.run_observed(wf, &mut cap).unwrap();
        graph_signature(&cap.take(result.exec).unwrap())
    }

    #[test]
    fn stitched_record_matches_single_process_reference() {
        let (wf, _) = figure1_workflow(1);
        let want = reference_signature(&wf);
        let exec = Executor::new(standard_registry());
        let dist = exec
            .run_distributed(&wf, DistribOptions::new(3).with_trace_id(7))
            .unwrap();
        let s = stitch_reports(dist.reports);
        assert!(s.is_complete(), "gaps: {:?}", s.gaps);
        assert_eq!(s.trace_id, Some(7));
        let retro = s.retro().unwrap();
        assert_eq!(retro.status, RunStatus::Succeeded);
        assert_eq!(graph_signature(retro), want, "stitched graph is isomorphic");
    }

    #[test]
    fn hb_edges_follow_the_dataflow() {
        let (wf, nodes) = figure1_workflow(1);
        let exec = Executor::new(standard_registry());
        let dist = exec.run_distributed(&wf, DistribOptions::new(2)).unwrap();
        let s = stitch_reports(dist.reports);
        // With two sites and round-robin assignment, consecutive pipeline
        // stages alternate sites: cross-site hb edges must exist.
        assert!(!s.hb_edges.is_empty());
        for e in &s.hb_edges {
            assert_ne!(e.from_site, e.to_site, "self-edges are filtered");
        }
        // The load module's output crosses to the next stage's site.
        let load_site = dist.sites[&nodes.load];
        assert!(
            s.hb_edges
                .iter()
                .any(|e| e.from_site == load_site && e.from_node == Some(nodes.load)),
            "edges: {}",
            s.render_hb()
        );
    }

    #[test]
    fn dropped_report_is_a_gap_not_a_fabricated_order() {
        let (wf, _) = figure1_workflow(1);
        let exec = Executor::new(standard_registry());
        let mut dist = exec.run_distributed(&wf, DistribOptions::new(3)).unwrap();
        dist.reports.remove(0); // lose one worker's blob entirely
        let s = stitch_reports(dist.reports);
        assert!(!s.is_complete());
        assert!(!s.gaps.is_empty(), "missing blob must surface as a gap");
    }

    #[test]
    fn signature_ignores_timing_but_not_structure() {
        let (wf, _) = figure1_workflow(1);
        let a = reference_signature(&wf);
        let b = reference_signature(&wf); // second run: different timings
        assert_eq!(a, b);
        let (other, _) = figure1_workflow(2);
        assert_ne!(a, reference_signature(&other));
    }
}
