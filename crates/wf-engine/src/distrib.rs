//! Multi-worker execution driver simulating distributed sites.
//!
//! The paper's distributed-capture challenge: when workflow modules run at
//! different sites, no single observer sees the whole run. This driver
//! makes that concrete *inside one process*: each worker plays a remote
//! site with its own `prov-probe` [`Probe`], engine events are recorded
//! locally as binary payloads ([`crate::wire`]), and causality crosses
//! sites only the way it does in a real deployment — snapshots
//! piggybacked on the dataflow edges that hand values from one module to
//! the next. No global event stream exists; the per-worker report blobs
//! are the *only* observation, and a collector must stitch them back into
//! one provenance record after the fact (see `prov-core`'s stitcher).
//!
//! Scheduling runs in rounds: each round scope-spawns one closure per
//! site that drains the site's ready queue and exits (claim-or-exit, the
//! same non-blocking discipline as the parallel driver — it must behave
//! under both real scoped threads and the sequential offline stub).
//! Between rounds the coordinator handles skip cascades from failed
//! modules. The coordinator's probe (site index `workers`) records the
//! run-level events; its snapshot exchange with workers is marked
//! *control* so stitchers can distinguish scheduler bookkeeping from
//! dataflow happens-before edges.

use crate::error::ExecError;
use crate::event::{now_millis, EngineEvent, ExecObserver};
use crate::exec::{skip_node, ExecutionResult, Executor, NodeRunRecord, RunStatus};
use crate::value::Value;
use crate::wire::encode_event;
use parking_lot::Mutex;
use prov_probe::{Probe, ProbeId, Report, Snapshot, DEFAULT_RING_CAPACITY};
use std::collections::{BTreeMap, VecDeque};
use std::time::Instant;
use wf_model::{NodeId, Workflow};

/// The coordinator's site index is always `workers + COORDINATOR_SITE_OFFSET`
/// (i.e. one past the last worker).
pub const COORDINATOR_SITE_OFFSET: u32 = 0;

/// Configuration for one distributed run.
#[derive(Debug, Clone)]
pub struct DistribOptions {
    /// Number of worker threads (simulated sites); minimum 1.
    pub workers: usize,
    /// Whether capture probes are attached. `false` runs the identical
    /// driver without any recording — the overhead baseline of E21.
    pub probed: bool,
    /// Ring capacity per probe (small rings force drop gaps, for tests).
    pub ring_capacity: usize,
    /// Distributed trace id carried by every probe and snapshot
    /// (zero = untraced).
    pub trace_id: u128,
}

impl DistribOptions {
    /// Probed execution on `workers` sites with the default ring.
    pub fn new(workers: usize) -> Self {
        DistribOptions {
            workers: workers.max(1),
            probed: true,
            ring_capacity: DEFAULT_RING_CAPACITY,
            trace_id: 0,
        }
    }

    /// Disable probes (baseline mode).
    pub fn unprobed(mut self) -> Self {
        self.probed = false;
        self
    }

    /// Carry a distributed trace id through every probe and snapshot.
    pub fn with_trace_id(mut self, trace_id: u128) -> Self {
        self.trace_id = trace_id;
        self
    }

    /// Bound each probe's ring to `capacity` entries.
    pub fn with_ring_capacity(mut self, capacity: usize) -> Self {
        self.ring_capacity = capacity.max(1);
        self
    }
}

/// The outcome of a distributed run: the ordinary execution result plus
/// the per-site report blobs that are the run's only provenance record.
#[derive(Debug)]
pub struct DistributedRun {
    /// The execution result (values, records, status) — what a caller
    /// standing at the coordinator would see.
    pub result: ExecutionResult,
    /// One report per site, workers first, coordinator last. Empty when
    /// the run was unprobed.
    pub reports: Vec<Report>,
    /// Which site executed each node (skipped nodes map to the site they
    /// were assigned to, though their skip event is coordinator-recorded).
    pub sites: BTreeMap<NodeId, u32>,
    /// The trace id the run carried (zero = untraced).
    pub trace_id: u128,
}

/// Deterministic node→site assignment used by the driver: round-robin
/// over the workflow's node order.
pub fn site_of(position: usize, workers: usize) -> u32 {
    (position % workers.max(1)) as u32
}

/// Observer adapter recording events into a probe as wire payloads.
struct ProbeRecorder<'p> {
    probe: Option<&'p mut Probe>,
}

impl ExecObserver for ProbeRecorder<'_> {
    fn on_event(&mut self, event: &EngineEvent) {
        if let Some(p) = self.probe.as_deref_mut() {
            p.record_event(encode_event(event));
        }
    }
}

/// Per-site worker state that persists across scheduling rounds.
struct SiteSlot {
    probe: Option<Probe>,
    merged_init: bool,
}

/// State shared between the coordinator and the site workers.
struct Shared {
    /// Remaining unfinished predecessors per node index.
    pending: Vec<usize>,
    /// Per-site queues of runnable nodes (all predecessors succeeded).
    ready: Vec<VecDeque<usize>>,
    /// Nodes whose predecessors finished but not all succeeded — the
    /// coordinator turns these into skip records between rounds.
    skip_ready: VecDeque<usize>,
    records: BTreeMap<NodeId, NodeRunRecord>,
    values: BTreeMap<(NodeId, String), Value>,
    /// Completion snapshot of each finished node, keyed by node index —
    /// consumers data-merge these before running.
    site_snapshots: BTreeMap<usize, Snapshot>,
    done: usize,
    error: Option<ExecError>,
}

impl Shared {
    /// Mark node index `i` finished and classify newly-unblocked
    /// successors as runnable or skippable.
    fn finish(
        &mut self,
        i: usize,
        g: &wf_model::graph::Digraph,
        ids: &[NodeId],
        assignment: &[u32],
        record: NodeRunRecord,
    ) {
        self.records.insert(ids[i], record);
        self.done += 1;
        for &succ in g.successors(i) {
            self.pending[succ] -= 1;
            if self.pending[succ] == 0 {
                let all_ok = g.predecessors(succ).iter().all(|&p| {
                    self.records
                        .get(&ids[p])
                        .map(|r| r.status == RunStatus::Succeeded)
                        .unwrap_or(false)
                });
                if all_ok {
                    self.ready[assignment[succ] as usize].push_back(succ);
                } else {
                    self.skip_ready.push_back(succ);
                }
            }
        }
    }
}

impl Executor {
    /// Run `wf` across `opts.workers` simulated sites.
    ///
    /// Scheduling is dataflow-driven like [`Executor::run_parallel`], but
    /// every node executes at its assigned site with that site's probe
    /// observing it; values handed across sites carry the producer's
    /// causality snapshot. The returned [`DistributedRun::reports`] are
    /// the only record of what happened — feed them to a collector.
    pub fn run_distributed(
        &self,
        wf: &Workflow,
        opts: DistribOptions,
    ) -> Result<DistributedRun, ExecError> {
        let workers = opts.workers.max(1);
        let (g, ids, _index) = wf.digraph();
        if !g.is_dag() {
            return Err(ExecError::InvalidWorkflow("workflow has a cycle".into()));
        }
        let exec = self.allocate_exec();
        let started = Instant::now();
        let n = ids.len();
        let assignment: Vec<u32> = (0..n).map(|i| site_of(i, workers)).collect();

        // Coordinator probe: run-level events and control merges.
        let mut coord = opts.probed.then(|| {
            Probe::with_capacity(ProbeId(workers as u32), opts.ring_capacity)
                .with_trace_id(opts.trace_id)
        });
        {
            let mut rec = ProbeRecorder {
                probe: coord.as_mut(),
            };
            rec.on_event(&EngineEvent::WorkflowStarted {
                exec,
                workflow: wf.id,
                name: wf.name.clone(),
                at_millis: now_millis(),
            });
        }
        let init_snapshot = coord.as_mut().map(|p| p.produce_snapshot());

        let mut slots: Vec<SiteSlot> = (0..workers)
            .map(|w| SiteSlot {
                probe: opts.probed.then(|| {
                    Probe::with_capacity(ProbeId(w as u32), opts.ring_capacity)
                        .with_trace_id(opts.trace_id)
                }),
                merged_init: false,
            })
            .collect();

        let mut pending: Vec<usize> = vec![0; n];
        for (i, p) in pending.iter_mut().enumerate() {
            *p = g.predecessors(i).len();
        }
        let mut ready: Vec<VecDeque<usize>> = vec![VecDeque::new(); workers];
        for i in 0..n {
            if pending[i] == 0 {
                ready[assignment[i] as usize].push_back(i);
            }
        }
        let shared = Mutex::new(Shared {
            pending,
            ready,
            skip_ready: VecDeque::new(),
            records: BTreeMap::new(),
            values: BTreeMap::new(),
            site_snapshots: BTreeMap::new(),
            done: 0,
            error: None,
        });

        // Rounds: run site workers until queues drain, then let the
        // coordinator absorb skip cascades; repeat until every node is
        // accounted for. Each round makes progress, so this terminates.
        loop {
            // Coordinator: skip cascade. Control-merge the predecessors'
            // snapshots first so the skip record happens-after the
            // failure it reacts to.
            loop {
                let (i, pred_snaps) = {
                    let mut s = shared.lock();
                    let Some(i) = s.skip_ready.pop_front() else {
                        break;
                    };
                    let snaps: Vec<Snapshot> = g
                        .predecessors(i)
                        .iter()
                        .filter_map(|p| s.site_snapshots.get(p).cloned())
                        .collect();
                    (i, snaps)
                };
                if let Some(c) = coord.as_mut() {
                    for snap in &pred_snaps {
                        c.merge_snapshot_control(snap);
                    }
                }
                let identity = wf
                    .node(ids[i])
                    .map(|nd| nd.kind_identity())
                    .unwrap_or_default();
                let record = {
                    let mut rec = ProbeRecorder {
                        probe: coord.as_mut(),
                    };
                    skip_node(&mut rec, exec, ids[i], identity)
                };
                shared.lock().finish(i, &g, &ids, &assignment, record);
            }

            {
                let s = shared.lock();
                if s.error.is_some() || s.done == n {
                    break;
                }
                if s.ready.iter().all(|q| q.is_empty()) {
                    // Unreachable for a DAG; guard against looping forever.
                    drop(s);
                    shared.lock().error = Some(ExecError::InvalidWorkflow(
                        "distributed scheduler stalled".into(),
                    ));
                    break;
                }
            }

            // One round of site work.
            crossbeam::thread::scope(|scope| {
                for (w, slot) in slots.iter_mut().enumerate() {
                    let shared = &shared;
                    let init_snapshot = init_snapshot.as_ref();
                    let g = &g;
                    let ids = &ids[..];
                    let assignment = &assignment[..];
                    scope.spawn(move |_| loop {
                        // Claim the next node of this site or exit the
                        // round; never block (see module docs).
                        let (i, node_id, inputs, pred_snaps) = {
                            let mut s = shared.lock();
                            if s.error.is_some() {
                                break;
                            }
                            let Some(i) = s.ready[w].pop_front() else {
                                break;
                            };
                            let node_id = ids[i];
                            let mut inputs: Vec<((NodeId, String), Value)> = Vec::new();
                            for conn in wf.inputs_of(node_id) {
                                let k = (conn.from.node, conn.from.port.clone());
                                if let Some(v) = s.values.get(&k) {
                                    inputs.push((k, v.clone()));
                                }
                            }
                            let snaps: Vec<Snapshot> = g
                                .predecessors(i)
                                .iter()
                                .filter_map(|p| s.site_snapshots.get(p).cloned())
                                .collect();
                            (i, node_id, inputs, snaps)
                        };
                        if let Some(p) = slot.probe.as_mut() {
                            if !slot.merged_init {
                                slot.merged_init = true;
                                if let Some(init) = init_snapshot {
                                    p.merge_snapshot_control(init);
                                }
                            }
                            // Dataflow merges: the producer's causality
                            // arrives with its outputs.
                            for snap in &pred_snaps {
                                p.merge_snapshot(snap);
                            }
                        }
                        let mut local: BTreeMap<(NodeId, String), Value> =
                            inputs.into_iter().collect();
                        let outcome = {
                            let mut rec = ProbeRecorder {
                                probe: slot.probe.as_mut(),
                            };
                            self.run_node(wf, node_id, exec, &mut local, &mut rec)
                        };
                        let snapshot = slot.probe.as_mut().map(|p| p.produce_snapshot());
                        let mut s = shared.lock();
                        match outcome {
                            Err(e) => {
                                s.error = Some(e);
                                break;
                            }
                            Ok(record) => {
                                for ((nid, port), v) in local {
                                    if nid == node_id {
                                        s.values.insert((nid, port), v);
                                    }
                                }
                                if let Some(snap) = snapshot {
                                    s.site_snapshots.insert(i, snap);
                                }
                                s.finish(i, g, ids, assignment, record);
                            }
                        }
                    });
                }
            })
            .map_err(|_| ExecError::WorkerPanicked {
                node: None,
                message: "distributed site worker panicked".into(),
            })?;
        }

        let mut s = shared.into_inner();
        if let Some(e) = s.error.take() {
            return Err(e);
        }

        // Close the causal story: every site's final snapshot merges
        // (control) into the coordinator before the run-finished event,
        // so WorkflowFinished happens-after all recorded work.
        let status = if s.records.values().all(|r| r.status == RunStatus::Succeeded) {
            RunStatus::Succeeded
        } else {
            RunStatus::Failed
        };
        if let Some(c) = coord.as_mut() {
            for slot in &mut slots {
                if let Some(p) = slot.probe.as_mut() {
                    let snap = p.produce_snapshot();
                    c.merge_snapshot_control(&snap);
                }
            }
        }
        {
            let mut rec = ProbeRecorder {
                probe: coord.as_mut(),
            };
            rec.on_event(&EngineEvent::WorkflowFinished {
                exec,
                status,
                at_millis: now_millis(),
            });
        }

        let mut reports: Vec<Report> = Vec::new();
        for slot in &mut slots {
            if let Some(p) = slot.probe.as_mut() {
                reports.push(p.report());
            }
        }
        if let Some(c) = coord.as_mut() {
            reports.push(c.report());
        }

        let sites = ids
            .iter()
            .enumerate()
            .map(|(i, &id)| (id, assignment[i]))
            .collect();
        Ok(DistributedRun {
            result: ExecutionResult {
                exec,
                status,
                node_runs: s.records,
                values: s.values,
                elapsed_micros: started.elapsed().as_micros() as u64,
                resumed_from: None,
            },
            reports,
            sites,
            trace_id: opts.trace_id,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultPlan;
    use crate::stdlib::standard_registry;
    use crate::synth::{challenge_workflow, figure1_workflow};
    use prov_probe::Collector;

    #[test]
    fn distributed_run_matches_sequential_values() {
        let (wf, _) = figure1_workflow(1);
        let exec = Executor::new(standard_registry());
        let seq = exec.run(&wf).unwrap();
        let dist = exec.run_distributed(&wf, DistribOptions::new(3)).unwrap();
        assert_eq!(dist.result.status, RunStatus::Succeeded);
        assert_eq!(dist.result.fingerprint(), seq.fingerprint());
        assert_eq!(dist.reports.len(), 4, "three workers + coordinator");
        assert_eq!(dist.sites.len(), wf.node_count());
    }

    #[test]
    fn unprobed_run_produces_no_reports() {
        let (wf, _) = figure1_workflow(1);
        let exec = Executor::new(standard_registry());
        let dist = exec
            .run_distributed(&wf, DistribOptions::new(2).unprobed())
            .unwrap();
        assert!(dist.reports.is_empty());
        assert_eq!(dist.result.status, RunStatus::Succeeded);
    }

    #[test]
    fn reports_stitch_into_a_complete_order_with_trace_id() {
        let wf = challenge_workflow(1, 3, 2);
        let exec = Executor::new(standard_registry());
        let dist = exec
            .run_distributed(&wf, DistribOptions::new(4).with_trace_id(0xfeed))
            .unwrap();
        let mut c = Collector::new();
        for r in &dist.reports {
            c.ingest(r.clone());
        }
        let s = c.stitch();
        assert!(s.is_complete(), "gaps: {:?}", s.gaps);
        assert_eq!(s.trace_id, Some(0xfeed));
        // Every recorded event payload decodes.
        let mut events = 0;
        for e in &s.entries {
            if let prov_probe::LogEntry::Event(payload) = &e.entry {
                crate::wire::decode_event(payload).unwrap();
                events += 1;
            }
        }
        // Run started/finished + per-node module events at minimum.
        assert!(events >= 2 + wf.node_count());
    }

    #[test]
    fn failures_skip_downstream_and_record_at_the_coordinator() {
        let (wf, nodes) = figure1_workflow(1);
        let exec = Executor::new(standard_registry())
            .with_faults(FaultPlan::new().fail_always(nodes.load, "dead site"));
        let dist = exec.run_distributed(&wf, DistribOptions::new(2)).unwrap();
        assert_eq!(dist.result.status, RunStatus::Failed);
        let skipped = dist
            .result
            .node_runs
            .values()
            .filter(|r| r.status == RunStatus::Skipped)
            .count();
        assert!(skipped > 0, "downstream of the dead module is skipped");
        // Coordinator report carries the skip events.
        let coord = dist.reports.last().unwrap();
        let skips = coord
            .entries
            .iter()
            .filter(|(_, e)| {
                matches!(e, prov_probe::LogEntry::Event(p)
                if matches!(crate::wire::decode_event(p),
                    Ok(EngineEvent::ModuleFinished { status: RunStatus::Skipped, .. })))
            })
            .count();
        assert_eq!(skips, skipped);
    }
}
