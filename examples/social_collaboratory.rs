//! Social data analysis for science (§2.3): a collaboratory where users
//! share, search, fork, and — through provenance analytics — receive
//! workflow-completion recommendations mined from the community corpus.
//!
//! Run with: `cargo run --example social_collaboratory`

use provenance_workflows::prelude::*;
use provenance_workflows::social::{corpus, evaluate_recommender};

fn main() {
    // --- a community uploads its workflows --------------------------------
    let mut collab = Collaboratory::new();
    let users: Vec<_> = ["susan", "juliana", "wei", "amir"]
        .iter()
        .map(|n| collab.register(n))
        .collect();
    let shared = corpus::build_corpus(11, 60);
    for (i, wf) in shared.iter().enumerate() {
        let owner = users[i % users.len()];
        let e = collab.upload(owner, wf, "community pipeline");
        if wf.name.starts_with("volume") {
            collab.tag(e, "visualization");
        } else {
            collab.tag(e, "analysis");
        }
    }
    println!(
        "== collaboratory: {} entries from {} users ==",
        collab.len(),
        users.len()
    );

    // --- search and popularity ("wisdom of the crowds") --------------------
    println!(
        "== search 'histogram' -> {} entries ==",
        collab.search("histogram").len()
    );
    println!("== most used modules ==");
    for (module, count) in collab.popular_modules().into_iter().take(5) {
        println!("  {module}: {count}");
    }

    // --- forking with attribution ------------------------------------------
    let origin = collab.entries().next().expect("non-empty").id;
    let wf0 = collab.entry(origin).expect("entry").workflow.clone();
    let f1 = collab
        .fork(users[1], origin, &wf0, "tweaked parameters")
        .expect("fork");
    let f2 = collab
        .fork(users[2], f1, &wf0, "ported to new data")
        .expect("fork");
    println!(
        "== attribution chain of the latest fork: {:?} ==",
        collab.attribution_chain(f2)
    );

    // --- provenance analytics: mining + recommendation ----------------------
    let miner = FragmentMiner::mine(&shared);
    println!("== frequent module pairs (support >= 5) ==");
    for ((a, b), n) in miner.frequent_pairs(5).into_iter().take(6) {
        println!("  {a} -> {b}: {n}");
    }
    println!("== completion recommendations ==");
    for module in ["LoadVolume", "Histogram", "Isosurface"] {
        let recs = miner.recommend_successor(module);
        let top: Vec<String> = recs
            .iter()
            .take(3)
            .map(|(m, n)| format!("{m} ({n})"))
            .collect();
        println!("  after {module}: {}", top.join(", "));
    }

    // --- held-out evaluation (experiment E9's measurement) -------------------
    for k in [1, 2, 3] {
        let eval = evaluate_recommender(&shared, k);
        println!(
            "== hit@{k}: {:.1}% over {} held-out predictions ==",
            eval.hit_rate() * 100.0,
            eval.trials
        );
    }
    let eval = evaluate_recommender(&shared, 3);
    assert!(eval.hit_rate() > 0.5, "mined recommendations beat chance");
}
