//! §2.4's open problem, working: connecting database and workflow
//! provenance.
//!
//! "Data is selected from a database, potentially joined with data from
//! other databases, reformatted, and used in an analysis" — here two
//! simulated databases are joined, filtered, aggregated, bridged into a
//! grid, and analyzed by an ordinary scientific module. Module-level
//! causality and row-level why-provenance are answered over the *same*
//! execution.
//!
//! Run with: `cargo run --example database_bridge`

use provenance_workflows::prelude::*;
use provenance_workflows::provenance::finegrained::{RowLineageTracer, RowRef};

fn main() {
    // --- the mixed database/workflow pipeline ------------------------------
    let mut b = WorkflowBuilder::new(1, "db-to-analysis");
    let measurements = b.add_labeled("TableSource", "measurements db");
    b.param(measurements, "rows", 24i64)
        .param(measurements, "seed", 7i64);
    let reference = b.add_labeled("TableSource", "reference db");
    b.param(reference, "rows", 24i64)
        .param(reference, "seed", 8i64);
    let join = b.add("TableJoin");
    let filter = b.add("TableFilter");
    b.param(filter, "column", "value")
        .param(filter, "min", 25.0f64);
    let agg = b.add("TableAggregate");
    b.param(agg, "group_col", "grp")
        .param(agg, "agg_col", "value");
    let bridge = b.add_labeled("TableToGrid", "into the scientific world");
    b.param(bridge, "column", "sum_value");
    let stats = b.add("GridStats");
    let report = b.add("FormatReport");
    b.connect(measurements, "out", join, "left")
        .connect(reference, "out", join, "right")
        .connect(join, "out", filter, "in")
        .connect(filter, "out", agg, "in")
        .connect(agg, "out", bridge, "in")
        .connect(bridge, "grid", stats, "data")
        .connect(stats, "stats", report, "stats");
    let wf = b.build();

    // --- run with both provenance granularities ---------------------------
    let exec = Executor::new(standard_registry());
    let mut cap = ProvenanceCapture::new(CaptureLevel::Fine);
    let result = exec.run_observed(&wf, &mut cap).expect("pipeline runs");
    let retro = cap.take(result.exec).expect("capture");
    assert!(result.succeeded());

    println!("== the analysis result ==");
    let text = result.output(report, "report").expect("report");
    println!("{}", text.as_text().expect("text"));

    // --- module-level provenance (workflow side) ---------------------------
    let graph = CausalityGraph::from_retrospective(&retro);
    let final_report = retro.produced(report, "report").expect("artifact").hash;
    let db_a = retro.produced(measurements, "out").expect("table").hash;
    println!(
        "== module level: the report derives from the measurements db? {} ==",
        graph.derived_from(final_report, db_a)
    );
    let slice = graph.reproduction_slice(final_report);
    println!(
        "reproduction slice: {}",
        slice
            .iter()
            .filter_map(|n| graph.run_label(*n))
            .collect::<Vec<_>>()
            .join(" -> ")
    );

    // --- row-level provenance (database side) ------------------------------
    let tracer = RowLineageTracer::new(&wf, &result);
    let agg_table = result
        .output(agg, "out")
        .expect("agg")
        .as_table()
        .expect("table")
        .clone();
    println!("== row level: why-provenance of each aggregate group ==");
    for row in 0..agg_table.len() {
        let r = RowRef::new(agg, "out", row);
        let base = tracer.base_rows(&r);
        let from_a = base.iter().filter(|x| x.node == measurements).count();
        let from_b = base.iter().filter(|x| x.node == reference).count();
        println!(
            "  group {} (sum={}): {} measurement rows + {} reference rows",
            agg_table.rows[row][0], agg_table.rows[row][1], from_a, from_b
        );
        assert!(from_a > 0 && from_b > 0);
    }

    // --- row-level invalidation ---------------------------------------------
    // Suppose measurement row 3 is discovered to be bad: which result
    // groups are tainted?
    let bad_fact = RowRef::new(measurements, "out", 3);
    let tainted = tracer.tainted_rows(&bad_fact, agg);
    println!(
        "== invalidation: bad measurement row 3 taints {} of {} aggregate groups: {:?} ==",
        tainted.len(),
        agg_table.len(),
        tainted
    );

    // Coverage summary: which operators participated in row provenance.
    println!("== row-provenance coverage (node -> rows, prov entries) ==");
    for (node, (rows, entries)) in tracer.coverage() {
        let label = &wf.node(node).expect("node").label;
        println!("  {node} '{label}': {rows} rows, {entries} entries");
    }
}
