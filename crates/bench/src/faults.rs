//! Fault-tolerance experiments (E13/E14 of DESIGN.md §3): recovery under
//! deterministic fault injection, and the cost/benefit of checkpoint
//! resume.
//!
//! E13 injects seeded transient faults ([`wf_engine::FaultPlan::random`])
//! into a synthetic DAG run under a retry policy and reports how many
//! module runs needed retries, how much backoff was spent, and the
//! wall-clock overhead relative to a fault-free run. E14 fails one node
//! permanently, resumes from the checkpoint, and reports how much work the
//! resume avoided (cache-reused runs vs re-executed runs).

use crate::time_us;
use prov_core::capture::{CaptureLevel, ProvenanceCapture};
use prov_core::repro::check_resume;
use wf_engine::synth::{layered_dag, LayeredSpec};
use wf_engine::{standard_registry, ExecPolicy, Executor, FaultPlan, RetryPolicy};

/// One row of the fault-recovery experiment (E13).
#[derive(Debug)]
pub struct FaultRow {
    /// Fault-plan seed.
    pub seed: u64,
    /// Faults scheduled by the plan.
    pub injected: usize,
    /// Final run status under retries.
    pub status: String,
    /// Module runs that needed more than one attempt.
    pub retried_runs: usize,
    /// Total recorded backoff across all runs, in microseconds.
    pub backoff_us: u64,
    /// Median fault-free run time, in microseconds.
    pub clean_us: f64,
    /// Median faulty run time (same plan every rep), in microseconds.
    pub faulty_us: f64,
}

impl FaultRow {
    /// Wall-clock overhead of recovery relative to the fault-free run.
    pub fn overhead_pct(&self) -> f64 {
        if self.clean_us <= 0.0 {
            return 0.0;
        }
        (self.faulty_us - self.clean_us) / self.clean_us * 100.0
    }
}

/// Run E13: for each seed, inject a random transient fault plan into a
/// layered DAG and run it under a 3-attempt retry policy.
pub fn experiment_faults(seeds: &[u64], reps: usize) -> Vec<FaultRow> {
    let spec = LayeredSpec {
        depth: 4,
        width: 3,
        fan_in: 2,
        work: 200,
        seed: 7,
    };
    let (wf, _) = layered_dag(1, spec);
    let clean_exec = Executor::new(standard_registry());
    let clean_us = time_us(reps, || clean_exec.run(&wf).expect("clean run"));
    seeds
        .iter()
        .map(|&seed| {
            let plan = FaultPlan::random(&wf, seed);
            let injected = plan.len();
            let exec = Executor::new(standard_registry())
                .with_policy(
                    ExecPolicy::new()
                        .with_retry(RetryPolicy::attempts(3).backoff(50, 2.0, 400).jitter(0.2))
                        .with_seed(seed),
                )
                .with_faults(plan);
            let faulty_us = time_us(reps, || exec.run(&wf).expect("recovered run"));
            let mut cap = ProvenanceCapture::new(CaptureLevel::Fine);
            let r = exec.run_observed(&wf, &mut cap).expect("recovered run");
            let retro = cap.take(r.exec).expect("capture");
            FaultRow {
                seed,
                injected,
                status: retro.status.to_string(),
                retried_runs: retro.runs.iter().filter(|r| r.attempts > 1).count(),
                backoff_us: retro.runs.iter().map(|r| r.backoff_micros).sum(),
                clean_us,
                faulty_us,
            }
        })
        .collect()
}

/// One row of the checkpoint-resume experiment (E14).
#[derive(Debug)]
pub struct ResumeRow {
    /// DAG depth (layers).
    pub depth: usize,
    /// Total modules in the workflow.
    pub modules: usize,
    /// Succeeded runs replayed from the checkpoint cache.
    pub reused: usize,
    /// Runs actually re-executed by the resume.
    pub reexecuted: usize,
    /// Originally failed or skipped nodes recovered by the resume.
    pub recovered: usize,
    /// Did `check_resume` validate the recovery lineage?
    pub valid: bool,
}

/// Run E14: fail one mid-DAG node permanently, resume from the checkpoint
/// with the fault cleared, and measure how much work the resume avoided.
pub fn experiment_resume(depths: &[usize]) -> Vec<ResumeRow> {
    depths
        .iter()
        .map(|&depth| {
            let spec = LayeredSpec {
                depth,
                width: 3,
                fan_in: 2,
                work: 100,
                seed: 11,
            };
            let (wf, layers) = layered_dag(1, spec);
            let victim = layers[depth / 2][0];
            let failing = Executor::new(standard_registry())
                .with_faults(FaultPlan::new().fail_always(victim, "permanent fault"));
            let mut cap = ProvenanceCapture::new(CaptureLevel::Fine);
            let r1 = failing.run_observed(&wf, &mut cap).expect("faulted run");
            let original = cap.take(r1.exec).expect("capture");
            let healthy = Executor::new(standard_registry()).with_cache(256);
            let r2 = healthy.resume(&wf, &r1, &mut cap).expect("resumed run");
            let resumed = cap.take(r2.exec).expect("capture");
            let check = check_resume(&original, &resumed);
            ResumeRow {
                depth,
                modules: wf.node_count(),
                reused: resumed.runs.iter().filter(|r| r.from_cache).count(),
                reexecuted: resumed.runs.iter().filter(|r| !r.from_cache).count(),
                recovered: check.recovered.len(),
                valid: check.is_valid(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn faults_recover_under_retries() {
        let rows = experiment_faults(&[1, 2, 3], 2);
        assert_eq!(rows.len(), 3);
        for row in &rows {
            assert_eq!(row.status, "succeeded", "transient faults recover");
            if row.injected > 0 {
                assert!(row.retried_runs > 0, "faults force retries");
            }
        }
    }

    #[test]
    fn resume_avoids_reexecuting_succeeded_work() {
        let rows = experiment_resume(&[4, 6]);
        for row in &rows {
            assert!(row.valid, "recovery lineage validates");
            assert!(row.reused > 0, "checkpoint reuse happens");
            assert!(row.recovered > 0, "failed work is recovered");
            assert_eq!(row.reused + row.reexecuted, row.modules);
        }
    }
}
