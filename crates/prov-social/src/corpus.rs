//! Deterministic corpus generators: a simulated community of users
//! building variations of common scientific pipelines.
//!
//! Templates encode *plausible* module sequences with correct port wiring
//! (taken from the `wf-engine` standard library), so that mined patterns
//! reflect real structure rather than random noise.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use wf_model::{NodeId, Workflow, WorkflowBuilder};

/// A template step: module name, its output port, and the input port that
/// receives the previous step's output.
type Step = (&'static str, &'static str, &'static str);

/// The pipeline templates of the simulated community. Optional steps are
/// marked and dropped randomly per instance.
fn templates() -> Vec<(&'static str, Vec<(Step, bool)>)> {
    vec![
        (
            "volume visualization",
            vec![
                ((("LoadVolume"), "grid", ""), false),
                (("SmoothGrid", "smoothed", "data"), true),
                (("Isosurface", "mesh", "data"), false),
                (("SmoothMesh", "mesh", "mesh"), true),
                (("RenderMesh", "image", "mesh"), false),
                (("SaveFile", "file", "in"), true),
            ],
        ),
        (
            "histogram analysis",
            vec![
                (("LoadVolume", "grid", ""), false),
                (("Downsample", "out", "data"), true),
                (("Histogram", "table", "data"), false),
                (("PlotTable", "image", "table"), false),
                (("SaveFile", "file", "in"), true),
            ],
        ),
        (
            "summary statistics",
            vec![
                (("LoadVolume", "grid", ""), false),
                (("SmoothGrid", "smoothed", "data"), true),
                (("GridStats", "stats", "data"), false),
                (("FormatReport", "report", "stats"), false),
            ],
        ),
        (
            "slice export",
            vec![
                (("LoadVolume", "grid", ""), false),
                (("Threshold", "mask", "data"), true),
                (("Slice", "image", "data"), false),
                (("Convert", "file", "image"), false),
            ],
        ),
    ]
}

/// Generate one workflow from a template choice and RNG.
fn instantiate(id: u64, rng: &mut StdRng) -> Workflow {
    let ts = templates();
    let (name, steps) = &ts[rng.random_range(0..ts.len())];
    let mut b = WorkflowBuilder::new(id, &format!("{name} #{id}"));
    let mut prev: Option<(NodeId, &'static str)> = None;
    for ((module, out_port, in_port), optional) in steps {
        if *optional && rng.random_bool(0.4) {
            continue;
        }
        let n = b.add(module);
        if *module == "LoadVolume" {
            b.param(
                n,
                "path",
                format!("dataset-{}.vtk", rng.random_range(0..20u32)),
            );
        }
        if *module == "Histogram" {
            b.param(n, "bins", i64::from(rng.random_range(4..9u8)) * 8);
        }
        if let Some((p, p_out)) = prev {
            b.connect(p, p_out, n, in_port);
        }
        prev = Some((n, out_port));
    }
    b.build()
}

/// Generate a corpus of `n` workflows, deterministically from `seed`.
pub fn build_corpus(seed: u64, n: usize) -> Vec<Workflow> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|i| instantiate(i as u64, &mut rng)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_is_deterministic() {
        let a = build_corpus(7, 10);
        let b = build_corpus(7, 10);
        assert_eq!(a, b);
        assert_eq!(a.len(), 10);
    }

    #[test]
    fn corpus_has_varied_shapes() {
        let corpus = build_corpus(1, 40);
        let sizes: std::collections::BTreeSet<usize> =
            corpus.iter().map(|w| w.node_count()).collect();
        assert!(sizes.len() >= 3, "optional steps produce varied sizes");
        let names: std::collections::BTreeSet<&str> = corpus
            .iter()
            .map(|w| w.name.split(" #").next().unwrap())
            .collect();
        assert!(names.len() >= 3, "multiple templates used");
    }

    #[test]
    fn corpus_workflows_are_valid_dags() {
        for w in build_corpus(3, 30) {
            assert!(w.topo_nodes().is_some());
            assert!(w.node_count() >= 2);
        }
    }
}
