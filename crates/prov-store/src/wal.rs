//! Per-namespace write-ahead logging with hash-chained frames.
//!
//! The paper treats provenance as the audit record of science — a record
//! that must outlive the process that collected it. This module is the
//! durability substrate under the provenance server: every acked ingest is
//! first appended to a write-ahead log, and on restart the log is replayed
//! into fresh stores before the server accepts traffic.
//!
//! ## Frame format
//!
//! Each record is framed as
//!
//! ```text
//! [len: u32 LE][crc: u32 LE][chain: u64 LE][payload: len bytes]
//! ```
//!
//! where `crc = crc32(chain_le || payload)` guards the frame against torn
//! writes and bit rot, and `chain = fnv1a64(prev_chain_le || payload)` is a
//! hash chain rooted at [`GENESIS_CHAIN`]: record *i* commits to every
//! record before it, so a spliced, reordered, or tampered log is detected
//! in O(1) per record during replay — the Chronicle-style tamper evidence
//! of ROADMAP item 4, applied to the durability path.
//!
//! ## Fsync policy
//!
//! [`FsyncPolicy`] trades durability against throughput: `Always` fsyncs
//! every append, `Batch` fsyncs every *n* records or *t* microseconds
//! (whichever comes first), `Never` leaves flushing to the OS. Note that a
//! kill -9 does **not** lose OS page cache — only power loss or kernel
//! crashes do — so even `Never` survives the kill-9 harness; the policy
//! matters for machine-level failures.
//!
//! ## Recovery
//!
//! [`replay_bytes`] scans the log, verifying length, CRC, and hash chain
//! per frame, and stops at the first invalid frame: everything before it is
//! the *longest valid hash-chained prefix*, everything after is a torn tail
//! (reported, never panicked on). [`Wal::open`] truncates the file to that
//! prefix so the next append continues a clean chain.
//!
//! [`NamespaceWal`] layers snapshot+compaction checkpoints on top: a
//! namespace directory holds `snapshot.wal` (a checkpointed, compacted log
//! whose first record carries the generation watermark) and `wal.log` (the
//! live tail, chained off the snapshot's final hash so the pair is
//! spliceproof as a unit).

use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::time::Instant;

use crate::iofault::{DiskMedia, FaultyMedia, IoFaultPlan, WalMedia};
use crate::logstore::crc32;

/// Bytes of frame header preceding each payload: len (4) + crc (4) +
/// chain (8).
pub const FRAME_HEADER: usize = 16;

/// Hash-chain value before any record: the FNV-1a 64-bit offset basis.
pub const GENESIS_CHAIN: u64 = 0xcbf2_9ce4_8422_2325;

/// Payloads above this size are rejected at append and treated as
/// corruption during replay (a torn length field can otherwise ask the
/// scanner to skip gigabytes).
pub const MAX_PAYLOAD: usize = 16 << 20;

/// Magic prefix of a snapshot's meta record (first record of
/// `snapshot.wal`), followed by the generation watermark as `u64` LE.
pub const SNAPSHOT_MAGIC: &[u8] = b"PROVSNAP1";

/// Advance the hash chain over one payload: FNV-1a 64 over the previous
/// chain value (LE) followed by the payload bytes.
pub fn chain_hash(prev: u64, payload: &[u8]) -> u64 {
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = GENESIS_CHAIN;
    for b in prev.to_le_bytes().iter().chain(payload) {
        h ^= u64::from(*b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// Frame one payload for appending at chain position `prev`.
/// Returns the framed bytes and the new chain value.
pub fn encode_frame(prev: u64, payload: &[u8]) -> (Vec<u8>, u64) {
    let chain = chain_hash(prev, payload);
    let mut crc_input = Vec::with_capacity(8 + payload.len());
    crc_input.extend_from_slice(&chain.to_le_bytes());
    crc_input.extend_from_slice(payload);
    let crc = crc32(&crc_input);
    let mut frame = Vec::with_capacity(FRAME_HEADER + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&crc.to_le_bytes());
    frame.extend_from_slice(&chain.to_le_bytes());
    frame.extend_from_slice(payload);
    (frame, chain)
}

/// When appended records are forced to disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// fsync after every record — maximum durability, minimum throughput.
    Always,
    /// fsync once per `every` records or once per `micros` microseconds,
    /// whichever comes first. `batch(32, 5_000)` is the pragmatic default.
    Batch {
        /// Records between forced syncs.
        every: u32,
        /// Microseconds between forced syncs.
        micros: u64,
    },
    /// Never fsync from the WAL; the OS flushes when it pleases. Survives
    /// kill -9 (page cache persists) but not power loss.
    Never,
}

impl FsyncPolicy {
    /// The pragmatic default: batch every 32 records or 5 ms.
    pub fn batch_default() -> Self {
        FsyncPolicy::Batch {
            every: 32,
            micros: 5_000,
        }
    }

    /// Parse `always`, `never`, `batch`, `batch:N`, or `batch:N:MICROS`.
    pub fn parse(s: &str) -> Result<Self, String> {
        let s = s.trim();
        match s {
            "always" => return Ok(FsyncPolicy::Always),
            "never" => return Ok(FsyncPolicy::Never),
            "batch" => return Ok(FsyncPolicy::batch_default()),
            _ => {}
        }
        if let Some(rest) = s.strip_prefix("batch:") {
            let mut parts = rest.split(':');
            let every: u32 = parts
                .next()
                .unwrap_or_default()
                .parse()
                .map_err(|_| format!("bad fsync batch size in {s:?}"))?;
            let micros: u64 = match parts.next() {
                Some(m) => m
                    .parse()
                    .map_err(|_| format!("bad fsync batch interval in {s:?}"))?,
                None => 5_000,
            };
            if every == 0 {
                return Err(format!("fsync batch size must be > 0 in {s:?}"));
            }
            return Ok(FsyncPolicy::Batch { every, micros });
        }
        Err(format!(
            "unknown fsync policy {s:?} (expected always|batch[:N[:MICROS]]|never)"
        ))
    }

    /// Canonical textual form, parseable by [`FsyncPolicy::parse`].
    pub fn label(&self) -> String {
        match self {
            FsyncPolicy::Always => "always".to_string(),
            FsyncPolicy::Batch { every, micros } => format!("batch:{every}:{micros}"),
            FsyncPolicy::Never => "never".to_string(),
        }
    }
}

impl std::fmt::Display for FsyncPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label())
    }
}

/// The outcome of scanning one log: the longest valid hash-chained prefix,
/// plus a report on whatever followed it.
#[derive(Debug, Clone)]
pub struct WalReplay {
    /// Payloads of the valid prefix, in append order.
    pub payloads: Vec<Vec<u8>>,
    /// Bytes occupied by the valid prefix (the truncation point).
    pub valid_bytes: u64,
    /// Hash-chain value after the last valid record (`genesis` when empty).
    pub chain: u64,
    /// Bytes past the valid prefix that were rejected (0 = clean log).
    pub torn_bytes: u64,
    /// Why the scan stopped, when it stopped early.
    pub tail_error: Option<String>,
}

impl WalReplay {
    /// Did the scan reject a tail?
    pub fn truncated(&self) -> bool {
        self.torn_bytes > 0
    }
}

/// Scan `data` as a framed log rooted at `genesis`, returning the longest
/// valid hash-chained prefix and a description of any rejected tail. Never
/// panics on malformed input — corruption is data, not a bug.
pub fn replay_bytes(data: &[u8], genesis: u64) -> WalReplay {
    let mut payloads = Vec::new();
    let mut chain = genesis;
    let mut off = 0usize;
    let mut tail_error = None;
    while off < data.len() {
        let rest = &data[off..];
        if rest.len() < FRAME_HEADER {
            tail_error = Some(format!(
                "torn frame header at byte {off}: {} of {FRAME_HEADER} bytes",
                rest.len()
            ));
            break;
        }
        let len = u32::from_le_bytes(rest[0..4].try_into().unwrap()) as usize;
        if len > MAX_PAYLOAD {
            tail_error = Some(format!(
                "implausible payload length {len} at byte {off} (corrupt length field)"
            ));
            break;
        }
        if rest.len() < FRAME_HEADER + len {
            tail_error = Some(format!(
                "torn payload at byte {off}: {} of {} bytes",
                rest.len() - FRAME_HEADER,
                len
            ));
            break;
        }
        let crc = u32::from_le_bytes(rest[4..8].try_into().unwrap());
        let rec_chain = u64::from_le_bytes(rest[8..16].try_into().unwrap());
        let payload = &rest[FRAME_HEADER..FRAME_HEADER + len];
        let mut crc_input = Vec::with_capacity(8 + len);
        crc_input.extend_from_slice(&rec_chain.to_le_bytes());
        crc_input.extend_from_slice(payload);
        if crc32(&crc_input) != crc {
            tail_error = Some(format!(
                "crc mismatch at byte {off} (record {})",
                payloads.len()
            ));
            break;
        }
        if chain_hash(chain, payload) != rec_chain {
            tail_error = Some(format!(
                "hash chain break at byte {off} (record {}): log tampered or spliced",
                payloads.len()
            ));
            break;
        }
        chain = rec_chain;
        payloads.push(payload.to_vec());
        off += FRAME_HEADER + len;
    }
    WalReplay {
        payloads,
        valid_bytes: off as u64,
        chain,
        torn_bytes: (data.len() - off) as u64,
        tail_error,
    }
}

/// Replay a log file from disk ([`replay_bytes`] over its contents; a
/// missing file is an empty log).
pub fn replay_file(path: &Path, genesis: u64) -> io::Result<WalReplay> {
    let data = crate::iofault::read_for_replay(path, None)?;
    Ok(replay_bytes(&data, genesis))
}

/// fsync a directory so a rename or create inside it is durable. Treated
/// as best-effort on platforms where directories can't be opened.
pub fn sync_dir(dir: &Path) -> io::Result<()> {
    match File::open(dir) {
        Ok(d) => d.sync_all(),
        Err(_) => Ok(()),
    }
}

/// A single append-only log file: open-with-recovery, framed appends, and
/// policy-driven fsync.
#[derive(Debug)]
pub struct Wal {
    path: PathBuf,
    media: Box<dyn WalMedia>,
    policy: FsyncPolicy,
    chain: u64,
    records: u64,
    unsynced: u32,
    last_sync: Instant,
    /// Bytes up to the end of the last *successful* append: the offset a
    /// failed append self-heals back to.
    valid_len: u64,
    /// A failed append could not be healed; every further append fails.
    poisoned: bool,
    /// Completed fsyncs since open (for observability).
    syncs: u64,
    /// Wall-clock duration of the most recent fsync, in microseconds.
    last_sync_micros: u64,
}

impl Wal {
    /// Open (or create) the log at `path`, replay it from `genesis`,
    /// truncate any torn tail, and position for appending. Returns the
    /// ready-to-append WAL and the replay report.
    pub fn open(path: &Path, genesis: u64, policy: FsyncPolicy) -> io::Result<(Self, WalReplay)> {
        Self::open_with_plan(path, genesis, policy, None)
    }

    /// [`Wal::open`] with an optional fault plan arming the append path.
    pub fn open_with_plan(
        path: &Path,
        genesis: u64,
        policy: FsyncPolicy,
        plan: Option<IoFaultPlan>,
    ) -> io::Result<(Self, WalReplay)> {
        let replay = replay_file(path, genesis)?;
        let file = OpenOptions::new()
            .create(true)
            .truncate(false)
            .read(true)
            .write(true)
            .open(path)?;
        if replay.truncated() {
            // Drop the torn tail so the next append continues the chain
            // from the last valid record.
            file.set_len(replay.valid_bytes)?;
            file.sync_all()?;
        }
        let mut file = file;
        use std::io::Seek;
        file.seek(io::SeekFrom::Start(replay.valid_bytes))?;
        let media: Box<dyn WalMedia> = match plan {
            Some(p) if !p.is_empty() => Box::new(FaultyMedia::new(file, replay.valid_bytes, p)),
            _ => Box::new(DiskMedia::new(file, replay.valid_bytes)),
        };
        let wal = Wal {
            path: path.to_path_buf(),
            media,
            policy,
            chain: replay.chain,
            records: replay.payloads.len() as u64,
            unsynced: 0,
            last_sync: Instant::now(),
            valid_len: replay.valid_bytes,
            poisoned: false,
            syncs: 0,
            last_sync_micros: 0,
        };
        Ok((wal, replay))
    }

    /// Append one payload, then fsync according to policy. On success the
    /// record is at least in the OS page cache (kill-9 durable); whether it
    /// is power-loss durable depends on the policy.
    pub fn append(&mut self, payload: &[u8]) -> io::Result<()> {
        if self.poisoned {
            return Err(io::Error::other(
                "wal poisoned: an earlier failed append could not be healed",
            ));
        }
        if payload.len() > MAX_PAYLOAD {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("payload of {} bytes exceeds MAX_PAYLOAD", payload.len()),
            ));
        }
        let (frame, chain) = encode_frame(self.chain, payload);
        if let Err(e) = self.media.append(&frame) {
            // A failed append can leave torn bytes that would orphan every
            // later record behind an invalid frame. Heal by cutting back
            // to the last good offset; if even that fails, refuse further
            // appends rather than silently losing them.
            if self.media.truncate(self.valid_len).is_err() {
                self.poisoned = true;
            }
            return Err(e);
        }
        self.chain = chain;
        self.records += 1;
        self.unsynced += 1;
        self.valid_len = self.media.len();
        self.maybe_sync()
    }

    fn maybe_sync(&mut self) -> io::Result<()> {
        let due = match self.policy {
            FsyncPolicy::Always => true,
            FsyncPolicy::Batch { every, micros } => {
                self.unsynced >= every || self.last_sync.elapsed().as_micros() as u64 >= micros
            }
            FsyncPolicy::Never => false,
        };
        if due {
            self.sync()?;
        }
        Ok(())
    }

    /// Force everything appended so far to disk.
    pub fn sync(&mut self) -> io::Result<()> {
        let began = Instant::now();
        self.media.sync()?;
        self.unsynced = 0;
        self.last_sync = Instant::now();
        self.syncs += 1;
        self.last_sync_micros = began.elapsed().as_micros() as u64;
        Ok(())
    }

    /// Records in the log (replayed + appended).
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Completed fsyncs since open.
    pub fn syncs(&self) -> u64 {
        self.syncs
    }

    /// Duration of the most recent fsync, in microseconds.
    pub fn last_sync_micros(&self) -> u64 {
        self.last_sync_micros
    }

    /// Current chain head (commits to the whole log).
    pub fn chain(&self) -> u64 {
        self.chain
    }

    /// Bytes in the log.
    pub fn len_bytes(&self) -> u64 {
        self.media.len()
    }

    /// The file this WAL appends to.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// What [`NamespaceWal::open`] recovered from a namespace directory.
#[derive(Debug, Clone)]
pub struct WalRecovery {
    /// Keyed payloads in replay order: snapshot records then live-tail
    /// records. Keys are whatever the writer supplied (e.g. an exec id
    /// hash) and drive latest-wins compaction at checkpoint.
    pub entries: Vec<(u64, Vec<u8>)>,
    /// Records replayed from the snapshot (compacted history).
    pub snapshot_records: u64,
    /// Records replayed from the live tail.
    pub wal_records: u64,
    /// Generation watermark to restore: the snapshot's recorded generation
    /// plus one per live-tail record.
    pub generation: u64,
    /// True if either file had a tail rejected and truncated.
    pub truncated: bool,
    /// Scan errors, in the order encountered (reported, never panicked on).
    pub tail_errors: Vec<String>,
}

/// A namespace's durable state: `snapshot.wal` (compacted checkpoint, meta
/// record first) plus `wal.log` (live tail chained off the snapshot head).
///
/// The checkpoint protocol is crash-safe at every step: the new snapshot is
/// written to a temp file, fsynced, renamed over the old one, and the
/// parent directory fsynced *before* the live tail is reset. A crash
/// between rename and reset leaves a tail whose chain no longer matches —
/// replay rejects it, and every record it held is already in the snapshot.
#[derive(Debug)]
pub struct NamespaceWal {
    dir: PathBuf,
    wal: Wal,
    policy: FsyncPolicy,
    plan: Option<IoFaultPlan>,
    /// Generation recorded in the snapshot's meta record.
    base_generation: u64,
    /// Keyed payloads resident for the next checkpoint (snapshot + tail).
    resident: Vec<(u64, Vec<u8>)>,
    /// Auto-checkpoint once the live tail holds this many records
    /// (0 = only on explicit request).
    pub checkpoint_every: u64,
    /// Completed checkpoints since open (for observability).
    checkpoints: u64,
    /// Wall-clock duration of the most recent checkpoint, in microseconds.
    last_checkpoint_micros: u64,
}

impl NamespaceWal {
    fn snapshot_path(dir: &Path) -> PathBuf {
        dir.join("snapshot.wal")
    }

    fn wal_path(dir: &Path) -> PathBuf {
        dir.join("wal.log")
    }

    /// Open a namespace directory (creating it if needed), replay snapshot
    /// and live tail, truncate torn tails, and return the recovered state.
    pub fn open(dir: &Path, policy: FsyncPolicy) -> io::Result<(Self, WalRecovery)> {
        Self::open_with_plan(dir, policy, None)
    }

    /// [`NamespaceWal::open`] with a fault plan arming the live tail.
    pub fn open_with_plan(
        dir: &Path,
        policy: FsyncPolicy,
        plan: Option<IoFaultPlan>,
    ) -> io::Result<(Self, WalRecovery)> {
        std::fs::create_dir_all(dir)?;
        let mut tail_errors = Vec::new();
        let mut truncated = false;

        // 1. Replay the snapshot (rooted at genesis). Its first record is
        //    the meta record carrying the generation watermark.
        let snap = replay_file(&Self::snapshot_path(dir), GENESIS_CHAIN)?;
        if snap.truncated() {
            truncated = true;
            if let Some(e) = &snap.tail_error {
                tail_errors.push(format!("snapshot: {e}"));
            }
            // A torn snapshot is still a valid prefix; rewrite it clean so
            // the live tail's chain root stays consistent.
            let file = OpenOptions::new()
                .write(true)
                .open(Self::snapshot_path(dir))?;
            file.set_len(snap.valid_bytes)?;
            file.sync_all()?;
        }
        let mut base_generation = 0u64;
        let mut entries: Vec<(u64, Vec<u8>)> = Vec::new();
        let mut snapshot_records = 0u64;
        for (i, payload) in snap.payloads.iter().enumerate() {
            if i == 0 && payload.starts_with(SNAPSHOT_MAGIC) {
                let tail = &payload[SNAPSHOT_MAGIC.len()..];
                if tail.len() >= 8 {
                    base_generation = u64::from_le_bytes(tail[0..8].try_into().unwrap());
                }
                continue;
            }
            snapshot_records += 1;
            entries.push((entry_key(payload), payload.clone()));
        }

        // 2. Replay the live tail, chained off the snapshot head so the
        //    pair is tamper-evident as a unit.
        let (wal, tail) =
            Wal::open_with_plan(&Self::wal_path(dir), snap.chain, policy, plan.clone())?;
        if tail.truncated() {
            truncated = true;
            if let Some(e) = &tail.tail_error {
                tail_errors.push(format!("wal: {e}"));
            }
        }
        let wal_records = tail.payloads.len() as u64;
        for payload in &tail.payloads {
            entries.push((entry_key(payload), payload.clone()));
        }

        let recovery = WalRecovery {
            entries: entries.clone(),
            snapshot_records,
            wal_records,
            generation: base_generation + wal_records,
            truncated,
            tail_errors,
        };
        let nswal = NamespaceWal {
            dir: dir.to_path_buf(),
            wal,
            policy,
            plan,
            base_generation,
            resident: entries,
            checkpoint_every: 0,
            checkpoints: 0,
            last_checkpoint_micros: 0,
        };
        Ok((nswal, recovery))
    }

    /// Append one keyed payload to the live tail. The key drives
    /// latest-wins compaction at the next checkpoint.
    pub fn append(&mut self, key: u64, payload: &[u8]) -> io::Result<()> {
        self.wal.append(payload)?;
        self.resident.push((key, payload.to_vec()));
        if self.checkpoint_every > 0 && self.wal.records() >= self.checkpoint_every {
            // Auto-checkpoint failures must not fail the append: the
            // record is already durable in the live tail.
            let _ = self.checkpoint(self.generation());
        }
        Ok(())
    }

    /// Force the live tail to disk regardless of policy.
    pub fn sync(&mut self) -> io::Result<()> {
        self.wal.sync()
    }

    /// The logical generation this WAL certifies: the snapshot watermark
    /// plus one per live-tail record.
    pub fn generation(&self) -> u64 {
        self.base_generation + self.wal.records()
    }

    /// Records currently in the live tail.
    pub fn wal_records(&self) -> u64 {
        self.wal.records()
    }

    /// Chain head of the live tail.
    pub fn chain(&self) -> u64 {
        self.wal.chain()
    }

    /// The namespace directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Completed fsyncs of the live tail since open.
    pub fn syncs(&self) -> u64 {
        self.wal.syncs()
    }

    /// Duration of the most recent live-tail fsync, in microseconds.
    pub fn last_sync_micros(&self) -> u64 {
        self.wal.last_sync_micros()
    }

    /// Completed checkpoints since open.
    pub fn checkpoints(&self) -> u64 {
        self.checkpoints
    }

    /// Duration of the most recent checkpoint, in microseconds.
    pub fn last_checkpoint_micros(&self) -> u64 {
        self.last_checkpoint_micros
    }

    /// Checkpoint: compact resident records (latest per key, first-seen
    /// order) into a fresh snapshot stamped with `generation`, then reset
    /// the live tail. Crash-safe at every intermediate point.
    pub fn checkpoint(&mut self, generation: u64) -> io::Result<()> {
        let began = Instant::now();
        // Latest-wins compaction, preserving first-occurrence order — the
        // same shape as LogStore::compact.
        let mut order: Vec<u64> = Vec::new();
        let mut latest: std::collections::HashMap<u64, &Vec<u8>> = std::collections::HashMap::new();
        for (key, payload) in &self.resident {
            if !latest.contains_key(key) {
                order.push(*key);
            }
            latest.insert(*key, payload);
        }

        // 1. Write the new snapshot to a temp file: meta record first,
        //    then the compacted payloads, all on one chain from genesis.
        let tmp = self.dir.join("snapshot.tmp");
        let mut f = File::create(&tmp)?;
        let mut chain = GENESIS_CHAIN;
        let mut meta = SNAPSHOT_MAGIC.to_vec();
        meta.extend_from_slice(&generation.to_le_bytes());
        let (frame, next) = encode_frame(chain, &meta);
        f.write_all(&frame)?;
        chain = next;
        let mut compacted: Vec<(u64, Vec<u8>)> = Vec::with_capacity(order.len());
        for key in &order {
            let payload = latest[key];
            let (frame, next) = encode_frame(chain, payload);
            f.write_all(&frame)?;
            chain = next;
            compacted.push((*key, payload.clone()));
        }
        // 2. The temp file must be durable *before* the rename publishes
        //    it — otherwise a crash can leave a named-but-empty snapshot.
        f.sync_all()?;
        drop(f);
        std::fs::rename(&tmp, Self::snapshot_path(&self.dir))?;
        // 3. The rename itself lives in the directory; fsync it.
        sync_dir(&self.dir)?;

        // 4. Only now reset the live tail, re-rooted at the new snapshot
        //    head. A crash before this point leaves the old tail chained
        //    off the old snapshot — replay rejects it, and every record it
        //    held is already inside the new snapshot.
        std::fs::remove_file(Self::wal_path(&self.dir)).ok();
        sync_dir(&self.dir)?;
        let (wal, _) = Wal::open_with_plan(
            &Self::wal_path(&self.dir),
            chain,
            self.policy,
            self.plan.clone(),
        )?;
        self.wal = wal;
        self.base_generation = generation;
        self.resident = compacted;
        self.checkpoints += 1;
        self.last_checkpoint_micros = began.elapsed().as_micros() as u64;
        Ok(())
    }
}

/// Stable key for latest-wins compaction when the writer doesn't supply
/// one: FNV-1a over the payload (each distinct payload is its own key, so
/// uncompacted replays keep everything).
fn entry_key(payload: &[u8]) -> u64 {
    chain_hash(0, payload)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::iofault::IoFault;

    fn temp_dir(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "prov-wal-{}-{}-{name}",
            std::process::id(),
            wf_engine::event::now_millis()
        ));
        p
    }

    #[test]
    fn fsync_policy_parses_and_round_trips() {
        assert_eq!(FsyncPolicy::parse("always").unwrap(), FsyncPolicy::Always);
        assert_eq!(FsyncPolicy::parse("never").unwrap(), FsyncPolicy::Never);
        assert_eq!(
            FsyncPolicy::parse("batch:8:100").unwrap(),
            FsyncPolicy::Batch {
                every: 8,
                micros: 100
            }
        );
        assert_eq!(
            FsyncPolicy::parse("batch").unwrap(),
            FsyncPolicy::batch_default()
        );
        for s in ["always", "never", "batch:3:77"] {
            assert_eq!(FsyncPolicy::parse(s).unwrap().label(), s);
        }
        assert!(FsyncPolicy::parse("sometimes").is_err());
        assert!(FsyncPolicy::parse("batch:0").is_err());
    }

    #[test]
    fn append_replay_round_trip_preserves_order_and_chain() {
        let dir = temp_dir("roundtrip");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("wal.log");
        let (mut wal, replay) = Wal::open(&path, GENESIS_CHAIN, FsyncPolicy::Always).unwrap();
        assert!(replay.payloads.is_empty());
        for i in 0..20u8 {
            wal.append(&[i; 5]).unwrap();
        }
        let head = wal.chain();
        drop(wal);
        let replay = replay_file(&path, GENESIS_CHAIN).unwrap();
        assert_eq!(replay.payloads.len(), 20);
        assert_eq!(replay.payloads[7], vec![7u8; 5]);
        assert_eq!(replay.chain, head);
        assert!(!replay.truncated());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_is_truncated_to_longest_valid_prefix() {
        let dir = temp_dir("torn");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("wal.log");
        let (mut wal, _) = Wal::open(&path, GENESIS_CHAIN, FsyncPolicy::Never).unwrap();
        for i in 0..10u8 {
            wal.append(&[i; 32]).unwrap();
        }
        drop(wal);
        // Tear the last frame mid-payload.
        let data = std::fs::read(&path).unwrap();
        std::fs::write(&path, &data[..data.len() - 11]).unwrap();
        let (wal, replay) = Wal::open(&path, GENESIS_CHAIN, FsyncPolicy::Never).unwrap();
        assert_eq!(replay.payloads.len(), 9);
        assert!(replay.truncated());
        assert!(replay.tail_error.as_deref().unwrap().contains("torn"));
        // The file itself was truncated to the valid prefix.
        assert_eq!(std::fs::metadata(&path).unwrap().len(), replay.valid_bytes);
        assert_eq!(wal.records(), 9);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bit_flip_is_caught_by_crc_and_chain_break_by_hash() {
        let mut log = Vec::new();
        let mut chain = GENESIS_CHAIN;
        for i in 0..5u8 {
            let (frame, next) = encode_frame(chain, &[i; 16]);
            log.extend_from_slice(&frame);
            chain = next;
        }
        // Flip a payload bit in record 2.
        let mut flipped = log.clone();
        let rec_size = FRAME_HEADER + 16;
        flipped[2 * rec_size + FRAME_HEADER + 3] ^= 0x40;
        let replay = replay_bytes(&flipped, GENESIS_CHAIN);
        assert_eq!(replay.payloads.len(), 2);
        assert!(replay.tail_error.as_deref().unwrap().contains("crc"));

        // Splice: re-frame record 2 with a bogus chain value but a valid
        // CRC — only the hash chain catches this.
        let mut spliced = log[..2 * rec_size].to_vec();
        let (frame, _) = encode_frame(0xDEAD_BEEF, &[2u8; 16]);
        spliced.extend_from_slice(&frame);
        let replay = replay_bytes(&spliced, GENESIS_CHAIN);
        assert_eq!(replay.payloads.len(), 2);
        assert!(replay
            .tail_error
            .as_deref()
            .unwrap()
            .contains("hash chain break"));
    }

    #[test]
    fn namespace_checkpoint_compacts_and_restores_generation() {
        let dir = temp_dir("ns");
        let (mut ns, rec) = NamespaceWal::open(&dir, FsyncPolicy::Always).unwrap();
        assert_eq!(rec.generation, 0);
        // Three keys, key 1 written twice — compaction keeps the latest.
        ns.append(1, b"one-v1").unwrap();
        ns.append(2, b"two").unwrap();
        ns.append(1, b"one-v2").unwrap();
        ns.append(3, b"three").unwrap();
        assert_eq!(ns.generation(), 4);
        ns.checkpoint(4).unwrap();
        assert_eq!(ns.wal_records(), 0);
        ns.append(4, b"four").unwrap();
        drop(ns);

        let (ns, rec) = NamespaceWal::open(&dir, FsyncPolicy::Always).unwrap();
        assert_eq!(rec.generation, 5, "snapshot watermark + tail records");
        assert_eq!(rec.snapshot_records, 3, "key 1 compacted to one record");
        assert_eq!(rec.wal_records, 1);
        let payloads: Vec<&[u8]> = rec.entries.iter().map(|(_, p)| p.as_slice()).collect();
        assert_eq!(payloads, vec![&b"one-v2"[..], b"two", b"three", b"four"]);
        assert_eq!(ns.generation(), 5);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stale_tail_after_interrupted_checkpoint_is_rejected_not_replayed_twice() {
        let dir = temp_dir("interrupted");
        let (mut ns, _) = NamespaceWal::open(&dir, FsyncPolicy::Always).unwrap();
        ns.append(1, b"alpha").unwrap();
        ns.append(2, b"beta").unwrap();
        // Simulate a crash between "snapshot renamed" and "tail reset":
        // checkpoint fully, then restore the pre-checkpoint tail bytes.
        let old_tail = std::fs::read(NamespaceWal::wal_path(&dir)).unwrap();
        ns.checkpoint(2).unwrap();
        drop(ns);
        std::fs::write(NamespaceWal::wal_path(&dir), &old_tail).unwrap();

        let (_, rec) = NamespaceWal::open(&dir, FsyncPolicy::Always).unwrap();
        // The stale tail chains off the old snapshot head — rejected, and
        // its records come back from the snapshot exactly once.
        assert_eq!(rec.wal_records, 0);
        assert!(rec.truncated);
        assert_eq!(rec.generation, 2);
        let payloads: Vec<&[u8]> = rec.entries.iter().map(|(_, p)| p.as_slice()).collect();
        assert_eq!(payloads, vec![&b"alpha"[..], b"beta"]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn injected_torn_write_fails_append_and_recovers_clean() {
        let dir = temp_dir("fault");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("wal.log");
        let payload = [9u8; 40];
        let frame_len = (FRAME_HEADER + payload.len()) as u64;
        // Tear the third append halfway through its frame.
        let plan = IoFaultPlan::new().at(
            2 * frame_len + frame_len / 2,
            IoFault::TornWrite { keep: 0 },
        );
        let (mut wal, _) =
            Wal::open_with_plan(&path, GENESIS_CHAIN, FsyncPolicy::Never, Some(plan)).unwrap();
        wal.append(&payload).unwrap();
        wal.append(&payload).unwrap();
        let err = wal.append(&payload).unwrap_err();
        assert!(err.to_string().contains("torn write"), "{err}");
        // The failed append self-healed: the torn bytes were cut back and
        // the next append lands on a clean chain.
        wal.append(&payload).unwrap();
        assert_eq!(wal.records(), 3);
        drop(wal);
        let (wal, replay) = Wal::open(&path, GENESIS_CHAIN, FsyncPolicy::Never).unwrap();
        assert_eq!(replay.payloads.len(), 3);
        assert!(!replay.truncated(), "{:?}", replay.tail_error);
        assert_eq!(wal.records(), 3);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn batch_policy_syncs_on_record_count() {
        let dir = temp_dir("batch");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("wal.log");
        // A failing-sync plan proves when sync is actually called: with
        // batch:3, the first sync attempt happens on the third append.
        let plan = IoFaultPlan::new().at(0, IoFault::FailSync { count: 1 });
        let policy = FsyncPolicy::Batch {
            every: 3,
            micros: u64::MAX,
        };
        let (mut wal, _) = Wal::open_with_plan(&path, GENESIS_CHAIN, policy, Some(plan)).unwrap();
        wal.append(b"a").unwrap();
        wal.append(b"b").unwrap();
        let err = wal.append(b"c").unwrap_err();
        assert!(err.to_string().contains("fsync"), "{err}");
        // The record itself was appended before the sync failed.
        assert_eq!(wal.records(), 3);
        std::fs::remove_dir_all(&dir).ok();
    }
}
