//! Regenerate every experiment table of EXPERIMENTS.md.
//!
//! Run with: `cargo run --release -p bench --bin report`
//! (release mode recommended; dev mode works but inflates the absolute
//! numbers).

use bench::*;

/// E15 prints its table and drops `BENCH_telemetry.json` next to the
/// working directory. Factored out so `report telemetry` can regenerate
/// just this section.
fn report_telemetry(reps: usize) {
    println!("## E15 — telemetry overhead: the cost of watching a run\n");
    let rows = experiment_telemetry(reps);
    println!(
        "{}",
        render_table(
            &[
                "workload",
                "threads",
                "spans",
                "unobserved (us)",
                "telemetry (us)",
                "+capture (us)",
                "telemetry %",
                "+capture %"
            ],
            &rows
                .iter()
                .map(|r| vec![
                    r.workload.clone(),
                    r.threads.to_string(),
                    r.spans.to_string(),
                    format!("{:.1}", r.unobserved_us),
                    format!("{:.1}", r.observed_us),
                    format!("{:.1}", r.with_capture_us),
                    format!("{:+.2}", r.observed_overhead_pct()),
                    format!("{:+.2}", r.capture_overhead_pct()),
                ])
                .collect::<Vec<_>>(),
        )
    );
    let json = telemetry_json(&rows);
    match std::fs::write("BENCH_telemetry.json", &json) {
        Ok(()) => eprintln!("wrote BENCH_telemetry.json"),
        Err(e) => eprintln!("could not write BENCH_telemetry.json: {e}"),
    }
}

/// E16 prints its table and drops `BENCH_query.json` next to the working
/// directory. Factored out so `report query` can regenerate just this
/// section.
fn report_query(reps: usize) {
    println!("## E16 — query observability overhead: the cost of counting accesses\n");
    let corpus = challenge_corpus(12);
    let rows = experiment_queryobs(&corpus, reps);
    println!(
        "{}",
        render_table(
            &[
                "backend",
                "query",
                "rows",
                "unobserved (us)",
                "observed (us)",
                "overhead %",
                "accesses"
            ],
            &rows
                .iter()
                .map(|r| vec![
                    r.backend.clone(),
                    r.query.clone(),
                    r.rows.to_string(),
                    format!("{:.1}", r.unobserved_us),
                    format!("{:.1}", r.observed_us),
                    format!("{:+.2}", r.overhead_pct()),
                    r.accesses.render(),
                ])
                .collect::<Vec<_>>(),
        )
    );
    println!(
        "overall (time-weighted): {:+.2}%\n",
        overall_overhead_pct(&rows)
    );
    let json = query_obs_json(&rows);
    match std::fs::write("BENCH_query.json", &json) {
        Ok(()) => eprintln!("wrote BENCH_query.json"),
        Err(e) => eprintln!("could not write BENCH_query.json: {e}"),
    }
}

/// E17 prints its table and drops `BENCH_optimizer.json` next to the
/// working directory. Factored out so `report optimizer` can regenerate
/// just this section.
fn report_optimizer(reps: usize) {
    println!("## E17 — cost-based optimizer: naive vs index-accelerated query paths\n");
    let corpus = challenge_corpus(12);
    let rows = experiment_optimizer(&corpus, reps);
    println!(
        "{}",
        render_table(
            &[
                "backend",
                "query",
                "rows",
                "eligible",
                "naive (us)",
                "optimized (us)",
                "speedup"
            ],
            &rows
                .iter()
                .map(|r| vec![
                    r.backend.clone(),
                    r.query.clone(),
                    r.rows.to_string(),
                    r.index_eligible.to_string(),
                    format!("{:.1}", r.naive_us),
                    format!("{:.1}", r.optimized_us),
                    format!("{:.2}x", r.speedup()),
                ])
                .collect::<Vec<_>>(),
        )
    );
    for b in ["graph", "relational", "triple", "log"] {
        if let Some(s) = median_eligible_speedup(&rows, b) {
            println!("median eligible speedup ({b}): {s:.2}x");
        }
    }
    println!(
        "worst ineligible regression: {:+.2}%\n",
        worst_ineligible_regression_pct(&rows)
    );
    let json = optimizer_json(&rows);
    match std::fs::write("BENCH_optimizer.json", &json) {
        Ok(()) => eprintln!("wrote BENCH_optimizer.json"),
        Err(e) => eprintln!("could not write BENCH_optimizer.json: {e}"),
    }
}

/// E18 drives the concurrent provenance server with the closed-loop load
/// generator and drops `BENCH_server.json` next to the working directory.
/// Factored out so `report server` can regenerate just this section.
/// Client count honors `PROVBENCH_CLIENTS` (default 8, minimum 2).
fn report_server(requests_per_client: usize) {
    use prov_server::{run_load, LoadConfig, ProvServer, ServerConfig};
    use std::sync::Arc;

    println!("## E18 — concurrent provenance server: closed-loop mixed load\n");
    let clients = std::env::var("PROVBENCH_CLIENTS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(8)
        .max(2);
    let server = Arc::new(ProvServer::new(ServerConfig::default()));
    let config = LoadConfig {
        clients,
        requests_per_client,
        namespaces: vec!["physics".into(), "biology".into()],
        ingest_percent: 25,
        traced: false,
    };
    let report = run_load(&server, &config);
    println!(
        "{}",
        render_table(
            &[
                "clients",
                "requests",
                "ingests",
                "queries",
                "cache hits",
                "shed",
                "rps",
                "p50 (us)",
                "p99 (us)",
                "p999 (us)",
                "consistent"
            ],
            &[vec![
                report.clients.to_string(),
                report.requests.to_string(),
                report.ingests_acked.to_string(),
                report.queries_answered.to_string(),
                report.cache_hits.to_string(),
                report.backpressure.to_string(),
                format!("{:.0}", report.throughput_rps),
                report.p50_micros.to_string(),
                report.p99_micros.to_string(),
                report.p999_micros.to_string(),
                report.consistent.to_string(),
            ]],
        )
    );
    if !report.consistent {
        eprintln!("CONSISTENCY VIOLATIONS: {:?}", report.violations);
    }
    let json = report.render_json();
    match std::fs::write("BENCH_server.json", &json) {
        Ok(()) => eprintln!("wrote BENCH_server.json"),
        Err(e) => eprintln!("could not write BENCH_server.json: {e}"),
    }
}

/// E19 measures what WAL durability costs: the closed-loop load generator
/// runs pure-ingest traffic against an in-memory server and against
/// WAL-backed servers under each fsync policy, and the per-policy
/// durable-ingest throughput + latency quantiles land in
/// `BENCH_durability.json`. Batch fsync is the shipping default; the
/// interesting number is its throughput as a fraction of in-memory.
fn report_durability(requests_per_client: usize) {
    use prov_server::{run_load, DurabilityConfig, LoadConfig, ProvServer, ServerConfig};
    use prov_store::wal::FsyncPolicy;
    use std::sync::Arc;

    println!("## E19 — durable ingest: WAL fsync policies vs in-memory\n");
    let clients = std::env::var("PROVBENCH_CLIENTS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(8)
        .max(2);
    let config = LoadConfig {
        clients,
        requests_per_client,
        namespaces: vec!["physics".into(), "biology".into()],
        ingest_percent: 100,
        traced: false,
    };
    let scratch = std::env::temp_dir().join(format!("prov-bench-wal-{}", std::process::id()));

    let mut rows = Vec::new();
    let mut modes_json = Vec::new();
    let mut ingest_rps = std::collections::BTreeMap::new();
    let policies: [(&str, Option<FsyncPolicy>); 4] = [
        ("memory", None),
        ("always", Some(FsyncPolicy::Always)),
        ("batch", Some(FsyncPolicy::batch_default())),
        ("never", Some(FsyncPolicy::Never)),
    ];
    for (label, policy) in policies {
        let mut server_config = ServerConfig::default();
        if let Some(policy) = policy {
            let dir = scratch.join(label);
            std::fs::remove_dir_all(&dir).ok();
            server_config.durability = Some(DurabilityConfig::new(dir).fsync(policy));
        }
        let server = Arc::new(ProvServer::new(server_config));
        server.recover().expect("bench recovery");
        let report = run_load(&server, &config);
        let secs = report.wall_micros as f64 / 1e6;
        let rps = report.ingests_acked as f64 / secs.max(1e-9);
        ingest_rps.insert(label, rps);
        rows.push(vec![
            label.to_string(),
            report.ingests_acked.to_string(),
            format!("{rps:.0}"),
            report.p50_micros.to_string(),
            report.p99_micros.to_string(),
            report.consistent.to_string(),
        ]);
        if !report.consistent {
            eprintln!("[{label}] CONSISTENCY VIOLATIONS: {:?}", report.violations);
        }
        modes_json.push(format!(
            "{{\"fsync\":\"{label}\",\"ingests_acked\":{},\"wall_micros\":{},\"ingest_rps\":{rps:.1},\"latency_micros\":{{\"p50\":{},\"p99\":{},\"p999\":{}}},\"consistent\":{}}}",
            report.ingests_acked,
            report.wall_micros,
            report.p50_micros,
            report.p99_micros,
            report.p999_micros,
            report.consistent
        ));
    }
    std::fs::remove_dir_all(&scratch).ok();

    println!(
        "{}",
        render_table(
            &[
                "fsync",
                "ingests",
                "ingest rps",
                "p50 (us)",
                "p99 (us)",
                "consistent"
            ],
            &rows,
        )
    );
    let ratio = ingest_rps["batch"] / ingest_rps["memory"].max(1e-9);
    println!(
        "\nbatch fsync sustains {:.0}% of in-memory ingest throughput\n",
        ratio * 100.0
    );
    let json = format!(
        "{{\n  \"benchmark\": \"prov-server-durability\",\n  \"clients\": {clients},\n  \"requests_per_client\": {requests_per_client},\n  \"modes\": [\n    {}\n  ],\n  \"batch_vs_memory_ratio\": {ratio:.3}\n}}\n",
        modes_json.join(",\n    ")
    );
    match std::fs::write("BENCH_durability.json", &json) {
        Ok(()) => eprintln!("wrote BENCH_durability.json"),
        Err(e) => eprintln!("could not write BENCH_durability.json: {e}"),
    }
}

/// E20 measures what the observability plane costs: interleaved rounds of
/// the closed-loop load with the plane ON (traced clients + per-tenant
/// metric families) and OFF (untraced, global counters only), on fresh
/// servers each round so neither mode inherits warm state. The headline
/// number is `overhead_ratio` — observed throughput as a fraction of
/// baseline — which CI gates at >= 0.95 (<= 5% overhead). Lands in
/// `BENCH_observability.json`.
fn report_observability(requests_per_client: usize) {
    use prov_server::{run_load, LoadConfig, ProvServer, ServerConfig};
    use std::sync::Arc;

    println!("## E20 — observability plane: tracing + per-tenant metrics overhead\n");
    let clients = std::env::var("PROVBENCH_CLIENTS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(8)
        .max(2);
    const ROUNDS: usize = 3;
    let mut rows = Vec::new();
    let mut baseline_rps = Vec::new();
    let mut observed_rps = Vec::new();
    let mut traces_recorded = 0usize;
    for round in 0..ROUNDS {
        // Interleave the modes inside each round so machine drift (turbo,
        // thermal, noisy neighbours) hits both sides evenly.
        for observed in [false, true] {
            let server = Arc::new(ProvServer::new(ServerConfig {
                per_tenant_metrics: observed,
                ..ServerConfig::default()
            }));
            let config = LoadConfig {
                clients,
                requests_per_client,
                namespaces: vec!["physics".into(), "biology".into()],
                ingest_percent: 25,
                traced: observed,
            };
            let report = run_load(&server, &config);
            if !report.consistent {
                eprintln!(
                    "[observability round {round}] CONSISTENCY VIOLATIONS: {:?}",
                    report.violations
                );
            }
            if observed {
                observed_rps.push(report.throughput_rps);
                traces_recorded = traces_recorded.max(server.trace_count());
            } else {
                baseline_rps.push(report.throughput_rps);
            }
            rows.push(vec![
                round.to_string(),
                if observed { "on" } else { "off" }.to_string(),
                format!("{:.0}", report.throughput_rps),
                report.p50_micros.to_string(),
                report.p99_micros.to_string(),
                report.consistent.to_string(),
            ]);
        }
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    let base = mean(&baseline_rps);
    let obs = mean(&observed_rps);
    let overhead_ratio = obs / base.max(1e-9);
    println!(
        "{}",
        render_table(
            &[
                "round",
                "observability",
                "rps",
                "p50 (us)",
                "p99 (us)",
                "consistent"
            ],
            &rows,
        )
    );
    println!(
        "\nobservability plane sustains {:.1}% of baseline throughput \
         ({traces_recorded} traces recorded)\n",
        overhead_ratio * 100.0
    );
    let fmt_list = |v: &[f64]| {
        v.iter()
            .map(|r| format!("{r:.1}"))
            .collect::<Vec<_>>()
            .join(",")
    };
    let json = format!(
        "{{\n  \"benchmark\": \"prov-server-observability\",\n  \"clients\": {clients},\n  \"requests_per_client\": {requests_per_client},\n  \"rounds\": {ROUNDS},\n  \"baseline_rps\": [{}],\n  \"observed_rps\": [{}],\n  \"baseline_mean_rps\": {base:.1},\n  \"observed_mean_rps\": {obs:.1},\n  \"traces_recorded\": {traces_recorded},\n  \"overhead_ratio\": {overhead_ratio:.4}\n}}\n",
        fmt_list(&baseline_rps),
        fmt_list(&observed_rps),
    );
    match std::fs::write("BENCH_observability.json", &json) {
        Ok(()) => eprintln!("wrote BENCH_observability.json"),
        Err(e) => eprintln!("could not write BENCH_observability.json: {e}"),
    }
}

/// E22 prints its table and drops `BENCH_sharded.json` next to the
/// working directory. Factored out so `report sharded` can regenerate
/// just this section.
fn report_sharded(reps: usize) {
    println!("## E22 — sharded stores: scatter-gather PQL vs shard count\n");
    let (width, depth) = (384, 4);
    let (base_us, rows) = experiment_sharded(&[1, 2, 4, 8], width, depth, reps);
    println!(
        "corpus: {} docs ({} generations x {} executions); \
         unsharded filtered lineage baseline {:.1}us\n",
        width * depth,
        depth,
        width,
        base_us
    );
    println!(
        "{}",
        render_table(
            &[
                "shards",
                "eval (us)",
                "wall speedup",
                "scatter speedup",
                "rows",
                "stats exact"
            ],
            &rows
                .iter()
                .map(|r| vec![
                    r.shards.to_string(),
                    format!("{:.1}", r.eval_us),
                    format!("{:.2}x", r.wall_speedup),
                    format!("{:.2}x", r.scatter_speedup),
                    r.rows.to_string(),
                    r.accesses_match.to_string(),
                ])
                .collect::<Vec<_>>(),
        )
    );
    let json = sharded_json(width, depth, base_us, &rows);
    match std::fs::write("BENCH_sharded.json", &json) {
        Ok(()) => eprintln!("wrote BENCH_sharded.json"),
        Err(e) => eprintln!("could not write BENCH_sharded.json: {e}"),
    }
}

/// E21 prints its tables and drops `BENCH_distributed.json` next to the
/// working directory. Factored out so `report distributed` can regenerate
/// just this section.
fn report_distributed(reps: usize) {
    println!("## E21 — distributed capture: probe overhead and stitch throughput\n");
    let stitch = experiment_stitch(&[1, 2, 4, 8], reps);
    println!(
        "{}",
        render_table(
            &[
                "workers",
                "blobs",
                "entries",
                "hb edges",
                "stitch (us)",
                "entries/s",
                "complete"
            ],
            &stitch
                .iter()
                .map(|r| vec![
                    r.workers.to_string(),
                    r.blobs.to_string(),
                    r.entries.to_string(),
                    r.hb_edges.to_string(),
                    format!("{:.1}", r.stitch_us),
                    format!("{:.0}", r.entries_per_sec),
                    r.complete.to_string(),
                ])
                .collect::<Vec<_>>(),
        )
    );
    let overhead = experiment_probe_overhead(4, reps);
    println!(
        "probed driver sustains {:.1}% of unprobed throughput \
         ({} workers, {:.1}us vs {:.1}us)\n",
        overhead.throughput_ratio() * 100.0,
        overhead.workers,
        overhead.probed_us,
        overhead.unprobed_us
    );
    let json = distributed_json(&stitch, &overhead);
    match std::fs::write("BENCH_distributed.json", &json) {
        Ok(()) => eprintln!("wrote BENCH_distributed.json"),
        Err(e) => eprintln!("could not write BENCH_distributed.json: {e}"),
    }
}

fn main() {
    if std::env::args().nth(1).as_deref() == Some("sharded") {
        report_sharded(9);
        return;
    }
    if std::env::args().nth(1).as_deref() == Some("distributed") {
        report_distributed(21);
        return;
    }
    if std::env::args().nth(1).as_deref() == Some("server") {
        report_server(250);
        return;
    }
    if std::env::args().nth(1).as_deref() == Some("observability") {
        report_observability(250);
        return;
    }
    if std::env::args().nth(1).as_deref() == Some("durability") {
        report_durability(250);
        return;
    }
    if std::env::args().nth(1).as_deref() == Some("telemetry") {
        report_telemetry(21);
        return;
    }
    if std::env::args().nth(1).as_deref() == Some("query") {
        report_query(21);
        return;
    }
    if std::env::args().nth(1).as_deref() == Some("optimizer") {
        report_optimizer(21);
        return;
    }
    println!("# provenance-workflows experiment report\n");

    // ---- E1 ----------------------------------------------------------
    let r = experiment_fig1();
    println!("## E1 — Figure 1: the medical-imaging workflow\n");
    println!(
        "{}",
        render_table(
            &[
                "spec modules",
                "spec conns",
                "runs",
                "artifacts",
                "invalidated by bad scan",
                "iso repro slice"
            ],
            &[vec![
                r.spec_modules.to_string(),
                r.spec_connections.to_string(),
                r.runs.to_string(),
                r.artifacts.to_string(),
                r.invalidated.to_string(),
                r.iso_slice_len.to_string(),
            ]],
        )
    );

    // ---- E2 ----------------------------------------------------------
    println!("## E2 — Figure 2: refinement by analogy vs structural noise\n");
    let rows = experiment_analogy(&[0.0, 0.2, 0.4, 0.6, 0.8, 1.0], 20);
    println!(
        "{}",
        render_table(
            &[
                "noise",
                "clean transfer rate",
                "mean match score",
                "time (us)"
            ],
            &rows
                .iter()
                .map(|r| vec![
                    format!("{:.1}", r.noise),
                    format!("{:.2}", r.clean_rate),
                    format!("{:.2}", r.mean_score),
                    format!("{:.0}", r.time_us),
                ])
                .collect::<Vec<_>>(),
        )
    );

    // ---- E2b ---------------------------------------------------------
    println!("## E2b — ablation: neighbourhood refinement in the matcher\n");
    let rows = experiment_analogy_ablation(&[0, 1, 3, 5], 40);
    println!(
        "{}",
        render_table(
            &[
                "refinement iterations",
                "duplicate-match accuracy",
                "time (us)"
            ],
            &rows
                .iter()
                .map(|r| vec![
                    r.iterations.to_string(),
                    format!("{:.2}", r.accuracy),
                    format!("{:.0}", r.time_us),
                ])
                .collect::<Vec<_>>(),
        )
    );

    // ---- E3 ----------------------------------------------------------
    println!("## E3 — provenance capture overhead\n");
    let rows = experiment_capture_overhead(&[(8, 200), (8, 2000), (8, 20000), (32, 2000)], 9);
    println!(
        "{}",
        render_table(
            &[
                "chain",
                "work/module",
                "off (us)",
                "coarse (us)",
                "fine (us)",
                "fine overhead"
            ],
            &rows
                .iter()
                .map(|r| vec![
                    r.chain_len.to_string(),
                    r.work.to_string(),
                    format!("{:.0}", r.off_us),
                    format!("{:.0}", r.coarse_us),
                    format!("{:.0}", r.fine_us),
                    format!("{:+.1}%", r.fine_overhead_pct()),
                ])
                .collect::<Vec<_>>(),
        )
    );

    // ---- E4 ----------------------------------------------------------
    println!("## E4 — storage backends (corpus: 20 executions of 6x4 DAGs)\n");
    let corpus = storage_corpus(20, 6, 4);
    let rows = experiment_storage(&corpus, 7);
    println!(
        "{}",
        render_table(
            &[
                "backend",
                "ingest (us)",
                "approx bytes",
                "lineage query (us)",
                "aggregate (us)"
            ],
            &rows
                .iter()
                .map(|r| vec![
                    r.backend.clone(),
                    format!("{:.0}", r.ingest_us),
                    r.bytes.to_string(),
                    format!("{:.1}", r.lineage_us),
                    format!("{:.1}", r.aggregate_us),
                ])
                .collect::<Vec<_>>(),
        )
    );

    // ---- E4b ---------------------------------------------------------
    println!("## E4b — ablation: relational hash indexes on/off\n");
    let rows = experiment_index_ablation(&[5, 20, 80], 7);
    println!(
        "{}",
        render_table(
            &[
                "corpus (execs)",
                "indexed lineage (us)",
                "unindexed lineage (us)",
                "speedup"
            ],
            &rows
                .iter()
                .map(|r| vec![
                    r.corpus.to_string(),
                    format!("{:.1}", r.indexed_us),
                    format!("{:.1}", r.unindexed_us),
                    format!("{:.1}x", r.speedup()),
                ])
                .collect::<Vec<_>>(),
        )
    );

    // ---- E5 ----------------------------------------------------------
    println!("## E5 — lineage query latency vs provenance depth\n");
    let rows = experiment_query(&[8, 32, 128, 512], 7);
    println!(
        "{}",
        render_table(
            &[
                "depth",
                "PQL (us)",
                "graph store (us)",
                "relational joins (us)",
                "triple fixpoint (us)"
            ],
            &rows
                .iter()
                .map(|r| vec![
                    r.depth.to_string(),
                    format!("{:.1}", r.pql_us),
                    format!("{:.1}", r.graph_us),
                    format!("{:.1}", r.relational_us),
                    format!("{:.1}", r.triple_us),
                ])
                .collect::<Vec<_>>(),
        )
    );

    // ---- E6 ----------------------------------------------------------
    println!("## E6 — user views: overload reduction vs granularity\n");
    let rows = experiment_views(&[1, 2, 4, 8, 24]);
    println!(
        "{}",
        render_table(
            &[
                "groups",
                "base nodes",
                "viewed nodes",
                "hidden artifacts",
                "ratio"
            ],
            &rows
                .iter()
                .map(|r| vec![
                    r.groups.to_string(),
                    r.base_nodes.to_string(),
                    r.viewed_nodes.to_string(),
                    r.hidden.to_string(),
                    format!("{:.2}", r.ratio()),
                ])
                .collect::<Vec<_>>(),
        )
    );

    // ---- E7 ----------------------------------------------------------
    println!("## E7 — Provenance Challenge: integration coverage\n");
    let rows = experiment_challenge();
    println!(
        "{}",
        render_table(
            &[
                "configuration",
                "Q1 lineage processes",
                "all nine answerable"
            ],
            &rows
                .iter()
                .map(|r| vec![
                    r.configuration.clone(),
                    r.q1_processes.to_string(),
                    r.all_nine.to_string(),
                ])
                .collect::<Vec<_>>(),
        )
    );

    // ---- E8 ----------------------------------------------------------
    println!("## E8 — version materialization vs history depth\n");
    let rows = experiment_evolution(&[20, 70, 270, 1030], 7);
    println!(
        "{}",
        render_table(
            &[
                "depth",
                "replay (us)",
                "with snapshots (us)",
                "actions replayed",
                "with snapshots"
            ],
            &rows
                .iter()
                .map(|r| vec![
                    r.depth.to_string(),
                    format!("{:.0}", r.replay_us),
                    format!("{:.0}", r.snapshot_us),
                    r.replay_actions.to_string(),
                    r.snapshot_actions.to_string(),
                ])
                .collect::<Vec<_>>(),
        )
    );

    // ---- E9 ----------------------------------------------------------
    println!("## E9 — completion recommendation vs corpus size\n");
    let rows = experiment_mining(&[10, 30, 100], 5);
    println!(
        "{}",
        render_table(
            &["corpus", "hit@1", "hit@3", "mining time (us)"],
            &rows
                .iter()
                .map(|r| vec![
                    r.corpus.to_string(),
                    format!("{:.2}", r.hit1),
                    format!("{:.2}", r.hit3),
                    format!("{:.0}", r.mine_us),
                ])
                .collect::<Vec<_>>(),
        )
    );

    // ---- E10 ---------------------------------------------------------
    println!("## E10 — parameter sweeps with provenance-based caching\n");
    let rows = experiment_sweep(&[4, 16, 64], 5);
    println!(
        "{}",
        render_table(
            &[
                "configs",
                "module runs (no cache)",
                "module runs (cache)",
                "no cache (us)",
                "cache (us)",
                "speedup"
            ],
            &rows
                .iter()
                .map(|r| vec![
                    r.configs.to_string(),
                    r.runs_uncached.to_string(),
                    r.runs_cached.to_string(),
                    format!("{:.0}", r.uncached_us),
                    format!("{:.0}", r.cached_us),
                    format!("{:.1}x", r.speedup()),
                ])
                .collect::<Vec<_>>(),
        )
    );

    // ---- E11 ---------------------------------------------------------
    println!("## E11 — reproducibility fidelity\n");
    let rows = experiment_repro();
    println!(
        "{}",
        render_table(
            &["scenario", "artifacts", "matched", "fidelity"],
            &rows
                .iter()
                .map(|r| vec![
                    r.scenario.clone(),
                    r.artifacts.to_string(),
                    r.matched.to_string(),
                    format!("{:.2}", r.fidelity),
                ])
                .collect::<Vec<_>>(),
        )
    );

    // ---- E12 ---------------------------------------------------------
    println!("## E12 — row-level vs module-level invalidation precision\n");
    let rows = experiment_finegrained(&[16, 64, 256], 7);
    println!(
        "{}",
        render_table(
            &[
                "source rows",
                "groups",
                "row-level taint",
                "module-level taint",
                "trace (us)"
            ],
            &rows
                .iter()
                .map(|r| vec![
                    r.source_rows.to_string(),
                    r.groups.to_string(),
                    format!("{:.2}", r.row_level_taint),
                    format!("{:.2}", r.module_level_taint),
                    format!("{:.1}", r.trace_us),
                ])
                .collect::<Vec<_>>(),
        )
    );

    // ---- E13 ---------------------------------------------------------
    println!("## E13 — retry recovery under injected transient faults\n");
    let rows = experiment_faults(&[1, 2, 3, 4, 5], 5);
    println!(
        "{}",
        render_table(
            &[
                "seed",
                "injected",
                "status",
                "retried runs",
                "backoff (us)",
                "clean (us)",
                "faulty (us)",
                "overhead %"
            ],
            &rows
                .iter()
                .map(|r| vec![
                    r.seed.to_string(),
                    r.injected.to_string(),
                    r.status.clone(),
                    r.retried_runs.to_string(),
                    r.backoff_us.to_string(),
                    format!("{:.1}", r.clean_us),
                    format!("{:.1}", r.faulty_us),
                    format!("{:.1}", r.overhead_pct()),
                ])
                .collect::<Vec<_>>(),
        )
    );

    // ---- E14 ---------------------------------------------------------
    println!("## E14 — checkpoint resume after a permanent fault\n");
    let rows = experiment_resume(&[4, 6, 8]);
    println!(
        "{}",
        render_table(
            &[
                "depth",
                "modules",
                "reused",
                "re-executed",
                "recovered",
                "lineage valid"
            ],
            &rows
                .iter()
                .map(|r| vec![
                    r.depth.to_string(),
                    r.modules.to_string(),
                    r.reused.to_string(),
                    r.reexecuted.to_string(),
                    r.recovered.to_string(),
                    r.valid.to_string(),
                ])
                .collect::<Vec<_>>(),
        )
    );

    // ---- E15 ---------------------------------------------------------
    report_telemetry(21);

    // ---- E16 ---------------------------------------------------------
    report_query(21);

    // ---- E17 ---------------------------------------------------------
    report_optimizer(21);

    // ---- E18 ---------------------------------------------------------
    report_server(250);

    // ---- E19 ---------------------------------------------------------
    report_durability(250);

    // ---- E20 ---------------------------------------------------------
    report_observability(250);

    // ---- E21 ---------------------------------------------------------
    report_distributed(21);

    // ---- E22 ---------------------------------------------------------
    report_sharded(9);
}
