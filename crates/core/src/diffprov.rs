//! Explaining differences between data products via their provenance.
//!
//! §1 promises that "workflow evolution provenance can be leveraged to
//! explain difference in data products": if two runs produced different
//! artifacts, the *reason* is in their provenance — a changed parameter, a
//! different module revision, or different input data. [`diff_products`]
//! compares the provenance slices of two artifacts and reports exactly
//! those causes.

use crate::causality::CausalityGraph;
use crate::model::{ArtifactHash, RetrospectiveProvenance};
use std::collections::BTreeMap;
use std::fmt;
use wf_model::{NodeId, ParamValue};

/// One explained difference between the two provenance slices.
#[derive(Debug, Clone, PartialEq)]
pub enum Difference {
    /// The same node ran with a different parameter value.
    ParamChanged {
        /// The node (present in both slices).
        node: NodeId,
        /// Module identity in the first slice.
        identity: String,
        /// Parameter name.
        param: String,
        /// Value in the first slice (`None` = absent).
        left: Option<ParamValue>,
        /// Value in the second slice (`None` = absent).
        right: Option<ParamValue>,
    },
    /// The same node ran a different module revision.
    ModuleRevision {
        /// The node.
        node: NodeId,
        /// Identity in the first slice.
        left: String,
        /// Identity in the second slice.
        right: String,
    },
    /// A step exists only in the first slice.
    OnlyInLeft {
        /// The node.
        node: NodeId,
        /// Its module identity.
        identity: String,
    },
    /// A step exists only in the second slice.
    OnlyInRight {
        /// The node.
        node: NodeId,
        /// Its module identity.
        identity: String,
    },
    /// The same node consumed different data on a port (and the upstream
    /// steps do not explain it — i.e. it is a source-level difference).
    InputData {
        /// The node.
        node: NodeId,
        /// The port.
        port: String,
        /// Artifact consumed in the first slice.
        left: ArtifactHash,
        /// Artifact consumed in the second slice.
        right: ArtifactHash,
    },
}

impl fmt::Display for Difference {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Difference::ParamChanged {
                node,
                identity,
                param,
                left,
                right,
            } => write!(
                f,
                "{node} ({identity}): parameter '{param}' changed {} -> {}",
                left.as_ref()
                    .map(|v| v.render())
                    .unwrap_or_else(|| "<unset>".into()),
                right
                    .as_ref()
                    .map(|v| v.render())
                    .unwrap_or_else(|| "<unset>".into()),
            ),
            Difference::ModuleRevision { node, left, right } => {
                write!(f, "{node}: module revision changed {left} -> {right}")
            }
            Difference::OnlyInLeft { node, identity } => {
                write!(f, "{node} ({identity}): only in first derivation")
            }
            Difference::OnlyInRight { node, identity } => {
                write!(f, "{node} ({identity}): only in second derivation")
            }
            Difference::InputData {
                node,
                port,
                left,
                right,
            } => write!(
                f,
                "{node}: input '{port}' differs ({left:016x} vs {right:016x})"
            ),
        }
    }
}

/// The comparison report.
#[derive(Debug, Clone, Default)]
pub struct DiffReport {
    /// All explained differences.
    pub differences: Vec<Difference>,
    /// True when both artifacts are identical (nothing to explain).
    pub identical: bool,
}

impl DiffReport {
    /// Render one difference per line.
    pub fn render(&self) -> String {
        if self.identical {
            return "products are identical".to_string();
        }
        if self.differences.is_empty() {
            return "products differ but their recorded provenance is indistinguishable \
                    (nondeterministic module or missing capture granularity)"
                .to_string();
        }
        self.differences
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    }
}

/// Compare the provenance slices of `left_artifact` (in `left` provenance)
/// and `right_artifact` (in `right`), aligning module runs by node id —
/// appropriate when both runs executed (versions of) the same workflow, the
/// common case in parameter exploration and evolution.
pub fn diff_products(
    left: &RetrospectiveProvenance,
    left_artifact: ArtifactHash,
    right: &RetrospectiveProvenance,
    right_artifact: ArtifactHash,
) -> DiffReport {
    if left_artifact == right_artifact {
        return DiffReport {
            differences: Vec::new(),
            identical: true,
        };
    }
    let lg = CausalityGraph::from_retrospective(left);
    let rg = CausalityGraph::from_retrospective(right);
    let lslice = lg.reproduction_slice(left_artifact);
    let rslice = rg.reproduction_slice(right_artifact);

    let lruns: BTreeMap<NodeId, &crate::model::ModuleRun> = lslice
        .iter()
        .filter_map(|n| left.run_of(*n).map(|r| (*n, r)))
        .collect();
    let rruns: BTreeMap<NodeId, &crate::model::ModuleRun> = rslice
        .iter()
        .filter_map(|n| right.run_of(*n).map(|r| (*n, r)))
        .collect();

    let mut differences = Vec::new();
    for (node, lrun) in &lruns {
        match rruns.get(node) {
            None => differences.push(Difference::OnlyInLeft {
                node: *node,
                identity: lrun.identity.clone(),
            }),
            Some(rrun) => {
                if lrun.identity != rrun.identity {
                    differences.push(Difference::ModuleRevision {
                        node: *node,
                        left: lrun.identity.clone(),
                        right: rrun.identity.clone(),
                    });
                }
                // Parameter comparison over the union of names.
                let lp: BTreeMap<&String, &ParamValue> =
                    lrun.params.iter().map(|(k, v)| (k, v)).collect();
                let rp: BTreeMap<&String, &ParamValue> =
                    rrun.params.iter().map(|(k, v)| (k, v)).collect();
                let mut names: Vec<&String> = lp.keys().chain(rp.keys()).copied().collect();
                names.sort();
                names.dedup();
                for name in names {
                    let l = lp.get(name).copied();
                    let r = rp.get(name).copied();
                    if l != r {
                        differences.push(Difference::ParamChanged {
                            node: *node,
                            identity: lrun.identity.clone(),
                            param: name.clone(),
                            left: l.cloned(),
                            right: r.cloned(),
                        });
                    }
                }
                // Source-level input differences: same port, different
                // artifact, where the producing step is *outside* both
                // slices (i.e. raw data changed, not an upstream module).
                for (port, lh) in &lrun.inputs {
                    if let Some((_, rh)) = rrun.inputs.iter().find(|(p, _)| p == port) {
                        if lh != rh {
                            let l_explained = left
                                .generators_of(*lh)
                                .iter()
                                .any(|g| lruns.contains_key(&g.node));
                            let r_explained = right
                                .generators_of(*rh)
                                .iter()
                                .any(|g| rruns.contains_key(&g.node));
                            if !l_explained && !r_explained {
                                differences.push(Difference::InputData {
                                    node: *node,
                                    port: port.clone(),
                                    left: *lh,
                                    right: *rh,
                                });
                            }
                        }
                    }
                }
            }
        }
    }
    for (node, rrun) in &rruns {
        if !lruns.contains_key(node) {
            differences.push(Difference::OnlyInRight {
                node: *node,
                identity: rrun.identity.clone(),
            });
        }
    }

    DiffReport {
        differences,
        identical: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capture::{CaptureLevel, ProvenanceCapture};
    use wf_engine::synth::figure1_workflow;
    use wf_engine::{standard_registry, Executor};
    use wf_model::Workflow;

    fn run(wf: &Workflow) -> RetrospectiveProvenance {
        let exec = Executor::new(standard_registry());
        let mut cap = ProvenanceCapture::new(CaptureLevel::Fine);
        let r = exec.run_observed(wf, &mut cap).unwrap();
        cap.take(r.exec).unwrap()
    }

    #[test]
    fn identical_products_report_identical() {
        let (wf, nodes) = figure1_workflow(1);
        let p1 = run(&wf);
        let p2 = run(&wf);
        let h1 = p1.produced(nodes.save_hist, "file").unwrap().hash;
        let h2 = p2.produced(nodes.save_hist, "file").unwrap().hash;
        let report = diff_products(&p1, h1, &p2, h2);
        assert!(report.identical);
        assert_eq!(report.render(), "products are identical");
    }

    #[test]
    fn parameter_change_is_explained() {
        let (wf, nodes) = figure1_workflow(1);
        let p1 = run(&wf);
        let mut wf2 = wf.clone();
        wf2.set_param(nodes.hist, "bins", ParamValue::Int(8))
            .unwrap();
        let p2 = run(&wf2);
        let h1 = p1.produced(nodes.save_hist, "file").unwrap().hash;
        let h2 = p2.produced(nodes.save_hist, "file").unwrap().hash;
        assert_ne!(h1, h2, "changing bins changes the product");
        let report = diff_products(&p1, h1, &p2, h2);
        assert!(!report.identical);
        assert!(report.differences.iter().any(|d| matches!(
            d,
            Difference::ParamChanged { param, .. } if param == "bins"
        )));
        assert!(report.render().contains("bins"));
    }

    #[test]
    fn structural_change_is_explained() {
        let (wf, nodes) = figure1_workflow(1);
        let p1 = run(&wf);
        // Remove the smoothing step: connect iso directly to render.
        let mut wf2 = wf.clone();
        let conns: Vec<_> = wf2.conns.values().cloned().collect();
        for c in conns {
            if c.from.node == nodes.iso || c.to.node == nodes.render {
                wf2.remove_connection(c.id).unwrap();
            }
        }
        wf2.remove_node(nodes.smooth).unwrap();
        wf2.connect(
            wf_model::Endpoint::new(nodes.iso, "mesh"),
            wf_model::Endpoint::new(nodes.render, "mesh"),
        )
        .unwrap();
        // Also drop the histogram branch connections that became invalid?
        // They are untouched. Run.
        let p2 = run(&wf2);
        let h1 = p1.produced(nodes.save_iso, "file").unwrap().hash;
        let h2 = p2.produced(nodes.save_iso, "file").unwrap().hash;
        assert_ne!(h1, h2);
        let report = diff_products(&p1, h1, &p2, h2);
        assert!(report.differences.iter().any(|d| matches!(
            d,
            Difference::OnlyInLeft { node, .. } if *node == nodes.smooth
        )));
    }

    #[test]
    fn raw_input_change_reports_input_data() {
        let (wf, nodes) = figure1_workflow(1);
        let p1 = run(&wf);
        let mut wf2 = wf.clone();
        wf2.set_param(nodes.load, "path", ParamValue::Text("head.121.vtk".into()))
            .unwrap();
        let p2 = run(&wf2);
        let h1 = p1.produced(nodes.save_hist, "file").unwrap().hash;
        let h2 = p2.produced(nodes.save_hist, "file").unwrap().hash;
        let report = diff_products(&p1, h1, &p2, h2);
        // The path parameter change is the root explanation.
        assert!(report.differences.iter().any(|d| matches!(
            d,
            Difference::ParamChanged { param, .. } if param == "path"
        )));
    }

    #[test]
    fn differences_render_readably() {
        let d = Difference::ParamChanged {
            node: NodeId(1),
            identity: "Histogram@1".into(),
            param: "bins".into(),
            left: Some(ParamValue::Int(32)),
            right: Some(ParamValue::Int(8)),
        };
        assert_eq!(
            d.to_string(),
            "n1 (Histogram@1): parameter 'bins' changed 32 -> 8"
        );
    }
}
