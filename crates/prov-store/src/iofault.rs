//! Deterministic I/O fault injection for testing durability paths.
//!
//! The interesting failures of a write-ahead log — torn writes, failed
//! fsyncs, a full disk — never happen in an ordinary test run. An
//! [`IoFaultPlan`] makes them first-class and *reproducible*, in the style
//! of the engine's `FaultPlan`: a plan maps seeded **byte offsets** of the
//! append stream to injected [`IoFault`]s, so the same seed tears the same
//! write at the same byte every time. A [`FaultyMedia`] wraps a real file
//! and consults the plan on every `append`/`sync`, writing exactly the
//! prefix a real torn write would leave behind before reporting the error.
//!
//! Injected faults flow through the same error paths as real ones: a torn
//! write leaves a partial frame the recovery scan must truncate, a failed
//! fsync surfaces as an `io::Error` the caller must handle, and `NoSpace`
//! is `ErrorKind::StorageFull`-shaped ENOSPC.

use std::collections::BTreeMap;
use std::fs::File;
use std::io::{self, Write};
use std::path::Path;
use std::sync::Arc;

/// One injected I/O failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IoFault {
    /// The write persists only `keep` bytes of the remaining buffer at the
    /// trigger offset, then fails — a torn write.
    TornWrite {
        /// Bytes of the in-flight buffer that reach the file anyway.
        keep: usize,
    },
    /// The write fails outright with ENOSPC; nothing past the trigger
    /// offset reaches the file.
    NoSpace,
    /// The next `count` fsyncs fail (data may or may not be durable —
    /// exactly the ambiguity real fsync failures have).
    FailSync {
        /// How many consecutive syncs fail.
        count: u32,
    },
}

/// A deterministic schedule of I/O faults keyed by byte offset of the
/// append stream (the total number of bytes successfully appended so far).
///
/// Plans are immutable and cheaply cloneable; per-file trigger state lives
/// in the [`FaultyMedia`] that consults them, so one plan can arm many
/// files.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IoFaultPlan {
    seed: u64,
    /// Offset-triggered faults: fires when the append stream reaches or
    /// crosses the keyed offset.
    faults: Arc<BTreeMap<u64, IoFault>>,
}

impl IoFaultPlan {
    /// An empty plan (injects nothing).
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedule `fault` to fire when the append stream reaches byte
    /// `offset`.
    pub fn at(mut self, offset: u64, fault: IoFault) -> Self {
        let mut faults = (*self.faults).clone();
        faults.insert(offset, fault);
        self.faults = Arc::new(faults);
        self
    }

    /// A pseudo-random plan fully determined by `seed`: a handful of
    /// offset-triggered faults spread over the first `horizon` bytes,
    /// mixing torn writes, ENOSPC, and failed fsyncs.
    pub fn random(seed: u64, horizon: u64) -> Self {
        let mut state = seed ^ 0x9e37_79b9_7f4a_7c15;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut plan = Self::new();
        plan.seed = seed;
        let horizon = horizon.max(64);
        for _ in 0..1 + next() % 3 {
            let offset = next() % horizon;
            let fault = match next() % 3 {
                0 => IoFault::TornWrite {
                    keep: (next() % 24) as usize,
                },
                1 => IoFault::NoSpace,
                _ => IoFault::FailSync {
                    count: 1 + (next() % 2) as u32,
                },
            };
            plan = plan.at(offset, fault);
        }
        plan
    }

    /// The seed this plan was generated from (0 for hand-built plans).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Does this plan inject nothing?
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// The first scheduled fault in `[from, to)` not yet in `consumed`.
    /// (A healed append can re-cover an already-fired offset; later faults
    /// in the same range must still trigger.)
    fn next_in(&self, from: u64, to: u64, consumed: &[u64]) -> Option<(u64, &IoFault)> {
        self.faults
            .range(from..to)
            .find(|(off, _)| !consumed.contains(off))
            .map(|(&off, fault)| (off, fault))
    }
}

/// The storage a WAL appends to: a real file, or a faulty wrapper around
/// one. Only the *append* surface is abstracted — replay reads files
/// directly through `std::fs`, which is exactly what recovery after a real
/// crash does.
pub trait WalMedia: Send + std::fmt::Debug {
    /// Append the whole buffer (or fail, possibly leaving a torn prefix).
    fn append(&mut self, buf: &[u8]) -> io::Result<()>;
    /// Make previous appends durable.
    fn sync(&mut self) -> io::Result<()>;
    /// Cut the file back to `len` bytes (how a WAL self-heals after a
    /// failed append left torn bytes). Never fault-injected: recovery
    /// paths must work even while the append path is failing.
    fn truncate(&mut self, len: u64) -> io::Result<()>;
    /// Bytes successfully appended through this handle's lifetime plus
    /// whatever the file held when it was opened.
    fn len(&self) -> u64;
    /// Does this media currently hold zero bytes?
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Plain disk-backed media: every call goes straight to the file.
#[derive(Debug)]
pub struct DiskMedia {
    file: File,
    len: u64,
}

impl DiskMedia {
    /// Wrap `file`, which currently holds `len` valid bytes and is
    /// positioned at its end.
    pub fn new(file: File, len: u64) -> Self {
        DiskMedia { file, len }
    }
}

impl WalMedia for DiskMedia {
    fn append(&mut self, buf: &[u8]) -> io::Result<()> {
        self.file.write_all(buf)?;
        self.len += buf.len() as u64;
        Ok(())
    }

    fn sync(&mut self) -> io::Result<()> {
        self.file.sync_data()
    }

    fn truncate(&mut self, len: u64) -> io::Result<()> {
        use std::io::Seek;
        self.file.set_len(len)?;
        self.file.seek(io::SeekFrom::Start(len))?;
        self.len = len;
        Ok(())
    }

    fn len(&self) -> u64 {
        self.len
    }
}

/// Disk-backed media armed with an [`IoFaultPlan`]. Appends that cross a
/// scheduled offset write exactly the bytes a torn write would persist,
/// then fail; scheduled fsync failures burn down before syncs succeed
/// again.
#[derive(Debug)]
pub struct FaultyMedia {
    inner: DiskMedia,
    plan: IoFaultPlan,
    /// Armed faults already consumed (offsets fire once).
    consumed: Vec<u64>,
    /// Remaining fsync failures from a triggered `FailSync`.
    failing_syncs: u32,
}

impl FaultyMedia {
    /// Arm `file` (holding `len` valid bytes) with `plan`.
    pub fn new(file: File, len: u64, plan: IoFaultPlan) -> Self {
        FaultyMedia {
            inner: DiskMedia::new(file, len),
            plan,
            consumed: Vec::new(),
            failing_syncs: 0,
        }
    }

    fn take_fault(&mut self, from: u64, to: u64) -> Option<(u64, IoFault)> {
        let (off, fault) = self
            .plan
            .next_in(from, to, &self.consumed)
            .map(|(off, f)| (off, f.clone()))?;
        self.consumed.push(off);
        Some((off, fault))
    }
}

impl WalMedia for FaultyMedia {
    fn append(&mut self, buf: &[u8]) -> io::Result<()> {
        let start = self.inner.len();
        let end = start + buf.len() as u64;
        match self.take_fault(start, end) {
            None => self.inner.append(buf),
            Some((off, IoFault::TornWrite { keep })) => {
                // Persist the prefix up to the trigger plus `keep` stray
                // bytes — the shape an interrupted write_all leaves.
                let torn = ((off - start) as usize + keep).min(buf.len());
                self.inner.append(&buf[..torn])?;
                Err(io::Error::new(
                    io::ErrorKind::Interrupted,
                    format!(
                        "injected torn write at offset {off} ({torn} of {} bytes persisted)",
                        buf.len()
                    ),
                ))
            }
            Some((off, IoFault::NoSpace)) => {
                let kept = (off - start) as usize;
                self.inner.append(&buf[..kept])?;
                Err(io::Error::other(format!(
                    "injected ENOSPC at offset {off}: no space left on device"
                )))
            }
            Some((_, IoFault::FailSync { count })) => {
                // Sync faults triggered by offset arm the sync path but let
                // the write itself through.
                self.failing_syncs = self.failing_syncs.max(count);
                self.inner.append(buf)
            }
        }
    }

    fn sync(&mut self) -> io::Result<()> {
        if self.failing_syncs > 0 {
            self.failing_syncs -= 1;
            return Err(io::Error::other("injected fsync failure"));
        }
        self.inner.sync()
    }

    fn truncate(&mut self, len: u64) -> io::Result<()> {
        self.inner.truncate(len)
    }

    fn len(&self) -> u64 {
        self.inner.len()
    }
}

/// Read a file the way a recovery scan would, optionally injecting a
/// *short read*: the returned bytes stop at `short_read_at` even though
/// the file is longer — the view a reader racing a crash can observe.
pub fn read_for_replay(path: &Path, short_read_at: Option<u64>) -> io::Result<Vec<u8>> {
    let mut data = match std::fs::read(path) {
        Ok(d) => d,
        Err(e) if e.kind() == io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(e),
    };
    if let Some(at) = short_read_at {
        data.truncate(at as usize);
    }
    Ok(data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn temp_path(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "prov-iofault-{}-{}-{name}.bin",
            std::process::id(),
            wf_engine::event::now_millis()
        ));
        p
    }

    #[test]
    fn plans_are_deterministic_in_the_seed() {
        assert_eq!(IoFaultPlan::random(7, 4096), IoFaultPlan::random(7, 4096));
        assert!(
            (0..20u64).any(|s| IoFaultPlan::random(s, 4096) != IoFaultPlan::random(s + 1, 4096))
        );
        assert!(!IoFaultPlan::random(3, 4096).is_empty());
    }

    #[test]
    fn torn_write_persists_exactly_the_prefix() {
        let path = temp_path("torn");
        let file = File::create(&path).unwrap();
        let plan = IoFaultPlan::new().at(10, IoFault::TornWrite { keep: 3 });
        let mut media = FaultyMedia::new(file, 0, plan);
        media.append(&[0xAA; 8]).unwrap();
        let err = media.append(&[0xBB; 8]).unwrap_err();
        assert!(err.to_string().contains("torn write"), "{err}");
        // 8 clean + (10 - 8) prefix + 3 stray = 13 bytes on disk.
        assert_eq!(std::fs::metadata(&path).unwrap().len(), 13);
        assert_eq!(media.len(), 13);
        // The fault fires once; later appends succeed.
        media.append(&[0xCC; 4]).unwrap();
        assert_eq!(media.len(), 17);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn enospc_keeps_bytes_before_the_trigger_only() {
        let path = temp_path("enospc");
        let file = File::create(&path).unwrap();
        let plan = IoFaultPlan::new().at(5, IoFault::NoSpace);
        let mut media = FaultyMedia::new(file, 0, plan);
        let err = media.append(&[1u8; 20]).unwrap_err();
        assert!(err.to_string().contains("ENOSPC"), "{err}");
        assert_eq!(std::fs::metadata(&path).unwrap().len(), 5);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn failed_fsyncs_burn_down_then_recover() {
        let path = temp_path("fsync");
        let file = File::create(&path).unwrap();
        let plan = IoFaultPlan::new().at(0, IoFault::FailSync { count: 2 });
        let mut media = FaultyMedia::new(file, 0, plan);
        media.append(b"hello").unwrap();
        assert!(media.sync().is_err());
        assert!(media.sync().is_err());
        assert!(media.sync().is_ok(), "failures are bounded");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn short_reads_truncate_the_replay_view() {
        let path = temp_path("short");
        std::fs::write(&path, [7u8; 32]).unwrap();
        assert_eq!(read_for_replay(&path, None).unwrap().len(), 32);
        assert_eq!(read_for_replay(&path, Some(9)).unwrap().len(), 9);
        assert!(read_for_replay(Path::new("/nonexistent/x"), None)
            .unwrap()
            .is_empty());
        std::fs::remove_file(&path).ok();
    }
}
