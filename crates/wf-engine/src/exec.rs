//! The execution drivers: sequential and parallel dataflow evaluation.
//!
//! Both drivers obey the same contract: modules run when all of their input
//! values are available; each lifecycle transition is reported to the
//! observer; failures mark the failing node `Failed` and everything
//! downstream of it `Skipped` (partial results are kept — a failed run still
//! has provenance, which is often when provenance matters most).

use crate::cache::{cache_key, RunCache};
use crate::error::ExecError;
use crate::event::{now_micros, now_millis, EngineEvent, ExecObserver, ValueMeta};
use crate::fault::{FaultAction, FaultPlan};
use crate::policy::{Deadline, ExecPolicy};
use crate::registry::{ExecInput, ModuleExec, ModuleRegistry, Outputs};
use crate::value::Value;
use parking_lot::Mutex;
use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use wf_model::{NodeId, Workflow};

/// Identifier of one workflow run.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
#[serde(transparent)]
pub struct ExecId(pub u64);

impl fmt::Display for ExecId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "run{}", self.0)
    }
}

/// Outcome of a module run or a whole workflow run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum RunStatus {
    /// Completed normally.
    Succeeded,
    /// The module body (or some module of the workflow) failed.
    Failed,
    /// Not executed because an upstream dependency failed.
    Skipped,
}

impl fmt::Display for RunStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunStatus::Succeeded => write!(f, "succeeded"),
            RunStatus::Failed => write!(f, "failed"),
            RunStatus::Skipped => write!(f, "skipped"),
        }
    }
}

/// Record of one module run inside an execution.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeRunRecord {
    /// The node.
    pub node: NodeId,
    /// Module identity `name@version`.
    pub identity: String,
    /// Outcome.
    pub status: RunStatus,
    /// Module-body duration in microseconds (0 for skipped runs).
    pub elapsed_micros: u64,
    /// Whether outputs were served from the memoization cache.
    pub from_cache: bool,
    /// Failure message, if the module failed.
    pub error: Option<String>,
    /// Number of body attempts made (1 for ordinary runs and cache hits,
    /// 0 for skipped nodes, >1 when a retry policy re-attempted the body).
    pub attempts: u32,
    /// When the module run began, on the process-monotonic microsecond
    /// clock ([`now_micros`]). Recorded directly on the record so a run is
    /// profilable without any capture subscriber attached.
    pub started_micros: u64,
    /// When the module run ended, on the same monotonic clock. Always
    /// `>= started_micros`; for skipped nodes both carry the skip instant.
    pub finished_micros: u64,
}

impl NodeRunRecord {
    /// Wall-clock extent of this module run in microseconds (monotonic
    /// end minus start — includes retries, backoff waits, and cache
    /// lookups, unlike the body-only `elapsed_micros`).
    pub fn wall_micros(&self) -> u64 {
        self.finished_micros.saturating_sub(self.started_micros)
    }
}

/// The result of running a workflow.
#[derive(Debug, Clone)]
pub struct ExecutionResult {
    /// The run identifier.
    pub exec: ExecId,
    /// Overall outcome: `Succeeded` iff every module succeeded.
    pub status: RunStatus,
    /// Per-node records.
    pub node_runs: BTreeMap<NodeId, NodeRunRecord>,
    /// Every value produced on any output port.
    pub values: BTreeMap<(NodeId, String), Value>,
    /// Wall-clock duration of the whole run in microseconds.
    pub elapsed_micros: u64,
    /// When this run resumed an earlier failed run, that run's id.
    pub resumed_from: Option<ExecId>,
}

impl ExecutionResult {
    /// The value produced on `node`'s output `port`, if the node ran.
    pub fn output(&self, node: NodeId, port: &str) -> Option<&Value> {
        self.values.get(&(node, port.to_string()))
    }

    /// Did every module succeed?
    pub fn succeeded(&self) -> bool {
        self.status == RunStatus::Succeeded
    }

    /// Number of module runs served from cache.
    pub fn cache_hits(&self) -> usize {
        self.node_runs.values().filter(|r| r.from_cache).count()
    }

    /// A deterministic digest of everything *reproducible* about this run:
    /// per-node statuses, identities, attempt counts, cache provenance,
    /// error messages, and the content hashes of every produced value.
    /// Wall-clock fields (`elapsed_micros`, `started_micros`,
    /// `finished_micros`) and run identity (`exec`, `resumed_from`) are
    /// excluded, so two runs of the same workflow under the same seeds —
    /// sequential or parallel — fingerprint identically.
    pub fn fingerprint(&self) -> u64 {
        let mut h = crate::value::ContentHasher::new();
        h.update_u64(match self.status {
            RunStatus::Succeeded => 0,
            RunStatus::Failed => 1,
            RunStatus::Skipped => 2,
        });
        h.update_u64(self.node_runs.len() as u64);
        for (node, r) in &self.node_runs {
            h.update_u64(node.0);
            h.update(r.identity.as_bytes());
            h.update_u64(match r.status {
                RunStatus::Succeeded => 0,
                RunStatus::Failed => 1,
                RunStatus::Skipped => 2,
            });
            h.update_u64(u64::from(r.from_cache));
            h.update_u64(u64::from(r.attempts));
            h.update(r.error.as_deref().unwrap_or("").as_bytes());
        }
        h.update_u64(self.values.len() as u64);
        for ((node, port), v) in &self.values {
            h.update_u64(node.0);
            h.update(port.as_bytes());
            h.update_u64(v.content_hash());
        }
        h.finish()
    }
}

/// Observer that discards everything (capture level "Off").
#[derive(Debug, Default, Clone, Copy)]
pub struct NullObserver;

impl ExecObserver for NullObserver {
    fn on_event(&mut self, _event: &EngineEvent) {}
}

/// The workflow executor.
pub struct Executor {
    registry: Arc<ModuleRegistry>,
    cache: Option<Arc<Mutex<RunCache>>>,
    policy: ExecPolicy,
    faults: Option<FaultPlan>,
    next_exec: AtomicU64,
}

impl fmt::Debug for Executor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Executor")
            .field("registry", &self.registry)
            .field("cache", &self.cache.is_some())
            .field("policy", &self.policy)
            .field("faults", &self.faults.as_ref().map(|p| p.len()))
            .finish()
    }
}

impl Executor {
    /// An executor over a registry, without memoization.
    pub fn new(registry: ModuleRegistry) -> Self {
        Self {
            registry: Arc::new(registry),
            cache: None,
            policy: ExecPolicy::new(),
            faults: None,
            next_exec: AtomicU64::new(0),
        }
    }

    /// Enable memoization with a cache bounded to `capacity` module runs.
    pub fn with_cache(mut self, capacity: usize) -> Self {
        self.cache = Some(Arc::new(Mutex::new(RunCache::new(capacity))));
        self
    }

    /// Set the fault-tolerance policy (retries, backoff, deadlines).
    pub fn with_policy(mut self, policy: ExecPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Install a fault-injection plan (testing only): scheduled faults are
    /// injected into module bodies exactly as the plan dictates.
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// The active fault-tolerance policy.
    pub fn policy(&self) -> &ExecPolicy {
        &self.policy
    }

    /// The registry backing this executor.
    pub fn registry(&self) -> &ModuleRegistry {
        &self.registry
    }

    /// Cache statistics, if memoization is enabled.
    pub fn cache_stats(&self) -> Option<crate::cache::CacheStats> {
        self.cache.as_ref().map(|c| c.lock().stats())
    }

    /// Clear the memoization cache.
    pub fn clear_cache(&self) {
        if let Some(c) = &self.cache {
            c.lock().clear();
        }
    }

    pub(crate) fn allocate_exec(&self) -> ExecId {
        ExecId(self.next_exec.fetch_add(1, Ordering::Relaxed))
    }

    /// Prime the memoization cache from a previous execution of `wf`:
    /// every successful module run of `previous` becomes a cache entry, so
    /// a subsequent run of an *edited* copy of `wf` re-executes only the
    /// nodes downstream of the change — partial re-execution, driven
    /// purely by provenance identity. Returns the number of runs primed.
    ///
    /// No-op (returning 0) when the executor has no cache.
    pub fn warm_cache_from(&self, wf: &Workflow, previous: &ExecutionResult) -> usize {
        let Some(cache) = &self.cache else {
            return 0;
        };
        let mut primed = 0;
        for (node_id, record) in &previous.node_runs {
            if record.status != RunStatus::Succeeded {
                continue;
            }
            let Ok(node) = wf.node(*node_id) else {
                continue;
            };
            let Ok(params) =
                self.registry
                    .effective_params(&node.module, node.version, &node.params)
            else {
                continue;
            };
            // Reconstruct the input bindings this run saw.
            let mut inputs: BTreeMap<String, u64> = BTreeMap::new();
            for conn in wf.inputs_of(*node_id) {
                if let Some(v) = previous
                    .values
                    .get(&(conn.from.node, conn.from.port.clone()))
                {
                    inputs.insert(conn.to.port.clone(), v.content_hash());
                }
            }
            let key = cache_key(
                &record.identity,
                params.iter().map(|(k, v)| (k, v.render())),
                inputs.iter().map(|(k, h)| (k, *h)),
            );
            let outputs: Vec<(String, Value)> = previous
                .values
                .iter()
                .filter(|((n, _), _)| n == node_id)
                .map(|((_, port), v)| (port.clone(), v.clone()))
                .collect();
            if !outputs.is_empty() {
                cache.lock().insert(key, outputs);
                primed += 1;
            }
        }
        primed
    }

    /// Run a workflow, discarding events.
    pub fn run(&self, wf: &Workflow) -> Result<ExecutionResult, ExecError> {
        self.run_observed(wf, &mut NullObserver)
    }

    /// Run a workflow sequentially in topological order, reporting every
    /// lifecycle event to `observer`.
    pub fn run_observed(
        &self,
        wf: &Workflow,
        observer: &mut dyn ExecObserver,
    ) -> Result<ExecutionResult, ExecError> {
        self.run_inner(wf, observer, None)
    }

    /// Resume a failed run sequentially: successful module results from
    /// `previous` are replayed through the memoization cache, so only
    /// failed and skipped nodes re-execute. The resumed run's provenance
    /// links back to `previous.exec` via [`EngineEvent::RunResumed`] and
    /// [`ExecutionResult::resumed_from`].
    ///
    /// Requires a cache ([`Executor::with_cache`]) to hold the checkpoint.
    pub fn resume(
        &self,
        wf: &Workflow,
        previous: &ExecutionResult,
        observer: &mut dyn ExecObserver,
    ) -> Result<ExecutionResult, ExecError> {
        let reused = self.prepare_resume(wf, previous)?;
        self.run_inner(wf, observer, Some((previous.exec, reused)))
    }

    /// Resume a failed run with the parallel driver; see
    /// [`Executor::resume`].
    pub fn resume_parallel(
        &self,
        wf: &Workflow,
        previous: &ExecutionResult,
        threads: usize,
        observer: &mut dyn ExecObserver,
    ) -> Result<ExecutionResult, ExecError> {
        let reused = self.prepare_resume(wf, previous)?;
        self.run_parallel_inner(wf, threads, observer, Some((previous.exec, reused)))
    }

    fn prepare_resume(
        &self,
        wf: &Workflow,
        previous: &ExecutionResult,
    ) -> Result<usize, ExecError> {
        if self.cache.is_none() {
            return Err(ExecError::InvalidWorkflow(
                "resume requires a memoization cache (Executor::with_cache)".into(),
            ));
        }
        Ok(self.warm_cache_from(wf, previous))
    }

    fn run_inner(
        &self,
        wf: &Workflow,
        observer: &mut dyn ExecObserver,
        resumed: Option<(ExecId, usize)>,
    ) -> Result<ExecutionResult, ExecError> {
        let order = wf
            .topo_nodes()
            .ok_or_else(|| ExecError::InvalidWorkflow("workflow has a cycle".into()))?;
        let exec = self.allocate_exec();
        let started = Instant::now();
        emit_run_started(observer, exec, wf, resumed);

        let mut values: BTreeMap<(NodeId, String), Value> = BTreeMap::new();
        let mut records: BTreeMap<NodeId, NodeRunRecord> = BTreeMap::new();
        let mut failed_nodes: Vec<NodeId> = Vec::new();

        for node_id in order {
            let upstream_failed = wf.inputs_of(node_id).any(|c| {
                records
                    .get(&c.from.node)
                    .map(|r| r.status != RunStatus::Succeeded)
                    .unwrap_or(false)
            });
            if upstream_failed {
                let node = wf.node(node_id)?;
                records.insert(
                    node_id,
                    skip_node(observer, exec, node_id, node.kind_identity()),
                );
                continue;
            }
            let record = self.run_node(wf, node_id, exec, &mut values, observer)?;
            if record.status == RunStatus::Failed {
                failed_nodes.push(node_id);
            }
            records.insert(node_id, record);
        }

        let status = if failed_nodes.is_empty() {
            RunStatus::Succeeded
        } else {
            RunStatus::Failed
        };
        emit_run_finished(observer, exec, status);
        Ok(ExecutionResult {
            exec,
            status,
            node_runs: records,
            values,
            elapsed_micros: started.elapsed().as_micros() as u64,
            resumed_from: resumed.map(|(from, _)| from),
        })
    }

    /// Execute one node: bind inputs, consult the cache, run the body under
    /// the node's retry policy and deadline, route outputs. Returns the run
    /// record; produced values land in `values`.
    pub(crate) fn run_node(
        &self,
        wf: &Workflow,
        node_id: NodeId,
        exec: ExecId,
        values: &mut BTreeMap<(NodeId, String), Value>,
        observer: &mut dyn ExecObserver,
    ) -> Result<NodeRunRecord, ExecError> {
        let node = wf.node(node_id)?;
        let identity = node.kind_identity();
        let params = self
            .registry
            .effective_params(&node.module, node.version, &node.params)?;

        // Bind inputs from upstream outputs.
        let mut inputs: BTreeMap<String, Value> = BTreeMap::new();
        for conn in wf.inputs_of(node_id) {
            if let Some(v) = values.get(&(conn.from.node, conn.from.port.clone())) {
                inputs.insert(conn.to.port.clone(), v.clone());
            }
        }

        let started_micros = now_micros();
        observer.on_event(&EngineEvent::ModuleStarted {
            exec,
            node: node_id,
            identity: identity.clone(),
            params: params.iter().map(|(k, v)| (k.clone(), v.clone())).collect(),
            at_millis: now_millis(),
        });
        for (port, v) in &inputs {
            observer.on_event(&EngineEvent::InputBound {
                exec,
                node: node_id,
                port: port.clone(),
                meta: ValueMeta::of(v, true),
            });
        }

        // Cache lookup.
        let key = cache_key(
            &identity,
            params.iter().map(|(k, v)| (k, v.render())),
            inputs.iter().map(|(k, v)| (k, v.content_hash())),
        );
        if let Some(cache) = &self.cache {
            let lookup_started = Instant::now();
            let hit = cache.lock().get(key);
            observer.on_event(&EngineEvent::CacheChecked {
                exec,
                node: node_id,
                hit: hit.is_some(),
                elapsed_micros: lookup_started.elapsed().as_micros() as u64,
            });
            if let Some(outputs) = hit {
                for (port, v) in &outputs {
                    observer.on_event(&EngineEvent::OutputProduced {
                        exec,
                        node: node_id,
                        port: port.clone(),
                        meta: ValueMeta::of(v, true),
                    });
                    values.insert((node_id, port.clone()), v.clone());
                }
                observer.on_event(&EngineEvent::ModuleFinished {
                    exec,
                    node: node_id,
                    status: RunStatus::Succeeded,
                    elapsed_micros: 0,
                    from_cache: true,
                    error: None,
                });
                return Ok(NodeRunRecord {
                    node: node_id,
                    identity,
                    status: RunStatus::Succeeded,
                    elapsed_micros: 0,
                    from_cache: true,
                    error: None,
                    attempts: 1,
                    started_micros,
                    finished_micros: now_micros(),
                });
            }
        }

        // Run the body under the node's retry policy and deadline.
        let body = self.registry.executor(&identity)?;
        let input = ExecInput {
            node: node_id,
            params,
            inputs,
        };
        // Retry resolution: node override > module-kind hint > workflow-wide.
        let retry = self
            .policy
            .node_retry
            .get(&node_id)
            .or_else(|| self.registry.retry_hint(&identity))
            .unwrap_or(&self.policy.retry);
        let deadline = self.policy.deadline_for(node_id);
        let mut attempt: u32 = 1;
        let mut elapsed_total: u64 = 0;
        loop {
            if attempt > 1 {
                observer.on_event(&EngineEvent::AttemptStarted {
                    exec,
                    node: node_id,
                    attempt,
                });
            }
            let t0 = Instant::now();
            let result = self.execute_attempt(&body, &input, node_id, &identity, attempt, deadline);
            elapsed_total += t0.elapsed().as_micros() as u64;

            let e = match result {
                Ok(outputs) => {
                    let out_vec: Vec<(String, Value)> = outputs
                        .iter()
                        .map(|(k, v)| (k.clone(), v.clone()))
                        .collect();
                    for (port, v) in &outputs {
                        observer.on_event(&EngineEvent::OutputProduced {
                            exec,
                            node: node_id,
                            port: port.clone(),
                            meta: ValueMeta::of(v, true),
                        });
                        values.insert((node_id, port.clone()), v.clone());
                    }
                    if let Some(cache) = &self.cache {
                        cache.lock().insert(key, out_vec);
                    }
                    observer.on_event(&EngineEvent::ModuleFinished {
                        exec,
                        node: node_id,
                        status: RunStatus::Succeeded,
                        elapsed_micros: elapsed_total,
                        from_cache: false,
                        error: None,
                    });
                    return Ok(NodeRunRecord {
                        node: node_id,
                        identity,
                        status: RunStatus::Succeeded,
                        elapsed_micros: elapsed_total,
                        from_cache: false,
                        error: None,
                        attempts: attempt,
                        started_micros,
                        finished_micros: now_micros(),
                    });
                }
                Err(e) => e,
            };

            if let ExecError::DeadlineExceeded { limit_micros, .. } = &e {
                observer.on_event(&EngineEvent::ModuleTimedOut {
                    exec,
                    node: node_id,
                    attempt,
                    limit_micros: *limit_micros,
                });
            }
            let will_retry = retry.should_retry(attempt, e.class());
            observer.on_event(&EngineEvent::AttemptFailed {
                exec,
                node: node_id,
                attempt,
                error: e.to_string(),
                will_retry,
            });
            if !will_retry {
                observer.on_event(&EngineEvent::ModuleFinished {
                    exec,
                    node: node_id,
                    status: RunStatus::Failed,
                    elapsed_micros: elapsed_total,
                    from_cache: false,
                    error: Some(e.to_string()),
                });
                return Ok(NodeRunRecord {
                    node: node_id,
                    identity,
                    status: RunStatus::Failed,
                    elapsed_micros: elapsed_total,
                    from_cache: false,
                    error: Some(e.to_string()),
                    attempts: attempt,
                    started_micros,
                    finished_micros: now_micros(),
                });
            }
            let delay = retry.backoff_micros(self.policy.jitter_seed, node_id, attempt);
            observer.on_event(&EngineEvent::BackoffStarted {
                exec,
                node: node_id,
                next_attempt: attempt + 1,
                delay_micros: delay,
            });
            if delay > 0 {
                std::thread::sleep(Duration::from_micros(delay));
            }
            attempt += 1;
        }
    }

    /// Run one attempt of a module body: apply any injected fault, isolate
    /// panics, and enforce the deadline (by running the body on a watchdog
    /// thread — a timed-out body is abandoned, not cancelled).
    fn execute_attempt(
        &self,
        body: &Arc<dyn ModuleExec>,
        input: &ExecInput,
        node_id: NodeId,
        identity: &str,
        attempt: u32,
        deadline: Option<Deadline>,
    ) -> Result<Outputs, ExecError> {
        let fault = self
            .faults
            .as_ref()
            .and_then(|p| p.action(node_id, attempt))
            .cloned();
        if let Some(FaultAction::Fail { message }) = &fault {
            return Err(ExecError::ModuleFailed {
                node: node_id,
                identity: identity.to_string(),
                message: message.clone(),
            });
        }
        match deadline {
            None => catch_unwind(AssertUnwindSafe(|| {
                attempt_body(body.as_ref(), input, fault.as_ref())
            }))
            .unwrap_or_else(|payload| {
                Err(ExecError::WorkerPanicked {
                    node: Some(node_id),
                    message: panic_message(&*payload),
                })
            }),
            Some(d) => {
                let (tx, rx) = std::sync::mpsc::channel();
                let body = Arc::clone(body);
                let input = input.clone();
                std::thread::spawn(move || {
                    let outcome = catch_unwind(AssertUnwindSafe(|| {
                        attempt_body(body.as_ref(), &input, fault.as_ref())
                    }));
                    let _ = tx.send(outcome);
                });
                match rx.recv_timeout(Duration::from_micros(d.limit_micros)) {
                    Ok(Ok(result)) => result,
                    Ok(Err(payload)) => Err(ExecError::WorkerPanicked {
                        node: Some(node_id),
                        message: panic_message(&*payload),
                    }),
                    Err(_) => Err(ExecError::DeadlineExceeded {
                        node: node_id,
                        limit_micros: d.limit_micros,
                    }),
                }
            }
        }
    }

    /// Run a workflow with up to `threads` modules executing concurrently.
    ///
    /// Same contract as [`Executor::run_observed`]; events from concurrent
    /// modules interleave, but each module's own events stay ordered.
    pub fn run_parallel(
        &self,
        wf: &Workflow,
        threads: usize,
        observer: &mut dyn ExecObserver,
    ) -> Result<ExecutionResult, ExecError> {
        self.run_parallel_inner(wf, threads, observer, None)
    }

    fn run_parallel_inner(
        &self,
        wf: &Workflow,
        threads: usize,
        observer: &mut dyn ExecObserver,
        resumed: Option<(ExecId, usize)>,
    ) -> Result<ExecutionResult, ExecError> {
        let threads = threads.max(1);
        let (g, ids, index) = wf.digraph();
        if !g.is_dag() {
            return Err(ExecError::InvalidWorkflow("workflow has a cycle".into()));
        }
        let exec = self.allocate_exec();
        let started = Instant::now();

        // Shared mutable state.
        struct Shared {
            values: BTreeMap<(NodeId, String), Value>,
            records: BTreeMap<NodeId, NodeRunRecord>,
            pending: Vec<usize>, // remaining unfinished predecessors
            ready: VecDeque<usize>,
            running: usize,
            done: usize,
        }
        let n = ids.len();
        let mut pending: Vec<usize> = vec![0; n];
        for (i, p) in pending.iter_mut().enumerate() {
            *p = g.predecessors(i).len();
        }
        let ready: VecDeque<usize> = (0..n).filter(|&i| pending[i] == 0).collect();
        let shared = Mutex::new(Shared {
            values: BTreeMap::new(),
            records: BTreeMap::new(),
            pending,
            ready,
            running: 0,
            done: 0,
        });
        let observer = Mutex::new(observer);

        emit_run_started(&mut **observer.lock(), exec, wf, resumed);

        let worker_error: Mutex<Option<ExecError>> = Mutex::new(None);

        crossbeam::thread::scope(|scope| {
            for _ in 0..threads.min(n.max(1)) {
                scope.spawn(|_| loop {
                    // Claim a ready node or decide we are finished.
                    let claimed = {
                        let mut s = shared.lock();
                        if s.done == n {
                            None
                        } else if let Some(i) = s.ready.pop_front() {
                            s.running += 1;
                            Some(i)
                        } else if s.running == 0 {
                            // No work, nothing running: only possible when
                            // done == n, but guard against lost wakeups.
                            None
                        } else {
                            // Busy-wait politely for more work.
                            drop(s);
                            std::thread::yield_now();
                            continue;
                        }
                    };
                    let Some(i) = claimed else { break };
                    let node_id = ids[i];

                    // Determine skip-vs-run from predecessor records.
                    let upstream_failed = {
                        let s = shared.lock();
                        g.predecessors(i).iter().any(|&p| {
                            s.records
                                .get(&ids[p])
                                .map(|r| r.status != RunStatus::Succeeded)
                                .unwrap_or(true)
                        })
                    };

                    let record = if upstream_failed {
                        let identity = wf
                            .node(node_id)
                            .map(|nd| nd.kind_identity())
                            .unwrap_or_default();
                        skip_node(&mut **observer.lock(), exec, node_id, identity)
                    } else {
                        // Copy the inputs we need, then run without holding
                        // the state lock (module bodies can be slow).
                        let mut local_values = {
                            let s = shared.lock();
                            let mut m = BTreeMap::new();
                            for conn in wf.inputs_of(node_id) {
                                let k = (conn.from.node, conn.from.port.clone());
                                if let Some(v) = s.values.get(&k) {
                                    m.insert(k, v.clone());
                                }
                            }
                            m
                        };
                        let mut obs_guard = ObserverProxy { inner: &observer };
                        match self.run_node(wf, node_id, exec, &mut local_values, &mut obs_guard) {
                            Ok(rec) => {
                                let mut s = shared.lock();
                                for ((nid, port), v) in local_values {
                                    if nid == node_id {
                                        s.values.insert((nid, port), v);
                                    }
                                }
                                rec
                            }
                            Err(e) => {
                                *worker_error.lock() = Some(e);
                                let mut s = shared.lock();
                                s.running -= 1;
                                s.done = n; // force drain
                                break;
                            }
                        }
                    };

                    let mut s = shared.lock();
                    s.records.insert(node_id, record);
                    s.running -= 1;
                    s.done += 1;
                    for &succ in g.successors(i) {
                        s.pending[succ] -= 1;
                        if s.pending[succ] == 0 {
                            s.ready.push_back(succ);
                        }
                    }
                });
            }
        })
        .map_err(|payload| ExecError::WorkerPanicked {
            node: None,
            message: panic_message(&*payload),
        })?;

        if let Some(e) = worker_error.into_inner() {
            return Err(e);
        }
        let shared = shared.into_inner();
        let _ = index;
        let status = if shared
            .records
            .values()
            .all(|r| r.status == RunStatus::Succeeded)
        {
            RunStatus::Succeeded
        } else {
            RunStatus::Failed
        };
        emit_run_finished(&mut **observer.lock(), exec, status);
        Ok(ExecutionResult {
            exec,
            status,
            node_runs: shared.records,
            values: shared.values,
            elapsed_micros: started.elapsed().as_micros() as u64,
            resumed_from: resumed.map(|(from, _)| from),
        })
    }
}

// ---------------------------------------------------------------------
// Event-emission plumbing shared by the sequential and parallel drivers.
// Both drivers MUST emit the same stream for the same run shape; keeping
// the emission in one place is what guarantees it (and gives telemetry a
// single seam to reason about).
// ---------------------------------------------------------------------

/// Emit the run-started event, plus the resume-lineage event when this run
/// replays an earlier failed run's checkpoint.
fn emit_run_started(
    observer: &mut dyn ExecObserver,
    exec: ExecId,
    wf: &Workflow,
    resumed: Option<(ExecId, usize)>,
) {
    observer.on_event(&EngineEvent::WorkflowStarted {
        exec,
        workflow: wf.id,
        name: wf.name.clone(),
        at_millis: now_millis(),
    });
    if let Some((resumed_from, reused)) = resumed {
        observer.on_event(&EngineEvent::RunResumed {
            exec,
            resumed_from,
            reused,
        });
    }
}

/// Emit the run-finished event.
fn emit_run_finished(observer: &mut dyn ExecObserver, exec: ExecId, status: RunStatus) {
    observer.on_event(&EngineEvent::WorkflowFinished {
        exec,
        status,
        at_millis: now_millis(),
    });
}

/// Record and report one node skipped because an upstream dependency did
/// not succeed: emits the terminal `ModuleFinished { Skipped }` event
/// (skipped nodes never emit `ModuleStarted`) and builds the run record.
pub(crate) fn skip_node(
    observer: &mut dyn ExecObserver,
    exec: ExecId,
    node_id: NodeId,
    identity: String,
) -> NodeRunRecord {
    let at = now_micros();
    observer.on_event(&EngineEvent::ModuleFinished {
        exec,
        node: node_id,
        status: RunStatus::Skipped,
        elapsed_micros: 0,
        from_cache: false,
        error: None,
    });
    NodeRunRecord {
        node: node_id,
        identity,
        status: RunStatus::Skipped,
        elapsed_micros: 0,
        from_cache: false,
        error: None,
        attempts: 0,
        started_micros: at,
        finished_micros: at,
    }
}

/// Adapter letting `run_node` (which takes `&mut dyn ExecObserver`) publish
/// through the parallel driver's mutex-protected observer.
struct ObserverProxy<'a, 'b> {
    inner: &'a Mutex<&'b mut dyn ExecObserver>,
}

impl ExecObserver for ObserverProxy<'_, '_> {
    fn on_event(&mut self, event: &EngineEvent) {
        self.inner.lock().on_event(event);
    }
}

/// Run a module body, first applying an injected `Delay` or `Panic` fault
/// (a `Delay` runs *inside* the attempt so it counts against the deadline;
/// `Fail` faults are short-circuited by the caller before the body runs).
fn attempt_body(
    body: &dyn ModuleExec,
    input: &ExecInput,
    fault: Option<&FaultAction>,
) -> Result<Outputs, ExecError> {
    match fault {
        Some(FaultAction::Delay { micros }) => {
            std::thread::sleep(Duration::from_micros(*micros));
        }
        Some(FaultAction::Panic { message }) => panic!("{}", message.clone()),
        _ => {}
    }
    body.execute(input)
}

/// Render a panic payload: panics carry `&str` or `String` payloads in
/// practice; anything else becomes an opaque marker.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::RecordingObserver;
    use crate::registry::Outputs;
    use wf_model::{ModuleKind, ParamSpec, PortSpec, WorkflowBuilder};

    fn test_registry() -> ModuleRegistry {
        let mut r = ModuleRegistry::new();
        r.register(
            ModuleKind::new("Const")
                .output(PortSpec::required("out", wf_model::DataType::Integer))
                .param(ParamSpec::new("value", 1i64)),
            |input: &ExecInput| {
                let mut out = Outputs::new();
                out.insert("out".into(), Value::Int(input.param_i64("value")?));
                Ok(out)
            },
        );
        r.register(
            ModuleKind::new("Add")
                .input(PortSpec::required("a", wf_model::DataType::Integer))
                .input(PortSpec::required("b", wf_model::DataType::Integer))
                .output(PortSpec::required("out", wf_model::DataType::Integer)),
            |input: &ExecInput| {
                let a = input.input("a")?.as_i64().unwrap_or(0);
                let b = input.input("b")?.as_i64().unwrap_or(0);
                let mut out = Outputs::new();
                out.insert("out".into(), Value::Int(a + b));
                Ok(out)
            },
        );
        r.register(
            ModuleKind::new("Fail")
                .input(PortSpec::optional("in", wf_model::DataType::Any))
                .output(PortSpec::required("out", wf_model::DataType::Integer)),
            |input: &ExecInput| {
                Err(ExecError::ModuleFailed {
                    node: input.node,
                    identity: "Fail@1".into(),
                    message: "intentional".into(),
                })
            },
        );
        r
    }

    fn add_workflow() -> (wf_model::Workflow, NodeId, NodeId, NodeId) {
        let mut b = WorkflowBuilder::new(1, "add");
        let x = b.add("Const");
        let y = b.add("Const");
        let s = b.add("Add");
        b.param(x, "value", 20i64)
            .param(y, "value", 22i64)
            .connect(x, "out", s, "a")
            .connect(y, "out", s, "b");
        (b.build(), x, y, s)
    }

    #[test]
    fn sequential_run_computes_dataflow() {
        let (wf, _, _, s) = add_workflow();
        let exec = Executor::new(test_registry());
        let result = exec.run(&wf).unwrap();
        assert!(result.succeeded());
        assert_eq!(result.output(s, "out"), Some(&Value::Int(42)));
        assert_eq!(result.node_runs.len(), 3);
    }

    #[test]
    fn events_cover_full_lifecycle() {
        let (wf, _, _, _) = add_workflow();
        let exec = Executor::new(test_registry());
        let mut obs = RecordingObserver::default();
        exec.run_observed(&wf, &mut obs).unwrap();
        let starts = obs
            .events
            .iter()
            .filter(|e| matches!(e, EngineEvent::ModuleStarted { .. }))
            .count();
        let outputs = obs
            .events
            .iter()
            .filter(|e| matches!(e, EngineEvent::OutputProduced { .. }))
            .count();
        let inputs = obs
            .events
            .iter()
            .filter(|e| matches!(e, EngineEvent::InputBound { .. }))
            .count();
        assert_eq!(starts, 3);
        assert_eq!(outputs, 3);
        assert_eq!(inputs, 2, "Add has two bound inputs");
        assert!(matches!(
            obs.events.first(),
            Some(EngineEvent::WorkflowStarted { .. })
        ));
        assert!(matches!(
            obs.events.last(),
            Some(EngineEvent::WorkflowFinished {
                status: RunStatus::Succeeded,
                ..
            })
        ));
    }

    #[test]
    fn failure_skips_downstream_and_keeps_partials() {
        let mut b = WorkflowBuilder::new(1, "failing");
        let ok = b.add("Const");
        let bad = b.add("Fail");
        let sum = b.add("Add");
        b.connect(ok, "out", sum, "a").connect(bad, "out", sum, "b");
        let wf = b.build();
        let exec = Executor::new(test_registry());
        let result = exec.run(&wf).unwrap();
        assert_eq!(result.status, RunStatus::Failed);
        assert_eq!(result.node_runs[&bad].status, RunStatus::Failed);
        assert!(result.node_runs[&bad]
            .error
            .as_deref()
            .unwrap()
            .contains("intentional"));
        assert_eq!(result.node_runs[&sum].status, RunStatus::Skipped);
        assert_eq!(result.node_runs[&ok].status, RunStatus::Succeeded);
        assert!(result.output(ok, "out").is_some(), "partial value kept");
    }

    #[test]
    fn cache_serves_second_run() {
        let (wf, _, _, s) = add_workflow();
        let exec = Executor::new(test_registry()).with_cache(64);
        let r1 = exec.run(&wf).unwrap();
        assert_eq!(r1.cache_hits(), 0);
        let r2 = exec.run(&wf).unwrap();
        assert_eq!(r2.cache_hits(), 3, "all three modules memoized");
        assert_eq!(r2.output(s, "out"), Some(&Value::Int(42)));
        let stats = exec.cache_stats().unwrap();
        assert_eq!(stats.hits, 3);
        assert_eq!(stats.misses, 3);
    }

    #[test]
    fn cache_invalidated_by_param_change() {
        let (wf, x, _, s) = add_workflow();
        let exec = Executor::new(test_registry()).with_cache(64);
        exec.run(&wf).unwrap();
        let mut wf2 = wf.clone();
        wf2.set_param(x, "value", wf_model::ParamValue::Int(100))
            .unwrap();
        let r = exec.run(&wf2).unwrap();
        assert_eq!(r.output(s, "out"), Some(&Value::Int(122)));
        // Const y is cached; Const x and Add must re-run.
        assert_eq!(r.cache_hits(), 1);
    }

    #[test]
    fn parallel_run_matches_sequential() {
        let (wf, _, _, s) = add_workflow();
        let exec = Executor::new(test_registry());
        let mut obs = NullObserver;
        let result = exec.run_parallel(&wf, 4, &mut obs).unwrap();
        assert!(result.succeeded());
        assert_eq!(result.output(s, "out"), Some(&Value::Int(42)));
    }

    #[test]
    fn parallel_failure_propagates_skips() {
        let mut b = WorkflowBuilder::new(1, "failing");
        let bad = b.add("Fail");
        let next = b.add("Add");
        let ok = b.add("Const");
        b.connect(bad, "out", next, "a")
            .connect(ok, "out", next, "b");
        let wf = b.build();
        let exec = Executor::new(test_registry());
        let result = exec.run_parallel(&wf, 2, &mut NullObserver).unwrap();
        assert_eq!(result.status, RunStatus::Failed);
        assert_eq!(result.node_runs[&next].status, RunStatus::Skipped);
    }

    #[test]
    fn wide_parallel_fanout_completes() {
        let mut b = WorkflowBuilder::new(1, "wide");
        let srcs: Vec<NodeId> = (0..16).map(|_| b.add("Const")).collect();
        for (i, &s) in srcs.iter().enumerate() {
            b.param(s, "value", i as i64);
        }
        let wf = b.build();
        let exec = Executor::new(test_registry());
        let result = exec.run_parallel(&wf, 4, &mut NullObserver).unwrap();
        assert!(result.succeeded());
        assert_eq!(result.values.len(), 16);
    }

    #[test]
    fn warm_cache_enables_partial_reexecution() {
        // Run once on a plain executor, then warm a cached executor from
        // the result: an edited workflow re-runs only the changed suffix.
        let (wf, x, _, s) = add_workflow();
        let plain = Executor::new(test_registry());
        let previous = plain.run(&wf).unwrap();

        let cached = Executor::new(test_registry()).with_cache(64);
        let primed = cached.warm_cache_from(&wf, &previous);
        assert_eq!(primed, 3);

        // Unchanged workflow: everything comes from the warm cache.
        let r = cached.run(&wf).unwrap();
        assert_eq!(r.cache_hits(), 3);

        // Edit one source parameter: only it and the sum re-run.
        let mut wf2 = wf.clone();
        wf2.set_param(x, "value", wf_model::ParamValue::Int(1))
            .unwrap();
        cached.clear_cache();
        cached.warm_cache_from(&wf, &previous);
        let r = cached.run(&wf2).unwrap();
        assert_eq!(r.cache_hits(), 1, "only the untouched Const is reused");
        assert_eq!(r.output(s, "out"), Some(&Value::Int(23)));
    }

    #[test]
    fn warm_cache_skips_failed_runs() {
        let mut b = WorkflowBuilder::new(1, "partially-failing");
        let ok = b.add("Const");
        let bad = b.add("Fail");
        b.connect(ok, "out", bad, "in");
        let wf = b.build();
        let plain = Executor::new(test_registry());
        let previous = plain.run(&wf).unwrap();
        assert_eq!(previous.status, RunStatus::Failed);

        let cached = Executor::new(test_registry()).with_cache(16);
        // Only the successful Const run is primed.
        assert_eq!(cached.warm_cache_from(&wf, &previous), 1);
    }

    #[test]
    fn warm_cache_without_cache_is_noop() {
        let (wf, ..) = add_workflow();
        let exec = Executor::new(test_registry());
        let previous = exec.run(&wf).unwrap();
        assert_eq!(exec.warm_cache_from(&wf, &previous), 0);
    }

    #[test]
    fn records_carry_monotonic_timestamps_without_capture() {
        // Satellite guarantee: timing is on the record itself, so profiling
        // works with no observer attached at all.
        let (wf, x, y, s) = add_workflow();
        let exec = Executor::new(test_registry());
        let r = exec.run(&wf).unwrap();
        for rec in r.node_runs.values() {
            assert!(rec.finished_micros >= rec.started_micros);
            assert!(rec.wall_micros() >= rec.elapsed_micros / 2, "sane extent");
        }
        // Dataflow order is visible in the timestamps: the sum starts only
        // after both sources finished.
        let sum_start = r.node_runs[&s].started_micros;
        assert!(r.node_runs[&x].finished_micros <= sum_start);
        assert!(r.node_runs[&y].finished_micros <= sum_start);
        // Skipped nodes carry the skip instant on both edges.
        let mut b = WorkflowBuilder::new(1, "failing");
        let bad = b.add("Fail");
        let down = b.add("Add");
        b.connect(bad, "out", down, "a");
        let r = Executor::new(test_registry()).run(&b.build()).unwrap();
        let skip = &r.node_runs[&down];
        assert_eq!(skip.status, RunStatus::Skipped);
        assert_eq!(skip.started_micros, skip.finished_micros);
        assert!(skip.started_micros > 0);
    }

    #[test]
    fn cache_lookups_are_evented() {
        let (wf, ..) = add_workflow();
        let exec = Executor::new(test_registry()).with_cache(64);
        let mut obs = RecordingObserver::default();
        exec.run_observed(&wf, &mut obs).unwrap();
        let misses = obs
            .events
            .iter()
            .filter(|e| matches!(e, EngineEvent::CacheChecked { hit: false, .. }))
            .count();
        assert_eq!(misses, 3, "every module probed and missed");
        let mut obs = RecordingObserver::default();
        exec.run_observed(&wf, &mut obs).unwrap();
        let hits = obs
            .events
            .iter()
            .filter(|e| matches!(e, EngineEvent::CacheChecked { hit: true, .. }))
            .count();
        assert_eq!(hits, 3, "second run hits on every module");
        // No cache, no cache events.
        let exec = Executor::new(test_registry());
        let mut obs = RecordingObserver::default();
        exec.run_observed(&wf, &mut obs).unwrap();
        assert!(!obs
            .events
            .iter()
            .any(|e| matches!(e, EngineEvent::CacheChecked { .. })));
    }

    #[test]
    fn exec_ids_are_unique_per_run() {
        let (wf, ..) = add_workflow();
        let exec = Executor::new(test_registry());
        let a = exec.run(&wf).unwrap().exec;
        let b = exec.run(&wf).unwrap().exec;
        assert_ne!(a, b);
    }

    #[test]
    fn missing_executor_surfaces_as_error() {
        let mut b = WorkflowBuilder::new(1, "unknown");
        b.add("Ghost");
        let wf = b.build();
        let exec = Executor::new(test_registry());
        assert!(exec.run(&wf).is_err());
        // The parallel driver surfaces the same error instead of hanging.
        assert!(exec.run_parallel(&wf, 4, &mut NullObserver).is_err());
    }

    use crate::fault::FaultPlan;
    use crate::policy::{Deadline, ExecPolicy, RetryPolicy};

    #[test]
    fn transient_fault_recovers_under_retry_policy() {
        let (wf, x, _, s) = add_workflow();
        let exec = Executor::new(test_registry())
            .with_policy(ExecPolicy::new().with_retry(RetryPolicy::attempts(3)))
            .with_faults(FaultPlan::new().fail_on(x, 1, "flaky network"));
        let mut obs = RecordingObserver::default();
        let result = exec.run_observed(&wf, &mut obs).unwrap();
        assert!(result.succeeded());
        assert_eq!(result.output(s, "out"), Some(&Value::Int(42)));
        assert_eq!(
            result.node_runs[&x].attempts, 2,
            "failed once, then succeeded"
        );
        // Both attempts and the retry decision are visible as events.
        assert!(obs.events.iter().any(|e| matches!(
            e,
            EngineEvent::AttemptFailed { node, attempt: 1, will_retry: true, .. } if *node == x
        )));
        assert!(obs.events.iter().any(|e| matches!(
            e,
            EngineEvent::AttemptStarted { node, attempt: 2, .. } if *node == x
        )));
        assert!(obs.events.iter().any(|e| matches!(
            e,
            EngineEvent::BackoffStarted { node, next_attempt: 2, .. } if *node == x
        )));
    }

    #[test]
    fn permanent_fault_exhausts_attempts_and_fails() {
        let (wf, x, _, s) = add_workflow();
        let exec = Executor::new(test_registry())
            .with_policy(ExecPolicy::new().with_retry(RetryPolicy::attempts(3)))
            .with_faults(FaultPlan::new().fail_always(x, "disk gone"));
        let mut obs = RecordingObserver::default();
        let result = exec.run_observed(&wf, &mut obs).unwrap();
        assert_eq!(result.status, RunStatus::Failed);
        assert_eq!(result.node_runs[&x].attempts, 3, "all attempts consumed");
        assert_eq!(result.node_runs[&s].status, RunStatus::Skipped);
        let failed_attempts = obs
            .events
            .iter()
            .filter(|e| matches!(e, EngineEvent::AttemptFailed { node, .. } if *node == x))
            .count();
        assert_eq!(failed_attempts, 3);
        assert!(obs.events.iter().any(|e| matches!(
            e,
            EngineEvent::AttemptFailed {
                will_retry: false,
                attempt: 3,
                ..
            }
        )));
    }

    #[test]
    fn injected_panic_is_contained_as_worker_panicked() {
        let (wf, x, _, s) = add_workflow();
        let exec =
            Executor::new(test_registry()).with_faults(FaultPlan::new().panic_on(x, 1, "boom"));
        let result = exec.run(&wf).unwrap();
        assert_eq!(result.status, RunStatus::Failed);
        let err = result.node_runs[&x].error.as_deref().unwrap();
        assert!(err.contains("panicked") && err.contains("boom"), "{err}");
        assert_eq!(result.node_runs[&s].status, RunStatus::Skipped);
    }

    #[test]
    fn deadline_abandons_stalled_module() {
        let (wf, x, _, _) = add_workflow();
        let exec = Executor::new(test_registry())
            .with_policy(ExecPolicy::new().with_deadline(Deadline::millis(20)))
            .with_faults(FaultPlan::new().delay_on(x, 1, 500_000));
        let mut obs = RecordingObserver::default();
        let result = exec.run_observed(&wf, &mut obs).unwrap();
        assert_eq!(result.status, RunStatus::Failed);
        let err = result.node_runs[&x].error.as_deref().unwrap();
        assert!(err.contains("deadline"), "{err}");
        assert!(obs.events.iter().any(|e| matches!(
            e,
            EngineEvent::ModuleTimedOut { node, .. } if *node == x
        )));
    }

    #[test]
    fn timeout_retries_when_policy_allows() {
        let (wf, x, _, _) = add_workflow();
        // Stall only the first attempt; the second attempt runs clean.
        let exec = Executor::new(test_registry())
            .with_policy(
                ExecPolicy::new()
                    .with_retry(RetryPolicy::attempts(2))
                    .with_deadline(Deadline::millis(20)),
            )
            .with_faults(FaultPlan::new().delay_on(x, 1, 500_000));
        let result = exec.run(&wf).unwrap();
        assert!(result.succeeded());
        assert_eq!(result.node_runs[&x].attempts, 2);
    }

    #[test]
    fn registry_retry_hint_applies_without_exec_policy() {
        let (wf, x, _, _) = add_workflow();
        let mut registry = test_registry();
        registry.declare_retry("Const@1", RetryPolicy::attempts(2));
        let exec = Executor::new(registry).with_faults(FaultPlan::new().fail_on(x, 1, "flaky"));
        let result = exec.run(&wf).unwrap();
        assert!(result.succeeded(), "kind-level hint retried the fault");
        assert_eq!(result.node_runs[&x].attempts, 2);
    }

    #[test]
    fn failed_runs_are_never_cached_and_retried_success_caches_once() {
        let (wf, x, _, _) = add_workflow();
        let exec = Executor::new(test_registry())
            .with_cache(64)
            .with_policy(ExecPolicy::new().with_retry(RetryPolicy::attempts(2)))
            .with_faults(FaultPlan::new().fail_always(x, "dead"));
        let r1 = exec.run(&wf).unwrap();
        assert_eq!(r1.status, RunStatus::Failed);
        // Re-running must re-attempt the failed node, not serve it cached.
        let r2 = exec.run(&wf).unwrap();
        assert_eq!(r2.status, RunStatus::Failed);
        assert!(
            !r2.node_runs[&x].from_cache,
            "failure never served from cache"
        );
        assert_eq!(r2.node_runs[&x].attempts, 2, "body re-attempted");

        // A retried-then-succeeded module is cached exactly once.
        let exec = Executor::new(test_registry())
            .with_cache(64)
            .with_policy(ExecPolicy::new().with_retry(RetryPolicy::attempts(3)))
            .with_faults(FaultPlan::new().fail_on(x, 1, "flaky"));
        let r1 = exec.run(&wf).unwrap();
        assert!(r1.succeeded());
        assert_eq!(exec.cache_stats().unwrap().misses, 3, "one miss per module");
        let r2 = exec.run(&wf).unwrap();
        assert_eq!(r2.cache_hits(), 3, "second run fully memoized");
        assert_eq!(r2.node_runs[&x].attempts, 1, "cache hits count one attempt");
    }

    #[test]
    fn resume_reexecutes_only_failed_nodes() {
        let (wf, x, y, s) = add_workflow();
        let failing =
            Executor::new(test_registry()).with_faults(FaultPlan::new().fail_always(x, "dead"));
        let previous = failing.run(&wf).unwrap();
        assert_eq!(previous.status, RunStatus::Failed);
        assert_eq!(previous.node_runs[&y].status, RunStatus::Succeeded);
        assert_eq!(previous.node_runs[&s].status, RunStatus::Skipped);

        // Resume on a healthy executor: y replays from the checkpoint,
        // x and s re-execute.
        let healthy = Executor::new(test_registry()).with_cache(64);
        let mut obs = RecordingObserver::default();
        let resumed = healthy.resume(&wf, &previous, &mut obs).unwrap();
        assert!(resumed.succeeded());
        assert_eq!(resumed.output(s, "out"), Some(&Value::Int(42)));
        assert_eq!(resumed.resumed_from, Some(previous.exec));
        assert_eq!(resumed.cache_hits(), 1, "only y is replayed");
        assert!(resumed.node_runs[&y].from_cache);
        assert!(!resumed.node_runs[&x].from_cache);
        assert!(obs.events.iter().any(|e| matches!(
            e,
            EngineEvent::RunResumed { resumed_from, reused: 1, .. }
                if *resumed_from == previous.exec
        )));

        // The parallel driver resumes identically.
        let healthy = Executor::new(test_registry()).with_cache(64);
        let resumed_par = healthy
            .resume_parallel(&wf, &previous, 4, &mut NullObserver)
            .unwrap();
        assert!(resumed_par.succeeded());
        assert_eq!(resumed_par.cache_hits(), 1);
        assert_eq!(resumed_par.fingerprint(), resumed.fingerprint());
    }

    #[test]
    fn resume_without_cache_is_rejected() {
        let (wf, ..) = add_workflow();
        let exec = Executor::new(test_registry());
        let previous = exec.run(&wf).unwrap();
        assert!(exec.resume(&wf, &previous, &mut NullObserver).is_err());
    }

    #[test]
    fn fingerprints_are_deterministic_across_drivers_and_seeds() {
        let (wf, x, ..) = add_workflow();
        let run_with = |parallel: bool| {
            let exec = Executor::new(test_registry())
                .with_policy(
                    ExecPolicy::new()
                        .with_retry(RetryPolicy::attempts(3).backoff(10, 2.0, 100).jitter(0.5))
                        .with_seed(99),
                )
                .with_faults(FaultPlan::new().fail_on(x, 1, "flaky"));
            if parallel {
                exec.run_parallel(&wf, 4, &mut NullObserver).unwrap()
            } else {
                exec.run(&wf).unwrap()
            }
        };
        let a = run_with(false);
        let b = run_with(false);
        let c = run_with(true);
        assert_eq!(a.fingerprint(), b.fingerprint(), "sequential replay");
        assert_eq!(
            a.fingerprint(),
            c.fingerprint(),
            "parallel matches sequential"
        );
    }
}
