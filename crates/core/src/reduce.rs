//! Structural reduction of provenance graphs — the "techniques that deal
//! with information overload" of §2.4, complementing user views.
//!
//! Two reductions are provided:
//!
//! * [`transitive_reduction`] — drop edges implied by longer paths (common
//!   when `wasDerivedFrom` closures have been materialized);
//! * [`summarize_chains`] — collapse maximal linear run→artifact→run chains
//!   into segments, reporting how much of the graph is "boring pipeline".

use crate::causality::{CausalityGraph, ProvNodeRef};
use crate::model::{ArtifactHash, RetrospectiveProvenance};
use std::collections::{BTreeMap, BTreeSet};
use wf_model::graph::Digraph;

/// Result of a transitive reduction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReductionStats {
    /// Edges in the input graph.
    pub before: usize,
    /// Edges retained by the reduction.
    pub after: usize,
    /// The retained edges.
    pub kept: Vec<(ProvNodeRef, ProvNodeRef)>,
}

impl ReductionStats {
    /// Fraction of edges removed.
    pub fn removed_ratio(&self) -> f64 {
        if self.before == 0 {
            0.0
        } else {
            (self.before - self.after) as f64 / self.before as f64
        }
    }
}

/// Transitive reduction of a causality graph (which is a DAG by
/// construction: artifacts cannot precede their generators).
pub fn transitive_reduction(g: &CausalityGraph) -> ReductionStats {
    let nodes = g.nodes();
    let index: BTreeMap<ProvNodeRef, usize> =
        nodes.iter().enumerate().map(|(i, n)| (*n, i)).collect();
    let mut dg = Digraph::with_nodes(nodes.len());
    let mut before = 0;
    for (a, b) in g.edge_list() {
        dg.add_edge(index[&a], index[&b]);
        before += 1;
    }
    let kept: Vec<(ProvNodeRef, ProvNodeRef)> = dg
        .transitive_reduction()
        .into_iter()
        .map(|(u, v)| (nodes[u], nodes[v]))
        .collect();
    ReductionStats {
        before,
        after: kept.len(),
        kept,
    }
}

/// A maximal linear chain in the provenance graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChainSegment {
    /// The chain's nodes in order (alternating runs and artifacts).
    pub nodes: Vec<ProvNodeRef>,
}

impl ChainSegment {
    /// Number of nodes collapsed by this segment.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Is the segment empty?
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }
}

/// Summary of chain collapsing.
#[derive(Debug, Clone)]
pub struct ChainSummary {
    /// Maximal chains of length ≥ 3 (anything shorter is not worth
    /// collapsing).
    pub segments: Vec<ChainSegment>,
    /// Nodes in the input graph.
    pub total_nodes: usize,
}

impl ChainSummary {
    /// Node count after replacing each segment with a single summary node.
    pub fn summarized_node_count(&self) -> usize {
        let collapsed: usize = self.segments.iter().map(|s| s.len() - 1).sum();
        self.total_nodes - collapsed
    }

    /// Fraction of nodes eliminated.
    pub fn reduction(&self) -> f64 {
        if self.total_nodes == 0 {
            0.0
        } else {
            1.0 - self.summarized_node_count() as f64 / self.total_nodes as f64
        }
    }
}

/// Find maximal linear chains: runs of nodes where each interior node has
/// exactly one predecessor and one successor.
pub fn summarize_chains(g: &CausalityGraph) -> ChainSummary {
    let nodes = g.nodes();
    let mut pred: BTreeMap<ProvNodeRef, Vec<ProvNodeRef>> = BTreeMap::new();
    let mut succ: BTreeMap<ProvNodeRef, Vec<ProvNodeRef>> = BTreeMap::new();
    for (a, b) in g.edge_list() {
        succ.entry(a).or_default().push(b);
        pred.entry(b).or_default().push(a);
    }
    let deg_in = |n: &ProvNodeRef| pred.get(n).map(|v| v.len()).unwrap_or(0);
    let deg_out = |n: &ProvNodeRef| succ.get(n).map(|v| v.len()).unwrap_or(0);
    let linear = |n: &ProvNodeRef| deg_in(n) == 1 && deg_out(n) == 1;

    let mut in_segment: BTreeMap<ProvNodeRef, bool> = BTreeMap::new();
    let mut segments = Vec::new();
    for n in nodes {
        if !linear(n) || *in_segment.get(n).unwrap_or(&false) {
            continue;
        }
        // Walk to the head of this chain.
        let mut head = *n;
        loop {
            let p = pred[&head][0];
            if linear(&p) && !*in_segment.get(&p).unwrap_or(&false) {
                head = p;
            } else {
                break;
            }
        }
        // Collect forward.
        let mut chain = vec![head];
        in_segment.insert(head, true);
        let mut cur = head;
        while let Some(next) = succ.get(&cur).and_then(|v| v.first()).copied() {
            if linear(&next) && !*in_segment.get(&next).unwrap_or(&false) {
                chain.push(next);
                in_segment.insert(next, true);
                cur = next;
            } else {
                break;
            }
        }
        if chain.len() >= 3 {
            segments.push(ChainSegment { nodes: chain });
        }
    }
    ChainSummary {
        segments,
        total_nodes: nodes.len(),
    }
}

/// Prune a retrospective record down to the union of the reproduction
/// slices of `keep`: runs (and artifacts) that do not contribute to any of
/// the kept products are dropped. This is retention-policy pruning — the
/// blunt end of §2.4's information-overload toolbox, applied when storage
/// must shrink but designated products must stay reproducible.
pub fn prune_to_products(
    retro: &RetrospectiveProvenance,
    keep: &[ArtifactHash],
) -> RetrospectiveProvenance {
    let g = CausalityGraph::from_retrospective(retro);
    let mut keep_runs: BTreeSet<wf_model::NodeId> = BTreeSet::new();
    for &a in keep {
        keep_runs.extend(g.reproduction_slice(a));
    }
    let runs: Vec<_> = retro
        .runs
        .iter()
        .filter(|r| keep_runs.contains(&r.node))
        .cloned()
        .collect();
    let touched: BTreeSet<ArtifactHash> = runs
        .iter()
        .flat_map(|r| r.inputs.iter().chain(r.outputs.iter()).map(|(_, h)| *h))
        .collect();
    RetrospectiveProvenance {
        runs,
        artifacts: retro
            .artifacts
            .iter()
            .filter(|(h, _)| touched.contains(h))
            .map(|(h, a)| (*h, a.clone()))
            .collect(),
        ..retro.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capture::{CaptureLevel, ProvenanceCapture};
    use wf_engine::{standard_registry, Executor};

    fn chain_provenance(len: usize) -> CausalityGraph {
        let (wf, _) = wf_engine::synth::busy_chain(1, len, 5);
        let exec = Executor::new(standard_registry());
        let mut cap = ProvenanceCapture::new(CaptureLevel::Fine);
        let r = exec.run_observed(&wf, &mut cap).unwrap();
        CausalityGraph::from_retrospective(&cap.take(r.exec).unwrap())
    }

    #[test]
    fn reduction_on_chain_removes_nothing() {
        let g = chain_provenance(6);
        let stats = transitive_reduction(&g);
        assert_eq!(stats.before, stats.after, "a chain is already minimal");
        assert_eq!(stats.removed_ratio(), 0.0);
    }

    #[test]
    fn reduction_removes_materialized_closure_edges() {
        // Figure-1 provenance where the grid feeds two branches has no
        // redundant edges either; build one artificially via a diamond with
        // a shortcut through SynthStage fan-in.
        use wf_model::WorkflowBuilder;
        let mut b = WorkflowBuilder::new(1, "diamond");
        let a = b.add("SynthStage");
        let m1 = b.add("SynthStage");
        let z = b.add("SynthStage");
        // a -> m1 -> z and a -> z directly: the artifact of a is used by
        // both m1 and z, which is real fan-out, not redundancy; causality
        // graphs from executions are naturally reduction-minimal. What *is*
        // redundant is a->z at the *run* level after composing data deps.
        b.connect(a, "out", m1, "in0")
            .connect(m1, "out", z, "in0")
            .connect(a, "out", z, "in1");
        let wf = b.build();
        let exec = Executor::new(standard_registry());
        let mut cap = ProvenanceCapture::new(CaptureLevel::Fine);
        let r = exec.run_observed(&wf, &mut cap).unwrap();
        let g = CausalityGraph::from_retrospective(&cap.take(r.exec).unwrap());
        let stats = transitive_reduction(&g);
        // The a-artifact -> z-run edge is implied by
        // a-artifact -> m1 -> m1-artifact -> z.
        assert!(stats.after < stats.before);
        assert!(stats.removed_ratio() > 0.0);
    }

    #[test]
    fn chains_collapse_long_pipelines() {
        let g = chain_provenance(8);
        let summary = summarize_chains(&g);
        assert!(!summary.segments.is_empty());
        assert!(summary.summarized_node_count() < summary.total_nodes);
        assert!(summary.reduction() > 0.5, "an 8-chain is mostly pipeline");
        for seg in &summary.segments {
            assert!(seg.len() >= 3);
            assert!(!seg.is_empty());
        }
    }

    #[test]
    fn short_graphs_produce_no_segments() {
        let g = chain_provenance(2);
        let summary = summarize_chains(&g);
        // 2 runs + 2 artifacts: interior is at most 2 nodes; chain of ≥3
        // linear nodes exists only if artifact+run+artifact qualify.
        for seg in &summary.segments {
            assert!(seg.len() >= 3);
        }
        assert!(summary.summarized_node_count() <= summary.total_nodes);
    }

    #[test]
    fn pruning_keeps_slices_and_drops_the_rest() {
        use wf_engine::synth::figure1_workflow;
        let (wf, nodes) = figure1_workflow(1);
        let exec = Executor::new(standard_registry());
        let mut cap = ProvenanceCapture::new(CaptureLevel::Fine);
        let r = exec.run_observed(&wf, &mut cap).unwrap();
        let retro = cap.take(r.exec).unwrap();
        let hist_file = retro.produced(nodes.save_hist, "file").unwrap().hash;

        let pruned = prune_to_products(&retro, &[hist_file]);
        // Only the histogram branch (+ shared load) survives.
        assert_eq!(pruned.run_count(), 4);
        assert!(pruned.run_of(nodes.load).is_some());
        assert!(pruned.run_of(nodes.iso).is_none());
        assert!(pruned.artifacts.len() < retro.artifacts.len());
        // The kept product is still fully traceable in the pruned record.
        let g = CausalityGraph::from_retrospective(&pruned);
        let slice = g.reproduction_slice(hist_file);
        assert_eq!(slice.len(), 4);
        // Pruning to nothing drops everything.
        let empty = prune_to_products(&retro, &[]);
        assert_eq!(empty.run_count(), 0);
        // Pruning to all products keeps everything.
        let iso_file = retro.produced(nodes.save_iso, "file").unwrap().hash;
        let full = prune_to_products(&retro, &[hist_file, iso_file]);
        assert_eq!(full.run_count(), retro.run_count());
    }
}
