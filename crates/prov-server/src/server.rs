//! The concurrent multi-tenant provenance service.
//!
//! [`ProvServer`] owns the stores. Clients — in-process [`Session`]s or
//! the HTTP front end (`crate::http`) — send [`Request`]s; the server
//! applies admission control, per-tenant rate limits, and namespace
//! isolation, then serves ingest and PQL against shared state:
//!
//! * each [`Namespace`] owns one `RwLock<PqlEngine>` (ingest = write lock,
//!   queries = read lock, generation bumps under the write lock) and one
//!   [`SharedStore<GraphStore>`] answering the canned store queries;
//! * a bounded admission window ([`crate::admission::Admission`]) sheds
//!   load with explicit 503-style rejections instead of queueing;
//! * a token-bucket [`crate::admission::RateLimiter`] isolates tenants;
//! * every query lands one request-scoped span in the namespace's
//!   [`QueryObserver`], all feeding one server-wide [`MetricsRegistry`].
//!
//! Store counters are relaxed atomics (see `prov_store::stats`), so the
//! *totals* stay exact under any interleaving of concurrent readers;
//! per-operator ANALYZE attribution is exact whenever a query runs without
//! overlapping readers on the same namespace.

use crate::admission::{Admission, RateLimiter};
use crate::error::ServerError;
use prov_core::model::RetrospectiveProvenance;
use prov_query::{analyze_optimized, parse, PqlEngine, QueryCache, QueryObserver, QueryResult};
use prov_store::{GraphStore, ProvenanceStore, SharedStore};
use prov_telemetry::{MetricsRegistry, Trace};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

/// Tuning knobs for a [`ProvServer`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Maximum requests served concurrently before 503-style rejection.
    pub max_inflight: usize,
    /// Token-bucket burst per `(tenant, namespace)`.
    pub tenant_burst: u32,
    /// Steady-state requests/second per `(tenant, namespace)`;
    /// `0.0` disables rate limiting (the single-user default).
    pub tenant_rate_per_sec: f64,
    /// Bounded LRU query-result cache entries per namespace.
    pub cache_capacity: usize,
    /// Slow-query log admission threshold in microseconds.
    pub slowlog_threshold_micros: u64,
    /// Create namespaces on first ingest (`true`) or require explicit
    /// [`RequestBody::CreateNamespace`] (`false`).
    pub auto_create_namespaces: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_inflight: 64,
            tenant_burst: 64,
            tenant_rate_per_sec: 0.0,
            cache_capacity: 128,
            slowlog_threshold_micros: 1_000,
            auto_create_namespaces: true,
        }
    }
}

/// One tenant-visible, isolated provenance domain.
///
/// All state a request can touch lives here; requests for namespace A can
/// never observe (or block behind the write lock of) namespace B.
#[derive(Debug)]
pub struct Namespace {
    name: String,
    engine: RwLock<PqlEngine>,
    graph: SharedStore<GraphStore>,
    cache: Mutex<QueryCache>,
    observer: Mutex<QueryObserver>,
    ingests: AtomicU64,
    queries: AtomicU64,
}

impl Namespace {
    fn new(name: &str, config: &ServerConfig, registry: Arc<MetricsRegistry>) -> Self {
        Namespace {
            name: name.to_string(),
            engine: RwLock::new(PqlEngine::new()),
            graph: SharedStore::new(GraphStore::new()),
            cache: Mutex::new(QueryCache::new(config.cache_capacity)),
            observer: Mutex::new(
                QueryObserver::with_registry(registry)
                    .with_slowlog(config.slowlog_threshold_micros, 128),
            ),
            ingests: AtomicU64::new(0),
            queries: AtomicU64::new(0),
        }
    }

    /// The namespace name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The shared canned-query store for this namespace.
    pub fn store(&self) -> &SharedStore<GraphStore> {
        &self.graph
    }

    fn read_engine(&self) -> std::sync::RwLockReadGuard<'_, PqlEngine> {
        self.engine.read().unwrap_or_else(|e| e.into_inner())
    }

    fn write_engine(&self) -> std::sync::RwLockWriteGuard<'_, PqlEngine> {
        self.engine.write().unwrap_or_else(|e| e.into_inner())
    }
}

/// What a request asks for.
#[derive(Debug, Clone)]
pub enum RequestBody {
    /// Create the namespace (idempotent).
    CreateNamespace,
    /// Ingest one execution's retrospective provenance.
    Ingest(Box<RetrospectiveProvenance>),
    /// Evaluate a PQL query.
    Query {
        /// The query text.
        pql: String,
    },
    /// Per-namespace statistics.
    Stats,
}

impl RequestBody {
    /// Stable label for metrics.
    pub fn op(&self) -> &'static str {
        match self {
            RequestBody::CreateNamespace => "create",
            RequestBody::Ingest(_) => "ingest",
            RequestBody::Query { .. } => "query",
            RequestBody::Stats => "stats",
        }
    }
}

/// One client request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Who is asking (rate-limit key).
    pub tenant: String,
    /// Which isolated domain the request addresses.
    pub namespace: String,
    /// The operation.
    pub body: RequestBody,
}

/// Acknowledgement of one ingested execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IngestAck {
    /// The namespace written to.
    pub namespace: String,
    /// Engine generation after the ingest (monotone per namespace).
    pub generation: u64,
    /// Module runs in the ingested execution.
    pub runs_ingested: usize,
    /// Total runs resident in the namespace afterwards.
    pub total_runs: usize,
}

/// A served query.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryReply {
    /// The result rows/count/paths.
    pub result: QueryResult,
    /// The engine generation the result was computed against.
    pub generation: u64,
    /// Server-side evaluation time (0 for cache hits).
    pub micros: u64,
    /// Served from the namespace's result cache?
    pub cached: bool,
}

/// Point-in-time numbers for one namespace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NamespaceStats {
    /// Namespace name.
    pub namespace: String,
    /// Module runs in the engine.
    pub runs: usize,
    /// Artifacts in the engine.
    pub artifacts: usize,
    /// Executions in the engine.
    pub executions: usize,
    /// Ingest generation.
    pub generation: u64,
    /// Ingest requests served.
    pub ingests: u64,
    /// Query requests served.
    pub queries: u64,
    /// Result-cache hits.
    pub cache_hits: u64,
    /// Result-cache misses.
    pub cache_misses: u64,
    /// Runs resident in the shared graph store (must equal `runs`).
    pub store_runs: usize,
}

/// Server-wide admission numbers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerStats {
    /// Requests currently in flight.
    pub inflight: usize,
    /// Requests admitted since start.
    pub admitted: u64,
    /// Requests shed by the admission window.
    pub rejected: u64,
    /// Requests shed by tenant rate limits.
    pub throttled: u64,
    /// Namespaces resident.
    pub namespaces: usize,
}

/// What a request returns.
#[derive(Debug, Clone, PartialEq)]
pub enum ResponseBody {
    /// Namespace exists now.
    Created(String),
    /// Ingest acknowledged.
    Ingested(IngestAck),
    /// Query answered.
    Query(QueryReply),
    /// Namespace statistics.
    Stats(NamespaceStats),
}

/// The long-running concurrent provenance service.
///
/// Construct once, wrap in an [`Arc`], and serve from as many threads as
/// you like: every entry point takes `&self`.
#[derive(Debug)]
pub struct ProvServer {
    config: ServerConfig,
    registry: Arc<MetricsRegistry>,
    admission: Admission,
    limiter: RateLimiter,
    namespaces: RwLock<BTreeMap<String, Arc<Namespace>>>,
    shutdown: AtomicBool,
}

/// Validate a tenant or namespace name: 1–64 chars of `[A-Za-z0-9._-]`.
fn validate_name(kind: &str, name: &str) -> Result<(), ServerError> {
    if name.is_empty() || name.len() > 64 {
        return Err(ServerError::BadRequest(format!(
            "{kind} must be 1-64 characters, got {}",
            name.len()
        )));
    }
    if let Some(c) = name
        .chars()
        .find(|c| !(c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-')))
    {
        return Err(ServerError::BadRequest(format!(
            "{kind} contains invalid character {c:?} (allowed: [A-Za-z0-9._-])"
        )));
    }
    Ok(())
}

impl ProvServer {
    /// A server with the given configuration and a fresh metrics registry.
    pub fn new(config: ServerConfig) -> Self {
        ProvServer {
            admission: Admission::new(config.max_inflight),
            limiter: RateLimiter::new(config.tenant_burst, config.tenant_rate_per_sec),
            config,
            registry: Arc::new(MetricsRegistry::new()),
            namespaces: RwLock::new(BTreeMap::new()),
            shutdown: AtomicBool::new(false),
        }
    }

    /// The server-wide metrics registry (Prometheus-renderable).
    pub fn registry(&self) -> &Arc<MetricsRegistry> {
        &self.registry
    }

    /// The active configuration.
    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    /// Flag the server as draining: every subsequent request is rejected
    /// with [`ServerError::ShuttingDown`].
    pub fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    /// Is the server draining?
    pub fn is_shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Serve one request end to end: admission window, tenant rate limit,
    /// namespace resolution, dispatch. This is the single entry point both
    /// the in-process [`Session`] API and the HTTP front end go through.
    pub fn handle(&self, req: &Request) -> Result<ResponseBody, ServerError> {
        if self.is_shutting_down() {
            return Err(ServerError::ShuttingDown);
        }
        validate_name("tenant", &req.tenant)?;
        validate_name("namespace", &req.namespace)?;
        let outcome_metric = |outcome: &str| {
            self.registry
                .counter_with(
                    "prov_server_requests_total",
                    "requests by operation and outcome",
                    &[("op", req.body.op()), ("outcome", outcome)],
                )
                .inc();
        };
        let Some(_permit) = self.admission.try_acquire() else {
            outcome_metric("overloaded");
            return Err(ServerError::Overloaded {
                inflight: self.admission.inflight(),
                limit: self.admission.limit(),
            });
        };
        if !self.limiter.try_take(&req.tenant, &req.namespace) {
            outcome_metric("rate_limited");
            return Err(ServerError::RateLimited {
                tenant: req.tenant.clone(),
                namespace: req.namespace.clone(),
            });
        }
        let result = match &req.body {
            RequestBody::CreateNamespace => self
                .get_or_create_namespace(&req.namespace)
                .map(|ns| ResponseBody::Created(ns.name().to_string())),
            RequestBody::Ingest(retro) => self.ingest(&req.namespace, retro),
            RequestBody::Query { pql } => self.query(&req.namespace, pql),
            RequestBody::Stats => self.stats(&req.namespace).map(ResponseBody::Stats),
        };
        outcome_metric(match &result {
            Ok(_) => "ok",
            Err(e) => e.kind(),
        });
        result
    }

    /// Open an in-process session for `tenant`.
    pub fn session(self: &Arc<Self>, tenant: &str) -> Session {
        Session {
            server: Arc::clone(self),
            tenant: tenant.to_string(),
        }
    }

    /// The namespace handle, if it exists.
    pub fn namespace(&self, name: &str) -> Option<Arc<Namespace>> {
        self.namespaces
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .get(name)
            .cloned()
    }

    /// Namespace names, sorted.
    pub fn namespace_names(&self) -> Vec<String> {
        self.namespaces
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .keys()
            .cloned()
            .collect()
    }

    /// Server-wide admission statistics.
    pub fn server_stats(&self) -> ServerStats {
        ServerStats {
            inflight: self.admission.inflight(),
            admitted: self.admission.admitted(),
            rejected: self.admission.rejected(),
            throttled: self.limiter.throttled(),
            namespaces: self
                .namespaces
                .read()
                .unwrap_or_else(|e| e.into_inner())
                .len(),
        }
    }

    /// Drain the request-scoped query spans of one namespace as a
    /// [`Trace`] (exportable with the `prov-telemetry` exporters).
    pub fn take_trace(&self, namespace: &str) -> Option<Trace> {
        let ns = self.namespace(namespace)?;
        let trace = ns
            .observer
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .take_trace();
        Some(trace)
    }

    /// Render the namespace's slow-query log.
    pub fn render_slowlog(&self, namespace: &str) -> Option<String> {
        let ns = self.namespace(namespace)?;
        let text = ns
            .observer
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .slowlog
            .render();
        Some(text)
    }

    fn get_or_create_namespace(&self, name: &str) -> Result<Arc<Namespace>, ServerError> {
        if let Some(ns) = self.namespace(name) {
            return Ok(ns);
        }
        let mut map = self.namespaces.write().unwrap_or_else(|e| e.into_inner());
        let ns = map.entry(name.to_string()).or_insert_with(|| {
            Arc::new(Namespace::new(
                name,
                &self.config,
                Arc::clone(&self.registry),
            ))
        });
        Ok(Arc::clone(ns))
    }

    fn resolve(&self, name: &str) -> Result<Arc<Namespace>, ServerError> {
        self.namespace(name)
            .ok_or_else(|| ServerError::NoSuchNamespace(name.to_string()))
    }

    fn ingest(
        &self,
        namespace: &str,
        retro: &RetrospectiveProvenance,
    ) -> Result<ResponseBody, ServerError> {
        let ns = if self.config.auto_create_namespaces {
            self.get_or_create_namespace(namespace)?
        } else {
            self.resolve(namespace)?
        };
        // Engine and graph store are written in the same order everywhere,
        // and the generation reported is read under the engine write lock,
        // so acks carry the generation this ingest produced.
        let (generation, total_runs) = {
            let mut engine = ns.write_engine();
            engine.ingest(retro);
            (engine.generation(), engine.run_count())
        };
        ns.graph.ingest_shared(retro);
        ns.ingests.fetch_add(1, Ordering::Relaxed);
        Ok(ResponseBody::Ingested(IngestAck {
            namespace: namespace.to_string(),
            generation,
            runs_ingested: retro.run_count(),
            total_runs,
        }))
    }

    fn query(&self, namespace: &str, pql: &str) -> Result<ResponseBody, ServerError> {
        let ns = self.resolve(namespace)?;
        let query = parse(pql)?;
        let key = QueryCache::key_for(&query);
        // Hold the read lock across generation read + evaluation: the
        // result is guaranteed to be computed against the generation it
        // is tagged with (writers are excluded while we evaluate).
        let engine = ns.read_engine();
        let generation = engine.generation();
        {
            let mut cache = ns.cache.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(result) = cache.get("engine", &key, generation) {
                drop(cache);
                ns.queries.fetch_add(1, Ordering::Relaxed);
                let mut obs = ns.observer.lock().unwrap_or_else(|e| e.into_inner());
                obs.record(pql, "cache", 0, result.len(), Default::default());
                return Ok(ResponseBody::Query(QueryReply {
                    result,
                    generation,
                    micros: 0,
                    cached: true,
                }));
            }
        }
        let analysis = analyze_optimized(&engine, &query)?;
        drop(engine);
        ns.cache.lock().unwrap_or_else(|e| e.into_inner()).put(
            "engine",
            &key,
            generation,
            analysis.result.clone(),
        );
        ns.queries.fetch_add(1, Ordering::Relaxed);
        {
            let mut obs = ns.observer.lock().unwrap_or_else(|e| e.into_inner());
            obs.record(
                pql,
                "engine",
                analysis.total_micros,
                analysis.result.len(),
                analysis.total_accesses(),
            );
        }
        Ok(ResponseBody::Query(QueryReply {
            result: analysis.result,
            generation,
            micros: analysis.total_micros,
            cached: false,
        }))
    }

    fn stats(&self, namespace: &str) -> Result<NamespaceStats, ServerError> {
        let ns = self.resolve(namespace)?;
        let engine = ns.read_engine();
        let (hits, misses) = {
            let cache = ns.cache.lock().unwrap_or_else(|e| e.into_inner());
            (cache.hits(), cache.misses())
        };
        Ok(NamespaceStats {
            namespace: namespace.to_string(),
            runs: engine.run_count(),
            artifacts: engine.artifact_count(),
            executions: engine.exec_count(),
            generation: engine.generation(),
            ingests: ns.ingests.load(Ordering::Relaxed),
            queries: ns.queries.load(Ordering::Relaxed),
            cache_hits: hits,
            cache_misses: misses,
            store_runs: ns.graph.run_count(),
        })
    }
}

/// An in-process client handle: the session API used when no network is
/// available (tests, benchmarks, embedded use). All calls go through
/// [`ProvServer::handle`], so admission control and rate limits apply
/// exactly as they do over HTTP.
#[derive(Debug, Clone)]
pub struct Session {
    server: Arc<ProvServer>,
    tenant: String,
}

impl Session {
    /// The tenant this session authenticates as.
    pub fn tenant(&self) -> &str {
        &self.tenant
    }

    /// Create `namespace` (idempotent).
    pub fn create_namespace(&self, namespace: &str) -> Result<(), ServerError> {
        self.server
            .handle(&Request {
                tenant: self.tenant.clone(),
                namespace: namespace.to_string(),
                body: RequestBody::CreateNamespace,
            })
            .map(|_| ())
    }

    /// Ingest one execution's provenance into `namespace`.
    pub fn ingest(
        &self,
        namespace: &str,
        retro: &RetrospectiveProvenance,
    ) -> Result<IngestAck, ServerError> {
        match self.server.handle(&Request {
            tenant: self.tenant.clone(),
            namespace: namespace.to_string(),
            body: RequestBody::Ingest(Box::new(retro.clone())),
        })? {
            ResponseBody::Ingested(ack) => Ok(ack),
            other => Err(ServerError::BadRequest(format!(
                "unexpected response {other:?}"
            ))),
        }
    }

    /// Evaluate a PQL query against `namespace`.
    pub fn query(&self, namespace: &str, pql: &str) -> Result<QueryReply, ServerError> {
        match self.server.handle(&Request {
            tenant: self.tenant.clone(),
            namespace: namespace.to_string(),
            body: RequestBody::Query {
                pql: pql.to_string(),
            },
        })? {
            ResponseBody::Query(reply) => Ok(reply),
            other => Err(ServerError::BadRequest(format!(
                "unexpected response {other:?}"
            ))),
        }
    }

    /// Per-namespace statistics.
    pub fn stats(&self, namespace: &str) -> Result<NamespaceStats, ServerError> {
        match self.server.handle(&Request {
            tenant: self.tenant.clone(),
            namespace: namespace.to_string(),
            body: RequestBody::Stats,
        })? {
            ResponseBody::Stats(stats) => Ok(stats),
            other => Err(ServerError::BadRequest(format!(
                "unexpected response {other:?}"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prov_core::capture::{CaptureLevel, ProvenanceCapture};
    use wf_engine::synth::figure1_workflow;
    use wf_engine::{standard_registry, Executor};

    fn retro(seed: u64) -> RetrospectiveProvenance {
        let (wf, _) = figure1_workflow(seed);
        let exec = Executor::new(standard_registry());
        let mut cap = ProvenanceCapture::new(CaptureLevel::Fine);
        let r = exec.run_observed(&wf, &mut cap).unwrap();
        let mut doc = cap.take(r.exec).unwrap();
        // A fresh Executor hands out the same ExecId every time; make the
        // execution identity follow the seed so documents are distinct.
        doc.exec = wf_engine::ExecId(seed);
        doc
    }

    fn server() -> Arc<ProvServer> {
        Arc::new(ProvServer::new(ServerConfig::default()))
    }

    #[test]
    fn server_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ProvServer>();
        assert_send_sync::<Session>();
    }

    #[test]
    fn ingest_then_query_round_trips() {
        let srv = server();
        let session = srv.session("alice");
        let ack = session.ingest("lab", &retro(1)).unwrap();
        assert_eq!(ack.generation, 1);
        assert_eq!(ack.runs_ingested, 8);
        assert_eq!(ack.total_runs, 8);
        let reply = session.query("lab", "count runs").unwrap();
        assert_eq!(reply.result, QueryResult::Count(8));
        assert_eq!(reply.generation, 1);
        assert!(!reply.cached);
        let again = session.query("lab", "count runs").unwrap();
        assert!(again.cached, "second identical query is a cache hit");
        assert_eq!(again.result, QueryResult::Count(8));
    }

    #[test]
    fn namespaces_are_isolated() {
        let srv = server();
        let session = srv.session("alice");
        session.ingest("physics", &retro(1)).unwrap();
        session.ingest("biology", &retro(2)).unwrap();
        session.ingest("biology", &retro(3)).unwrap();
        let physics = session.stats("physics").unwrap();
        let biology = session.stats("biology").unwrap();
        assert_eq!(physics.executions, 1);
        assert_eq!(biology.executions, 2);
        assert_eq!(physics.generation, 1);
        assert_eq!(biology.generation, 2);
        assert_eq!(physics.store_runs, physics.runs, "engine and store agree");
        assert!(session.query("nowhere", "count runs").is_err());
    }

    #[test]
    fn unknown_namespace_is_a_404_not_a_panic() {
        let srv = server();
        let session = srv.session("alice");
        let err = session.query("ghost", "count runs").unwrap_err();
        assert_eq!(err.status_code(), 404);
        let err = session.stats("ghost").unwrap_err();
        assert_eq!(err.status_code(), 404);
    }

    #[test]
    fn malformed_pql_is_a_422() {
        let srv = server();
        let session = srv.session("alice");
        session.ingest("lab", &retro(1)).unwrap();
        let err = session.query("lab", "frobnicate the runs").unwrap_err();
        assert_eq!(err.status_code(), 422);
    }

    #[test]
    fn invalid_names_are_rejected() {
        let srv = server();
        let session = srv.session("alice");
        for bad in ["", "has space", "sla/sh", &"x".repeat(65)] {
            let err = session.query(bad, "count runs").unwrap_err();
            assert_eq!(err.status_code(), 400, "namespace {bad:?}");
        }
        let err = srv
            .handle(&Request {
                tenant: "bad tenant".into(),
                namespace: "ns".into(),
                body: RequestBody::Stats,
            })
            .unwrap_err();
        assert_eq!(err.status_code(), 400);
    }

    #[test]
    fn rate_limit_throttles_one_tenant_not_another() {
        let srv = Arc::new(ProvServer::new(ServerConfig {
            tenant_burst: 3,
            tenant_rate_per_sec: 0.000_001,
            ..ServerConfig::default()
        }));
        let alice = srv.session("alice");
        let bob = srv.session("bob");
        alice.ingest("lab", &retro(1)).unwrap();
        // Alice has 2 tokens left (ingest spent one).
        assert!(alice.query("lab", "count runs").is_ok());
        assert!(alice.query("lab", "count runs").is_ok());
        let err = alice.query("lab", "count runs").unwrap_err();
        assert_eq!(err.status_code(), 429);
        assert!(err.is_backpressure());
        assert!(bob.query("lab", "count runs").is_ok(), "bob unaffected");
        assert!(srv.server_stats().throttled >= 1);
    }

    #[test]
    fn shutdown_drains_new_requests() {
        let srv = server();
        let session = srv.session("alice");
        session.ingest("lab", &retro(1)).unwrap();
        srv.begin_shutdown();
        let err = session.query("lab", "count runs").unwrap_err();
        assert_eq!(err, ServerError::ShuttingDown);
    }

    #[test]
    fn generation_in_reply_matches_the_data_queried() {
        let srv = server();
        let session = srv.session("alice");
        session.ingest("lab", &retro(1)).unwrap();
        let r1 = session.query("lab", "count executions").unwrap();
        assert_eq!((r1.generation, r1.result), (1, QueryResult::Count(1)));
        session.ingest("lab", &retro(2)).unwrap();
        let r2 = session.query("lab", "count executions").unwrap();
        assert_eq!((r2.generation, r2.result), (2, QueryResult::Count(2)));
    }

    #[test]
    fn concurrent_mixed_load_is_consistent() {
        let srv = server();
        let namespaces = ["physics", "biology"];
        // Pre-create so query threads never race namespace creation.
        for ns in namespaces {
            srv.session("seed").ingest(ns, &retro(999)).unwrap();
        }
        let writers = 4;
        let per_writer = 3;
        std::thread::scope(|scope| {
            for w in 0..writers {
                let session = srv.session(&format!("writer-{w}"));
                scope.spawn(move || {
                    for i in 0..per_writer {
                        let ns = namespaces[(w + i) % namespaces.len()];
                        session
                            .ingest(ns, &retro(1000 + (w * per_writer + i) as u64))
                            .unwrap();
                    }
                });
            }
            for r in 0..4 {
                let session = srv.session(&format!("reader-{r}"));
                scope.spawn(move || {
                    for i in 0..20 {
                        let ns = namespaces[i % namespaces.len()];
                        let reply = session.query(ns, "count executions").unwrap();
                        // Monotone generations, result consistent with
                        // *some* prefix of the ingest stream.
                        assert!(reply.generation >= 1);
                        assert!(reply.result.len() >= 1);
                    }
                });
            }
        });
        let total_execs: usize = namespaces
            .iter()
            .map(|ns| srv.session("check").stats(ns).unwrap().executions)
            .sum();
        assert_eq!(
            total_execs,
            2 + writers * per_writer,
            "no lost writes across namespaces"
        );
        for ns in namespaces {
            let stats = srv.session("check").stats(ns).unwrap();
            assert_eq!(stats.store_runs, stats.runs, "engine and store agree");
        }
    }

    #[test]
    fn request_scoped_spans_land_in_the_namespace_trace() {
        let srv = server();
        let session = srv.session("alice");
        session.ingest("lab", &retro(1)).unwrap();
        session.query("lab", "count runs").unwrap();
        session.query("lab", "list runs").unwrap();
        let trace = srv.take_trace("lab").unwrap();
        assert_eq!(trace.spans.len(), 2, "one span per query request");
        assert!(srv.take_trace("ghost").is_none());
        let prom = srv.registry().render_prometheus();
        assert!(prom.contains("prov_server_requests_total"));
        assert!(prom.contains("pql_queries_total"));
    }
}
