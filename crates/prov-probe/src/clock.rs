//! Vector logical clocks for causal ordering across capture probes.
//!
//! Each probe owns one component of the vector; local activity ticks the
//! owning component, and snapshot exchange merges clocks by pointwise
//! maximum. Merge is commutative, associative, and idempotent — the
//! algebraic properties the collector leans on when reports arrive out of
//! order or duplicated (and the properties the property-test suite pins).

use std::collections::BTreeMap;

/// Identity of one capture probe (one simulated site / worker).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProbeId(pub u32);

impl std::fmt::Display for ProbeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "site{}", self.0)
    }
}

/// A vector clock: one monotone counter per probe that has been observed.
///
/// Absent components are implicitly zero, so clocks over disjoint probe
/// sets merge without pre-registration.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LogicalClock {
    entries: BTreeMap<u32, u64>,
}

impl LogicalClock {
    /// The zero clock.
    pub fn new() -> Self {
        Self::default()
    }

    /// Advance `id`'s component by one; returns the new component value.
    pub fn tick(&mut self, id: ProbeId) -> u64 {
        let e = self.entries.entry(id.0).or_insert(0);
        *e += 1;
        *e
    }

    /// The component for `id` (zero when never observed).
    pub fn get(&self, id: ProbeId) -> u64 {
        self.entries.get(&id.0).copied().unwrap_or(0)
    }

    /// Merge `other` into `self` by pointwise maximum.
    pub fn merge(&mut self, other: &LogicalClock) {
        for (&id, &v) in &other.entries {
            let e = self.entries.entry(id).or_insert(0);
            if v > *e {
                *e = v;
            }
        }
    }

    /// The pointwise-maximum of two clocks, as a new clock.
    pub fn merged(a: &LogicalClock, b: &LogicalClock) -> LogicalClock {
        let mut out = a.clone();
        out.merge(b);
        out
    }

    /// Whether `self` happened strictly before `other`: every component of
    /// `self` is ≤ the matching component of `other`, and at least one is
    /// strictly smaller.
    pub fn happened_before(&self, other: &LogicalClock) -> bool {
        let mut some_smaller = false;
        for (&id, &v) in &self.entries {
            let o = other.entries.get(&id).copied().unwrap_or(0);
            if v > o {
                return false;
            }
            if v < o {
                some_smaller = true;
            }
        }
        // Components present only in `other` make it strictly larger.
        some_smaller
            || other
                .entries
                .iter()
                .any(|(id, &v)| v > 0 && !self.entries.contains_key(id))
    }

    /// Whether neither clock happened before the other (and they differ).
    pub fn concurrent_with(&self, other: &LogicalClock) -> bool {
        self != other && !self.happened_before(other) && !other.happened_before(self)
    }

    /// A scalar Lamport-style timestamp: the sum of all components.
    /// Monotone under both [`LogicalClock::tick`] and
    /// [`LogicalClock::merge`].
    pub fn lamport(&self) -> u64 {
        self.entries.values().sum()
    }

    /// Iterate `(probe, count)` pairs in probe order (for the codec).
    pub fn components(&self) -> impl Iterator<Item = (ProbeId, u64)> + '_ {
        self.entries.iter().map(|(&id, &v)| (ProbeId(id), v))
    }

    /// Number of non-zero components.
    pub fn width(&self) -> usize {
        self.entries.len()
    }

    /// Rebuild from `(probe, count)` pairs (for the codec).
    pub fn from_components(pairs: impl IntoIterator<Item = (ProbeId, u64)>) -> LogicalClock {
        LogicalClock {
            entries: pairs.into_iter().map(|(id, v)| (id.0, v)).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tick_advances_only_own_component() {
        let mut c = LogicalClock::new();
        assert_eq!(c.tick(ProbeId(3)), 1);
        assert_eq!(c.tick(ProbeId(3)), 2);
        assert_eq!(c.get(ProbeId(3)), 2);
        assert_eq!(c.get(ProbeId(0)), 0);
        assert_eq!(c.lamport(), 2);
    }

    #[test]
    fn merge_is_pointwise_max() {
        let mut a = LogicalClock::new();
        a.tick(ProbeId(0));
        a.tick(ProbeId(0));
        let mut b = LogicalClock::new();
        b.tick(ProbeId(0));
        b.tick(ProbeId(1));
        let m = LogicalClock::merged(&a, &b);
        assert_eq!(m.get(ProbeId(0)), 2);
        assert_eq!(m.get(ProbeId(1)), 1);
        assert_eq!(m, LogicalClock::merged(&b, &a), "commutative");
        assert_eq!(LogicalClock::merged(&m, &m), m, "idempotent");
    }

    #[test]
    fn happened_before_tracks_causality() {
        let mut a = LogicalClock::new();
        a.tick(ProbeId(0));
        let mut b = a.clone();
        b.tick(ProbeId(1));
        assert!(a.happened_before(&b));
        assert!(!b.happened_before(&a));
        let mut c = a.clone();
        c.tick(ProbeId(2));
        assert!(b.concurrent_with(&c));
        assert!(!a.concurrent_with(&a));
    }

    #[test]
    fn components_roundtrip() {
        let mut a = LogicalClock::new();
        a.tick(ProbeId(5));
        a.tick(ProbeId(9));
        let b = LogicalClock::from_components(a.components());
        assert_eq!(a, b);
        assert_eq!(b.width(), 2);
    }
}
