//! Server-side trace assembly: a bounded in-memory store of completed
//! spans keyed by distributed trace id.
//!
//! Every sampled request records its server-side spans here under the
//! caller's 128-bit trace id (parsed from the `traceparent` header, or a
//! server-minted root when the header is absent on a traced path). The
//! `/v1/trace/{id}` endpoint reads the accumulated spans back and
//! assembles them into a parent/child tree, so a client can retrieve the
//! full causal story of a request — including every retried attempt,
//! which shares the trace id — after the fact.
//!
//! The store is deliberately bounded in both dimensions: at most
//! [`TraceStore::capacity`] distinct traces (oldest evicted first) and at
//! most [`MAX_SPANS_PER_TRACE`] spans per trace (later spans dropped and
//! counted), so a trace-id-spraying client cannot grow server memory
//! without bound.

use prov_telemetry::Span;
use std::collections::{HashMap, VecDeque};
use std::sync::Mutex;

/// Hard cap on spans retained per trace; spans beyond it are dropped
/// (the drop count is reported by [`TraceStore::get`]).
pub const MAX_SPANS_PER_TRACE: usize = 512;

/// Default number of distinct traces retained.
pub const DEFAULT_TRACE_CAPACITY: usize = 1024;

#[derive(Debug, Default)]
struct Inner {
    traces: HashMap<u128, TraceEntry>,
    /// Insertion order for FIFO eviction.
    order: VecDeque<u128>,
    /// Cumulative count of traces evicted FIFO at capacity.
    evicted_traces: u64,
    /// Cumulative count of spans dropped at the per-trace cap, across all
    /// traces ever recorded (survives eviction of the trace itself).
    dropped_spans: u64,
}

#[derive(Debug, Default)]
struct TraceEntry {
    spans: Vec<Span>,
    dropped: u64,
}

/// A bounded, thread-safe map from trace id to its recorded spans.
#[derive(Debug)]
pub struct TraceStore {
    capacity: usize,
    inner: Mutex<Inner>,
}

/// The spans of one trace, as returned by [`TraceStore::get`].
#[derive(Debug, Clone)]
pub struct StoredTrace {
    /// All retained spans, sorted by `(start_micros, id)`.
    pub spans: Vec<Span>,
    /// Spans dropped because the per-trace cap was hit.
    pub dropped: u64,
}

/// Cumulative loss counters for a [`TraceStore`], for the metrics plane.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceStoreStats {
    /// Traces evicted FIFO because the store was at capacity.
    pub evicted_traces: u64,
    /// Spans dropped because their trace hit [`MAX_SPANS_PER_TRACE`].
    pub dropped_spans: u64,
    /// Distinct traces currently retained.
    pub retained_traces: usize,
}

impl TraceStore {
    /// A store retaining at most `capacity` distinct traces (minimum 1).
    pub fn new(capacity: usize) -> TraceStore {
        TraceStore {
            capacity: capacity.max(1),
            inner: Mutex::new(Inner::default()),
        }
    }

    /// Record one completed span under `trace_id`, evicting the oldest
    /// trace if the store is full.
    pub fn record(&self, trace_id: u128, span: Span) {
        let mut inner = self.inner.lock().unwrap();
        if !inner.traces.contains_key(&trace_id) {
            while inner.order.len() >= self.capacity {
                if let Some(old) = inner.order.pop_front() {
                    inner.traces.remove(&old);
                    inner.evicted_traces += 1;
                }
            }
            inner.order.push_back(trace_id);
            inner.traces.insert(trace_id, TraceEntry::default());
        }
        let entry = inner.traces.get_mut(&trace_id).expect("just inserted");
        if entry.spans.len() >= MAX_SPANS_PER_TRACE {
            entry.dropped += 1;
            inner.dropped_spans += 1;
        } else {
            entry.spans.push(span);
        }
    }

    /// Record several spans of one trace in one lock acquisition.
    pub fn record_all(&self, trace_id: u128, spans: Vec<Span>) {
        for span in spans {
            self.record(trace_id, span);
        }
    }

    /// The spans recorded under `trace_id`, sorted by start instant.
    pub fn get(&self, trace_id: u128) -> Option<StoredTrace> {
        let inner = self.inner.lock().unwrap();
        inner.traces.get(&trace_id).map(|e| {
            let mut spans = e.spans.clone();
            spans.sort_by_key(|s| (s.start_micros, s.id));
            StoredTrace {
                spans,
                dropped: e.dropped,
            }
        })
    }

    /// Number of distinct traces currently retained.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().traces.len()
    }

    /// Whether no traces are retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Cumulative loss counters since the store was created.
    pub fn stats(&self) -> TraceStoreStats {
        let inner = self.inner.lock().unwrap();
        TraceStoreStats {
            evicted_traces: inner.evicted_traces,
            dropped_spans: inner.dropped_spans,
            retained_traces: inner.traces.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prov_telemetry::{SpanId, SpanKind};
    use wf_engine::ExecId;

    fn span(id: u64, start: u64) -> Span {
        Span {
            id: SpanId(id),
            parent: None,
            kind: SpanKind::Request,
            name: "req".into(),
            exec: ExecId(0),
            node: None,
            start_micros: start,
            end_micros: start + 1,
            attrs: Vec::new(),
        }
    }

    #[test]
    fn records_and_sorts_spans_per_trace() {
        let store = TraceStore::new(4);
        store.record(7, span(2, 200));
        store.record(7, span(1, 100));
        store.record(9, span(3, 50));
        let t = store.get(7).unwrap();
        assert_eq!(t.spans.len(), 2);
        assert_eq!(t.spans[0].id, SpanId(1), "sorted by start");
        assert_eq!(t.dropped, 0);
        assert!(store.get(8).is_none());
    }

    #[test]
    fn evicts_oldest_trace_at_capacity() {
        let store = TraceStore::new(2);
        store.record(1, span(1, 1));
        store.record(2, span(2, 2));
        store.record(3, span(3, 3));
        assert!(store.get(1).is_none(), "oldest evicted");
        assert!(store.get(2).is_some());
        assert!(store.get(3).is_some());
        assert_eq!(store.len(), 2);
    }

    #[test]
    fn caps_spans_per_trace_and_counts_drops() {
        let store = TraceStore::new(2);
        for i in 0..(MAX_SPANS_PER_TRACE as u64 + 5) {
            store.record(42, span(i, i));
        }
        let t = store.get(42).unwrap();
        assert_eq!(t.spans.len(), MAX_SPANS_PER_TRACE);
        assert_eq!(t.dropped, 5);
    }

    #[test]
    fn stats_accumulate_across_evictions() {
        let store = TraceStore::new(2);
        for i in 0..(MAX_SPANS_PER_TRACE as u64 + 3) {
            store.record(1, span(i, i));
        }
        store.record(2, span(1, 1));
        store.record(3, span(1, 1)); // evicts trace 1
        store.record(4, span(1, 1)); // evicts trace 2
        let s = store.stats();
        assert_eq!(s.evicted_traces, 2);
        assert_eq!(s.dropped_spans, 3, "drop count survives eviction");
        assert_eq!(s.retained_traces, 2);
    }
}
