//! The report blob and its dependency-free binary codec.
//!
//! A report is one drained window of a probe's log. The encoding is a
//! small hand-rolled little-endian format (magic `PRB1`), so blobs can be
//! written to disk, shipped between processes, and decoded by a collector
//! with no serialization library in the loop.

use crate::clock::{LogicalClock, ProbeId};
use crate::probe::LogEntry;

/// One drained window of a probe's log, ready to ship to a collector.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Report {
    /// The reporting probe.
    pub probe: ProbeId,
    /// The probe's clock when the report was cut.
    pub clock: LogicalClock,
    /// Distributed trace id carried by the probe (zero = none).
    pub trace_id: u128,
    /// Ring evictions at the probe up to this report (monotone).
    pub dropped: u64,
    /// `(seq, entry)` pairs, in sequence order.
    pub entries: Vec<(u64, LogEntry)>,
}

/// Codec failure while decoding a report blob.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The blob does not start with the `PRB1` magic.
    BadMagic,
    /// The blob ended before a field was complete.
    Truncated,
    /// An unknown log-entry tag.
    BadTag(u8),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::BadMagic => write!(f, "not a probe report blob (bad magic)"),
            CodecError::Truncated => write!(f, "truncated probe report blob"),
            CodecError::BadTag(t) => write!(f, "unknown log entry tag {t}"),
        }
    }
}

impl std::error::Error for CodecError {}

const MAGIC: &[u8; 4] = b"PRB1";

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.pos + n > self.bytes.len() {
            return Err(CodecError::Truncated);
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn u128(&mut self) -> Result<u128, CodecError> {
        Ok(u128::from_le_bytes(self.take(16)?.try_into().unwrap()))
    }
}

impl Report {
    /// Encode the report as a self-contained binary blob.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + self.entries.len() * 16);
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&self.probe.0.to_le_bytes());
        out.extend_from_slice(&self.trace_id.to_le_bytes());
        out.extend_from_slice(&self.dropped.to_le_bytes());
        out.extend_from_slice(&(self.clock.width() as u32).to_le_bytes());
        for (id, v) in self.clock.components() {
            out.extend_from_slice(&id.0.to_le_bytes());
            out.extend_from_slice(&v.to_le_bytes());
        }
        out.extend_from_slice(&(self.entries.len() as u32).to_le_bytes());
        for (seq, entry) in &self.entries {
            out.extend_from_slice(&seq.to_le_bytes());
            match entry {
                LogEntry::Event(payload) => {
                    out.push(0);
                    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
                    out.extend_from_slice(payload);
                }
                LogEntry::SnapshotProduced => out.push(1),
                LogEntry::SnapshotMerged {
                    origin,
                    origin_seq,
                    control,
                } => {
                    out.push(2);
                    out.extend_from_slice(&origin.0.to_le_bytes());
                    out.extend_from_slice(&origin_seq.to_le_bytes());
                    out.push(u8::from(*control));
                }
            }
        }
        out
    }

    /// Decode a blob produced by [`Report::encode`].
    pub fn decode(bytes: &[u8]) -> Result<Report, CodecError> {
        let mut r = Reader { bytes, pos: 0 };
        if r.take(4)? != MAGIC {
            return Err(CodecError::BadMagic);
        }
        let probe = ProbeId(r.u32()?);
        let trace_id = r.u128()?;
        let dropped = r.u64()?;
        let width = r.u32()? as usize;
        let mut comps = Vec::with_capacity(width);
        for _ in 0..width {
            let id = ProbeId(r.u32()?);
            let v = r.u64()?;
            comps.push((id, v));
        }
        let clock = LogicalClock::from_components(comps);
        let count = r.u32()? as usize;
        let mut entries = Vec::with_capacity(count);
        for _ in 0..count {
            let seq = r.u64()?;
            let entry = match r.u8()? {
                0 => {
                    let len = r.u32()? as usize;
                    LogEntry::Event(r.take(len)?.to_vec())
                }
                1 => LogEntry::SnapshotProduced,
                2 => LogEntry::SnapshotMerged {
                    origin: ProbeId(r.u32()?),
                    origin_seq: r.u64()?,
                    control: r.u8()? != 0,
                },
                t => return Err(CodecError::BadTag(t)),
            };
            entries.push((seq, entry));
        }
        Ok(Report {
            probe,
            clock,
            trace_id,
            dropped,
            entries,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::probe::Probe;

    #[test]
    fn roundtrips_a_real_report() {
        let mut a = Probe::new(ProbeId(4)).with_trace_id(77);
        a.record_event(b"hello".to_vec());
        let snap = a.produce_snapshot();
        let mut b = Probe::new(ProbeId(5));
        b.merge_snapshot(&snap);
        b.record_event(vec![]);
        b.merge_snapshot_control(&snap);
        let report = b.report();
        let blob = report.encode();
        let back = Report::decode(&blob).unwrap();
        assert_eq!(back, report);
        assert_eq!(back.trace_id, 77, "trace id adopted and encoded");
    }

    #[test]
    fn rejects_garbage_and_truncation() {
        assert_eq!(Report::decode(b"nope").unwrap_err(), CodecError::BadMagic);
        let mut p = Probe::new(ProbeId(0));
        p.record_event(vec![1, 2, 3]);
        let blob = p.report().encode();
        for cut in 1..blob.len() {
            let e = Report::decode(&blob[..cut]).unwrap_err();
            assert!(matches!(e, CodecError::Truncated | CodecError::BadMagic));
        }
        let mut bad = blob.clone();
        let tag_at = blob.len() - 3 - 4 - 1; // payload(3) + len(4) + tag
        bad[tag_at] = 9;
        assert_eq!(Report::decode(&bad).unwrap_err(), CodecError::BadTag(9));
    }
}
