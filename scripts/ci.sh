#!/usr/bin/env bash
# The full CI gate, runnable locally: build, test, lint, format.
# Usage: scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test"
cargo test -q --workspace

echo "==> cargo clippy"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "CI gate passed."
