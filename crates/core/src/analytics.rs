//! Provenance analytics (§2.4, open problems).
//!
//! "The problem of mining and extracting knowledge from provenance data has
//! been largely unexplored. By analyzing and creating insightful
//! visualizations of provenance data, scientists can debug their tasks and
//! obtain a better understanding of their results."
//!
//! This module profiles executions from their retrospective provenance
//! alone: per-module time breakdowns, the duration-weighted **critical
//! path**, cache effectiveness, artifact-volume accounting, and regression
//! comparison between two runs of the same workflow.

use crate::model::RetrospectiveProvenance;
use std::collections::BTreeMap;
use wf_model::NodeId;

/// Aggregated statistics for one module identity within an execution.
#[derive(Debug, Clone, PartialEq)]
pub struct ModuleProfile {
    /// Module identity.
    pub identity: String,
    /// Number of runs.
    pub runs: usize,
    /// Total body time (µs).
    pub total_micros: u64,
    /// Longest single run (µs).
    pub max_micros: u64,
    /// Runs served from cache.
    pub cached: usize,
    /// Failed runs.
    pub failed: usize,
}

/// The profile of one execution, derived purely from provenance.
#[derive(Debug, Clone)]
pub struct ExecutionProfile {
    /// Per-identity aggregates, sorted by total time (descending).
    pub modules: Vec<ModuleProfile>,
    /// The critical path: the duration-weighted longest dependency chain,
    /// as (node, identity, elapsed µs) from source to sink.
    pub critical_path: Vec<(NodeId, String, u64)>,
    /// Sum of all module body times (µs) — the "sequential work".
    pub total_work_micros: u64,
    /// Sum along the critical path (µs) — the best possible parallel
    /// makespan on infinite executors.
    pub critical_micros: u64,
    /// Total bytes of recorded artifacts.
    pub artifact_bytes: usize,
    /// Cache hits across all runs.
    pub cache_hits: usize,
}

impl ExecutionProfile {
    /// Inherent parallelism: total work / critical path (≥ 1).
    pub fn parallelism(&self) -> f64 {
        if self.critical_micros == 0 {
            1.0
        } else {
            self.total_work_micros as f64 / self.critical_micros as f64
        }
    }

    /// The single hottest module identity, if any work was recorded.
    pub fn bottleneck(&self) -> Option<&ModuleProfile> {
        self.modules.first()
    }

    /// Render as a short debugging report.
    pub fn render(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "total work {} us; critical path {} us; parallelism {:.2}x; {} cache hits; {} artifact bytes\n",
            self.total_work_micros,
            self.critical_micros,
            self.parallelism(),
            self.cache_hits,
            self.artifact_bytes
        ));
        s.push_str("hot modules:\n");
        for m in self.modules.iter().take(5) {
            s.push_str(&format!(
                "  {:<24} {:>4} run(s) {:>10} us total{}{}\n",
                m.identity,
                m.runs,
                m.total_micros,
                if m.cached > 0 {
                    format!(", {} cached", m.cached)
                } else {
                    String::new()
                },
                if m.failed > 0 {
                    format!(", {} FAILED", m.failed)
                } else {
                    String::new()
                },
            ));
        }
        s.push_str("critical path:\n");
        for (node, identity, us) in &self.critical_path {
            s.push_str(&format!("  {node} {identity} ({us} us)\n"));
        }
        s
    }
}

/// Profile one execution from its retrospective provenance.
pub fn profile(retro: &RetrospectiveProvenance) -> ExecutionProfile {
    // Per-identity aggregation.
    let mut by_identity: BTreeMap<&str, ModuleProfile> = BTreeMap::new();
    for run in &retro.runs {
        let e = by_identity
            .entry(run.identity.as_str())
            .or_insert_with(|| ModuleProfile {
                identity: run.identity.clone(),
                runs: 0,
                total_micros: 0,
                max_micros: 0,
                cached: 0,
                failed: 0,
            });
        e.runs += 1;
        e.total_micros += run.elapsed_micros;
        e.max_micros = e.max_micros.max(run.elapsed_micros);
        if run.from_cache {
            e.cached += 1;
        }
        if run.status == wf_engine::RunStatus::Failed {
            e.failed += 1;
        }
    }
    let mut modules: Vec<ModuleProfile> = by_identity.into_values().collect();
    modules.sort_by_key(|m| std::cmp::Reverse(m.total_micros));

    // Run-level dependency graph via shared artifacts, for the critical
    // path. dist[n] = elapsed(n) + max over predecessors.
    let mut producers: BTreeMap<u64, Vec<NodeId>> = BTreeMap::new();
    for run in &retro.runs {
        for (_, h) in &run.outputs {
            producers.entry(*h).or_default().push(run.node);
        }
    }
    let elapsed: BTreeMap<NodeId, u64> = retro
        .runs
        .iter()
        .map(|r| (r.node, r.elapsed_micros))
        .collect();
    let preds: BTreeMap<NodeId, Vec<NodeId>> = retro
        .runs
        .iter()
        .map(|r| {
            let mut p: Vec<NodeId> = r
                .inputs
                .iter()
                .flat_map(|(_, h)| producers.get(h).cloned().unwrap_or_default())
                .collect();
            p.sort();
            p.dedup();
            (r.node, p)
        })
        .collect();

    // Longest path by memoized DFS (runs form a DAG).
    fn longest(
        n: NodeId,
        preds: &BTreeMap<NodeId, Vec<NodeId>>,
        elapsed: &BTreeMap<NodeId, u64>,
        memo: &mut BTreeMap<NodeId, (u64, Option<NodeId>)>,
    ) -> u64 {
        if let Some(&(d, _)) = memo.get(&n) {
            return d;
        }
        let mut best = 0;
        let mut via = None;
        for &p in preds.get(&n).map(|v| v.as_slice()).unwrap_or(&[]) {
            let d = longest(p, preds, elapsed, memo);
            if d > best || via.is_none() {
                best = d;
                via = Some(p);
            }
        }
        let total = best + elapsed.get(&n).copied().unwrap_or(0);
        memo.insert(n, (total, via));
        total
    }
    let mut memo: BTreeMap<NodeId, (u64, Option<NodeId>)> = BTreeMap::new();
    let mut tail: Option<NodeId> = None;
    let mut critical_micros = 0;
    for run in &retro.runs {
        let d = longest(run.node, &preds, &elapsed, &mut memo);
        if d >= critical_micros {
            critical_micros = d;
            tail = Some(run.node);
        }
    }
    let mut critical_path = Vec::new();
    let mut cur = tail;
    while let Some(n) = cur {
        let identity = retro
            .run_of(n)
            .map(|r| r.identity.clone())
            .unwrap_or_default();
        critical_path.push((n, identity, elapsed.get(&n).copied().unwrap_or(0)));
        cur = memo.get(&n).and_then(|(_, via)| *via);
    }
    critical_path.reverse();

    ExecutionProfile {
        total_work_micros: retro.runs.iter().map(|r| r.elapsed_micros).sum(),
        critical_micros,
        artifact_bytes: retro.artifacts.values().map(|a| a.size).sum(),
        cache_hits: retro.runs.iter().filter(|r| r.from_cache).count(),
        modules,
        critical_path,
    }
}

/// One regression entry when comparing two executions.
#[derive(Debug, Clone, PartialEq)]
pub struct Regression {
    /// The node.
    pub node: NodeId,
    /// Module identity.
    pub identity: String,
    /// Elapsed µs in the baseline run.
    pub before_micros: u64,
    /// Elapsed µs in the new run.
    pub after_micros: u64,
}

impl Regression {
    /// Slowdown factor (after / before; `inf` when before was 0).
    pub fn factor(&self) -> f64 {
        if self.before_micros == 0 {
            f64::INFINITY
        } else {
            self.after_micros as f64 / self.before_micros as f64
        }
    }
}

/// Compare two runs of the same workflow node-by-node and report modules
/// that slowed down by more than `threshold`× (e.g. 2.0). Cached runs are
/// skipped on either side (their timing is not comparable).
pub fn find_regressions(
    before: &RetrospectiveProvenance,
    after: &RetrospectiveProvenance,
    threshold: f64,
) -> Vec<Regression> {
    let mut out = Vec::new();
    for b in &before.runs {
        if b.from_cache {
            continue;
        }
        if let Some(a) = after.run_of(b.node) {
            if a.from_cache {
                continue;
            }
            let regression = Regression {
                node: b.node,
                identity: b.identity.clone(),
                before_micros: b.elapsed_micros,
                after_micros: a.elapsed_micros,
            };
            if regression.factor() > threshold {
                out.push(regression);
            }
        }
    }
    out.sort_by(|a, b| {
        b.factor()
            .partial_cmp(&a.factor())
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capture::{CaptureLevel, ProvenanceCapture};
    use wf_engine::{standard_registry, Executor};
    use wf_model::WorkflowBuilder;

    fn run_chain(work: &[i64]) -> RetrospectiveProvenance {
        let mut b = WorkflowBuilder::new(1, "profile-me");
        let mut prev = None;
        for (i, &w) in work.iter().enumerate() {
            let n = b.add("Busy");
            b.param(n, "work", w).param(n, "seed", i as i64);
            if let Some(p) = prev {
                b.connect(p, "out", n, "in");
            }
            prev = Some(n);
        }
        let exec = Executor::new(standard_registry());
        let mut cap = ProvenanceCapture::new(CaptureLevel::Fine);
        let r = exec.run_observed(&b.build(), &mut cap).unwrap();
        cap.take(r.exec).unwrap()
    }

    #[test]
    fn chain_critical_path_is_the_whole_chain() {
        let retro = run_chain(&[2000, 2000, 2000]);
        let p = profile(&retro);
        assert_eq!(p.critical_path.len(), 3);
        assert_eq!(p.critical_micros, p.total_work_micros);
        assert!((p.parallelism() - 1.0).abs() < 1e-9);
        assert_eq!(p.modules.len(), 1);
        assert_eq!(p.modules[0].runs, 3);
    }

    #[test]
    fn parallel_branches_show_parallelism() {
        // Two heavy independent branches joined at the end.
        let mut b = WorkflowBuilder::new(1, "diamond");
        let a = b.add("Busy");
        b.param(a, "work", 20000i64);
        let c = b.add("Busy");
        b.param(c, "work", 20000i64).param(c, "seed", 1i64);
        let join = b.add("SynthStage");
        b.param(join, "work", 10i64);
        b.connect(a, "out", join, "in0")
            .connect(c, "out", join, "in1");
        let exec = Executor::new(standard_registry());
        let mut cap = ProvenanceCapture::new(CaptureLevel::Fine);
        let r = exec.run_observed(&b.build(), &mut cap).unwrap();
        let p = profile(&cap.take(r.exec).unwrap());
        assert!(
            p.parallelism() > 1.3,
            "two equal branches give ~2x: {:.2}",
            p.parallelism()
        );
        // The critical path passes through exactly one branch + the join.
        assert_eq!(p.critical_path.len(), 2);
        assert_eq!(p.critical_path.last().unwrap().0, join);
    }

    #[test]
    fn bottleneck_is_the_heaviest_module() {
        let mut b = WorkflowBuilder::new(1, "mixed");
        let light = b.add("ConstInt");
        let heavy = b.add("Busy");
        b.param(heavy, "work", 50000i64);
        b.connect(light, "out", heavy, "in");
        let exec = Executor::new(standard_registry());
        let mut cap = ProvenanceCapture::new(CaptureLevel::Fine);
        let r = exec.run_observed(&b.build(), &mut cap).unwrap();
        let p = profile(&cap.take(r.exec).unwrap());
        assert_eq!(p.bottleneck().unwrap().identity, "Busy@1");
        let rendered = p.render();
        assert!(rendered.contains("Busy@1"));
        assert!(rendered.contains("critical path"));
    }

    #[test]
    fn failed_runs_flagged_in_profile() {
        let mut b = WorkflowBuilder::new(1, "flaky");
        let bad = b.add("FailIf");
        b.param(bad, "fail", true);
        let exec = Executor::new(standard_registry());
        let mut cap = ProvenanceCapture::new(CaptureLevel::Fine);
        let r = exec.run_observed(&b.build(), &mut cap).unwrap();
        let p = profile(&cap.take(r.exec).unwrap());
        assert_eq!(p.modules[0].failed, 1);
        assert!(p.render().contains("FAILED"));
    }

    #[test]
    fn cache_hits_counted() {
        let (wf, _) = wf_engine::synth::figure1_workflow(1);
        let exec = Executor::new(standard_registry()).with_cache(128);
        let mut cap = ProvenanceCapture::new(CaptureLevel::Fine);
        exec.run_observed(&wf, &mut cap).unwrap();
        let r2 = exec.run_observed(&wf, &mut cap).unwrap();
        let p = profile(&cap.take(r2.exec).unwrap());
        assert_eq!(p.cache_hits, 8);
        assert_eq!(p.total_work_micros, 0, "cached runs record zero body time");
    }

    #[test]
    fn regressions_detected_between_runs() {
        let fast = run_chain(&[500, 500]);
        // Simulate a slower second run by scaling recorded times.
        let mut slow = fast.clone();
        slow.runs[1].elapsed_micros = fast.runs[1].elapsed_micros * 10 + 1000;
        let regs = find_regressions(&fast, &slow, 2.0);
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].node, slow.runs[1].node);
        assert!(regs[0].factor() > 2.0);
        // No false positives comparing a run to itself.
        assert!(find_regressions(&fast, &fast, 2.0).is_empty());
    }
}
