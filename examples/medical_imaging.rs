//! Figure 1 of the paper, end to end: the medical-imaging workflow that
//! derives a histogram (`head-hist.png`) and an isosurface visualization
//! from a CT scan (`head.120.vtk`), with prospective provenance,
//! retrospective provenance, user annotations, user views, and the
//! defective-scanner invalidation query.
//!
//! Run with: `cargo run --example medical_imaging`

use provenance_workflows::prelude::*;
use provenance_workflows::provenance::views::ViewNode;

fn main() {
    // The Figure 1 workflow ships with the engine's synthetic library.
    let (wf, nodes) = wf_engine::synth::figure1_workflow(1);

    // --- prospective provenance ------------------------------------------
    println!("== Figure 1, left: prospective provenance ==");
    println!("{}", ProspectiveProvenance::of(&wf).render_recipe());

    // --- run with capture -------------------------------------------------
    let exec = Executor::new(standard_registry());
    let mut capture = ProvenanceCapture::new(CaptureLevel::Fine);
    let result = exec.run_observed(&wf, &mut capture).expect("runs");
    let retro = capture.take(result.exec).expect("capture");
    println!("== Figure 1, right: retrospective provenance ==");
    println!("{}", retro.render_log());

    // --- user-defined provenance: annotations (the yellow boxes) ----------
    let mut notes = AnnotationStore::new();
    notes.annotate(
        Subject::Node(wf.id, nodes.load),
        "note",
        "CT scan of patient 120, acquired 2008-02-14",
        "susan",
    );
    let grid = retro.produced(nodes.load, "grid").expect("grid").hash;
    notes.annotate(
        Subject::Artifact(grid),
        "quality",
        "acquired on scanner B — pending recalibration",
        "juliana",
    );
    notes.annotate(
        Subject::Execution(retro.exec),
        "note",
        "baseline run for the SIGMOD demo",
        "susan",
    );
    println!("== annotations ==");
    for a in notes.iter() {
        println!("  [{:?}] {}: {} — {}", a.subject, a.key, a.text, a.author);
    }

    // --- causality: the defective-scanner scenario ------------------------
    let graph = CausalityGraph::from_retrospective(&retro);
    let invalid = graph.invalidated_by(grid);
    println!(
        "== defective scanner: {} downstream artifacts invalidated ==",
        invalid.len()
    );
    let hist_file = retro.produced(nodes.save_hist, "file").expect("file").hash;
    let iso_file = retro.produced(nodes.save_iso, "file").expect("file").hash;
    assert!(invalid.contains(&hist_file) && invalid.contains(&iso_file));
    println!("  head-hist.png: invalidated");
    println!("  head-iso.png:  invalidated");

    // --- reproduction slice ----------------------------------------------
    let slice = graph.reproduction_slice(iso_file);
    println!(
        "== steps needed to re-derive the isosurface image: {:?} ==",
        slice
            .iter()
            .map(|n| graph.run_label(*n).unwrap_or("?"))
            .collect::<Vec<_>>()
    );

    // --- user views: collapse the two branches ----------------------------
    let view = UserView::new("branch view")
        .group(
            "histogram branch",
            [nodes.hist, nodes.plot, nodes.save_hist],
        )
        .group(
            "isosurface branch",
            [nodes.iso, nodes.smooth, nodes.render, nodes.save_iso],
        );
    let viewed = ViewedGraph::apply(&graph, &view);
    let (base_nodes, _) = viewed.base_size();
    println!(
        "== user view: {} nodes -> {} nodes ({:.0}% reduction), {} artifacts hidden ==",
        base_nodes,
        viewed.node_count(),
        (1.0 - viewed.reduction_ratio()) * 100.0,
        viewed.hidden_artifacts.len()
    );
    assert!(viewed.nodes.contains(&ViewNode::Artifact(grid)));

    // --- causality graph as DOT for external rendering --------------------
    println!("== causality graph (Graphviz DOT, truncated) ==");
    let dot = graph.render_dot();
    for line in dot.lines().take(8) {
        println!("{line}");
    }
    println!("  ... ({} lines total)", dot.lines().count());
}
