//! # prov-interop — provenance interoperability
//!
//! §2.4: "Complex data products may result from long processing chains that
//! require multiple tools … it becomes necessary to integrate provenance
//! derived from different systems and represented using different models.
//! This was the goal of the Second Provenance Challenge."
//!
//! This crate rebuilds that setting end to end:
//!
//! * three independently shaped provenance **dialects**, simulating the
//!   heterogeneity of the challenge participants:
//!   [`dialect::rdfish`] (Taverna-like RDF triples),
//!   [`dialect::eventlog`] (Kepler/Karma-like event streams), and
//!   [`dialect::changelog`] (VisTrails-like versioned spec + run log);
//! * a translator from each dialect into the OPM interlingua
//!   ([`prov_core::opm`]), joining artifacts on content digests;
//! * [`integrate`](mod@integrate) — multi-system OPM account merging with
//!   coverage statistics;
//! * [`challenge`] — the First Provenance Challenge fMRI workload run
//!   across the three simulated systems, plus the challenge's **nine
//!   canonical queries** answered over the integrated graph.

pub mod challenge;
pub mod dialect;
pub mod integrate;

pub use challenge::{run_challenge, ChallengeSetup, QueryAnswer};
pub use integrate::{integrate, IntegrationReport};
