//! Quickstart: author a workflow, run it with provenance capture, and ask
//! the basic provenance questions from §1 of the paper:
//! "Who created this data product? What was the process used to create it?
//! Were two data products derived from the same raw data?"
//!
//! Run with: `cargo run --example quickstart`

use provenance_workflows::prelude::*;

fn main() {
    // ---- 1. Prospective provenance: the recipe -------------------------
    let mut b = WorkflowBuilder::new(1, "quickstart");
    let load = b.add_labeled("LoadVolume", "load dataset");
    b.param(load, "path", "sample.vtk");
    let hist = b.add("Histogram");
    b.param(hist, "bins", 16i64);
    let plot = b.add("PlotTable");
    let stats = b.add("GridStats");
    b.connect(load, "grid", hist, "data")
        .connect(hist, "table", plot, "table")
        .connect(load, "grid", stats, "data");
    let wf = b.build();

    // Validate before running.
    let registry = standard_registry();
    let report = validate(&wf, registry.catalog());
    assert!(report.is_valid(), "{}", report.render());
    println!("== prospective provenance (the recipe) ==");
    println!("{}", ProspectiveProvenance::of(&wf).render_recipe());

    // ---- 2. Run with provenance capture --------------------------------
    let exec = Executor::new(registry);
    let mut capture = ProvenanceCapture::new(CaptureLevel::Fine);
    let result = exec.run_observed(&wf, &mut capture).expect("run succeeds");
    let retro = capture.take(result.exec).expect("capture completes");
    println!("== retrospective provenance (the log) ==");
    println!("{}", retro.render_log());

    // ---- 3. Ask provenance questions ------------------------------------
    let graph = CausalityGraph::from_retrospective(&retro);
    let grid = retro.produced(load, "grid").expect("grid produced").hash;
    let image = retro.produced(plot, "image").expect("image produced").hash;
    let report_table = retro.produced(stats, "stats").expect("stats produced").hash;

    println!("== provenance questions ==");
    println!(
        "who created the plot image? {:?}",
        retro
            .generators_of(image)
            .iter()
            .map(|r| r.identity.as_str())
            .collect::<Vec<_>>()
    );
    println!(
        "is the plot derived from the raw grid? {}",
        graph.derived_from(image, grid)
    );
    println!(
        "do the plot and the stats table share raw data? {}",
        !graph.common_ancestors(image, report_table).is_empty()
    );

    // The same questions in PQL.
    let mut pql = PqlEngine::new();
    pql.ingest(&retro);
    let q = format!("lineage of artifact {:016x}", image);
    println!("== PQL: {q} ==");
    println!("{}", pql.eval(&q).expect("query parses").render());

    // Reproducibility check (the SIGMOD'08 repeatability requirement).
    let exec2 = Executor::new(standard_registry());
    let repro = provenance_workflows::provenance::repro::verify_reproduction(&exec2, &wf, &retro)
        .expect("re-run succeeds");
    println!("== reproducibility == {repro}");
    assert!(repro.is_exact());
}
