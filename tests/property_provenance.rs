//! Property-based tests over provenance capture, causality, stores, and
//! user views, driven by randomly shaped synthetic workflows.

use proptest::prelude::*;
use provenance_workflows::prelude::*;
use provenance_workflows::provenance::analytics;
use provenance_workflows::provenance::finegrained::{RowLineageTracer, RowRef};
use provenance_workflows::provenance::views::ViewNode;
use wf_engine::synth::{layered_dag, LayeredSpec};

fn run_layered(depth: usize, width: usize, fan_in: usize, seed: u64) -> RetrospectiveProvenance {
    let (wf, _) = layered_dag(
        1,
        LayeredSpec {
            depth,
            width,
            fan_in,
            work: 1,
            seed,
        },
    );
    let exec = Executor::new(standard_registry());
    let mut cap = ProvenanceCapture::new(CaptureLevel::Fine);
    let r = exec.run_observed(&wf, &mut cap).expect("runs");
    cap.take(r.exec).expect("captured")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn causality_graph_is_acyclic_and_bipartite(
        depth in 1usize..5, width in 1usize..5, fan in 1usize..4, seed in 0u64..1000
    ) {
        let retro = run_layered(depth, width, fan, seed);
        let g = CausalityGraph::from_retrospective(&retro);
        // Bipartite: every edge joins a run and an artifact.
        for (a, b) in g.edge_list() {
            let ok = matches!(
                (a, b),
                (ProvNodeRef::Run(_), ProvNodeRef::Artifact(_))
                    | (ProvNodeRef::Artifact(_), ProvNodeRef::Run(_))
            );
            prop_assert!(ok, "non-bipartite edge {a} -> {b}");
        }
        // Acyclic: upstream of any node never contains itself.
        for n in g.nodes() {
            prop_assert!(!g.upstream(*n, None).contains(n));
        }
    }

    #[test]
    fn upstream_downstream_duality(
        depth in 2usize..5, width in 1usize..4, seed in 0u64..500
    ) {
        let retro = run_layered(depth, width, 2, seed);
        let g = CausalityGraph::from_retrospective(&retro);
        let nodes = g.nodes().to_vec();
        for &a in nodes.iter().take(8) {
            let down = g.downstream(a, None);
            for &b in nodes.iter().take(8) {
                if a == b { continue; }
                let forward = down.contains(&b);
                let backward = g.upstream(b, None).contains(&a);
                prop_assert_eq!(forward, backward, "{} vs {}", a, b);
            }
        }
    }

    #[test]
    fn all_stores_agree_on_random_workflows(
        depth in 1usize..4, width in 1usize..4, seed in 0u64..200
    ) {
        let retro = run_layered(depth, width, 2, seed);
        let mut graph = GraphStore::new();
        let mut rel = RelStore::new();
        let mut triple = TripleStore::new();
        graph.ingest(&retro);
        rel.ingest(&retro);
        triple.ingest(&retro);
        for run in retro.runs.iter().take(6) {
            for (_, h) in &run.outputs {
                prop_assert_eq!(graph.lineage_runs(*h), rel.lineage_runs(*h));
                prop_assert_eq!(graph.lineage_runs(*h), triple.lineage_runs(*h));
                prop_assert_eq!(graph.generators(*h), rel.generators(*h));
                prop_assert_eq!(graph.derived_artifacts(*h), triple.derived_artifacts(*h));
            }
        }
        prop_assert_eq!(graph.run_count(), rel.run_count());
        prop_assert_eq!(rel.runs_per_module(), triple.runs_per_module());
    }

    #[test]
    fn view_abstraction_is_complete_for_visible_artifacts(
        depth in 2usize..5, width in 1usize..4, seed in 0u64..300, groups in 1usize..4
    ) {
        // Soundness direction that holds for ANY partition: if b is
        // derived from a in the base graph, the viewed graph must also
        // reach b from a (abstraction may over-approximate but never lose
        // derivations).
        let retro = run_layered(depth, width, 2, seed);
        let g = CausalityGraph::from_retrospective(&retro);
        // Partition runs round-robin into `groups` groups.
        let mut view = UserView::new("random");
        let run_ids: Vec<NodeId> = retro.runs.iter().map(|r| r.node).collect();
        for gi in 0..groups {
            let members: Vec<NodeId> = run_ids
                .iter()
                .enumerate()
                .filter(|(i, _)| i % groups == gi)
                .map(|(_, id)| *id)
                .collect();
            view = view.group(&format!("g{gi}"), members);
        }
        let viewed = ViewedGraph::apply(&g, &view);
        let visible: Vec<u64> = viewed
            .nodes
            .iter()
            .filter_map(|n| match n {
                ViewNode::Artifact(h) => Some(*h),
                _ => None,
            })
            .collect();
        for &a in visible.iter().take(6) {
            for &b in visible.iter().take(6) {
                if a == b { continue; }
                let base_reach = g
                    .downstream(ProvNodeRef::Artifact(a), None)
                    .contains(&ProvNodeRef::Artifact(b));
                if base_reach {
                    prop_assert!(
                        viewed.reachable(&ViewNode::Artifact(a), &ViewNode::Artifact(b)),
                        "derivation {a:x} -> {b:x} lost by abstraction"
                    );
                }
            }
        }
        // The abstraction never grows the graph.
        let (base_nodes, _) = viewed.base_size();
        prop_assert!(viewed.node_count() <= base_nodes);
    }

    #[test]
    fn memoized_rerun_hits_every_module(
        depth in 1usize..4, width in 1usize..4, seed in 0u64..200
    ) {
        let (wf, _) = layered_dag(
            1,
            LayeredSpec { depth, width, fan_in: 2, work: 1, seed },
        );
        let exec = Executor::new(standard_registry()).with_cache(4096);
        let r1 = exec.run(&wf).expect("first run");
        prop_assert_eq!(r1.cache_hits(), 0);
        let r2 = exec.run(&wf).expect("second run");
        prop_assert_eq!(r2.cache_hits(), wf.node_count());
        // Outputs identical.
        for (k, v) in &r1.values {
            prop_assert_eq!(
                r2.values.get(k).map(|x| x.content_hash()),
                Some(v.content_hash())
            );
        }
    }

    #[test]
    fn retrospective_provenance_roundtrips_json(
        depth in 1usize..4, width in 1usize..3, seed in 0u64..100
    ) {
        let retro = run_layered(depth, width, 2, seed);
        let json = retro.to_json().unwrap();
        let back = RetrospectiveProvenance::from_json(&json).unwrap();
        prop_assert_eq!(back, retro);
    }

    #[test]
    fn opm_completion_is_idempotent_and_valid(
        depth in 1usize..4, width in 1usize..4, seed in 0u64..200
    ) {
        let retro = run_layered(depth, width, 2, seed);
        let mut opm = OpmGraph::from_retrospective(&retro, "acct", "agent");
        prop_assert!(opm.check().is_empty());
        opm.infer_completions();
        prop_assert_eq!(opm.infer_completions(), 0, "second pass adds nothing");
    }

    #[test]
    fn critical_path_bounds_hold(
        depth in 1usize..5, width in 1usize..4, seed in 0u64..200
    ) {
        let retro = run_layered(depth, width, 2, seed);
        let p = analytics::profile(&retro);
        // Critical path never exceeds total work and is at least the
        // heaviest single run.
        prop_assert!(p.critical_micros <= p.total_work_micros);
        let heaviest = retro.runs.iter().map(|r| r.elapsed_micros).max().unwrap_or(0);
        prop_assert!(p.critical_micros >= heaviest);
        prop_assert!(p.parallelism() >= 0.99);
        // The critical path is a real dependency chain: consecutive nodes
        // are linked by a shared artifact.
        for pair in p.critical_path.windows(2) {
            let up = retro.run_of(pair[0].0).expect("run exists");
            let down = retro.run_of(pair[1].0).expect("run exists");
            let linked = up.outputs.iter().any(|(_, h)| {
                down.inputs.iter().any(|(_, h2)| h2 == h)
            });
            prop_assert!(linked, "critical path edge {} -> {} unbacked", pair[0].0, pair[1].0);
        }
    }

    #[test]
    fn row_lineage_and_taint_are_inverse(
        rows in 4usize..24, seed in 0u64..50
    ) {
        // source -> filter -> aggregate database pipeline.
        let mut b = WorkflowBuilder::new(1, "db-prop");
        let src = b.add("TableSource");
        b.param(src, "rows", rows as i64).param(src, "seed", seed as i64);
        let filter = b.add("TableFilter");
        b.param(filter, "min", 30.0f64);
        let agg = b.add("TableAggregate");
        b.param(agg, "group_col", "grp").param(agg, "agg_col", "value");
        b.connect(src, "out", filter, "in").connect(filter, "out", agg, "in");
        let wf = b.build();
        let result = Executor::new(standard_registry()).run(&wf).expect("runs");
        let tracer = RowLineageTracer::new(&wf, &result);
        let n_groups = match result.output(agg, "out") {
            Some(wf_engine::Value::Table(t)) => t.len(),
            _ => 0,
        };
        // Inverse property: base row b taints group g  <=>  b is in g's
        // base rows.
        for g in 0..n_groups {
            let base = tracer.base_rows(&RowRef::new(agg, "out", g));
            for br in &base {
                prop_assert!(tracer.tainted_rows(br, agg).contains(&g));
            }
        }
        for r in 0..rows {
            let fact = RowRef::new(src, "out", r);
            for g in tracer.tainted_rows(&fact, agg) {
                prop_assert!(
                    tracer.base_rows(&RowRef::new(agg, "out", g)).contains(&fact)
                );
            }
        }
        // Every aggregate group has at least one base fact (sources are
        // the only base), and base facts are source rows.
        for g in 0..n_groups {
            let base = tracer.base_rows(&RowRef::new(agg, "out", g));
            prop_assert!(!base.is_empty());
            prop_assert!(base.iter().all(|b| b.node == src));
        }
    }

    #[test]
    fn pql_lineage_agrees_with_stores_on_random_graphs(
        depth in 1usize..5, width in 1usize..4, seed in 0u64..300
    ) {
        let retro = run_layered(depth, width, 2, seed);
        let mut pql = PqlEngine::new();
        pql.ingest(&retro);
        let mut store = GraphStore::new();
        store.ingest(&retro);
        for run in retro.runs.iter().take(5) {
            for (_, h) in &run.outputs {
                let q = format!("lineage of artifact {h:016x} where status = succeeded");
                let via_pql = pql.eval(&q).expect("query runs").len();
                let via_store = store.lineage_runs(*h).len();
                prop_assert_eq!(via_pql, via_store, "artifact {:016x}", h);
            }
        }
        // Totals agree too.
        prop_assert_eq!(
            pql.eval("count runs").unwrap().len(),
            store.run_count()
        );
    }
}
