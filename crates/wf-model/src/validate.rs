//! Structural validation of workflow specifications against a catalog.
//!
//! Validation is what turns "a bag of boxes and arrows" into a *checked*
//! prospective-provenance document: every problem found here is a run that
//! would have failed (or silently lied) at execution time.

use crate::catalog::ModuleCatalog;
use crate::ident::{ConnId, NodeId};
use crate::workflow::Workflow;
use std::collections::BTreeSet;
use std::fmt;

/// One validation finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Finding {
    /// Node references a module kind absent from the catalog.
    UnknownKind {
        /// Offending node.
        node: NodeId,
        /// The unresolvable `name@version`.
        identity: String,
    },
    /// Connection endpoint names a port that does not exist on the kind.
    UnknownPort {
        /// Offending connection.
        conn: ConnId,
        /// Node whose kind was consulted.
        node: NodeId,
        /// Missing port name.
        port: String,
        /// True if the port was looked up among inputs.
        input: bool,
    },
    /// Connection carries a type the target port does not accept.
    TypeMismatch {
        /// Offending connection.
        conn: ConnId,
        /// Source type name.
        from_type: String,
        /// Target type name.
        to_type: String,
    },
    /// A required input port has no incoming connection.
    MissingRequiredInput {
        /// Node with the unsatisfied port.
        node: NodeId,
        /// Unconnected required port.
        port: String,
    },
    /// A parameter binding names a parameter the kind does not declare.
    UnknownParam {
        /// Node with the stray binding.
        node: NodeId,
        /// Parameter name.
        param: String,
    },
    /// The graph contains a cycle (only possible via replayed histories).
    Cycle,
    /// A connection references a node that is not in the workflow.
    DanglingConnection {
        /// Offending connection.
        conn: ConnId,
    },
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Finding::UnknownKind { node, identity } => {
                write!(f, "node {node}: unknown module kind {identity}")
            }
            Finding::UnknownPort {
                conn,
                node,
                port,
                input,
            } => write!(
                f,
                "connection {conn}: no {} port '{port}' on node {node}",
                if *input { "input" } else { "output" }
            ),
            Finding::TypeMismatch {
                conn,
                from_type,
                to_type,
            } => write!(
                f,
                "connection {conn}: type {from_type} does not flow into {to_type}"
            ),
            Finding::MissingRequiredInput { node, port } => {
                write!(f, "node {node}: required input '{port}' is not connected")
            }
            Finding::UnknownParam { node, param } => {
                write!(f, "node {node}: unknown parameter '{param}'")
            }
            Finding::Cycle => write!(f, "workflow contains a cycle"),
            Finding::DanglingConnection { conn } => {
                write!(f, "connection {conn} references a missing node")
            }
        }
    }
}

/// The result of validating a workflow.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ValidationReport {
    /// All findings, in deterministic order.
    pub findings: Vec<Finding>,
}

impl ValidationReport {
    /// True iff no findings were recorded.
    pub fn is_valid(&self) -> bool {
        self.findings.is_empty()
    }

    /// Render all findings, one per line.
    pub fn render(&self) -> String {
        self.findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    }
}

/// Validate `wf` against `catalog`.
pub fn validate(wf: &Workflow, catalog: &ModuleCatalog) -> ValidationReport {
    let mut findings = Vec::new();

    // 1. Kind resolution and stray parameters.
    for node in wf.nodes.values() {
        match catalog.get(&node.module, node.version) {
            Err(_) => findings.push(Finding::UnknownKind {
                node: node.id,
                identity: node.kind_identity(),
            }),
            Ok(kind) => {
                for pname in node.params.keys() {
                    if kind.param_spec(pname).is_none() {
                        findings.push(Finding::UnknownParam {
                            node: node.id,
                            param: pname.clone(),
                        });
                    }
                }
            }
        }
    }

    // 2. Connection endpoints: existence, port names, types.
    for conn in wf.conns.values() {
        let from_node = wf.nodes.get(&conn.from.node);
        let to_node = wf.nodes.get(&conn.to.node);
        let (from_node, to_node) = match (from_node, to_node) {
            (Some(a), Some(b)) => (a, b),
            _ => {
                findings.push(Finding::DanglingConnection { conn: conn.id });
                continue;
            }
        };
        let from_kind = catalog.get(&from_node.module, from_node.version).ok();
        let to_kind = catalog.get(&to_node.module, to_node.version).ok();
        let out_port = from_kind.and_then(|k| k.output_port(&conn.from.port));
        let in_port = to_kind.and_then(|k| k.input_port(&conn.to.port));
        if from_kind.is_some() && out_port.is_none() {
            findings.push(Finding::UnknownPort {
                conn: conn.id,
                node: from_node.id,
                port: conn.from.port.clone(),
                input: false,
            });
        }
        if to_kind.is_some() && in_port.is_none() {
            findings.push(Finding::UnknownPort {
                conn: conn.id,
                node: to_node.id,
                port: conn.to.port.clone(),
                input: true,
            });
        }
        if let (Some(op), Some(ip)) = (out_port, in_port) {
            if !ip.dtype.accepts(&op.dtype) {
                findings.push(Finding::TypeMismatch {
                    conn: conn.id,
                    from_type: op.dtype.name(),
                    to_type: ip.dtype.name(),
                });
            }
        }
    }

    // 3. Required-input coverage.
    let fed: BTreeSet<(NodeId, &str)> = wf
        .conns
        .values()
        .map(|c| (c.to.node, c.to.port.as_str()))
        .collect();
    for node in wf.nodes.values() {
        if let Ok(kind) = catalog.get(&node.module, node.version) {
            for port in &kind.inputs {
                if port.required && !fed.contains(&(node.id, port.name.as_str())) {
                    findings.push(Finding::MissingRequiredInput {
                        node: node.id,
                        port: port.name.clone(),
                    });
                }
            }
        }
    }

    // 4. Acyclicity.
    let (g, _, _) = wf.digraph();
    if !g.is_dag() {
        findings.push(Finding::Cycle);
    }

    ValidationReport { findings }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module::{ModuleKind, ParamSpec, PortSpec};
    use crate::types::DataType;
    use crate::workflow::Endpoint;
    use crate::WorkflowId;

    fn catalog() -> ModuleCatalog {
        let mut c = ModuleCatalog::new();
        c.register(
            ModuleKind::new("Source")
                .output(PortSpec::required("grid", DataType::Grid))
                .param(ParamSpec::new("path", "")),
        );
        c.register(
            ModuleKind::new("Histogram")
                .input(PortSpec::required("data", DataType::Grid))
                .input(PortSpec::optional("mask", DataType::Grid))
                .output(PortSpec::required("table", DataType::Table))
                .param(ParamSpec::new("bins", 64i64)),
        );
        c.register(
            ModuleKind::new("Render")
                .input(PortSpec::required("table", DataType::Table))
                .output(PortSpec::required("image", DataType::Image)),
        );
        c
    }

    fn valid_wf() -> Workflow {
        let mut w = Workflow::new(WorkflowId(1), "v");
        let s = w.add_node("Source", 1);
        let h = w.add_node("Histogram", 1);
        let r = w.add_node("Render", 1);
        w.connect(Endpoint::new(s, "grid"), Endpoint::new(h, "data"))
            .unwrap();
        w.connect(Endpoint::new(h, "table"), Endpoint::new(r, "table"))
            .unwrap();
        w
    }

    #[test]
    fn valid_workflow_passes() {
        let report = validate(&valid_wf(), &catalog());
        assert!(report.is_valid(), "{}", report.render());
    }

    #[test]
    fn unknown_kind_reported() {
        let mut w = valid_wf();
        w.add_node("Mystery", 9);
        let report = validate(&w, &catalog());
        assert!(report.findings.iter().any(
            |f| matches!(f, Finding::UnknownKind { identity, .. } if identity == "Mystery@9")
        ));
    }

    #[test]
    fn unknown_port_reported_on_both_sides() {
        let mut w = Workflow::new(WorkflowId(1), "w");
        let s = w.add_node("Source", 1);
        let h = w.add_node("Histogram", 1);
        w.connect(Endpoint::new(s, "bogus"), Endpoint::new(h, "nope"))
            .unwrap();
        // satisfy the required port so only port findings fire
        w.connect(Endpoint::new(s, "grid"), Endpoint::new(h, "data"))
            .unwrap();
        let report = validate(&w, &catalog());
        let ports: Vec<bool> = report
            .findings
            .iter()
            .filter_map(|f| match f {
                Finding::UnknownPort { input, .. } => Some(*input),
                _ => None,
            })
            .collect();
        assert!(ports.contains(&true) && ports.contains(&false));
    }

    #[test]
    fn type_mismatch_reported() {
        let mut w = Workflow::new(WorkflowId(1), "w");
        let s = w.add_node("Source", 1);
        let r = w.add_node("Render", 1);
        // grid into a table port
        w.connect(Endpoint::new(s, "grid"), Endpoint::new(r, "table"))
            .unwrap();
        let report = validate(&w, &catalog());
        assert!(report
            .findings
            .iter()
            .any(|f| matches!(f, Finding::TypeMismatch { .. })));
    }

    #[test]
    fn missing_required_input_reported_but_optional_ok() {
        let mut w = Workflow::new(WorkflowId(1), "w");
        w.add_node("Histogram", 1);
        let report = validate(&w, &catalog());
        let missing: Vec<&str> = report
            .findings
            .iter()
            .filter_map(|f| match f {
                Finding::MissingRequiredInput { port, .. } => Some(port.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(missing, vec!["data"], "mask is optional");
    }

    #[test]
    fn stray_param_reported() {
        let mut w = valid_wf();
        let h = w
            .nodes
            .values()
            .find(|n| n.module == "Histogram")
            .unwrap()
            .id;
        w.set_param(h, "bogus", 1i64.into()).unwrap();
        let report = validate(&w, &catalog());
        assert!(report
            .findings
            .iter()
            .any(|f| matches!(f, Finding::UnknownParam { param, .. } if param == "bogus")));
    }

    #[test]
    fn replayed_cycle_detected() {
        use crate::workflow::Connection;
        use crate::{ConnId, NodeId};
        let mut w = Workflow::new(WorkflowId(1), "w");
        let a = w.add_node("Source", 1);
        let b = w.add_node("Render", 1);
        // bypass the public API, as an action replay would
        w.insert_connection(Connection {
            id: ConnId(100),
            from: Endpoint::new(a, "grid"),
            to: Endpoint::new(b, "table"),
        });
        w.insert_connection(Connection {
            id: ConnId(101),
            from: Endpoint::new(b, "image"),
            to: Endpoint::new(a, "x"),
        });
        let report = validate(&w, &catalog());
        assert!(report.findings.contains(&Finding::Cycle));
        let _ = NodeId(0);
    }

    #[test]
    fn dangling_connection_reported() {
        use crate::workflow::Connection;
        use crate::{ConnId, NodeId};
        let mut w = Workflow::new(WorkflowId(1), "w");
        let a = w.add_node("Source", 1);
        w.insert_connection(Connection {
            id: ConnId(5),
            from: Endpoint::new(a, "grid"),
            to: Endpoint::new(NodeId(999), "data"),
        });
        let report = validate(&w, &catalog());
        assert!(report
            .findings
            .iter()
            .any(|f| matches!(f, Finding::DanglingConnection { .. })));
    }
}
