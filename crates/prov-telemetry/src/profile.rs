//! Run profiling: per-module self time, the critical path, and parallel
//! efficiency — computed either from a live [`ExecutionResult`] or purely
//! from stored [`RetrospectiveProvenance`], so old runs can be profiled
//! retroactively without re-execution.
//!
//! The critical path is the duration-weighted longest dependency chain:
//! the best possible makespan on infinitely many executors. Comparing it
//! against the actual wall time and the total sequential work yields the
//! achieved speedup and per-thread utilization.

use prov_core::RetrospectiveProvenance;
use std::collections::BTreeMap;
use wf_engine::{ExecutionResult, RunStatus};
use wf_model::{NodeId, Workflow};

/// Per-module timing within one profiled run.
#[derive(Debug, Clone, PartialEq)]
pub struct ModuleStat {
    /// The node that ran.
    pub node: NodeId,
    /// Module identity `name@version`.
    pub identity: String,
    /// Module body self time in microseconds (0 for cache hits/skips).
    pub self_micros: u64,
    /// Body attempts made.
    pub attempts: u32,
    /// Whether outputs came from the memoization cache.
    pub from_cache: bool,
    /// Outcome.
    pub status: RunStatus,
}

/// One hop along the critical path.
#[derive(Debug, Clone, PartialEq)]
pub struct CriticalHop {
    /// The node.
    pub node: NodeId,
    /// Module identity.
    pub identity: String,
    /// Self time contributed to the path (µs).
    pub self_micros: u64,
}

/// The timing profile of one workflow run.
#[derive(Debug, Clone)]
pub struct RunProfile {
    /// Workflow name (empty when unknown).
    pub name: String,
    /// Executor threads the run used (1 = sequential).
    pub threads: usize,
    /// Actual wall-clock duration of the run (µs).
    pub wall_micros: u64,
    /// Sum of all module self times (µs) — the sequential work.
    pub total_work_micros: u64,
    /// Duration-weighted longest dependency chain (µs).
    pub critical_micros: u64,
    /// The critical path, source to sink.
    pub critical_path: Vec<CriticalHop>,
    /// Per-module stats, hottest first.
    pub modules: Vec<ModuleStat>,
    /// Modules served from cache.
    pub cache_hits: usize,
}

impl RunProfile {
    /// Achieved speedup: sequential work over actual wall time.
    pub fn speedup(&self) -> f64 {
        if self.wall_micros == 0 {
            1.0
        } else {
            self.total_work_micros as f64 / self.wall_micros as f64
        }
    }

    /// Fraction of the thread pool doing useful work: speedup / threads.
    pub fn utilization(&self) -> f64 {
        if self.threads == 0 {
            0.0
        } else {
            self.speedup() / self.threads as f64
        }
    }

    /// Upper bound on any speedup: work / critical path (Amdahl-style).
    pub fn parallelism_bound(&self) -> f64 {
        if self.critical_micros == 0 {
            1.0
        } else {
            self.total_work_micros as f64 / self.critical_micros as f64
        }
    }

    /// The `n` hottest modules by self time.
    pub fn hotspots(&self, n: usize) -> &[ModuleStat] {
        &self.modules[..n.min(self.modules.len())]
    }

    /// Render a human-readable report showing wall time, work, the
    /// critical path, utilization, and the top-`top_n` hotspots.
    pub fn render(&self, top_n: usize) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "run profile: {} ({} modules, {} thread{})\n",
            if self.name.is_empty() {
                "<unnamed>"
            } else {
                &self.name
            },
            self.modules.len(),
            self.threads,
            if self.threads == 1 { "" } else { "s" },
        ));
        s.push_str(&format!(
            "  wall {:>10} us   work {:>10} us   critical {:>10} us\n",
            self.wall_micros, self.total_work_micros, self.critical_micros
        ));
        s.push_str(&format!(
            "  speedup {:.2}x of {:.2}x possible; utilization {:.0}%; {} cache hit(s)\n",
            self.speedup(),
            self.parallelism_bound(),
            self.utilization() * 100.0,
            self.cache_hits,
        ));
        s.push_str(&format!("top {} modules by self time:\n", top_n));
        for m in self.hotspots(top_n) {
            let share = if self.total_work_micros == 0 {
                0.0
            } else {
                100.0 * m.self_micros as f64 / self.total_work_micros as f64
            };
            s.push_str(&format!(
                "  {:<6} {:<24} {:>10} us {:>5.1}%{}{}{}\n",
                m.node.to_string(),
                m.identity,
                m.self_micros,
                share,
                if m.from_cache { "  cached" } else { "" },
                if m.attempts > 1 {
                    format!("  {} attempts", m.attempts)
                } else {
                    String::new()
                },
                match m.status {
                    RunStatus::Failed => "  FAILED",
                    RunStatus::Skipped => "  skipped",
                    RunStatus::Succeeded => "",
                },
            ));
        }
        s.push_str("critical path:\n");
        for hop in &self.critical_path {
            s.push_str(&format!(
                "  {} {} ({} us)\n",
                hop.node, hop.identity, hop.self_micros
            ));
        }
        s
    }
}

/// Longest path over `(node, self_micros)` with predecessor lists.
/// Returns (critical total, path source→sink).
fn critical_path(
    elapsed: &BTreeMap<NodeId, u64>,
    preds: &BTreeMap<NodeId, Vec<NodeId>>,
    identities: &BTreeMap<NodeId, String>,
) -> (u64, Vec<CriticalHop>) {
    // dist[n] = elapsed(n) + max over predecessors, memoized; iterative
    // DFS so deep chains cannot overflow the stack.
    let mut memo: BTreeMap<NodeId, (u64, Option<NodeId>)> = BTreeMap::new();
    for &start in elapsed.keys() {
        if memo.contains_key(&start) {
            continue;
        }
        let mut stack = vec![start];
        while let Some(&n) = stack.last() {
            if memo.contains_key(&n) {
                stack.pop();
                continue;
            }
            let ps = preds.get(&n).map(|v| v.as_slice()).unwrap_or(&[]);
            let unresolved: Vec<NodeId> = ps
                .iter()
                .copied()
                .filter(|p| !memo.contains_key(p))
                .collect();
            if unresolved.is_empty() {
                let mut best = 0;
                let mut via = None;
                for &p in ps {
                    let d = memo[&p].0;
                    if d > best || via.is_none() {
                        best = d;
                        via = Some(p);
                    }
                }
                memo.insert(n, (best + elapsed.get(&n).copied().unwrap_or(0), via));
                stack.pop();
            } else {
                stack.extend(unresolved);
            }
        }
    }
    let mut tail: Option<NodeId> = None;
    let mut total = 0;
    for (&n, &(d, _)) in &memo {
        if d >= total {
            total = d;
            tail = Some(n);
        }
    }
    let mut path = Vec::new();
    let mut cur = tail;
    while let Some(n) = cur {
        path.push(CriticalHop {
            node: n,
            identity: identities.get(&n).cloned().unwrap_or_default(),
            self_micros: elapsed.get(&n).copied().unwrap_or(0),
        });
        cur = memo.get(&n).and_then(|(_, via)| *via);
    }
    path.reverse();
    (total, path)
}

fn finish(
    name: String,
    threads: usize,
    wall_micros: u64,
    mut modules: Vec<ModuleStat>,
    preds: BTreeMap<NodeId, Vec<NodeId>>,
) -> RunProfile {
    let elapsed: BTreeMap<NodeId, u64> = modules.iter().map(|m| (m.node, m.self_micros)).collect();
    let identities: BTreeMap<NodeId, String> = modules
        .iter()
        .map(|m| (m.node, m.identity.clone()))
        .collect();
    let (critical_micros, critical_path) = critical_path(&elapsed, &preds, &identities);
    let total_work_micros = modules.iter().map(|m| m.self_micros).sum();
    let cache_hits = modules.iter().filter(|m| m.from_cache).count();
    modules.sort_by_key(|m| std::cmp::Reverse(m.self_micros));
    RunProfile {
        name,
        threads,
        wall_micros,
        total_work_micros,
        critical_micros,
        critical_path,
        modules,
        cache_hits,
    }
}

/// Profile a run purely from stored retrospective provenance.
///
/// Dependencies are reconstructed the same way lineage queries see them:
/// node A precedes node B when B consumed an artifact A produced
/// (fine-grained capture records those bindings). Wall time comes from
/// the run's start/finish timestamps; the thread count from the recorded
/// execution environment.
pub fn profile_retro(retro: &RetrospectiveProvenance) -> RunProfile {
    let mut producers: BTreeMap<u64, Vec<NodeId>> = BTreeMap::new();
    for run in &retro.runs {
        for (_, h) in &run.outputs {
            producers.entry(*h).or_default().push(run.node);
        }
    }
    let preds: BTreeMap<NodeId, Vec<NodeId>> = retro
        .runs
        .iter()
        .map(|r| {
            let mut p: Vec<NodeId> = r
                .inputs
                .iter()
                .flat_map(|(_, h)| producers.get(h).cloned().unwrap_or_default())
                .filter(|&n| n != r.node)
                .collect();
            p.sort();
            p.dedup();
            (r.node, p)
        })
        .collect();
    let modules: Vec<ModuleStat> = retro
        .runs
        .iter()
        .map(|r| ModuleStat {
            node: r.node,
            identity: r.identity.clone(),
            self_micros: if r.from_cache { 0 } else { r.elapsed_micros },
            attempts: r.attempts,
            from_cache: r.from_cache,
            status: r.status,
        })
        .collect();
    let wall_micros = retro
        .finished_millis
        .saturating_sub(retro.started_millis)
        .saturating_mul(1000);
    finish(
        retro.workflow_name.clone(),
        retro.environment.threads.max(1),
        wall_micros,
        modules,
        preds,
    )
}

/// Profile a live [`ExecutionResult`] against its workflow specification.
///
/// Dependencies come straight from the specification's connections, and
/// wall time from the result's monotonic clock — no provenance capture
/// needs to have been attached.
pub fn profile_result(result: &ExecutionResult, wf: &Workflow, threads: usize) -> RunProfile {
    let preds: BTreeMap<NodeId, Vec<NodeId>> = result
        .node_runs
        .keys()
        .map(|&n| {
            let mut p: Vec<NodeId> = wf.inputs_of(n).map(|c| c.from.node).collect();
            p.sort();
            p.dedup();
            (n, p)
        })
        .collect();
    let modules: Vec<ModuleStat> = result
        .node_runs
        .values()
        .map(|r| ModuleStat {
            node: r.node,
            identity: r.identity.clone(),
            self_micros: if r.from_cache { 0 } else { r.elapsed_micros },
            attempts: r.attempts,
            from_cache: r.from_cache,
            status: r.status,
        })
        .collect();
    finish(
        wf.name.clone(),
        threads.max(1),
        result.elapsed_micros,
        modules,
        preds,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use prov_core::{CaptureLevel, ProvenanceCapture};
    use wf_engine::{standard_registry, Executor};
    use wf_model::WorkflowBuilder;

    /// diamond: a → (b, c) → d, with b much heavier than c.
    fn diamond() -> (wf_model::Workflow, [NodeId; 4]) {
        let mut b = WorkflowBuilder::new(1, "diamond");
        let a = b.add("Busy");
        b.param(a, "work", 200i64);
        let x = b.add("Busy");
        b.param(x, "work", 4000i64).param(x, "seed", 1i64);
        let y = b.add("Busy");
        b.param(y, "work", 200i64).param(y, "seed", 2i64);
        let d = b.add("AddInt");
        b.connect(a, "out", x, "in");
        b.connect(a, "out", y, "in");
        b.connect(x, "out", d, "a");
        b.connect(y, "out", d, "b");
        (b.build(), [a, x, y, d])
    }

    #[test]
    fn live_profile_finds_the_heavy_branch() {
        let (wf, [a, x, _, d]) = diamond();
        let exec = Executor::new(standard_registry());
        let r = exec.run(&wf).unwrap();
        let p = profile_result(&r, &wf, 1);
        assert_eq!(p.modules.len(), 4);
        assert_eq!(
            p.total_work_micros,
            r.node_runs.values().map(|n| n.elapsed_micros).sum()
        );
        // Critical path must route through the heavy branch: a → x → d.
        let hops: Vec<NodeId> = p.critical_path.iter().map(|h| h.node).collect();
        assert_eq!(hops, vec![a, x, d]);
        assert!(p.critical_micros <= p.total_work_micros);
        assert!(p.parallelism_bound() >= 1.0);
        let rendered = p.render(3);
        assert!(rendered.contains("critical path"));
        assert!(rendered.contains("speedup"));
    }

    #[test]
    fn retro_profile_matches_live_topology() {
        let (wf, [a, x, _, d]) = diamond();
        let exec = Executor::new(standard_registry());
        let mut cap = ProvenanceCapture::new(CaptureLevel::Fine);
        let r = exec.run_observed(&wf, &mut cap).unwrap();
        let retro = cap.take(r.exec).unwrap();
        let p = profile_retro(&retro);
        assert_eq!(p.name, "diamond");
        assert_eq!(p.modules.len(), 4);
        let hops: Vec<NodeId> = p.critical_path.iter().map(|h| h.node).collect();
        assert_eq!(hops, vec![a, x, d], "artifact lineage rebuilds the DAG");
        assert_eq!(p.threads, retro.environment.threads.max(1));
    }

    #[test]
    fn cache_hits_contribute_zero_self_time() {
        let (wf, _) = diamond();
        let exec = Executor::new(standard_registry()).with_cache(32);
        exec.run(&wf).unwrap();
        let r2 = exec.run(&wf).unwrap();
        let p = profile_result(&r2, &wf, 1);
        assert_eq!(p.cache_hits, 4);
        assert_eq!(p.total_work_micros, 0);
        assert_eq!(p.critical_micros, 0);
    }

    #[test]
    fn parallel_run_yields_speedup_at_most_the_bound() {
        let (wf, _layers) = wf_engine::synth::layered_dag(
            1,
            wf_engine::synth::LayeredSpec {
                depth: 3,
                width: 4,
                fan_in: 2,
                work: 2000,
                seed: 7,
            },
        );
        let exec = Executor::new(standard_registry());
        let mut obs = wf_engine::NullObserver;
        let r = exec.run_parallel(&wf, 4, &mut obs).unwrap();
        let p = profile_result(&r, &wf, 4);
        assert!(p.speedup() > 0.0);
        // Measured speedup cannot exceed the DAG's inherent parallelism
        // by more than timer noise.
        assert!(p.speedup() <= p.parallelism_bound() * 1.5 + 1.0);
        assert!(p.utilization() <= 1.5);
    }

    #[test]
    fn deep_chain_does_not_overflow_the_stack() {
        let mut b = WorkflowBuilder::new(1, "deep");
        let mut prev = None;
        let mut nodes = Vec::new();
        for i in 0..3000 {
            let id = b.add("Busy");
            b.param(id, "work", 1i64).param(id, "seed", i as i64);
            if let Some(p) = prev {
                b.connect(p, "out", id, "in");
            }
            prev = Some(id);
            nodes.push(id);
        }
        let wf = b.build();
        let exec = Executor::new(standard_registry());
        let r = exec.run(&wf).unwrap();
        let p = profile_result(&r, &wf, 1);
        assert_eq!(p.critical_path.len(), 3000);
    }
}
