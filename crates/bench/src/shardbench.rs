//! E22: what does execution-hash sharding buy on closure-heavy PQL?
//!
//! The workload is a fabricated wide-and-deep lineage DAG: `depth`
//! artifact generations, each produced by `width` distinct executions
//! that all consume the previous generation's artifact. An unbounded
//! filtered lineage query from the newest artifact therefore walks
//! run levels `width` wide — above the engine's parallel fan-out
//! threshold — and the `where module contains ...` filter plus row
//! collection do real string work per discovered row.
//!
//! Two speedup numbers are reported, deliberately distinct:
//!
//! * **wall speedup** — measured wall-clock of the unsharded engine over
//!   the sharded engine *on this machine*. On a single-core box this
//!   hovers near 1.0 (scoped threads cannot beat physics);
//! * **scatter speedup** — the critical-path ratio: total per-shard busy
//!   time over the busiest shard's busy time, taken from the EXPLAIN
//!   ANALYZE `shard i/n` lanes. This is the wall-clock speedup a
//!   coordinator realizes once it has at least `shards` cores, and it is
//!   what the `speedup_at_4` gate in `BENCH_sharded.json` pins.
//!
//! The bench also re-checks the truthfulness invariant the whole design
//! leans on: the sharded EXPLAIN ANALYZE access totals must equal the
//! unsharded totals *exactly* (`accesses_match`), because every shard
//! reports into one shared [`prov_store::StoreStats`] recorder.

use prov_core::model::{Artifact, Environment, ModuleRun, RetrospectiveProvenance};
use prov_query::{analyze, parse, Analysis, PqlEngine, ShardedEngine};
use std::collections::BTreeMap;
use wf_engine::{ExecId, RunStatus};
use wf_model::{NodeId, WorkflowId};

/// Artifact hash for generation `l` of the synthetic DAG.
fn gen_hash(l: usize) -> u64 {
    0xE22_0000_0000 + l as u64
}

/// Fabricate the wide-and-deep corpus: one document per execution,
/// `width` executions per generation, each consuming generation `l-1`
/// and producing generation `l`. Module identities alternate so that a
/// `module contains warp` filter keeps roughly half the rows.
pub fn synth_wide_corpus(width: usize, depth: usize) -> (Vec<RetrospectiveProvenance>, u64) {
    let env = Environment::current(1);
    let mut docs = Vec::with_capacity(width * depth);
    for l in 1..=depth {
        for w in 0..width {
            let exec = ExecId((l * width + w) as u64);
            let (a_in, a_out) = (gen_hash(l - 1), gen_hash(l));
            let identity = if w % 2 == 0 {
                format!("AlignWarp@{l}")
            } else {
                format!("SliceSelect@{l}")
            };
            let run = ModuleRun {
                node: NodeId(w as u64),
                identity,
                params: Vec::new(),
                status: RunStatus::Succeeded,
                started_millis: 0,
                elapsed_micros: 1,
                from_cache: false,
                error: None,
                inputs: vec![("in".to_string(), a_in)],
                outputs: vec![("out".to_string(), a_out)],
                attempts: 1,
                backoff_micros: 0,
            };
            let mut artifacts = BTreeMap::new();
            for h in [a_in, a_out] {
                artifacts.insert(
                    h,
                    Artifact {
                        hash: h,
                        dtype: "grid".to_string(),
                        size: 64,
                        preview: None,
                    },
                );
            }
            docs.push(RetrospectiveProvenance {
                exec,
                workflow: WorkflowId(0xE22),
                workflow_name: "sharded-bench".to_string(),
                status: RunStatus::Succeeded,
                started_millis: 0,
                finished_millis: 1,
                runs: vec![run],
                artifacts,
                environment: env.clone(),
                resumed_from: None,
            });
        }
    }
    (docs, gen_hash(depth))
}

/// One shard-count measurement.
#[derive(Debug)]
pub struct ShardBenchRow {
    /// Shards the engine fanned out over.
    pub shards: usize,
    /// Median EXPLAIN ANALYZE wall-clock (µs).
    pub eval_us: f64,
    /// Unsharded wall-clock over this row's wall-clock.
    pub wall_speedup: f64,
    /// Busy µs per shard lane, summed over every scatter stage.
    pub lane_busy_us: Vec<u64>,
    /// Critical-path ratio: Σ lane busy / max lane busy.
    pub scatter_speedup: f64,
    /// Result rows the filtered lineage produced.
    pub rows: usize,
    /// Sharded access totals equal the unsharded totals exactly.
    pub accesses_match: bool,
}

/// Busy time per shard, read off the `shard i/n` EXPLAIN ANALYZE rows.
fn lane_busy(analysis: &Analysis, shards: usize) -> Vec<u64> {
    let mut busy = vec![0u64; shards];
    for op in &analysis.ops {
        if let Some(rest) = op.label.strip_prefix("shard ") {
            if let Some((s, _)) = rest.split_once('/') {
                if let Ok(s) = s.parse::<usize>() {
                    if s < shards {
                        busy[s] += op.self_micros;
                    }
                }
            }
        }
    }
    busy
}

/// Run the filtered-lineage workload unsharded and at each shard count.
/// Returns the unsharded baseline (µs) and one row per shard count.
pub fn experiment_sharded(
    shard_counts: &[usize],
    width: usize,
    depth: usize,
    reps: usize,
) -> (f64, Vec<ShardBenchRow>) {
    let (docs, root) = synth_wide_corpus(width, depth);
    let query = parse(&format!(
        "lineage of artifact {root:016x} where module contains warp"
    ))
    .expect("bench query parses");

    let mut single = PqlEngine::new();
    for d in &docs {
        single.ingest(d);
    }
    let reference = analyze(&single, &query).expect("unsharded analyze");
    let base_us = crate::time_us(reps, || {
        analyze(&single, &query).expect("unsharded analyze")
    });

    let rows = shard_counts
        .iter()
        .map(|&n| {
            let mut sharded = ShardedEngine::new(n);
            for d in &docs {
                sharded.ingest(d);
            }
            let analysis = sharded.analyze(&query).expect("sharded analyze");
            assert_eq!(
                analysis.result, reference.result,
                "sharded({n}) result diverged from unsharded"
            );
            let accesses_match = analysis.total_accesses() == reference.total_accesses();
            let busy = lane_busy(&analysis, n);
            let total: u64 = busy.iter().sum();
            let peak = busy.iter().copied().max().unwrap_or(0).max(1);
            let eval_us =
                crate::time_us(reps, || sharded.analyze(&query).expect("sharded analyze"));
            ShardBenchRow {
                shards: n,
                eval_us,
                wall_speedup: base_us / eval_us.max(1e-9),
                lane_busy_us: busy,
                scatter_speedup: total as f64 / peak as f64,
                rows: match &analysis.result {
                    prov_query::QueryResult::Nodes(rows) => rows.len(),
                    other => panic!("lineage returned {other:?}"),
                },
                accesses_match,
            }
        })
        .collect();
    (base_us, rows)
}

/// Render E22 results as the stable `BENCH_sharded.json` document.
pub fn sharded_json(width: usize, depth: usize, base_us: f64, rows: &[ShardBenchRow]) -> String {
    let row_json = rows
        .iter()
        .map(|r| {
            let lanes = r
                .lane_busy_us
                .iter()
                .map(u64::to_string)
                .collect::<Vec<_>>()
                .join(",");
            format!(
                "{{\"shards\":{},\"eval_us\":{:.1},\"wall_speedup\":{:.2},\
                 \"scatter_speedup\":{:.2},\"rows\":{},\"accesses_match\":{},\
                 \"lane_busy_us\":[{lanes}]}}",
                r.shards, r.eval_us, r.wall_speedup, r.scatter_speedup, r.rows, r.accesses_match
            )
        })
        .collect::<Vec<_>>()
        .join(",\n    ");
    let at4 = rows.iter().find(|r| r.shards == 4);
    format!(
        "{{\n  \"benchmark\": \"sharded-scatter-gather\",\n  \
         \"corpus\": {{\"width\": {width}, \"depth\": {depth}, \"docs\": {}}},\n  \
         \"baseline_us\": {:.1},\n  \"rows\": [\n    {}\n  ],\n  \
         \"speedup_definition\": \"scatter_speedup is the critical path: total \
         per-shard busy time over the busiest shard, i.e. the wall-clock speedup \
         realized with >= shards cores; wall_speedup is measured on this machine\",\n  \
         \"speedup_at_4\": {:.2},\n  \"wall_speedup_at_4\": {:.2},\n  \
         \"accesses_match\": {}\n}}\n",
        width * depth,
        base_us,
        row_json,
        at4.map(|r| r.scatter_speedup).unwrap_or(0.0),
        at4.map(|r| r.wall_speedup).unwrap_or(0.0),
        rows.iter().all(|r| r.accesses_match),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_is_wide_deep_and_rooted() {
        let (docs, root) = synth_wide_corpus(8, 3);
        assert_eq!(docs.len(), 24);
        assert_eq!(root, gen_hash(3));
        // Every generation-l document consumes generation l-1.
        for d in &docs {
            let run = &d.runs[0];
            assert_eq!(run.inputs.len(), 1);
            assert_eq!(run.outputs.len(), 1);
            assert_eq!(run.inputs[0].1 + 1, run.outputs[0].1);
        }
    }

    #[test]
    fn sharded_rows_agree_with_unsharded_and_carry_the_gates() {
        let (base_us, rows) = experiment_sharded(&[1, 4], 12, 3, 2);
        assert!(base_us > 0.0);
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert!(
                r.accesses_match,
                "{} shards: access totals drifted",
                r.shards
            );
            assert!(r.rows > 0);
            assert_eq!(r.lane_busy_us.len(), r.shards);
        }
        // Four balanced shards give a critical-path ratio well above 1.
        assert!(
            rows[1].scatter_speedup > 1.0,
            "4 shards must spread busy time: {:?}",
            rows[1].lane_busy_us
        );
        let doc = sharded_json(12, 3, base_us, &rows);
        assert!(doc.contains("\"speedup_at_4\":"));
        assert!(doc.contains("\"accesses_match\": true"));
        let parsed = prov_telemetry::parse_json(&doc).expect("valid JSON");
        assert!(parsed.get("rows").is_some());
    }
}
