//! E10 bench: parameter-space exploration with and without
//! provenance-based caching.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use wf_engine::sweep::{run_sweep, SweepAxis};
use wf_engine::{standard_registry, Executor};
use wf_model::WorkflowBuilder;

fn sweep_workflow() -> (wf_model::Workflow, wf_model::NodeId) {
    let mut b = WorkflowBuilder::new(1, "sweep");
    let load = b.add("LoadVolume");
    b.param(load, "nx", 16i64);
    b.param(load, "ny", 16i64);
    b.param(load, "nz", 16i64);
    let smooth = b.add("SmoothGrid");
    b.param(smooth, "iterations", 2i64);
    let iso = b.add("Isosurface");
    b.connect(load, "grid", smooth, "data")
        .connect(smooth, "smoothed", iso, "data");
    (b.build(), iso)
}

fn bench_sweep(c: &mut Criterion) {
    let (wf, iso) = sweep_workflow();
    let mut group = c.benchmark_group("param_sweep");
    group.sample_size(10);
    for n in [4usize, 16] {
        let axes = vec![SweepAxis::new(
            iso,
            "isovalue",
            (0..n)
                .map(|i| (0.1 + 0.8 * i as f64 / n as f64).into())
                .collect(),
        )];
        group.bench_with_input(BenchmarkId::new("uncached", n), &axes, |b, axes| {
            let exec = Executor::new(standard_registry());
            b.iter(|| run_sweep(&exec, &wf, axes).expect("sweep").points.len())
        });
        group.bench_with_input(BenchmarkId::new("cached", n), &axes, |b, axes| {
            b.iter(|| {
                let exec = Executor::new(standard_registry()).with_cache(4096);
                run_sweep(&exec, &wf, axes).expect("sweep").points.len()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sweep);
criterion_main!(benches);
