//! E7 bench: dialect capture, OPM translation, integration, and the nine
//! challenge queries.

use criterion::{criterion_group, criterion_main, Criterion};
use prov_core::capture::{CaptureLevel, ProvenanceCapture};
use prov_interop::dialect::{changelog, eventlog, rdfish, slice_runs};
use prov_interop::{integrate, run_challenge};
use wf_engine::{standard_registry, Executor};

fn bench_challenge(c: &mut Criterion) {
    let wf = wf_engine::synth::challenge_workflow(42, 4, 3);
    let exec = Executor::new(standard_registry());
    let mut cap = ProvenanceCapture::new(CaptureLevel::Fine);
    let r = exec.run_observed(&wf, &mut cap).expect("runs");
    let retro = cap.take(r.exec).expect("captured");
    let part_a = slice_runs(&retro, &["LoadVolume", "AlignWarp", "Reslice"]);
    let part_b = slice_runs(&retro, &["Softmean"]);
    let part_c = slice_runs(&retro, &["Slice", "Convert"]);

    let mut group = c.benchmark_group("challenge");
    group.bench_function("dialect_capture_all_three", |b| {
        b.iter(|| {
            let a = rdfish::RdfProvenance::capture(&part_a);
            let ev = eventlog::EventLogProvenance::capture(&part_b);
            let ch = changelog::ChangelogProvenance::capture(&part_c, &wf);
            (a.len(), ev.len(), ch.len())
        })
    });
    let ga = rdfish::RdfProvenance::capture(&part_a).to_opm("a");
    let gb = eventlog::EventLogProvenance::capture(&part_b).to_opm("b");
    let gc = changelog::ChangelogProvenance::capture(&part_c, &wf).to_opm("c");
    group.bench_function("to_opm_all_three", |b| {
        b.iter(|| {
            let a = rdfish::RdfProvenance::capture(&part_a).to_opm("a");
            (a.nodes().len(), a.edges().len())
        })
    });
    group.bench_function("integrate_three_accounts", |b| {
        b.iter(|| integrate(&[ga.clone(), gb.clone(), gc.clone()]).shared_artifacts)
    });
    let setup = run_challenge();
    group.bench_function("answer_nine_queries", |b| {
        b.iter(|| setup.answer_queries().len())
    });
    group.bench_function("full_challenge_end_to_end", |b| {
        b.iter(|| run_challenge().integration.shared_artifacts)
    });
    group.finish();
}

criterion_group!(benches, bench_challenge);
criterion_main!(benches);
