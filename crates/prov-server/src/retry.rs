//! Bounded client-side retries with seeded exponential backoff + jitter.
//!
//! [`HttpRetry`] mirrors the shape of the engine's `RetryPolicy`
//! (`wf_engine::policy`): a bounded attempt count, exponential backoff
//! capped at a maximum, and *deterministic, seeded* jitter — the same seed
//! replays the same backoff schedule, so client recovery behaviour is as
//! reproducible as the engine's.
//!
//! What is retried is deliberately narrow: connection-level I/O errors
//! (connection refused while a server restarts, resets mid-flight) and
//! 5xx responses. 4xx responses are the caller's fault and are never
//! retried. **Non-idempotent requests are never retried without a request
//! id**: an ingest whose first attempt died ambiguously may or may not
//! have been applied, so blindly retrying could double-ingest; with a
//! request id the server's dedupe cache makes the retry safe.

use wf_engine::stdlib::SplitMix64;

/// A bounded retry schedule for the HTTP client.
#[derive(Debug, Clone, PartialEq)]
pub struct HttpRetry {
    /// Maximum attempts including the first; at least 1.
    pub max_attempts: u32,
    /// Backoff before the second attempt, microseconds.
    pub base_backoff_micros: u64,
    /// Multiplier applied per subsequent attempt.
    pub multiplier: f64,
    /// Cap on any single backoff, microseconds.
    pub max_backoff_micros: u64,
    /// Jitter fraction in `[0, 1]`: each backoff scales by a factor drawn
    /// deterministically from `[1 - jitter, 1 + jitter]`.
    pub jitter: f64,
    /// Seed for the jitter streams (per-attempt, order-independent).
    pub seed: u64,
}

impl HttpRetry {
    /// Up to `max_attempts` attempts with no backoff. Chain
    /// [`HttpRetry::backoff`] / [`HttpRetry::jitter`] to add a schedule.
    pub fn attempts(max_attempts: u32) -> Self {
        HttpRetry {
            max_attempts: max_attempts.max(1),
            base_backoff_micros: 0,
            multiplier: 2.0,
            max_backoff_micros: 0,
            jitter: 0.0,
            seed: 0,
        }
    }

    /// Set the exponential backoff schedule.
    pub fn backoff(mut self, base_micros: u64, multiplier: f64, max_micros: u64) -> Self {
        self.base_backoff_micros = base_micros;
        self.multiplier = if multiplier.is_finite() && multiplier >= 1.0 {
            multiplier
        } else {
            1.0
        };
        self.max_backoff_micros = max_micros.max(base_micros);
        self
    }

    /// Set the jitter fraction (clamped to `[0, 1]`).
    pub fn jitter(mut self, jitter: f64) -> Self {
        self.jitter = jitter.clamp(0.0, 1.0);
        self
    }

    /// Set the jitter seed.
    pub fn seeded(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Is a response status worth retrying? Only server-side failures —
    /// 4xx are the request's fault and will fail identically again.
    pub fn should_retry_status(status: u16) -> bool {
        status >= 500
    }

    /// The backoff before attempt `attempt + 1`, given that attempt
    /// `attempt` (1-based) just failed. Deterministic in
    /// `(seed, attempt)`.
    pub fn backoff_micros(&self, attempt: u32) -> u64 {
        if self.base_backoff_micros == 0 {
            return 0;
        }
        let exp = self
            .multiplier
            .powi(attempt.saturating_sub(1).min(62) as i32);
        let raw = (self.base_backoff_micros as f64 * exp).min(self.max_backoff_micros as f64);
        if self.jitter <= 0.0 {
            return raw as u64;
        }
        let stream = self.seed ^ u64::from(attempt).wrapping_mul(0xd1b5_4a32_d192_ed03);
        let mut rng = SplitMix64::new(stream);
        let factor = 1.0 + self.jitter * (2.0 * rng.next_f64() - 1.0);
        (raw * factor).max(0.0) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_exponentially_and_caps() {
        let p = HttpRetry::attempts(6).backoff(100, 2.0, 500);
        assert_eq!(p.backoff_micros(1), 100);
        assert_eq!(p.backoff_micros(2), 200);
        assert_eq!(p.backoff_micros(3), 400);
        assert_eq!(p.backoff_micros(4), 500, "capped");
    }

    #[test]
    fn jitter_is_deterministic_in_the_seed_and_bounded() {
        let a = HttpRetry::attempts(4)
            .backoff(1_000, 2.0, 10_000)
            .jitter(0.5)
            .seeded(7);
        let b = a.clone();
        for attempt in 1..4 {
            let x = a.backoff_micros(attempt);
            assert_eq!(x, b.backoff_micros(attempt), "same seed, same schedule");
            let raw = 1_000 * 2u64.pow(attempt - 1);
            assert!(x >= raw / 2 && x <= raw * 3 / 2, "attempt {attempt}: {x}");
        }
        let c = a.clone().seeded(8);
        assert!(
            (1..4).any(|n| a.backoff_micros(n) != c.backoff_micros(n)),
            "different seeds give different schedules"
        );
    }

    #[test]
    fn only_5xx_statuses_are_retryable() {
        for s in [500, 502, 503] {
            assert!(HttpRetry::should_retry_status(s));
        }
        for s in [200, 400, 404, 422, 429] {
            assert!(!HttpRetry::should_retry_status(s), "{s}");
        }
    }
}
