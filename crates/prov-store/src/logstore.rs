//! An append-only, CRC-framed provenance log with snapshots and compaction.
//!
//! Represents the "XML dialects that are stored as files" end of the
//! spectrum (§2.2): durable, cheap to write, and with *no* index — every
//! query is a scan over the parsed records, which is exactly the cost
//! profile experiment E4 contrasts with the indexed backends.
//!
//! Frame format, little-endian:
//!
//! ```text
//! [len: u32] [crc32(payload): u32] [payload: len bytes of JSON]
//! ```
//!
//! Recovery tolerates a truncated final frame (a crash mid-append) and
//! stops at the first CRC mismatch, reporting how much was recovered.

use crate::api::{sort_artifacts, sort_runs, Frontier, ProvenanceStore, RunRef};
use crate::stats::StoreStats;
use prov_core::model::{ArtifactHash, RetrospectiveProvenance};
use std::collections::{BTreeMap, HashMap};
use std::fs::{File, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};

/// Position of a run inside the in-memory record vector:
/// (record index, run index within the record).
type RunPos = (usize, usize);

/// CRC-32 (IEEE 802.3) over a byte slice.
pub fn crc32(bytes: &[u8]) -> u32 {
    // Table generated at first use.
    fn table() -> &'static [u32; 256] {
        use std::sync::OnceLock;
        static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
        TABLE.get_or_init(|| {
            let mut t = [0u32; 256];
            for (i, e) in t.iter_mut().enumerate() {
                let mut c = i as u32;
                for _ in 0..8 {
                    c = if c & 1 != 0 {
                        0xedb8_8320 ^ (c >> 1)
                    } else {
                        c >> 1
                    };
                }
                *e = c;
            }
            t
        })
    }
    let t = table();
    let mut c = 0xffff_ffffu32;
    for &b in bytes {
        c = t[((c ^ b as u32) & 0xff) as usize] ^ (c >> 8);
    }
    c ^ 0xffff_ffff
}

/// Errors raised by the log store.
#[derive(Debug)]
pub enum LogError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A record failed to serialize/deserialize.
    Codec(String),
}

impl std::fmt::Display for LogError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LogError::Io(e) => write!(f, "log i/o error: {e}"),
            LogError::Codec(m) => write!(f, "log codec error: {m}"),
        }
    }
}

impl std::error::Error for LogError {}

impl From<std::io::Error> for LogError {
    fn from(e: std::io::Error) -> Self {
        LogError::Io(e)
    }
}

/// Outcome of replaying a log file.
#[derive(Debug)]
pub struct Replay {
    /// Records recovered, in append order.
    pub records: Vec<RetrospectiveProvenance>,
    /// Bytes of valid frames consumed.
    pub valid_bytes: u64,
    /// True when a truncated or corrupt tail was discarded.
    pub truncated_tail: bool,
}

/// The append-only provenance log.
///
/// Normally backed by a file ([`LogStore::open`]); the ephemeral variant
/// ([`LogStore::ephemeral`]) keeps the same scan-everything query profile
/// without touching disk or the serializer, which is what the query
/// benchmark (E16) uses to compare access patterns across backends.
#[derive(Debug)]
pub struct LogStore {
    path: Option<PathBuf>,
    file: Option<File>,
    /// Parsed records (the query working set).
    records: Vec<RetrospectiveProvenance>,
    /// Offset index: artifact hash -> positions of runs that *produced*
    /// it. Maintained on append, rebuilt on open/compact; consulted only
    /// by the optimized query paths (the naive paths keep the log store's
    /// defining scan-everything profile).
    out_index: HashMap<ArtifactHash, Vec<RunPos>>,
    /// Offset index: artifact hash -> positions of runs that *consumed* it.
    in_index: HashMap<ArtifactHash, Vec<RunPos>>,
    /// Aggregate index: run count per module identity.
    module_counts: BTreeMap<String, usize>,
    /// Total runs across all records.
    total_runs: usize,
    optimized: AtomicBool,
    stats: StoreStats,
}

impl LogStore {
    /// Open (or create) a log at `path`, replaying existing records.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, LogError> {
        let path = path.as_ref().to_path_buf();
        let replay = Self::replay(&path)?;
        let mut file = OpenOptions::new()
            .create(true)
            .truncate(false)
            .read(true)
            .write(true)
            .open(&path)?;
        // Truncate any corrupt tail so future appends are clean.
        file.set_len(replay.valid_bytes)?;
        file.seek(SeekFrom::End(0))?;
        let stats = StoreStats::new();
        stats.add_bytes_deserialized(replay.valid_bytes);
        let mut store = Self {
            path: Some(path),
            file: Some(file),
            records: replay.records,
            out_index: HashMap::new(),
            in_index: HashMap::new(),
            module_counts: BTreeMap::new(),
            total_runs: 0,
            optimized: AtomicBool::new(false),
            stats,
        };
        store.rebuild_indexes();
        Ok(store)
    }

    /// An in-memory log with no backing file: appends only push onto the
    /// record vector (no framing, no serialization), while every query
    /// keeps the log store's scan-everything cost profile.
    pub fn ephemeral() -> Self {
        Self {
            path: None,
            file: None,
            records: Vec::new(),
            out_index: HashMap::new(),
            in_index: HashMap::new(),
            module_counts: BTreeMap::new(),
            total_runs: 0,
            optimized: AtomicBool::new(false),
            stats: StoreStats::new(),
        }
    }

    /// Mirror one appended record into the offset/aggregate indexes.
    fn index_record(&mut self, rec_idx: usize) {
        let Self {
            records,
            out_index,
            in_index,
            module_counts,
            total_runs,
            ..
        } = self;
        let rec = &records[rec_idx];
        for (run_idx, run) in rec.runs.iter().enumerate() {
            *total_runs += 1;
            *module_counts.entry(run.identity.clone()).or_default() += 1;
            for (_, h) in &run.outputs {
                out_index.entry(*h).or_default().push((rec_idx, run_idx));
            }
            for (_, h) in &run.inputs {
                in_index.entry(*h).or_default().push((rec_idx, run_idx));
            }
        }
    }

    /// Rebuild every index from scratch (after replay or compaction).
    fn rebuild_indexes(&mut self) {
        self.out_index.clear();
        self.in_index.clear();
        self.module_counts.clear();
        self.total_runs = 0;
        for i in 0..self.records.len() {
            self.index_record(i);
        }
    }

    /// Probe one offset index, with keyed-lookup accounting.
    fn probe<'a>(
        &'a self,
        index: &'a HashMap<ArtifactHash, Vec<RunPos>>,
        h: ArtifactHash,
    ) -> &'a [RunPos] {
        self.stats.add_keyed_lookups(1);
        let out = index.get(&h).map(Vec::as_slice).unwrap_or(&[]);
        self.stats.add_record_reads(out.len() as u64);
        out
    }

    /// Whether this store has a backing file.
    pub fn is_ephemeral(&self) -> bool {
        self.file.is_none()
    }

    /// Replay a log file without opening it for writing.
    pub fn replay(path: impl AsRef<Path>) -> Result<Replay, LogError> {
        let mut records = Vec::new();
        let mut valid_bytes = 0u64;
        let mut truncated = false;
        let data = match std::fs::read(path.as_ref()) {
            Ok(d) => d,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(e.into()),
        };
        let mut off = 0usize;
        while off + 8 <= data.len() {
            let len = u32::from_le_bytes(data[off..off + 4].try_into().expect("4 bytes")) as usize;
            let crc = u32::from_le_bytes(data[off + 4..off + 8].try_into().expect("4 bytes"));
            if off + 8 + len > data.len() {
                truncated = true;
                break;
            }
            let payload = &data[off + 8..off + 8 + len];
            if crc32(payload) != crc {
                truncated = true;
                break;
            }
            match serde_json::from_slice::<RetrospectiveProvenance>(payload) {
                Ok(r) => records.push(r),
                Err(e) => return Err(LogError::Codec(e.to_string())),
            }
            off += 8 + len;
            valid_bytes = off as u64;
        }
        if off < data.len() && off + 8 > data.len() {
            truncated = true;
        }
        Ok(Replay {
            records,
            valid_bytes,
            truncated_tail: truncated,
        })
    }

    /// Append one record and flush (in-memory only for ephemeral stores).
    pub fn append(&mut self, retro: &RetrospectiveProvenance) -> Result<(), LogError> {
        if let Some(file) = self.file.as_mut() {
            let payload = serde_json::to_vec(retro).map_err(|e| LogError::Codec(e.to_string()))?;
            let mut frame = Vec::with_capacity(payload.len() + 8);
            frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            frame.extend_from_slice(&crc32(&payload).to_le_bytes());
            frame.extend_from_slice(&payload);
            file.write_all(&frame)?;
            file.flush()?;
        }
        self.records.push(retro.clone());
        self.index_record(self.records.len() - 1);
        Ok(())
    }

    /// Compact: rewrite the log keeping only the *latest* record per
    /// execution id (re-ingested executions supersede older records).
    /// Returns the number of records dropped.
    pub fn compact(&mut self) -> Result<usize, LogError> {
        let mut latest: Vec<RetrospectiveProvenance> = Vec::new();
        for r in &self.records {
            if let Some(slot) = latest.iter_mut().find(|x| x.exec == r.exec) {
                *slot = r.clone();
            } else {
                latest.push(r.clone());
            }
        }
        let dropped = self.records.len() - latest.len();
        if let Some(path) = self.path.as_ref() {
            let tmp = path.with_extension("compact");
            {
                let mut f = File::create(&tmp)?;
                for r in &latest {
                    let payload =
                        serde_json::to_vec(r).map_err(|e| LogError::Codec(e.to_string()))?;
                    f.write_all(&(payload.len() as u32).to_le_bytes())?;
                    f.write_all(&crc32(&payload).to_le_bytes())?;
                    f.write_all(&payload)?;
                }
                f.flush()?;
                // The temp file must be durable before the rename
                // publishes it — a crash between flush and rename must
                // not be able to leave a truncated or missing log.
                f.sync_all()?;
            }
            std::fs::rename(&tmp, path)?;
            // The rename itself lives in the parent directory entry.
            if let Some(parent) = path.parent() {
                crate::wal::sync_dir(parent)?;
            }
            let mut file = OpenOptions::new().read(true).write(true).open(path)?;
            file.seek(SeekFrom::End(0))?;
            self.file = Some(file);
        }
        self.records = latest;
        self.rebuild_indexes();
        Ok(dropped)
    }

    /// The in-memory records, in append order.
    pub fn records(&self) -> &[RetrospectiveProvenance] {
        &self.records
    }

    /// Current file size in bytes (0 for ephemeral stores).
    pub fn file_bytes(&self) -> u64 {
        self.path
            .as_ref()
            .and_then(|p| std::fs::metadata(p).ok())
            .map(|m| m.len())
            .unwrap_or(0)
    }

    /// One full pass over the record working set, for the stats recorder.
    fn count_scan(&self) {
        self.stats.add_scans(1);
        self.stats.add_record_reads(self.records.len() as u64);
    }
}

impl ProvenanceStore for LogStore {
    fn backend_name(&self) -> &'static str {
        "log"
    }

    fn stats(&self) -> &StoreStats {
        &self.stats
    }

    fn ingest(&mut self, retro: &RetrospectiveProvenance) {
        self.append(retro).expect("log append failed");
    }

    fn generators(&self, artifact: ArtifactHash) -> Vec<RunRef> {
        if self.optimized.load(Ordering::Relaxed) {
            return sort_runs(
                self.probe(&self.out_index, artifact)
                    .iter()
                    .map(|&(ri, i)| (self.records[ri].exec, self.records[ri].runs[i].node))
                    .collect(),
            );
        }
        // Unindexed: scan every record.
        self.count_scan();
        let mut out = Vec::new();
        for rec in &self.records {
            for run in &rec.runs {
                if run.outputs.iter().any(|(_, h)| *h == artifact) {
                    out.push((rec.exec, run.node));
                }
            }
        }
        sort_runs(out)
    }

    fn lineage_runs(&self, artifact: ArtifactHash) -> Vec<RunRef> {
        if self.optimized.load(Ordering::Relaxed) {
            // Index probe per frontier artifact instead of a whole-log pass.
            let mut result: Vec<RunRef> = Vec::new();
            let mut seen_runs: std::collections::BTreeSet<RunRef> = Default::default();
            let mut seen_arts: std::collections::BTreeSet<ArtifactHash> =
                [artifact].into_iter().collect();
            let mut frontier = vec![artifact];
            while !frontier.is_empty() {
                let mut next = Vec::new();
                for a in frontier.drain(..) {
                    for &(ri, i) in self.probe(&self.out_index, a) {
                        let rec = &self.records[ri];
                        let run = &rec.runs[i];
                        if seen_runs.insert((rec.exec, run.node)) {
                            result.push((rec.exec, run.node));
                            for (_, h) in &run.inputs {
                                if seen_arts.insert(*h) {
                                    next.push(*h);
                                }
                            }
                        }
                    }
                }
                frontier = next;
            }
            return sort_runs(result);
        }
        let mut result: Vec<RunRef> = Vec::new();
        let mut seen_runs: std::collections::BTreeSet<RunRef> = Default::default();
        let mut seen_arts: std::collections::BTreeSet<ArtifactHash> =
            [artifact].into_iter().collect();
        let mut frontier = vec![artifact];
        while !frontier.is_empty() {
            let mut next = Vec::new();
            for a in frontier.drain(..) {
                // One whole-log pass per frontier artifact — no index.
                self.count_scan();
                for rec in &self.records {
                    for run in &rec.runs {
                        if run.outputs.iter().any(|(_, h)| *h == a)
                            && seen_runs.insert((rec.exec, run.node))
                        {
                            result.push((rec.exec, run.node));
                            for (_, h) in &run.inputs {
                                if seen_arts.insert(*h) {
                                    next.push(*h);
                                }
                            }
                        }
                    }
                }
            }
            frontier = next;
        }
        sort_runs(result)
    }

    fn derived_artifacts(&self, artifact: ArtifactHash) -> Vec<ArtifactHash> {
        if self.optimized.load(Ordering::Relaxed) {
            let mut result = Vec::new();
            let mut seen_runs: std::collections::BTreeSet<RunRef> = Default::default();
            let mut seen_arts: std::collections::BTreeSet<ArtifactHash> =
                [artifact].into_iter().collect();
            let mut frontier = vec![artifact];
            while !frontier.is_empty() {
                let mut next = Vec::new();
                for a in frontier.drain(..) {
                    for &(ri, i) in self.probe(&self.in_index, a) {
                        let rec = &self.records[ri];
                        let run = &rec.runs[i];
                        if seen_runs.insert((rec.exec, run.node)) {
                            for (_, h) in &run.outputs {
                                if seen_arts.insert(*h) {
                                    result.push(*h);
                                    next.push(*h);
                                }
                            }
                        }
                    }
                }
                frontier = next;
            }
            return sort_artifacts(result);
        }
        let mut result = Vec::new();
        let mut seen_runs: std::collections::BTreeSet<RunRef> = Default::default();
        let mut seen_arts: std::collections::BTreeSet<ArtifactHash> =
            [artifact].into_iter().collect();
        let mut frontier = vec![artifact];
        while !frontier.is_empty() {
            let mut next = Vec::new();
            for a in frontier.drain(..) {
                self.count_scan();
                for rec in &self.records {
                    for run in &rec.runs {
                        if run.inputs.iter().any(|(_, h)| *h == a)
                            && seen_runs.insert((rec.exec, run.node))
                        {
                            for (_, h) in &run.outputs {
                                if seen_arts.insert(*h) {
                                    result.push(*h);
                                    next.push(*h);
                                }
                            }
                        }
                    }
                }
            }
            frontier = next;
        }
        sort_artifacts(result)
    }

    fn expand_frontier(&self, seeds: &[ArtifactHash], upstream: bool) -> Frontier {
        // Multi-seed form of the log fixpoints: indexed probes per frontier
        // artifact when optimized, one whole-log pass per frontier artifact
        // otherwise.
        let optimized = self.optimized.load(Ordering::Relaxed);
        let mut out = Frontier::default();
        let mut seen_runs: std::collections::BTreeSet<RunRef> = Default::default();
        let mut seen_arts: std::collections::BTreeSet<ArtifactHash> = Default::default();
        let mut frontier: Vec<ArtifactHash> = Vec::new();
        for &h in seeds {
            if seen_arts.insert(h) {
                frontier.push(h);
            }
        }
        while !frontier.is_empty() {
            let mut next = Vec::new();
            for a in frontier.drain(..) {
                if optimized {
                    let index = if upstream {
                        &self.out_index
                    } else {
                        &self.in_index
                    };
                    for &(ri, i) in self.probe(index, a) {
                        let rec = &self.records[ri];
                        let run = &rec.runs[i];
                        if seen_runs.insert((rec.exec, run.node)) {
                            out.runs.push((rec.exec, run.node));
                            let side = if upstream { &run.inputs } else { &run.outputs };
                            for (_, h) in side {
                                if seen_arts.insert(*h) {
                                    out.artifacts.push(*h);
                                    next.push(*h);
                                }
                            }
                        }
                    }
                } else {
                    self.count_scan();
                    for rec in &self.records {
                        for run in &rec.runs {
                            let hit = if upstream {
                                run.outputs.iter().any(|(_, h)| *h == a)
                            } else {
                                run.inputs.iter().any(|(_, h)| *h == a)
                            };
                            if hit && seen_runs.insert((rec.exec, run.node)) {
                                out.runs.push((rec.exec, run.node));
                                let side = if upstream { &run.inputs } else { &run.outputs };
                                for (_, h) in side {
                                    if seen_arts.insert(*h) {
                                        out.artifacts.push(*h);
                                        next.push(*h);
                                    }
                                }
                            }
                        }
                    }
                }
            }
            frontier = next;
        }
        out
    }

    fn adopt_stats(&mut self, stats: &StoreStats) {
        self.stats = stats.clone();
    }

    fn runs_per_module(&self) -> Vec<(String, usize)> {
        if self.optimized.load(Ordering::Relaxed) {
            // The aggregate is maintained on append: only its entries are
            // read back, no pass over the log.
            self.stats.add_keyed_lookups(1);
            self.stats.add_record_reads(self.module_counts.len() as u64);
            return self
                .module_counts
                .iter()
                .map(|(k, v)| (k.clone(), *v))
                .collect();
        }
        self.count_scan();
        let mut counts: std::collections::BTreeMap<String, usize> = Default::default();
        for rec in &self.records {
            for run in &rec.runs {
                *counts.entry(run.identity.clone()).or_default() += 1;
            }
        }
        counts.into_iter().collect()
    }

    fn run_count(&self) -> usize {
        if self.optimized.load(Ordering::Relaxed) {
            self.stats.add_keyed_lookups(1);
            return self.total_runs;
        }
        self.records.iter().map(|r| r.runs.len()).sum()
    }

    fn set_optimized(&self, on: bool) {
        self.optimized.store(on, Ordering::Relaxed);
    }

    fn optimized(&self) -> bool {
        self.optimized.load(Ordering::Relaxed)
    }

    fn approx_bytes(&self) -> usize {
        if self.is_ephemeral() {
            // No file to measure: estimate the frames an on-disk log of the
            // same records would occupy (structural, serializer-free).
            self.records
                .iter()
                .map(|r| {
                    64 + r.workflow_name.len()
                        + r.runs
                            .iter()
                            .map(|run| {
                                96 + run.identity.len()
                                    + 24 * (run.inputs.len() + run.outputs.len())
                            })
                            .sum::<usize>()
                        + 48 * r.artifacts.len()
                })
                .sum()
        } else {
            self.file_bytes() as usize
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prov_core::capture::{CaptureLevel, ProvenanceCapture};
    use wf_engine::synth::figure1_workflow;
    use wf_engine::{standard_registry, Executor};

    fn temp_path(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "prov-log-{}-{}-{name}.bin",
            std::process::id(),
            wf_engine::event::now_millis()
        ));
        p
    }

    fn fig1_retro() -> (RetrospectiveProvenance, wf_engine::synth::Figure1Nodes) {
        let (wf, nodes) = figure1_workflow(1);
        let exec = Executor::new(standard_registry());
        let mut cap = ProvenanceCapture::new(CaptureLevel::Fine);
        let r = exec.run_observed(&wf, &mut cap).unwrap();
        (cap.take(r.exec).unwrap(), nodes)
    }

    #[test]
    fn crc32_known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b"hello"), 0x3610_a686);
    }

    #[test]
    fn append_and_replay_roundtrip() {
        let path = temp_path("roundtrip");
        let (retro, _) = fig1_retro();
        {
            let mut log = LogStore::open(&path).unwrap();
            log.append(&retro).unwrap();
            log.append(&retro).unwrap();
        }
        let replay = LogStore::replay(&path).unwrap();
        assert_eq!(replay.records.len(), 2);
        assert!(!replay.truncated_tail);
        assert_eq!(replay.records[0], retro);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn reopen_restores_records() {
        let path = temp_path("reopen");
        let (retro, _) = fig1_retro();
        {
            let mut log = LogStore::open(&path).unwrap();
            log.append(&retro).unwrap();
        }
        let log = LogStore::open(&path).unwrap();
        assert_eq!(log.records().len(), 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_tail_is_discarded() {
        let path = temp_path("trunc");
        let (retro, _) = fig1_retro();
        {
            let mut log = LogStore::open(&path).unwrap();
            log.append(&retro).unwrap();
            log.append(&retro).unwrap();
        }
        // Chop 10 bytes off the end (mid-frame crash).
        let len = std::fs::metadata(&path).unwrap().len();
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(len - 10).unwrap();
        drop(f);
        let replay = LogStore::replay(&path).unwrap();
        assert_eq!(replay.records.len(), 1, "only the intact frame survives");
        assert!(replay.truncated_tail);
        // Re-opening truncates and appends cleanly after the valid prefix.
        let mut log = LogStore::open(&path).unwrap();
        log.append(&retro).unwrap();
        let replay = LogStore::replay(&path).unwrap();
        assert_eq!(replay.records.len(), 2);
        assert!(!replay.truncated_tail);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_crc_detected() {
        let path = temp_path("crc");
        let (retro, _) = fig1_retro();
        {
            let mut log = LogStore::open(&path).unwrap();
            log.append(&retro).unwrap();
        }
        // Flip a payload byte.
        let mut data = std::fs::read(&path).unwrap();
        let mid = data.len() / 2;
        data[mid] ^= 0xff;
        std::fs::write(&path, &data).unwrap();
        let replay = LogStore::replay(&path).unwrap();
        assert_eq!(replay.records.len(), 0);
        assert!(replay.truncated_tail);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn compaction_keeps_latest_per_exec() {
        let path = temp_path("compact");
        let (retro, _) = fig1_retro();
        let mut newer = retro.clone();
        newer.workflow_name = "updated".into();
        let mut log = LogStore::open(&path).unwrap();
        log.append(&retro).unwrap();
        log.append(&newer).unwrap(); // same exec id
        let before = log.file_bytes();
        let dropped = log.compact().unwrap();
        assert_eq!(dropped, 1);
        assert_eq!(log.records().len(), 1);
        assert_eq!(log.records()[0].workflow_name, "updated");
        assert!(log.file_bytes() < before);
        // Still appendable and replayable after compaction.
        log.append(&retro).unwrap();
        drop(log);
        let replay = LogStore::replay(&path).unwrap();
        assert_eq!(replay.records.len(), 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn ephemeral_store_matches_file_backed_answers() {
        let path = temp_path("ephemeral");
        let (retro, nodes) = fig1_retro();
        let mut on_disk = LogStore::open(&path).unwrap();
        on_disk.ingest(&retro);
        let mut in_mem = LogStore::ephemeral();
        in_mem.ingest(&retro);
        assert!(in_mem.is_ephemeral() && !on_disk.is_ephemeral());
        let grid = retro.produced(nodes.load, "grid").unwrap().hash;
        assert_eq!(in_mem.generators(grid), on_disk.generators(grid));
        assert_eq!(in_mem.lineage_runs(grid), on_disk.lineage_runs(grid));
        assert_eq!(in_mem.runs_per_module(), on_disk.runs_per_module());
        assert_eq!(in_mem.run_count(), on_disk.run_count());
        assert_eq!(in_mem.file_bytes(), 0);
        assert!(in_mem.approx_bytes() > 0, "structural size estimate");
        // Compaction works in memory too.
        in_mem.ingest(&retro);
        assert_eq!(in_mem.compact().unwrap(), 1);
        assert_eq!(in_mem.records().len(), 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn ephemeral_mode_is_explicitly_diskless() {
        // Satellite coverage: ephemeral mode exercised directly rather
        // than through the benchmarks — no path, no file, no bytes, while
        // every mutation API still works.
        let (retro, _) = fig1_retro();
        let mut log = LogStore::ephemeral();
        assert!(log.is_ephemeral());
        assert_eq!(log.file_bytes(), 0);
        log.append(&retro).unwrap();
        log.ingest(&retro);
        assert_eq!(log.records().len(), 2);
        assert_eq!(log.file_bytes(), 0, "appends never touch disk");
        assert_eq!(
            log.stats().snapshot().bytes_deserialized,
            0,
            "nothing was ever serialized"
        );
        assert_eq!(log.compact().unwrap(), 1);
        assert_eq!(log.records().len(), 1);
        assert_eq!(log.file_bytes(), 0);
    }

    #[test]
    fn optimized_index_paths_agree_with_scans() {
        let (retro, nodes) = fig1_retro();
        let mut log = LogStore::ephemeral();
        log.ingest(&retro);
        let grid = retro.produced(nodes.load, "grid").unwrap().hash;
        let hist_file = retro.produced(nodes.save_hist, "file").unwrap().hash;
        let naive = (
            log.generators(grid),
            log.lineage_runs(hist_file),
            log.derived_artifacts(grid),
            log.runs_per_module(),
            log.run_count(),
        );
        log.set_optimized(true);
        assert!(log.optimized());
        let before = log.stats().snapshot();
        let fast = (
            log.generators(grid),
            log.lineage_runs(hist_file),
            log.derived_artifacts(grid),
            log.runs_per_module(),
            log.run_count(),
        );
        let d = log.stats().snapshot().delta(&before);
        assert_eq!(fast, naive, "offset-index answers must equal log scans");
        assert_eq!(d.scans, 0, "optimized paths never scan the log");
        assert!(d.keyed_lookups >= 5);
        // Compaction rebuilds the indexes: answers survive it.
        log.ingest(&retro);
        log.compact().unwrap();
        assert_eq!(log.lineage_runs(hist_file), naive.1);
        assert_eq!(log.runs_per_module(), naive.3);
        assert_eq!(log.run_count(), naive.4);
    }

    #[test]
    fn reopened_store_rebuilds_offset_indexes() {
        let path = temp_path("reindex");
        let (retro, nodes) = fig1_retro();
        {
            let mut log = LogStore::open(&path).unwrap();
            log.ingest(&retro);
        }
        let log = LogStore::open(&path).unwrap();
        log.set_optimized(true);
        let grid = retro.produced(nodes.load, "grid").unwrap().hash;
        assert_eq!(log.generators(grid), vec![(retro.exec, nodes.load)]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn stats_count_one_scan_per_query_pass() {
        let (retro, nodes) = fig1_retro();
        let mut log = LogStore::ephemeral();
        log.ingest(&retro);
        assert_eq!(log.stats().snapshot().total_reads(), 0, "ingest uncounted");
        let grid = retro.produced(nodes.load, "grid").unwrap().hash;
        let before = log.stats().snapshot();
        let _ = log.generators(grid);
        let d = log.stats().snapshot().delta(&before);
        assert_eq!(d.scans, 1);
        assert_eq!(d.record_reads, 1, "one record ingested, one read");
        let before = log.stats().snapshot();
        let _ = log.lineage_runs(grid);
        let d = log.stats().snapshot().delta(&before);
        assert!(d.scans >= 1, "at least one pass per frontier level");
    }

    #[test]
    fn log_store_answers_canned_queries_like_graph_store() {
        use crate::graphstore::GraphStore;
        let path = temp_path("queries");
        let (retro, nodes) = fig1_retro();
        let mut log = LogStore::open(&path).unwrap();
        log.ingest(&retro);
        let mut gs = GraphStore::new();
        gs.ingest(&retro);
        let iso_file = retro.produced(nodes.save_iso, "file").unwrap().hash;
        let grid = retro.produced(nodes.load, "grid").unwrap().hash;
        assert_eq!(log.lineage_runs(iso_file), gs.lineage_runs(iso_file));
        assert_eq!(log.generators(grid), gs.generators(grid));
        assert_eq!(log.derived_artifacts(grid), gs.derived_artifacts(grid));
        assert_eq!(log.runs_per_module(), gs.runs_per_module());
        assert_eq!(log.run_count(), 8);
        assert!(log.approx_bytes() > 0);
        std::fs::remove_file(&path).ok();
    }
}
