//! Provenance and scientific publications (§2.3): build the verifiable
//! companion to a paper — a research object holding, for every figure, the
//! complete recipe + execution log — then play the *reviewer*, who reloads
//! it from JSON and runs the repeatability review. Finally, tamper with a
//! result and watch the review catch it.
//!
//! "In 2008, SIGMOD has introduced the 'experimental repeatability
//! requirement' to help published papers achieve an impact and stand as
//! reliable reference-able works for future research."
//!
//! Run with: `cargo run --example reproducible_paper`

use provenance_workflows::prelude::*;
use provenance_workflows::provenance::publication::ResearchObject;
use provenance_workflows::provenance::ProspectiveProvenance;

fn capture(exec: &Executor, wf: &Workflow) -> RetrospectiveProvenance {
    let mut cap = ProvenanceCapture::new(CaptureLevel::Fine);
    let r = exec.run_observed(wf, &mut cap).expect("runs");
    cap.take(r.exec).expect("captured")
}

fn main() {
    // --- the authors assemble their research object ------------------------
    let exec = Executor::new(standard_registry());
    let mut paper = ResearchObject::new(
        "Provenance-verified atlas construction",
        &["S. Davidson", "J. Freire"],
    );
    paper.description =
        "Companion research object: every figure ships with its full provenance.".to_string();

    let (fig1, nodes) = wf_engine::synth::figure1_workflow(1);
    let retro1 = capture(&exec, &fig1);
    paper.annotations.annotate(
        Subject::Node(fig1.id, nodes.load),
        "dataset",
        "phantom head CT, public",
        "authors",
    );
    paper.publish(
        "figure-1",
        "Histogram and smoothed isosurface of the head CT volume",
        ProspectiveProvenance::of(&fig1),
        retro1,
    );

    let fig2 = wf_engine::synth::challenge_workflow(42, 4, 3);
    let retro2 = capture(&exec, &fig2);
    paper.publish(
        "figure-2",
        "fMRI atlas pipeline across four subjects",
        ProspectiveProvenance::of(&fig2),
        retro2,
    );

    let json = paper.to_json().expect("serializes");
    println!(
        "== research object: {} results, {} KiB of JSON ==",
        paper.len(),
        json.len() / 1024
    );

    // --- the reviewer downloads and verifies -------------------------------
    let reviewer_copy = ResearchObject::from_json(&json).expect("parses");
    let reviewer_exec = Executor::new(standard_registry());
    println!("== repeatability review ==");
    for v in reviewer_copy.verify(&reviewer_exec).expect("re-runs") {
        println!("  {}: {}", v.key, v.report);
        assert!(v.report.is_exact());
    }
    println!("verdict: REPEATABLE");

    // --- a doctored submission is caught ------------------------------------
    let mut doctored = reviewer_copy.clone();
    let retro = &mut doctored.results[0].bundle.retrospective;
    let last = retro.runs.last_mut().expect("runs recorded");
    last.outputs[0].1 ^= 0x1; // one flipped bit in a recorded artifact hash
    println!("== review of a doctored copy ==");
    for v in doctored.verify(&reviewer_exec).expect("re-runs") {
        println!("  {}: {}", v.key, v.report);
    }
    assert!(!doctored.is_repeatable(&reviewer_exec).expect("re-runs"));
    println!("verdict: REJECTED (claimed artifact not derivable from the recipe)");
}
