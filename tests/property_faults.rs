//! Property-based tests over fault-tolerant execution: deterministic
//! replay of seeded fault plans and checkpoint-resume equivalence, driven
//! by randomly shaped synthetic workflows.

use proptest::prelude::*;
use provenance_workflows::prelude::*;
use std::collections::BTreeMap;
use wf_engine::synth::{layered_dag, LayeredSpec};

fn faulty_executor(seed: u64, wf: &Workflow) -> Executor {
    Executor::new(standard_registry())
        .with_policy(
            ExecPolicy::new()
                .with_retry(RetryPolicy::attempts(3).backoff(20, 2.0, 200).jitter(0.5))
                .with_seed(seed),
        )
        .with_faults(FaultPlan::random(wf, seed))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn same_seed_replays_identical_run_records(
        depth in 1usize..4, width in 1usize..4, seed in 0u64..500
    ) {
        // The same fault seed must reproduce the same run record —
        // attempts, statuses, outputs — in the sequential driver, across
        // repeated runs, and in the parallel driver.
        let (wf, _) = layered_dag(
            1,
            LayeredSpec { depth, width, fan_in: 2, work: 1, seed },
        );
        let a = faulty_executor(seed, &wf).run(&wf).expect("first run");
        let b = faulty_executor(seed, &wf).run(&wf).expect("replay");
        prop_assert_eq!(a.fingerprint(), b.fingerprint(), "sequential replay");
        let c = faulty_executor(seed, &wf)
            .run_parallel(&wf, 4, &mut wf_engine::NullObserver)
            .expect("parallel run");
        prop_assert_eq!(a.fingerprint(), c.fingerprint(), "parallel replay");
    }

    #[test]
    fn transient_faults_always_recover_under_retries(
        depth in 1usize..4, width in 1usize..4, seed in 0u64..500
    ) {
        // `FaultPlan::random` schedules transient faults only (worst case:
        // failures on attempts 1 and 2), so a 3-attempt policy must always
        // drive the run to success, with retries recorded where faults hit.
        let (wf, layers) = layered_dag(
            1,
            LayeredSpec { depth, width, fan_in: 2, work: 1, seed },
        );
        let plan = FaultPlan::random(&wf, seed);
        // Delay faults are benign without a deadline; only nodes with a
        // scheduled failure or panic are forced into a retry (random plans
        // always start faulting at attempt 1).
        let failing_nodes = layers
            .iter()
            .flatten()
            .filter(|&&n| {
                (1..=3).any(|a| matches!(
                    plan.action(n, a),
                    Some(FaultAction::Fail { .. }) | Some(FaultAction::Panic { .. })
                ))
            })
            .count();
        let result = faulty_executor(seed, &wf).run(&wf).expect("runs");
        prop_assert_eq!(result.status, RunStatus::Succeeded);
        let retried = result
            .node_runs
            .values()
            .filter(|r| r.attempts > 1)
            .count();
        prop_assert_eq!(retried, failing_nodes, "every faulted node retried");
    }

    #[test]
    fn resume_after_failure_matches_clean_run(
        depth in 2usize..5, width in 1usize..4, seed in 0u64..500,
        victim_ix in 0usize..64
    ) {
        // Fail one arbitrary node permanently, resume from the checkpoint,
        // and require the final outputs to be exactly those of a fault-free
        // run — with only the failed/skipped nodes re-executed.
        let (wf, layers) = layered_dag(
            1,
            LayeredSpec { depth, width, fan_in: 2, work: 1, seed },
        );
        let nodes: Vec<NodeId> = layers.iter().flatten().copied().collect();
        let victim = nodes[victim_ix % nodes.len()];
        let failing = Executor::new(standard_registry())
            .with_faults(FaultPlan::new().fail_always(victim, "permanent"));
        let r1 = failing.run(&wf).expect("faulted run completes");
        prop_assert_eq!(r1.status, RunStatus::Failed);

        let healthy = Executor::new(standard_registry()).with_cache(4096);
        let mut obs = wf_engine::event::RecordingObserver::default();
        let r2 = healthy.resume(&wf, &r1, &mut obs).expect("resume");
        prop_assert_eq!(r2.status, RunStatus::Succeeded);
        prop_assert_eq!(r2.resumed_from, Some(r1.exec));

        // Only nodes that succeeded before may be cache hits, and every
        // originally-failed/skipped node was re-executed.
        for (node, run) in &r2.node_runs {
            let before = r1.node_runs[node].status;
            if before != RunStatus::Succeeded {
                prop_assert!(!run.from_cache, "{node} replayed a bad result");
            }
        }

        // Final outputs equal a clean run's.
        let clean = Executor::new(standard_registry()).run(&wf).expect("clean");
        let hashes = |r: &wf_engine::ExecutionResult| -> BTreeMap<_, _> {
            r.values
                .iter()
                .map(|(k, v)| (k.clone(), v.content_hash()))
                .collect()
        };
        prop_assert_eq!(hashes(&r2), hashes(&clean));
    }
}
