//! E15: what does watching a run cost?
//!
//! Telemetry is only honest if observing the system barely perturbs it.
//! This experiment runs the same workloads unobserved (null observer),
//! with full telemetry (spans + metrics), and with telemetry *and*
//! provenance capture fanned out on one stream, and reports the relative
//! overhead. Results also land in `BENCH_telemetry.json` in a stable
//! machine-readable shape.

use prov_core::capture::{CaptureLevel, ProvenanceCapture};
use prov_telemetry::Telemetry;
use wf_engine::synth::{layered_dag, LayeredSpec};
use wf_engine::{standard_registry, ExecObserver, Executor, FanoutObserver, NullObserver};
use wf_model::{NodeId, ParamValue, Workflow};

/// One workload × observer-configuration measurement.
#[derive(Debug)]
pub struct TelemetryRow {
    /// Workload description.
    pub workload: String,
    /// Executor threads (1 = sequential driver).
    pub threads: usize,
    /// Workflow runs per repetition.
    pub runs_per_rep: usize,
    /// Median duration with a null observer (µs).
    pub unobserved_us: f64,
    /// Median duration with spans + metrics collected (µs).
    pub observed_us: f64,
    /// Median duration with telemetry *and* provenance capture fanned
    /// out on the same stream (µs).
    pub with_capture_us: f64,
    /// Spans collected per repetition when observed.
    pub spans: usize,
}

impl TelemetryRow {
    /// Telemetry overhead relative to unobserved, in percent.
    pub fn observed_overhead_pct(&self) -> f64 {
        (self.observed_us / self.unobserved_us - 1.0) * 100.0
    }

    /// Telemetry + capture overhead relative to unobserved, in percent.
    pub fn capture_overhead_pct(&self) -> f64 {
        (self.with_capture_us / self.unobserved_us - 1.0) * 100.0
    }
}

/// Median wall times of three variants measured *interleaved* (one
/// sample of each per round, after a warm-up round), so slow machine
/// drift — thermal throttling, background load — hits all variants
/// equally instead of biasing whichever ran last.
fn medians3(
    reps: usize,
    mut a: impl FnMut(),
    mut b: impl FnMut(),
    mut c: impl FnMut(),
) -> (f64, f64, f64) {
    let mut sa = Vec::with_capacity(reps);
    let mut sb = Vec::with_capacity(reps);
    let mut sc = Vec::with_capacity(reps);
    a();
    b();
    c();
    let sample = |f: &mut dyn FnMut()| {
        let t = std::time::Instant::now();
        f();
        t.elapsed().as_secs_f64() * 1e6
    };
    for _ in 0..reps {
        sa.push(sample(&mut a));
        sb.push(sample(&mut b));
        sc.push(sample(&mut c));
    }
    let med = |s: &mut Vec<f64>| {
        s.sort_by(|x, y| x.partial_cmp(y).unwrap());
        s[s.len() / 2]
    };
    (med(&mut sa), med(&mut sb), med(&mut sc))
}

/// The parameter-sweep pipeline of E10 (load → smooth → isosurface) and
/// the node whose `isovalue` the sweep varies.
fn sweep_pipeline() -> (Workflow, NodeId) {
    let mut b = wf_model::WorkflowBuilder::new(1, "telemetry-sweep");
    let load = b.add("LoadVolume");
    b.param(load, "nx", 16i64);
    b.param(load, "ny", 16i64);
    b.param(load, "nz", 16i64);
    let smooth = b.add("SmoothGrid");
    b.param(smooth, "iterations", 3i64);
    let iso = b.add("Isosurface");
    b.connect(load, "grid", smooth, "data")
        .connect(smooth, "smoothed", iso, "data");
    (b.build(), iso)
}

/// Run the sweep workload under `observer`: `configs` isovalues, one
/// sequential run each (the same shape `run_sweep` produces, but with an
/// observer attached). Returns the number of workflow runs.
fn drive_sweep(
    exec: &Executor,
    wf: &Workflow,
    iso: NodeId,
    configs: usize,
    observer: &mut dyn ExecObserver,
) -> usize {
    for i in 0..configs {
        let mut config = wf.clone();
        let v: ParamValue = (0.1 + 0.8 * i as f64 / configs as f64).into();
        config.set_param(iso, "isovalue", v).expect("param exists");
        exec.run_observed(&config, observer).expect("sweep runs");
    }
    configs
}

fn run_dag(exec: &Executor, wf: &Workflow, threads: usize, observer: &mut dyn ExecObserver) {
    if threads > 1 {
        exec.run_parallel(wf, threads, observer).expect("runs");
    } else {
        exec.run_observed(wf, observer).expect("runs");
    }
}

/// Run E15: the parameter-sweep pipeline (sequential) and a layered DAG
/// under both drivers, each unobserved / with telemetry / with telemetry
/// + capture.
pub fn experiment_telemetry(reps: usize) -> Vec<TelemetryRow> {
    let mut rows = Vec::new();

    // Workload A: the E10 parameter sweep, 16 configurations.
    {
        let (wf, iso) = sweep_pipeline();
        let configs = 16;
        let exec = Executor::new(standard_registry());
        let (unobserved_us, observed_us, with_capture_us) = medians3(
            reps,
            || {
                drive_sweep(&exec, &wf, iso, configs, &mut NullObserver);
            },
            || {
                let mut tel = Telemetry::new();
                drive_sweep(&exec, &wf, iso, configs, &mut tel);
                tel.take_trace();
            },
            || {
                let mut tel = Telemetry::new();
                let mut cap = ProvenanceCapture::new(CaptureLevel::Coarse);
                let mut fan = FanoutObserver::new().with(&mut tel).with(&mut cap);
                drive_sweep(&exec, &wf, iso, configs, &mut fan);
                cap.finish_all();
            },
        );
        let mut tel = Telemetry::new();
        drive_sweep(&exec, &wf, iso, configs, &mut tel);
        rows.push(TelemetryRow {
            workload: format!("sweep x{configs} (load-smooth-iso)"),
            threads: 1,
            runs_per_rep: configs,
            unobserved_us,
            observed_us,
            with_capture_us,
            spans: tel.take_trace().len(),
        });
    }

    // Workload B: a layered DAG under the sequential and parallel drivers.
    for threads in [1usize, 4] {
        let (wf, _) = layered_dag(
            1,
            LayeredSpec {
                depth: 4,
                width: 6,
                fan_in: 2,
                work: 5000,
                seed: 42,
            },
        );
        let exec = Executor::new(standard_registry());
        let (unobserved_us, observed_us, with_capture_us) = medians3(
            reps,
            || run_dag(&exec, &wf, threads, &mut NullObserver),
            || {
                let mut tel = Telemetry::new();
                run_dag(&exec, &wf, threads, &mut tel);
                tel.take_trace();
            },
            || {
                let mut tel = Telemetry::new();
                let mut cap = ProvenanceCapture::new(CaptureLevel::Coarse);
                let mut fan = FanoutObserver::new().with(&mut tel).with(&mut cap);
                run_dag(&exec, &wf, threads, &mut fan);
                cap.finish_all();
            },
        );
        let mut tel = Telemetry::new();
        run_dag(&exec, &wf, threads, &mut tel);
        rows.push(TelemetryRow {
            workload: "layered 4x6 work=5000".into(),
            threads,
            runs_per_rep: 1,
            unobserved_us,
            observed_us,
            with_capture_us,
            spans: tel.take_trace().len(),
        });
    }

    rows
}

/// Render E15 rows as the stable machine-readable `BENCH_telemetry.json`
/// document (hand-rendered: no JSON library on this path).
pub fn telemetry_json(rows: &[TelemetryRow]) -> String {
    let mut out = String::from("{\n  \"experiment\": \"E15 telemetry overhead\",\n  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"workload\": \"{}\", \"threads\": {}, \"runs_per_rep\": {}, \
             \"unobserved_us\": {:.1}, \"observed_us\": {:.1}, \"with_capture_us\": {:.1}, \
             \"spans\": {}, \"observed_overhead_pct\": {:.2}, \"capture_overhead_pct\": {:.2}}}{}\n",
            r.workload,
            r.threads,
            r.runs_per_rep,
            r.unobserved_us,
            r.observed_us,
            r.with_capture_us,
            r.spans,
            r.observed_overhead_pct(),
            r.capture_overhead_pct(),
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn experiment_produces_three_workloads_with_spans() {
        let rows = experiment_telemetry(1);
        assert_eq!(rows.len(), 3);
        assert!(rows[0].workload.starts_with("sweep"));
        // The sweep collects one run span + three module spans + three
        // attempt spans per configuration.
        assert_eq!(rows[0].spans, 16 * 7);
        assert_eq!(rows[1].threads, 1);
        assert_eq!(rows[2].threads, 4);
        for r in &rows {
            assert!(r.unobserved_us > 0.0);
            assert!(r.observed_us > 0.0);
            assert!(r.with_capture_us > 0.0);
            assert!(r.spans > 0);
        }
    }

    #[test]
    fn json_report_is_parseable_and_complete() {
        let rows = experiment_telemetry(1);
        let doc = telemetry_json(&rows);
        let parsed = prov_telemetry::parse_json(&doc).expect("valid JSON");
        let arr = parsed.get("rows").and_then(|r| r.as_array()).unwrap();
        assert_eq!(arr.len(), rows.len());
        for row in arr {
            assert!(row.get("observed_overhead_pct").is_some());
            assert!(row.get("unobserved_us").is_some());
        }
    }
}
