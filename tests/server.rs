//! End-to-end tests of the concurrent provenance server: HTTP smoke test
//! (start, ingest, query, shutdown) plus concurrent multi-tenant stress.
//!
//! Thread counts scale with the `PROVTEST_THREADS` environment variable
//! (default 8) so CI can dial contention up or down.

use prov_core::capture::{CaptureLevel, ProvenanceCapture};
use prov_core::model::RetrospectiveProvenance;
use prov_server::{run_load, HttpClient, HttpServer, LoadConfig, ProvServer, ServerConfig};
use prov_store::ProvenanceStore;
use std::sync::Arc;
use wf_engine::synth::figure1_workflow;
use wf_engine::{standard_registry, ExecId, Executor};

fn test_threads() -> usize {
    std::env::var("PROVTEST_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(8)
        .clamp(2, 64)
}

fn retro(seed: u64) -> RetrospectiveProvenance {
    let (wf, _) = figure1_workflow(seed);
    let exec = Executor::new(standard_registry());
    let mut cap = ProvenanceCapture::new(CaptureLevel::Fine);
    let r = exec.run_observed(&wf, &mut cap).unwrap();
    let mut doc = cap.take(r.exec).unwrap();
    doc.exec = ExecId(seed);
    doc
}

#[test]
fn http_smoke_start_ingest_query_shutdown() {
    let server = Arc::new(ProvServer::new(ServerConfig::default()));
    let http = HttpServer::bind(server, "127.0.0.1:0", 4).expect("bind");
    let client = HttpClient::new(http.addr(), "smoke");

    // Start: the server answers health checks.
    assert_eq!(client.healthz().expect("healthz").status, 200);

    // Ingest over the wire codec (no serde involved).
    let reply = client.ingest("lab", &retro(1)).expect("ingest");
    assert_eq!(reply.status, 200, "{}", reply.body);
    assert!(reply.body.contains("\"generation\":1"), "{}", reply.body);

    // Query what was just ingested.
    let reply = client.query("lab", "count runs").expect("query");
    assert_eq!(reply.status, 200, "{}", reply.body);
    assert!(reply.body.contains("\"value\":8"), "{}", reply.body);

    // Stats agree across the engine and the shared store.
    let reply = client.stats("lab").expect("stats");
    assert!(reply.body.contains("\"runs\":8"), "{}", reply.body);
    assert!(reply.body.contains("\"store_runs\":8"), "{}", reply.body);

    // Shutdown: the endpoint drains and the listener goes away.
    assert_eq!(client.shutdown().expect("shutdown").status, 200);
    http.shutdown();
}

#[test]
fn concurrent_tenants_never_lose_writes_over_http() {
    let threads = test_threads();
    let server = Arc::new(ProvServer::new(ServerConfig::default()));
    let http = HttpServer::bind(server, "127.0.0.1:0", threads).expect("bind");
    let addr = http.addr();
    let base = retro(1);

    std::thread::scope(|scope| {
        for t in 0..threads {
            let base = base.clone();
            scope.spawn(move || {
                let client = HttpClient::new(addr, &format!("tenant-{t}"));
                // Two namespaces, interleaved ingests and queries.
                for i in 0..4u64 {
                    let ns = if (t + i as usize) % 2 == 0 {
                        "physics"
                    } else {
                        "biology"
                    };
                    let mut doc = base.clone();
                    doc.exec = ExecId(10_000 + (t as u64) * 100 + i);
                    let reply = client.ingest(ns, &doc).expect("ingest");
                    assert_eq!(reply.status, 200, "{}", reply.body);
                    let reply = client.query(ns, "count executions").expect("query");
                    assert_eq!(reply.status, 200, "{}", reply.body);
                }
            });
        }
    });

    let check = HttpClient::new(addr, "checker");
    let mut total = 0usize;
    for ns in ["physics", "biology"] {
        let reply = check.stats(ns).expect("stats");
        let body = reply.body;
        // Pull "executions":N out of the JSON body.
        let execs: usize = body
            .split("\"executions\":")
            .nth(1)
            .and_then(|rest| rest.split(&[',', '}'][..]).next())
            .and_then(|n| n.trim().parse().ok())
            .unwrap_or_else(|| panic!("no executions field in {body}"));
        let gen: usize = body
            .split("\"generation\":")
            .nth(1)
            .and_then(|rest| rest.split(&[',', '}'][..]).next())
            .and_then(|n| n.trim().parse().ok())
            .unwrap_or_else(|| panic!("no generation field in {body}"));
        assert_eq!(execs, gen, "every ack'd ingest bumped the generation");
        total += execs;
    }
    assert_eq!(total, threads * 4, "no lost writes across tenants");
    http.shutdown();
}

#[test]
fn in_process_load_generator_verifies_consistency() {
    let server = Arc::new(ProvServer::new(ServerConfig::default()));
    let config = LoadConfig {
        clients: test_threads(),
        requests_per_client: 50,
        namespaces: vec!["physics".into(), "biology".into()],
        ingest_percent: 25,
        traced: false,
    };
    let report = run_load(&server, &config);
    assert!(report.consistent, "violations: {:?}", report.violations);
    assert_eq!(report.errors, 0, "no non-backpressure errors");
    assert!(report.ingests_acked > 0 && report.queries_answered > 0);
}

#[test]
fn per_tenant_rate_limits_isolate_noisy_neighbors() {
    let server = Arc::new(ProvServer::new(ServerConfig {
        tenant_burst: 10,
        tenant_rate_per_sec: 0.000_001,
        ..ServerConfig::default()
    }));
    let noisy = server.session("noisy");
    let quiet = server.session("quiet");
    noisy.create_namespace("shared").unwrap();
    let mut throttled = 0;
    for _ in 0..50 {
        if let Err(e) = noisy.query("shared", "count runs") {
            assert_eq!(e.status_code(), 429);
            throttled += 1;
        }
    }
    assert!(throttled > 0, "the noisy tenant must hit its bucket");
    // The quiet tenant's bucket is untouched.
    quiet
        .query("shared", "count runs")
        .expect("quiet tenant is isolated");
}

#[test]
fn analyze_accounting_stays_exact_under_concurrent_queries() {
    // Relaxed atomic counters lose nothing: with N threads running the
    // same read-only query K times each, the global store-stats delta is
    // exactly N*K times the single-threaded cost of that query.
    let server = Arc::new(ProvServer::new(ServerConfig::default()));
    let session = server.session("bench");
    let mut hashes: Vec<u64> = Vec::new();
    for seed in 1..=4 {
        let doc = retro(seed);
        hashes.extend(doc.artifacts.keys().take(2).copied());
        session.ingest("lab", &doc).unwrap();
    }
    let ns = server.namespace("lab").expect("namespace exists");
    let store = ns.store();
    let threads = test_threads();
    let per_thread = 25u64;

    assert!(!hashes.is_empty());
    let sweep = |_: ()| {
        for h in &hashes {
            let guard = store.read();
            let _ = guard.generators(*h);
            let _ = guard.lineage_runs(*h);
            let _ = guard.derived_artifacts(*h);
        }
    };
    // Single-threaded baseline for one lineage sweep.
    let before = store.stats().snapshot();
    sweep(());
    let single = store.stats().snapshot().delta(&before);
    assert!(single.total_reads() > 0, "the sweep must read something");

    // Concurrent: N threads, K sweeps each.
    let before = store.stats().snapshot();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                for _ in 0..per_thread {
                    sweep(());
                }
            });
        }
    });
    let concurrent = store.stats().snapshot().delta(&before);
    let factor = threads as u64 * per_thread;
    assert_eq!(
        concurrent.total_reads(),
        single.total_reads() * factor,
        "relaxed counters must not lose a single increment"
    );
    assert_eq!(concurrent.keyed_lookups, single.keyed_lookups * factor);
    assert_eq!(concurrent.scans, single.scans * factor);
}
