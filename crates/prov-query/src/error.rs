//! PQL errors.

use std::fmt;

/// Errors raised while lexing, parsing, or evaluating PQL.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PqlError {
    /// A character the lexer cannot start a token with.
    Lex {
        /// Byte offset of the offending character.
        at: usize,
        /// The character.
        ch: char,
    },
    /// The parser expected something else.
    Parse {
        /// What was expected.
        expected: String,
        /// What was found.
        found: String,
    },
    /// The query referenced something the engine cannot resolve.
    Eval(String),
}

impl fmt::Display for PqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PqlError::Lex { at, ch } => write!(f, "unexpected character {ch:?} at byte {at}"),
            PqlError::Parse { expected, found } => {
                write!(f, "expected {expected}, found {found}")
            }
            PqlError::Eval(m) => write!(f, "evaluation error: {m}"),
        }
    }
}

impl std::error::Error for PqlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display() {
        let e = PqlError::Parse {
            expected: "'of'".into(),
            found: "'from'".into(),
        };
        assert_eq!(e.to_string(), "expected 'of', found 'from'");
    }
}
