//! Typed errors for the workflow model.

use crate::ident::{ConnId, NodeId};
use std::fmt;

/// Errors raised while constructing or manipulating workflow specifications.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelError {
    /// A node identifier was not found in the workflow.
    UnknownNode(NodeId),
    /// A connection identifier was not found in the workflow.
    UnknownConnection(ConnId),
    /// A module kind (name, version) is not registered in the catalog.
    UnknownModuleKind {
        /// Module kind name.
        name: String,
        /// Requested version.
        version: u32,
    },
    /// A port name does not exist on the referenced module kind.
    UnknownPort {
        /// The node whose module kind was consulted.
        node: NodeId,
        /// The offending port name.
        port: String,
        /// Whether an input port was expected (otherwise output).
        input: bool,
    },
    /// A parameter name does not exist on the referenced module kind.
    UnknownParam {
        /// The node whose module kind was consulted.
        node: NodeId,
        /// The offending parameter name.
        param: String,
    },
    /// An edit would create a duplicate connection into an input port.
    PortOccupied {
        /// Target node.
        node: NodeId,
        /// Target input port already fed by another connection.
        port: String,
    },
    /// An edit would introduce a cycle into the DAG.
    WouldCycle {
        /// Source node of the offending connection.
        from: NodeId,
        /// Target node of the offending connection.
        to: NodeId,
    },
    /// A composite module referenced an inner entity that does not exist.
    BadCompositeMapping(String),
    /// Serialization / deserialization failure.
    Serde(String),
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::UnknownNode(id) => write!(f, "unknown node {id}"),
            ModelError::UnknownConnection(id) => write!(f, "unknown connection {id}"),
            ModelError::UnknownModuleKind { name, version } => {
                write!(f, "unknown module kind {name}@{version}")
            }
            ModelError::UnknownPort { node, port, input } => write!(
                f,
                "unknown {} port '{port}' on node {node}",
                if *input { "input" } else { "output" }
            ),
            ModelError::UnknownParam { node, param } => {
                write!(f, "unknown parameter '{param}' on node {node}")
            }
            ModelError::PortOccupied { node, port } => {
                write!(f, "input port '{port}' on node {node} is already connected")
            }
            ModelError::WouldCycle { from, to } => {
                write!(f, "connecting {from} -> {to} would create a cycle")
            }
            ModelError::BadCompositeMapping(msg) => {
                write!(f, "bad composite module mapping: {msg}")
            }
            ModelError::Serde(msg) => write!(f, "serialization error: {msg}"),
        }
    }
}

impl std::error::Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render_human_readable_messages() {
        let e = ModelError::UnknownPort {
            node: NodeId(4),
            port: "values".into(),
            input: true,
        };
        assert_eq!(e.to_string(), "unknown input port 'values' on node n4");
        let e = ModelError::WouldCycle {
            from: NodeId(1),
            to: NodeId(2),
        };
        assert!(e.to_string().contains("cycle"));
    }
}
