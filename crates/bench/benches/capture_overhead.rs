//! E3 bench: engine runtime under each capture level, across module-work
//! scales. The interesting number is the *gap* between `off` and `fine` as
//! per-module work shrinks.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use prov_core::capture::{CaptureLevel, ProvenanceCapture};
use wf_engine::synth::busy_chain;
use wf_engine::{standard_registry, Executor};

fn bench_capture(c: &mut Criterion) {
    let exec = Executor::new(standard_registry());
    for work in [100i64, 10_000] {
        let (wf, _) = busy_chain(1, 16, work);
        let mut group = c.benchmark_group(format!("capture_overhead/work={work}"));
        group.bench_with_input(BenchmarkId::from_parameter("off"), &wf, |b, wf| {
            b.iter(|| exec.run(wf).expect("runs"))
        });
        for (name, level) in [
            ("coarse", CaptureLevel::Coarse),
            ("fine", CaptureLevel::Fine),
        ] {
            group.bench_with_input(BenchmarkId::from_parameter(name), &wf, |b, wf| {
                b.iter(|| {
                    let mut cap = ProvenanceCapture::new(level);
                    exec.run_observed(wf, &mut cap).expect("runs");
                    cap.finish_all()
                })
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_capture);
criterion_main!(benches);
