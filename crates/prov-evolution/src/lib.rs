//! # prov-evolution — workflow evolution provenance
//!
//! The VisTrails-style "change-based" provenance the tutorial presents in
//! §2.3: every edit to a workflow is an [`action::Action`]; the history of
//! a workflow is a [`tree::VersionTree`] whose nodes are versions and whose
//! edges are actions. From this one structure fall out:
//!
//! * materialization of any version by action replay (with snapshot
//!   caching — experiment E8 measures the trade-off),
//! * structural [`diff`]s between any two versions,
//! * **refinement by analogy** ([`analogy`]) — Figure 2 of the paper: take
//!   the difference between two versions and graft it onto a *different*
//!   but structurally similar workflow via approximate graph matching,
//! * deterministic [`scenario`] generators used by tests and benchmarks,
//! * safe module [`upgrade`] planning, committed as ordinary actions.

pub mod action;
pub mod analogy;
pub mod diff;
pub mod scenario;
pub mod tree;
pub mod upgrade;

pub use action::Action;
pub use analogy::{apply_by_analogy, AnalogyResult, NodeMatching};
pub use diff::{diff_workflows, WorkflowDiff};
pub use tree::{VersionId, VersionTree};
pub use upgrade::{plan_upgrades, UpgradePlan};
