//! Offline stub for `crossbeam` (scoped threads only).
//!
//! Unlike the real crate, "spawned" closures run eagerly on the calling
//! thread, one after another — no real parallelism, but the same results
//! and the same panic-propagation contract (`scope` returns `Err` with the
//! payload of the first panicking unjoined closure), which is what the
//! engine's parallel driver relies on. Good enough to build and run the
//! test suite without network access.

pub mod thread {
    use std::cell::RefCell;
    use std::marker::PhantomData;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// Sequential stand-in for `crossbeam::thread::Scope`.
    pub struct Scope<'env> {
        panic: RefCell<Option<Box<dyn std::any::Any + Send + 'static>>>,
        _marker: PhantomData<&'env mut &'env ()>,
    }

    /// Handle to an already-finished "spawned" closure.
    pub struct ScopedJoinHandle<'scope, T> {
        result: std::thread::Result<T>,
        _marker: PhantomData<&'scope ()>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// The closure already ran at spawn time; return its outcome.
        pub fn join(self) -> std::thread::Result<T> {
            self.result
        }
    }

    impl<'env> Scope<'env> {
        /// Run `f` immediately on the calling thread.
        pub fn spawn<'scope, F, T>(&'scope self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'env>) -> T + Send + 'env,
            T: Send + 'env,
        {
            let result = catch_unwind(AssertUnwindSafe(|| f(self))).map_err(|payload| {
                // The payload goes to `scope()`'s Err (the common path:
                // handles are rarely joined); the handle gets a marker.
                let mut slot = self.panic.borrow_mut();
                if slot.is_none() {
                    *slot = Some(payload);
                }
                Box::new("panic payload taken by scope") as Box<dyn std::any::Any + Send>
            });
            ScopedJoinHandle {
                result,
                _marker: PhantomData,
            }
        }
    }

    /// Run `f` with a scope whose spawns execute sequentially.
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: FnOnce(&Scope<'env>) -> R,
    {
        let s = Scope {
            panic: RefCell::new(None),
            _marker: PhantomData,
        };
        let r = catch_unwind(AssertUnwindSafe(|| f(&s)))?;
        match s.panic.into_inner() {
            Some(payload) => Err(payload),
            None => Ok(r),
        }
    }
}
