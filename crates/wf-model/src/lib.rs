//! # wf-model — workflow specification model
//!
//! The structural substrate of the provenance platform: scientific workflows
//! "can be viewed as graphs, where nodes represent processes (or modules) and
//! edges capture the flow of data between the processes" (Davidson & Freire,
//! SIGMOD'08, §2.1).
//!
//! This crate defines:
//!
//! * a small structural [type system](types) for data flowing on edges,
//! * [module kinds](module) — typed, versioned module definitions,
//! * [workflows](workflow) — DAGs of module instances wired by connections,
//! * [validation](mod@validate) — cycle detection, port/type checking,
//! * [composite modules](subworkflow) — sub-workflows packaged as modules,
//! * generic [digraph utilities](mod@graph) shared by the rest of the platform,
//! * an ergonomic [`builder`] used throughout examples and tests.
//!
//! A serialized [`Workflow`] **is** prospective provenance at rest: the
//! "recipe" one follows to derive a class of data products.

pub mod builder;
pub mod catalog;
pub mod error;
pub mod graph;
pub mod ident;
pub mod module;
pub mod subworkflow;
pub mod types;
pub mod validate;
pub mod workflow;

pub use builder::WorkflowBuilder;
pub use catalog::ModuleCatalog;
pub use error::ModelError;
pub use ident::{ConnId, NodeId, WorkflowId};
pub use module::{ModuleKind, ParamSpec, ParamValue, PortSpec};
pub use subworkflow::CompositeModule;
pub use types::DataType;
pub use validate::{validate, ValidationReport};
pub use workflow::{Connection, Endpoint, Node, Workflow};
