#!/usr/bin/env bash
# The full CI gate, runnable locally: build, test, lint, format.
# Usage: scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test"
cargo test -q --workspace

echo "==> telemetry smoke: trace a demo run, validate the Chrome trace"
SMOKE_DIR="$(mktemp -d)"
trap 'rm -rf "$SMOKE_DIR"' EXIT
./target/release/provctl demo fig1 "$SMOKE_DIR/wf.json"
./target/release/provctl trace "$SMOKE_DIR/wf.json" "$SMOKE_DIR/trace.json" \
    "spans=$SMOKE_DIR/spans.jsonl" threads=4
./target/release/provctl tracecheck "$SMOKE_DIR/trace.json"
./target/release/provctl metrics "$SMOKE_DIR/wf.json" | grep -q "wf_runs_started_total 1"

echo "==> query-observability smoke: EXPLAIN/ANALYZE + slow-query log on the challenge workload"
./target/release/provctl demo challenge "$SMOKE_DIR/challenge.json"
./target/release/provctl run "$SMOKE_DIR/challenge.json" "$SMOKE_DIR/challenge-prov.json"
DIGEST="$(./target/release/provctl query "$SMOKE_DIR/challenge-prov.json" "list artifacts" | awk 'NR==1{print $2}')"
./target/release/provctl explain "lineage of artifact $DIGEST"
./target/release/provctl explain "$SMOKE_DIR/challenge-prov.json" \
    "lineage of artifact $DIGEST" analyze | grep -q "total:"
./target/release/provctl explain "$SMOKE_DIR/challenge-prov.json" \
    "lineage of artifact $DIGEST" backend=graph | grep -q "backend: graph"
./target/release/provctl slowlog "$SMOKE_DIR/challenge-prov.json" threshold_us=0 \
    "out=$SMOKE_DIR/slow-queries.jsonl" | grep -q "slow-query log:"
test -s "$SMOKE_DIR/slow-queries.jsonl"

echo "==> optimizer smoke: EXPLAIN --optimized + differential harness"
./target/release/provctl explain "count runs" --optimized | grep -q "MetaCount"
./target/release/provctl explain "$SMOKE_DIR/challenge-prov.json" \
    "lineage of artifact $DIGEST" analyze --optimized | grep -q "total:"
./target/release/provctl explain "$SMOKE_DIR/challenge-prov.json" \
    "lineage of artifact $DIGEST" backend=graph --optimized | grep -q "(indexed)"
# PROPTEST_CASES bounds both the proptest properties and the differential
# query harness; keep the CI smoke cheap, go deeper locally by raising it.
PROPTEST_CASES="${PROPTEST_CASES:-64}" cargo test -q --test differential_query

echo "==> server smoke: serve over HTTP, round-trip create/ingest/query, shutdown"
./target/release/provctl serve 127.0.0.1:0 workers=4 > "$SMOKE_DIR/serve.out" &
SERVE_PID=$!
for _ in $(seq 1 50); do
    ADDR="$(sed -n 's/^prov-server listening on //p' "$SMOKE_DIR/serve.out")"
    [ -n "$ADDR" ] && break
    sleep 0.1
done
test -n "$ADDR"
./target/release/provctl client "$ADDR" health | grep -q '"ready":true'
./target/release/provctl client "$ADDR" create lab tenant=ci
./target/release/provctl client "$ADDR" ingest lab "$SMOKE_DIR/challenge-prov.json" tenant=ci
./target/release/provctl client "$ADDR" query lab "count runs" tenant=ci | grep -q '"type":"count"'
./target/release/provctl client "$ADDR" stats lab | grep -q '"store_runs"'
./target/release/provctl client "$ADDR" metrics | grep -q "prov_server_requests_total"
./target/release/provctl client "$ADDR" shutdown
wait "$SERVE_PID"

echo "==> crash-recovery smoke: kill -9 a durable server, restart, audit zero acked loss"
DATA_DIR="$SMOKE_DIR/wal-data"
./target/release/provctl run "$SMOKE_DIR/wf.json" "$SMOKE_DIR/fig1-prov.json"
./target/release/provctl serve 127.0.0.1:0 workers=4 "data_dir=$DATA_DIR" fsync=batch \
    > "$SMOKE_DIR/serve-durable.out" &
SERVE_PID=$!
for _ in $(seq 1 50); do
    ADDR="$(sed -n 's/^prov-server listening on //p' "$SMOKE_DIR/serve-durable.out")"
    [ -n "$ADDR" ] && break
    sleep 0.1
done
test -n "$ADDR"
# Two acked ingests with distinct executions, then SIGKILL mid-run: no
# drain, no flush. Every ack must survive the restart.
./target/release/provctl client "$ADDR" ingest lab "$SMOKE_DIR/challenge-prov.json" tenant=ci
./target/release/provctl client "$ADDR" ingest lab "$SMOKE_DIR/fig1-prov.json" tenant=ci \
    retries=3 request_id=ci-smoke
kill -9 "$SERVE_PID"
wait "$SERVE_PID" || true
./target/release/provctl recover "$DATA_DIR" | grep -q "namespace 'lab'"
./target/release/provctl serve 127.0.0.1:0 workers=4 "data_dir=$DATA_DIR" fsync=batch \
    > "$SMOKE_DIR/serve-recovered.out" &
SERVE_PID=$!
for _ in $(seq 1 50); do
    ADDR="$(sed -n 's/^prov-server listening on //p' "$SMOKE_DIR/serve-recovered.out")"
    [ -n "$ADDR" ] && break
    sleep 0.1
done
test -n "$ADDR"
grep -q "recovered namespace 'lab'" "$SMOKE_DIR/serve-recovered.out"
./target/release/provctl client "$ADDR" stats lab | grep -q '"executions":2'
./target/release/provctl client "$ADDR" query lab "count executions" tenant=ci \
    | grep -q '"value":2'
./target/release/provctl client "$ADDR" shutdown
wait "$SERVE_PID"
cargo test -q --test crash_recovery
PROPTEST_CASES="${PROPTEST_CASES:-64}" cargo test -q --test property_wal

echo "==> server stress: concurrent multi-tenant tests under PROVTEST_THREADS"
PROVTEST_THREADS="${PROVTEST_THREADS:-8}" cargo test -q --test server
PROVTEST_THREADS="${PROVTEST_THREADS:-8}" cargo test -q --test differential_query \
    concurrent_ingest_and_query_loses_no_writes_on_any_backend

echo "==> E18: concurrent server load benchmark"
cargo run --release -q -p bench --bin report server
test -s BENCH_server.json
grep -q '"consistent": true' BENCH_server.json

echo "==> E19: durable ingest benchmark (WAL fsync policies)"
cargo run --release -q -p bench --bin report durability
test -s BENCH_durability.json
grep -q '"consistent":true' BENCH_durability.json
# Durability must not cost more than half the in-memory ingest throughput
# under the default batch fsync policy.
awk -F': ' '/batch_vs_memory_ratio/ { exit !($2 + 0 >= 0.5) }' BENCH_durability.json

echo "==> observability smoke: traced round-trip with a forced retry, metrics, slowlog"
# shed_first=1 forces the first API request into a deterministic 503, so
# the traced, retried ingest exercises the whole plane: two linked attempt
# spans under one trace id, per-tenant metric series, a slow-query log.
./target/release/provctl serve 127.0.0.1:0 workers=4 shed_first=1 slowlog_threshold_us=0 \
    > "$SMOKE_DIR/serve-obs.out" &
SERVE_PID=$!
for _ in $(seq 1 50); do
    ADDR="$(sed -n 's/^prov-server listening on //p' "$SMOKE_DIR/serve-obs.out")"
    [ -n "$ADDR" ] && break
    sleep 0.1
done
test -n "$ADDR"
./target/release/provctl client "$ADDR" ingest lab "$SMOKE_DIR/challenge-prov.json" tenant=ci \
    retries=3 request_id=obs-smoke traced seed=7 2> "$SMOKE_DIR/obs-ingest.err"
TRACE_ID="$(sed -n 's/^trace_id: //p' "$SMOKE_DIR/obs-ingest.err")"
test -n "$TRACE_ID"
./target/release/provctl client "$ADDR" query lab "count runs" tenant=ci traced seed=9 \
    2>/dev/null | grep -q '"type":"count"'
./target/release/provctl client "$ADDR" trace "$TRACE_ID" > "$SMOKE_DIR/obs-trace.json"
# The shed attempt and the served retry are both recorded under the trace.
grep -q '"outcome":"overloaded"' "$SMOKE_DIR/obs-trace.json"
grep -q '"outcome":"ok"' "$SMOKE_DIR/obs-trace.json"
grep -q '"attempt":"2"' "$SMOKE_DIR/obs-trace.json"
grep -q "\"trace_id\":\"$TRACE_ID\"" "$SMOKE_DIR/obs-trace.json"
# Per-tenant series + WAL-free global series on /v1/metrics, and every
# sample line must be valid Prometheus text (name ... value).
./target/release/provctl client "$ADDR" metrics > "$SMOKE_DIR/obs-metrics.prom"
grep -q 'prov_tenant_requests_total' "$SMOKE_DIR/obs-metrics.prom"
grep -q 'tenant="ci"' "$SMOKE_DIR/obs-metrics.prom"
grep -q 'prov_tenant_sheds_total' "$SMOKE_DIR/obs-metrics.prom"
awk '!/^#/ && NF { if ($NF + 0 != $NF) exit 1 }' "$SMOKE_DIR/obs-metrics.prom"
./target/release/provctl client "$ADDR" slowlog lab > "$SMOKE_DIR/obs-slowlog.jsonl"
test -s "$SMOKE_DIR/obs-slowlog.jsonl"
./target/release/provctl client "$ADDR" health | grep -q '"namespaces":'
./target/release/provctl client "$ADDR" shutdown
wait "$SERVE_PID"

echo "==> E20: observability plane overhead benchmark (gate: <= 5%)"
cargo run --release -q -p bench --bin report observability
test -s BENCH_observability.json
awk -F': ' '/overhead_ratio/ { exit !($2 + 0 >= 0.95) }' BENCH_observability.json

echo "==> distributed-capture smoke: multi-worker run, stitch, happens-before + trace"
BLOB_DIR="$SMOKE_DIR/blobs"
./target/release/provctl capture fig1 "$BLOB_DIR" workers=3 trace=auto \
    > "$SMOKE_DIR/capture.out"
grep -q "^trace " "$SMOKE_DIR/capture.out"
CAPTURE_TRACE="$(sed -n 's/^trace //p' "$SMOKE_DIR/capture.out")"
test "$(ls "$BLOB_DIR"/site*.prb | wc -l)" -eq 4
./target/release/provctl stitch "$BLOB_DIR" "out=$SMOKE_DIR/stitched.json" \
    > "$SMOKE_DIR/stitch.out"
# Cross-worker causality must be recovered at module granularity, the
# capture's trace id must survive the stitch, and no gaps may be reported
# for a complete blob set.
grep -q "happens-before site0/" "$SMOKE_DIR/stitch.out"
grep -q " -> site" "$SMOKE_DIR/stitch.out"
grep -q "^trace $CAPTURE_TRACE\$" "$SMOKE_DIR/stitch.out"
! grep -q "^gap:" "$SMOKE_DIR/stitch.out"
test -s "$SMOKE_DIR/stitched.json"
./target/release/provctl query "$SMOKE_DIR/stitched.json" "count runs" | grep -qx "8"
PROPTEST_CASES="${PROPTEST_CASES:-64}" cargo test -q --test distributed
PROPTEST_CASES="${PROPTEST_CASES:-64}" cargo test -q --test property_distrib

echo "==> E21: distributed capture benchmark (gate: probe overhead <= 5%)"
cargo run --release -q -p bench --bin report distributed
test -s BENCH_distributed.json
awk -F': ' '/overhead_ratio/ { exit !($2 + 0 >= 0.95) }' BENCH_distributed.json

echo "==> sharded smoke: scatter-gather query + per-shard EXPLAIN rows + sharded server"
# Offline scatter-gather must answer exactly like the single engine, and
# EXPLAIN ANALYZE must carry one row per shard.
./target/release/provctl query "$SMOKE_DIR/challenge-prov.json" "count runs" \
    > "$SMOKE_DIR/count-single.out"
./target/release/provctl query "$SMOKE_DIR/challenge-prov.json" shards=4 "count runs" \
    | diff "$SMOKE_DIR/count-single.out" -
./target/release/provctl explain "$SMOKE_DIR/challenge-prov.json" \
    "lineage of artifact $DIGEST" shards=4 analyze > "$SMOKE_DIR/sharded-explain.out"
grep -q "ScatterGather (4 shards)" "$SMOKE_DIR/sharded-explain.out"
grep -q "shard 0/4" "$SMOKE_DIR/sharded-explain.out"
grep -q "shard 3/4" "$SMOKE_DIR/sharded-explain.out"
# A sharded durable server: per-shard WALs, stats report the shard count.
SHARD_DATA_DIR="$SMOKE_DIR/shard-data"
./target/release/provctl serve 127.0.0.1:0 workers=4 shards=4 "data_dir=$SHARD_DATA_DIR" \
    > "$SMOKE_DIR/serve-sharded.out" &
SERVE_PID=$!
for _ in $(seq 1 50); do
    ADDR="$(sed -n 's/^prov-server listening on //p' "$SMOKE_DIR/serve-sharded.out")"
    [ -n "$ADDR" ] && break
    sleep 0.1
done
test -n "$ADDR"
./target/release/provctl client "$ADDR" ingest lab "$SMOKE_DIR/challenge-prov.json" tenant=ci
./target/release/provctl client "$ADDR" query lab "count runs" tenant=ci | grep -q '"type":"count"'
./target/release/provctl client "$ADDR" stats lab | grep -q '"shards":4'
./target/release/provctl client "$ADDR" shutdown
wait "$SERVE_PID"
test -f "$SHARD_DATA_DIR/lab/SHARDS"
# The differential harness (run above) pins sharded(2)/sharded(4) as its
# ninth and tenth modes; the property suite pins the merge/exchange laws
# and races writers against scatter-gather readers.
PROVTEST_THREADS="${PROVTEST_THREADS:-8}" cargo test -q --test property_shard

echo "==> E22: sharded scatter-gather benchmark (gates: speedup_at_4 >= 1.5, stats exact)"
cargo run --release -q -p bench --bin report sharded
test -s BENCH_sharded.json
grep -q '"accesses_match": true' BENCH_sharded.json
awk -F': ' '/"speedup_at_4"/ { exit !($2 + 0 >= 1.5) }' BENCH_sharded.json

echo "==> E16: query observability overhead benchmark"
cargo run --release -q -p bench --bin report query
test -s BENCH_query.json

echo "==> E17: cost-based optimizer benchmark"
cargo run --release -q -p bench --bin report optimizer
test -s BENCH_optimizer.json

echo "==> cargo clippy"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "CI gate passed."
