//! Provenance dialects: three independently shaped representations of the
//! same execution, simulating the heterogeneity the Provenance Challenge
//! set out to integrate.
//!
//! Each dialect has its own native structure and serialization, a capture
//! constructor from (a slice of) retrospective provenance, and a lossy-but-
//! joinable translation to OPM. Artifacts are everywhere labelled by their
//! content digest — the join key of cross-system integration.

use prov_core::model::{ModuleRun, RetrospectiveProvenance};
use prov_core::opm::{OpmEdge, OpmGraph};
use serde::{Deserialize, Serialize};
use wf_engine::RunStatus;

fn digest(h: u64) -> String {
    format!("{h:016x}")
}

/// Filter a retrospective record down to runs of the given module names —
/// used to split one execution across simulated systems.
pub fn slice_runs(retro: &RetrospectiveProvenance, modules: &[&str]) -> RetrospectiveProvenance {
    let runs: Vec<ModuleRun> = retro
        .runs
        .iter()
        .filter(|r| modules.iter().any(|m| r.identity.starts_with(m)))
        .cloned()
        .collect();
    let touched: std::collections::BTreeSet<u64> = runs
        .iter()
        .flat_map(|r| r.inputs.iter().chain(r.outputs.iter()).map(|(_, h)| *h))
        .collect();
    RetrospectiveProvenance {
        runs,
        artifacts: retro
            .artifacts
            .iter()
            .filter(|(h, _)| touched.contains(h))
            .map(|(h, a)| (*h, a.clone()))
            .collect(),
        ..retro.clone()
    }
}

pub mod rdfish {
    //! A Taverna-like RDF dialect: provenance as subject–predicate–object
    //! triples with its own vocabulary.

    use super::*;

    /// One triple.
    pub type Triple = (String, String, String);

    /// The RDF-ish provenance document.
    #[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
    pub struct RdfProvenance {
        /// All triples, in capture order.
        pub triples: Vec<Triple>,
    }

    impl RdfProvenance {
        /// Capture from retrospective provenance.
        pub fn capture(retro: &RetrospectiveProvenance) -> Self {
            let mut triples = Vec::new();
            for run in &retro.runs {
                if run.status == RunStatus::Skipped {
                    continue;
                }
                let p = format!("proc/{}-{}", retro.exec.0, run.node.raw());
                triples.push((p.clone(), "rdf:type".into(), "t2:ProcessRun".into()));
                triples.push((p.clone(), "t2:runsActivity".into(), run.identity.clone()));
                for (name, v) in &run.params {
                    triples.push((p.clone(), format!("t2:param/{name}"), v.render()));
                }
                for (port, h) in &run.inputs {
                    let d = format!("data/{}", digest(*h));
                    triples.push((p.clone(), format!("t2:consumed/{port}"), d.clone()));
                    triples.push((d, "rdf:type".into(), "t2:DataDocument".into()));
                }
                for (port, h) in &run.outputs {
                    let d = format!("data/{}", digest(*h));
                    triples.push((d.clone(), format!("t2:producedBy/{port}"), p.clone()));
                    triples.push((d, "rdf:type".into(), "t2:DataDocument".into()));
                }
            }
            Self { triples }
        }

        /// Translate into OPM, asserting in `account`.
        pub fn to_opm(&self, account: &str) -> OpmGraph {
            let mut g = OpmGraph::new();
            let agent = g.agent("taverna-sim");
            for (s, p, o) in &self.triples {
                if p == "rdf:type" {
                    continue;
                }
                if let Some(port) = p.strip_prefix("t2:consumed/") {
                    let proc_node = g.process(s);
                    let art = g.artifact(o.strip_prefix("data/").unwrap_or(o));
                    g.add_edge(OpmEdge::Used {
                        process: proc_node,
                        artifact: art,
                        role: port.to_string(),
                        account: account.to_string(),
                    });
                } else if let Some(port) = p.strip_prefix("t2:producedBy/") {
                    let art = g.artifact(s.strip_prefix("data/").unwrap_or(s));
                    let proc_node = g.process(o);
                    g.add_edge(OpmEdge::WasGeneratedBy {
                        artifact: art,
                        process: proc_node,
                        role: port.to_string(),
                        account: account.to_string(),
                    });
                } else if let Some(name) = p.strip_prefix("t2:param/") {
                    let proc_node = g.process(s);
                    g.set_prop(proc_node, &format!("param:{name}"), o);
                } else if p == "t2:runsActivity" {
                    let proc_node = g.process(s);
                    g.set_prop(proc_node, "activity", o);
                    g.add_edge(OpmEdge::WasControlledBy {
                        process: proc_node,
                        agent,
                        role: "enactor".into(),
                        account: account.to_string(),
                    });
                }
            }
            g
        }

        /// Import an OPM graph back into the RDF dialect — the reverse
        /// translator (real challenge systems both exported *and*
        /// imported). Only `used`/`wasGeneratedBy` assertions and process
        /// properties are representable; inferred edges are skipped.
        pub fn from_opm(g: &prov_core::opm::OpmGraph) -> Self {
            use prov_core::opm::{OpmEdge, OpmNodeKind};
            let mut triples = Vec::new();
            let label = |id| g.get(id).map(|n| n.label.clone()).unwrap_or_default();
            for n in g.nodes() {
                match n.kind {
                    OpmNodeKind::Process => {
                        let p = n.label.clone();
                        triples.push((p.clone(), "rdf:type".into(), "t2:ProcessRun".into()));
                        if let Some(act) = g.prop(n.id, "activity") {
                            triples.push((p.clone(), "t2:runsActivity".into(), act.to_string()));
                        }
                        // Re-export parameter annotations.
                        for (key, v) in g.props_of(n.id) {
                            if let Some(name) = key.strip_prefix("param:") {
                                triples.push((
                                    p.clone(),
                                    format!("t2:param/{name}"),
                                    v.to_string(),
                                ));
                            }
                        }
                    }
                    OpmNodeKind::Artifact => {
                        triples.push((
                            format!("data/{}", n.label),
                            "rdf:type".into(),
                            "t2:DataDocument".into(),
                        ));
                    }
                    OpmNodeKind::Agent => {}
                }
            }
            for e in g.edges() {
                match e {
                    OpmEdge::Used {
                        process,
                        artifact,
                        role,
                        account,
                    } if account != "inferred" => {
                        triples.push((
                            label(*process),
                            format!("t2:consumed/{role}"),
                            format!("data/{}", label(*artifact)),
                        ));
                    }
                    OpmEdge::WasGeneratedBy {
                        artifact,
                        process,
                        role,
                        account,
                    } if account != "inferred" => {
                        triples.push((
                            format!("data/{}", label(*artifact)),
                            format!("t2:producedBy/{role}"),
                            label(*process),
                        ));
                    }
                    _ => {}
                }
            }
            Self { triples }
        }

        /// Number of triples.
        pub fn len(&self) -> usize {
            self.triples.len()
        }

        /// Is the document empty?
        pub fn is_empty(&self) -> bool {
            self.triples.is_empty()
        }
    }
}

pub mod eventlog {
    //! A Kepler/Karma-like event-stream dialect: provenance as a totally
    //! ordered log of actor lifecycle and token I/O events.

    use super::*;

    /// Event types of the log.
    #[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
    pub enum EventKind {
        /// Actor started firing.
        FireStart,
        /// Actor read a token.
        Read {
            /// Port name.
            port: String,
            /// Token id (content digest).
            token: String,
        },
        /// Actor wrote a token.
        Write {
            /// Port name.
            port: String,
            /// Token id (content digest).
            token: String,
        },
        /// Actor finished firing.
        FireEnd {
            /// Whether the firing succeeded.
            ok: bool,
        },
    }

    /// One log event.
    #[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
    pub struct LogEvent {
        /// Sequence number.
        pub seq: u64,
        /// Actor (module) name with instance suffix.
        pub actor: String,
        /// The event.
        pub kind: EventKind,
    }

    /// The event-log provenance document.
    #[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
    pub struct EventLogProvenance {
        /// The ordered event stream.
        pub events: Vec<LogEvent>,
    }

    impl EventLogProvenance {
        /// Capture from retrospective provenance.
        pub fn capture(retro: &RetrospectiveProvenance) -> Self {
            let mut events = Vec::new();
            let mut seq = 0u64;
            let mut push = |actor: &str, kind: EventKind, seq: &mut u64| {
                events.push(LogEvent {
                    seq: *seq,
                    actor: actor.to_string(),
                    kind,
                });
                *seq += 1;
            };
            for run in &retro.runs {
                if run.status == RunStatus::Skipped {
                    continue;
                }
                let actor = format!("{}.{}", run.identity, run.node.raw());
                push(&actor, EventKind::FireStart, &mut seq);
                for (port, h) in &run.inputs {
                    push(
                        &actor,
                        EventKind::Read {
                            port: port.clone(),
                            token: digest(*h),
                        },
                        &mut seq,
                    );
                }
                for (port, h) in &run.outputs {
                    push(
                        &actor,
                        EventKind::Write {
                            port: port.clone(),
                            token: digest(*h),
                        },
                        &mut seq,
                    );
                }
                push(
                    &actor,
                    EventKind::FireEnd {
                        ok: run.status == RunStatus::Succeeded,
                    },
                    &mut seq,
                );
            }
            Self { events }
        }

        /// Translate into OPM, asserting in `account`.
        pub fn to_opm(&self, account: &str) -> OpmGraph {
            let mut g = OpmGraph::new();
            let agent = g.agent("kepler-sim");
            for ev in &self.events {
                let proc_node = g.process(&ev.actor);
                match &ev.kind {
                    EventKind::FireStart => {
                        g.add_edge(OpmEdge::WasControlledBy {
                            process: proc_node,
                            agent,
                            role: "director".into(),
                            account: account.to_string(),
                        });
                    }
                    EventKind::Read { port, token } => {
                        let art = g.artifact(token);
                        g.add_edge(OpmEdge::Used {
                            process: proc_node,
                            artifact: art,
                            role: port.clone(),
                            account: account.to_string(),
                        });
                    }
                    EventKind::Write { port, token } => {
                        let art = g.artifact(token);
                        g.add_edge(OpmEdge::WasGeneratedBy {
                            artifact: art,
                            process: proc_node,
                            role: port.clone(),
                            account: account.to_string(),
                        });
                    }
                    EventKind::FireEnd { ok } => {
                        g.set_prop(
                            proc_node,
                            "status",
                            if *ok { "succeeded" } else { "failed" },
                        );
                    }
                }
            }
            g
        }

        /// Number of events.
        pub fn len(&self) -> usize {
            self.events.len()
        }

        /// Is the log empty?
        pub fn is_empty(&self) -> bool {
            self.events.is_empty()
        }
    }
}

pub mod changelog {
    //! A VisTrails-like dialect: the *specification* (prospective
    //! provenance, change-based in the real system) plus a per-node run
    //! log referencing the spec.

    use super::*;
    use wf_model::Workflow;

    /// One run-log entry.
    #[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
    pub struct RunEntry {
        /// Node id in the spec.
        pub node: u64,
        /// Module identity.
        pub identity: String,
        /// Parameters rendered as text.
        pub params: Vec<(String, String)>,
        /// Input digests per port.
        pub inputs: Vec<(String, String)>,
        /// Output digests per port.
        pub outputs: Vec<(String, String)>,
    }

    /// The spec+log provenance document.
    #[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
    pub struct ChangelogProvenance {
        /// The workflow specification (prospective provenance).
        pub spec: Workflow,
        /// Per-node run entries.
        pub entries: Vec<RunEntry>,
    }

    impl ChangelogProvenance {
        /// Capture from retrospective provenance plus its specification.
        pub fn capture(retro: &RetrospectiveProvenance, spec: &Workflow) -> Self {
            let entries = retro
                .runs
                .iter()
                .filter(|r| r.status != RunStatus::Skipped)
                .map(|r| RunEntry {
                    node: r.node.raw(),
                    identity: r.identity.clone(),
                    params: r
                        .params
                        .iter()
                        .map(|(k, v)| (k.clone(), v.render()))
                        .collect(),
                    inputs: r
                        .inputs
                        .iter()
                        .map(|(p, h)| (p.clone(), digest(*h)))
                        .collect(),
                    outputs: r
                        .outputs
                        .iter()
                        .map(|(p, h)| (p.clone(), digest(*h)))
                        .collect(),
                })
                .collect();
            Self {
                spec: spec.clone(),
                entries,
            }
        }

        /// Translate into OPM, asserting in `account`.
        pub fn to_opm(&self, account: &str) -> OpmGraph {
            let mut g = OpmGraph::new();
            let agent = g.agent("vistrails-sim");
            for e in &self.entries {
                let label = self
                    .spec
                    .nodes
                    .values()
                    .find(|n| n.id.raw() == e.node)
                    .map(|n| n.label.clone())
                    .unwrap_or_else(|| e.identity.clone());
                let proc_node = g.process(&format!("{}:{}", e.identity, e.node));
                g.set_prop(proc_node, "label", &label);
                for (k, v) in &e.params {
                    g.set_prop(proc_node, &format!("param:{k}"), v);
                }
                g.add_edge(OpmEdge::WasControlledBy {
                    process: proc_node,
                    agent,
                    role: "executor".into(),
                    account: account.to_string(),
                });
                for (port, d) in &e.inputs {
                    let art = g.artifact(d);
                    g.add_edge(OpmEdge::Used {
                        process: proc_node,
                        artifact: art,
                        role: port.clone(),
                        account: account.to_string(),
                    });
                }
                for (port, d) in &e.outputs {
                    let art = g.artifact(d);
                    g.add_edge(OpmEdge::WasGeneratedBy {
                        artifact: art,
                        process: proc_node,
                        role: port.clone(),
                        account: account.to_string(),
                    });
                }
            }
            g
        }

        /// Number of run entries.
        pub fn len(&self) -> usize {
            self.entries.len()
        }

        /// Is the log empty?
        pub fn is_empty(&self) -> bool {
            self.entries.is_empty()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prov_core::capture::{CaptureLevel, ProvenanceCapture};
    use prov_core::opm::OpmNodeKind;
    use wf_engine::{standard_registry, Executor};

    fn fig1_retro() -> (RetrospectiveProvenance, wf_model::Workflow) {
        let (wf, _) = wf_engine::synth::figure1_workflow(1);
        let exec = Executor::new(standard_registry());
        let mut cap = ProvenanceCapture::new(CaptureLevel::Fine);
        let r = exec.run_observed(&wf, &mut cap).unwrap();
        (cap.take(r.exec).unwrap(), wf)
    }

    #[test]
    fn slice_runs_filters_runs_and_artifacts() {
        let (retro, _) = fig1_retro();
        let part = slice_runs(&retro, &["Histogram", "PlotTable"]);
        assert_eq!(part.runs.len(), 2);
        assert!(part.artifacts.len() < retro.artifacts.len());
        assert!(part.artifacts.len() >= 3, "grid, table, image");
    }

    #[test]
    fn rdfish_roundtrip_to_opm() {
        let (retro, _) = fig1_retro();
        let doc = rdfish::RdfProvenance::capture(&retro);
        assert!(!doc.is_empty());
        let g = doc.to_opm("taverna-acct");
        assert_eq!(
            g.nodes()
                .iter()
                .filter(|n| n.kind == OpmNodeKind::Process)
                .count(),
            8
        );
        assert!(g.check().is_empty());
        // Parameters survive as props.
        let hist = g
            .nodes()
            .iter()
            .find(|n| {
                n.kind == OpmNodeKind::Process && g.prop(n.id, "activity") == Some("Histogram@1")
            })
            .unwrap();
        assert_eq!(g.prop(hist.id, "param:bins"), Some("32"));
    }

    #[test]
    fn eventlog_captures_ordered_lifecycle() {
        let (retro, _) = fig1_retro();
        let log = eventlog::EventLogProvenance::capture(&retro);
        // 8 runs: 8 starts + 7 reads + 8 writes + 8 ends = 31 events.
        assert_eq!(log.len(), 31);
        let seqs: Vec<u64> = log.events.iter().map(|e| e.seq).collect();
        assert!(seqs.windows(2).all(|w| w[0] < w[1]));
        let g = log.to_opm("kepler-acct");
        assert_eq!(
            g.nodes()
                .iter()
                .filter(|n| n.kind == OpmNodeKind::Process)
                .count(),
            8
        );
    }

    #[test]
    fn changelog_keeps_spec_and_labels() {
        let (retro, wf) = fig1_retro();
        let doc = changelog::ChangelogProvenance::capture(&retro, &wf);
        assert_eq!(doc.len(), 8);
        assert_eq!(doc.spec.node_count(), 8);
        let g = doc.to_opm("vistrails-acct");
        let save = g
            .nodes()
            .iter()
            .find(|n| g.prop(n.id, "label") == Some("save histogram"));
        assert!(save.is_some(), "spec labels carried into OPM props");
    }

    #[test]
    fn dialects_serialize() {
        let (retro, wf) = fig1_retro();
        let a = rdfish::RdfProvenance::capture(&retro);
        let b = eventlog::EventLogProvenance::capture(&retro);
        let c = changelog::ChangelogProvenance::capture(&retro, &wf);
        let aj = serde_json::to_string(&a).unwrap();
        let bj = serde_json::to_string(&b).unwrap();
        let cj = serde_json::to_string(&c).unwrap();
        assert_eq!(
            serde_json::from_str::<rdfish::RdfProvenance>(&aj).unwrap(),
            a
        );
        assert_eq!(
            serde_json::from_str::<eventlog::EventLogProvenance>(&bj).unwrap(),
            b
        );
        assert_eq!(
            serde_json::from_str::<changelog::ChangelogProvenance>(&cj).unwrap(),
            c
        );
    }

    #[test]
    fn rdfish_semantic_roundtrip_through_opm() {
        // capture -> OPM -> rdfish -> OPM must preserve the causal
        // assertions (nodes and used/generated edges).
        let (retro, _) = fig1_retro();
        let original = rdfish::RdfProvenance::capture(&retro);
        let opm1 = original.to_opm("acct");
        let reimported = rdfish::RdfProvenance::from_opm(&opm1);
        let opm2 = reimported.to_opm("acct");
        let causal = |g: &OpmGraph| {
            let mut v: Vec<String> = g
                .edges()
                .iter()
                .filter_map(|e| match e {
                    prov_core::opm::OpmEdge::Used {
                        process,
                        artifact,
                        role,
                        ..
                    } => Some(format!(
                        "used {} {} {}",
                        g.get(*process).unwrap().label,
                        role,
                        g.get(*artifact).unwrap().label
                    )),
                    prov_core::opm::OpmEdge::WasGeneratedBy {
                        artifact,
                        process,
                        role,
                        ..
                    } => Some(format!(
                        "gen {} {} {}",
                        g.get(*artifact).unwrap().label,
                        role,
                        g.get(*process).unwrap().label
                    )),
                    _ => None,
                })
                .collect();
            v.sort();
            v
        };
        assert_eq!(causal(&opm1), causal(&opm2));
        // Parameters survive the round trip too.
        let hist = |g: &OpmGraph| {
            g.nodes()
                .iter()
                .find(|n| g.prop(n.id, "activity") == Some("Histogram@1"))
                .and_then(|n| g.prop(n.id, "param:bins").map(str::to_string))
        };
        assert_eq!(hist(&opm1), hist(&opm2));
        assert_eq!(hist(&opm1), Some("32".to_string()));
    }

    #[test]
    fn skipped_runs_are_excluded_from_all_dialects() {
        // A failing workflow: the skipped downstream run must not appear
        // as a process in any dialect (it never executed).
        let mut b = wf_model::WorkflowBuilder::new(1, "failing");
        let ok = b.add("ConstInt");
        let bad = b.add("FailIf");
        b.param(bad, "fail", true);
        let skipped = b.add("Identity");
        b.connect(ok, "out", bad, "in")
            .connect(bad, "out", skipped, "in");
        let wf = b.build();
        let exec = Executor::new(standard_registry());
        let mut cap = ProvenanceCapture::new(CaptureLevel::Fine);
        let r = exec.run_observed(&wf, &mut cap).unwrap();
        let retro = cap.take(r.exec).unwrap();

        let rdf = rdfish::RdfProvenance::capture(&retro);
        let procs = rdf
            .triples
            .iter()
            .filter(|(_, p, o)| p == "rdf:type" && o == "t2:ProcessRun")
            .count();
        assert_eq!(procs, 2, "ConstInt + FailIf; skipped Identity excluded");

        let log = eventlog::EventLogProvenance::capture(&retro);
        assert!(log.events.iter().all(|e| !e.actor.starts_with("Identity")));
        // The failed firing is recorded as not-ok.
        assert!(log
            .events
            .iter()
            .any(|e| matches!(e.kind, eventlog::EventKind::FireEnd { ok: false })));

        let ch = changelog::ChangelogProvenance::capture(&retro, &wf);
        assert_eq!(ch.len(), 2);
    }

    #[test]
    fn empty_provenance_produces_empty_dialects() {
        let retro = RetrospectiveProvenance {
            exec: wf_engine::ExecId(0),
            workflow: wf_model::WorkflowId(1),
            workflow_name: "empty".into(),
            status: wf_engine::RunStatus::Succeeded,
            started_millis: 0,
            finished_millis: 0,
            runs: vec![],
            artifacts: Default::default(),
            environment: prov_core::model::Environment::current(1),
            resumed_from: None,
        };
        assert!(rdfish::RdfProvenance::capture(&retro).is_empty());
        assert!(eventlog::EventLogProvenance::capture(&retro).is_empty());
        let wf = wf_model::Workflow::new(wf_model::WorkflowId(1), "empty");
        assert!(changelog::ChangelogProvenance::capture(&retro, &wf).is_empty());
    }

    #[test]
    fn all_dialects_agree_on_artifact_labels() {
        // The content digests are the join key: every dialect must label
        // artifacts identically.
        let (retro, wf) = fig1_retro();
        let ga = rdfish::RdfProvenance::capture(&retro).to_opm("a");
        let gb = eventlog::EventLogProvenance::capture(&retro).to_opm("b");
        let gc = changelog::ChangelogProvenance::capture(&retro, &wf).to_opm("c");
        let arts = |g: &OpmGraph| {
            let mut v: Vec<String> = g
                .nodes()
                .iter()
                .filter(|n| n.kind == OpmNodeKind::Artifact)
                .map(|n| n.label.clone())
                .collect();
            v.sort();
            v
        };
        assert_eq!(arts(&ga), arts(&gb));
        assert_eq!(arts(&gb), arts(&gc));
    }
}
