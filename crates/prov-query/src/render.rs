//! Canonical rendering of parsed PQL queries.
//!
//! `query.to_string()` produces text that parses back to the same AST
//! (values are always quoted, so casing survives the case-insensitive
//! lexer). Used by tooling that stores or displays saved queries, and by
//! the parse/render round-trip property tests.

use crate::ast::*;
use std::fmt;

impl fmt::Display for Field {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Field::Module => write!(f, "module"),
            Field::Status => write!(f, "status"),
            Field::Dtype => write!(f, "dtype"),
            Field::Exec => write!(f, "exec"),
            Field::Attempts => write!(f, "attempts"),
        }
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Op::Eq => write!(f, "="),
            Op::Neq => write!(f, "!="),
            Op::Contains => write!(f, "contains"),
        }
    }
}

impl fmt::Display for Comparison {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Backslashes first, so escape markers introduced for quotes are
        // not themselves re-escaped.
        write!(
            f,
            "{} {} \"{}\"",
            self.field,
            self.op,
            self.value.replace('\\', "\\\\").replace('"', "\\\"")
        )
    }
}

impl fmt::Display for Condition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, conj) in self.any_of.iter().enumerate() {
            if i > 0 {
                write!(f, " or ")?;
            }
            for (j, c) in conj.iter().enumerate() {
                if j > 0 {
                    write!(f, " and ")?;
                }
                write!(f, "{c}")?;
            }
        }
        Ok(())
    }
}

impl fmt::Display for Target {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Target::Artifact(h) => write!(f, "artifact {h:016x}"),
            Target::Run(e, n) => write!(f, "run {e}/{n}"),
        }
    }
}

impl fmt::Display for Entity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Entity::Runs => write!(f, "runs"),
            Entity::Artifacts => write!(f, "artifacts"),
            Entity::Executions => write!(f, "executions"),
        }
    }
}

fn write_filter(f: &mut fmt::Formatter<'_>, filter: &Condition) -> fmt::Result {
    if !filter.is_trivial() {
        write!(f, " where {filter}")?;
    }
    Ok(())
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Query::Closure {
                direction,
                target,
                depth,
                filter,
            } => {
                let verb = match direction {
                    Direction::Upstream => "lineage",
                    Direction::Downstream => "impact",
                };
                write!(f, "{verb} of {target}")?;
                if let Some(d) = depth {
                    write!(f, " depth {d}")?;
                }
                write_filter(f, filter)
            }
            Query::Count { entity, filter } => {
                write!(f, "count {entity}")?;
                write_filter(f, filter)
            }
            Query::List { entity, filter } => {
                write!(f, "list {entity}")?;
                write_filter(f, filter)
            }
            Query::Paths { from, to, max_len } => {
                write!(f, "paths from {from} to {to}")?;
                if let Some(m) = max_len {
                    write!(f, " max {m}")?;
                }
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::parser::parse;

    fn roundtrips(q: &str) {
        let parsed = parse(q).unwrap();
        let rendered = parsed.to_string();
        let reparsed = parse(&rendered)
            .unwrap_or_else(|e| panic!("rendered query {rendered:?} failed to parse: {e}"));
        assert_eq!(reparsed, parsed, "{q} -> {rendered}");
    }

    #[test]
    fn canonical_rendering_roundtrips() {
        for q in [
            "lineage of artifact 00000000000000ff",
            "impact of run 3/7 depth 2",
            "lineage of artifact 00000000000000ff depth 9 where module = histogram",
            "count runs where status = failed and module contains align",
            "count runs where status = failed or status = skipped",
            "list artifacts where dtype = grid or dtype = table and exec = 0",
            "count executions",
            "list executions where status = succeeded",
            "paths from artifact 00000000000000aa to run 0/5 max 6",
            "paths from run 1/2 to artifact 00000000000000bb",
        ] {
            roundtrips(q);
        }
    }

    #[test]
    fn rendering_quotes_values() {
        let q = parse("count runs where module = \"Align Warp\"").unwrap();
        assert_eq!(q.to_string(), "count runs where module = \"Align Warp\"");
    }

    #[test]
    fn values_with_quotes_and_backslashes_roundtrip() {
        for q in [
            r#"count runs where module = "His\"to""#,
            r#"count runs where module = "a\\b""#,
            r#"count runs where module = "trailing\\""#,
            r#"count runs where module = "a\\\"b""#,
        ] {
            roundtrips(q);
        }
    }

    #[test]
    fn all_decimal_digest_roundtrips() {
        // A digest whose 16 hex digits are all decimal must not collapse
        // into a (differently-valued) decimal integer on reparse.
        roundtrips("lineage of artifact 16");
        let q = parse("lineage of artifact 16").unwrap();
        assert_eq!(q.to_string(), "lineage of artifact 0000000000000010");
        assert_eq!(parse(&q.to_string()).unwrap(), q);
    }

    #[test]
    fn dnf_structure_survives() {
        // and binds tighter than or.
        let q = parse("count runs where exec = 0 and status = failed or exec = 1").unwrap();
        let s = q.to_string();
        assert_eq!(
            s,
            "count runs where exec = \"0\" and status = \"failed\" or exec = \"1\""
        );
        assert_eq!(parse(&s).unwrap(), q);
    }
}
