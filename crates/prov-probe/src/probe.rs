//! The per-worker capture probe: a compact ring-buffered log of opaque
//! event payloads plus the causality bookkeeping (snapshot production and
//! merging) that lets a collector reconstruct happens-before ordering
//! across workers after the fact.
//!
//! The probe is deliberately generic: payloads are byte blobs, so the
//! engine (or any other producer) decides the event encoding. What the
//! probe owns is *ordering*: every recorded entry consumes one local
//! sequence number, and snapshot exchange stamps cross-probe edges into
//! the log itself.

use crate::clock::{LogicalClock, ProbeId};
use crate::report::Report;
use std::collections::VecDeque;

/// Default ring capacity: generous enough that ordinary runs never drop.
pub const DEFAULT_RING_CAPACITY: usize = 8192;

/// One entry in a probe's log. Every entry consumes one local sequence
/// number, so cross-probe references (`origin_seq`) are stable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LogEntry {
    /// An opaque recorded event payload.
    Event(Vec<u8>),
    /// A snapshot was produced here; the entry's own sequence number is
    /// the `origin_seq` carried by that snapshot.
    SnapshotProduced,
    /// A snapshot from another probe was merged here. `control` marks
    /// coordination edges (scheduler bookkeeping) as opposed to dataflow
    /// handoffs — stitchers derive happens-before *data* edges only from
    /// non-control merges.
    SnapshotMerged {
        /// The probe that produced the merged snapshot.
        origin: ProbeId,
        /// The `SnapshotProduced` sequence number at the origin.
        origin_seq: u64,
        /// Whether this is a coordination (non-dataflow) merge.
        control: bool,
    },
}

/// A causality snapshot: the producing probe's identity, the sequence
/// number of its production entry, and its clock at that instant.
/// Snapshots piggyback on dataflow edges between workers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    /// The producing probe.
    pub origin: ProbeId,
    /// Sequence number of the `SnapshotProduced` entry at the origin.
    pub origin_seq: u64,
    /// The origin's clock immediately after the production entry.
    pub clock: LogicalClock,
    /// Distributed trace id carried along the causal path (zero = none).
    pub trace_id: u128,
}

/// The per-worker capture instrument.
#[derive(Debug, Clone)]
pub struct Probe {
    id: ProbeId,
    clock: LogicalClock,
    next_seq: u64,
    ring: VecDeque<(u64, LogEntry)>,
    capacity: usize,
    dropped: u64,
    trace_id: u128,
}

impl Probe {
    /// A probe with the default ring capacity.
    pub fn new(id: ProbeId) -> Self {
        Self::with_capacity(id, DEFAULT_RING_CAPACITY)
    }

    /// A probe retaining at most `capacity` entries (minimum 1); older
    /// entries are evicted and counted, surfacing as a reported gap at
    /// stitch time rather than silently vanishing.
    pub fn with_capacity(id: ProbeId, capacity: usize) -> Self {
        Probe {
            id,
            clock: LogicalClock::new(),
            next_seq: 0,
            ring: VecDeque::new(),
            capacity: capacity.max(1),
            dropped: 0,
            trace_id: 0,
        }
    }

    /// Attach a distributed trace id; it propagates to every snapshot
    /// this probe produces (builder style).
    pub fn with_trace_id(mut self, trace_id: u128) -> Self {
        self.trace_id = trace_id;
        self
    }

    /// This probe's identity.
    pub fn id(&self) -> ProbeId {
        self.id
    }

    /// The current clock (own component ticks once per log entry).
    pub fn clock(&self) -> &LogicalClock {
        &self.clock
    }

    /// Sequence number the next entry will receive.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Entries evicted by the ring so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The trace id carried by this probe (zero when unset).
    pub fn trace_id(&self) -> u128 {
        self.trace_id
    }

    fn push(&mut self, entry: LogEntry) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.clock.tick(self.id);
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
            self.dropped += 1;
        }
        self.ring.push_back((seq, entry));
        seq
    }

    /// Record one opaque event payload; returns its sequence number.
    pub fn record_event(&mut self, payload: Vec<u8>) -> u64 {
        self.push(LogEntry::Event(payload))
    }

    /// Produce a snapshot of this probe's causal state, logging the
    /// production so the collector can anchor cross-probe edges to it.
    pub fn produce_snapshot(&mut self) -> Snapshot {
        let seq = self.push(LogEntry::SnapshotProduced);
        Snapshot {
            origin: self.id,
            origin_seq: seq,
            clock: self.clock.clone(),
            trace_id: self.trace_id,
        }
    }

    /// Merge a snapshot received on a dataflow edge: the merge is logged,
    /// the clock absorbs the origin's (pointwise max), and a trace id
    /// carried by the snapshot is adopted if this probe has none.
    pub fn merge_snapshot(&mut self, snapshot: &Snapshot) {
        self.merge_inner(snapshot, false)
    }

    /// Merge a snapshot received on a coordination (non-dataflow) edge.
    /// Identical clock semantics, but stitchers exclude the edge from
    /// happens-before *data* edges.
    pub fn merge_snapshot_control(&mut self, snapshot: &Snapshot) {
        self.merge_inner(snapshot, true)
    }

    fn merge_inner(&mut self, snapshot: &Snapshot, control: bool) {
        self.clock.merge(&snapshot.clock);
        if self.trace_id == 0 && snapshot.trace_id != 0 {
            self.trace_id = snapshot.trace_id;
        }
        self.push(LogEntry::SnapshotMerged {
            origin: snapshot.origin,
            origin_seq: snapshot.origin_seq,
            control,
        });
    }

    /// Drain the ring into a report blob: the retained entries, the
    /// current clock, and the drop count. Repeated calls yield successive
    /// windows of the log (periodic reporting).
    pub fn report(&mut self) -> Report {
        Report {
            probe: self.id,
            clock: self.clock.clone(),
            trace_id: self.trace_id,
            dropped: self.dropped,
            entries: self.ring.drain(..).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entries_get_consecutive_seqs_and_tick_the_clock() {
        let mut p = Probe::new(ProbeId(2));
        assert_eq!(p.record_event(vec![1]), 0);
        assert_eq!(p.record_event(vec![2]), 1);
        let snap = p.produce_snapshot();
        assert_eq!(snap.origin_seq, 2);
        assert_eq!(snap.origin, ProbeId(2));
        assert_eq!(p.clock().get(ProbeId(2)), 3);
    }

    #[test]
    fn merge_absorbs_clock_and_adopts_trace_id() {
        let mut a = Probe::new(ProbeId(0)).with_trace_id(0xabcd);
        a.record_event(vec![9]);
        let snap = a.produce_snapshot();
        let mut b = Probe::new(ProbeId(1));
        b.merge_snapshot(&snap);
        assert_eq!(b.trace_id(), 0xabcd);
        assert_eq!(b.clock().get(ProbeId(0)), 2);
        assert_eq!(b.clock().get(ProbeId(1)), 1, "merge itself is an entry");
        // Producer's state at the snapshot happened before the consumer's now.
        assert!(snap.clock.happened_before(b.clock()));
    }

    #[test]
    fn ring_evicts_oldest_and_counts_drops() {
        let mut p = Probe::with_capacity(ProbeId(0), 2);
        p.record_event(vec![0]);
        p.record_event(vec![1]);
        p.record_event(vec![2]);
        assert_eq!(p.dropped(), 1);
        let r = p.report();
        assert_eq!(r.entries.len(), 2);
        assert_eq!(r.entries[0].0, 1, "oldest surviving entry is seq 1");
        assert_eq!(r.dropped, 1);
    }

    #[test]
    fn report_drains_into_successive_windows() {
        let mut p = Probe::new(ProbeId(7));
        p.record_event(vec![0]);
        let r1 = p.report();
        p.record_event(vec![1]);
        let r2 = p.report();
        assert_eq!(r1.entries[0].0, 0);
        assert_eq!(r2.entries[0].0, 1);
        assert!(p.report().entries.is_empty());
    }
}
