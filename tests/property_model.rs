//! Property-based tests over the workflow model: DAG invariants, type
//! system laws, and serialization round-trips.

use proptest::prelude::*;
use wf_model::graph::Digraph;
use wf_model::{DataType, ParamValue, Workflow, WorkflowId};

/// Strategy: a random DAG as an edge list over `n` nodes, with edges only
/// from lower to higher indexes (guaranteeing acyclicity).
fn dag_strategy() -> impl Strategy<Value = (usize, Vec<(usize, usize)>)> {
    (2usize..24).prop_flat_map(|n| {
        let edges = proptest::collection::vec((0..n, 0..n), 0..n * 2)
            .prop_map(move |pairs| pairs.into_iter().filter(|(a, b)| a < b).collect::<Vec<_>>());
        (Just(n), edges)
    })
}

fn arbitrary_dtype() -> impl Strategy<Value = DataType> {
    let leaf = prop_oneof![
        Just(DataType::Any),
        Just(DataType::Boolean),
        Just(DataType::Integer),
        Just(DataType::Float),
        Just(DataType::Text),
        Just(DataType::Bytes),
        Just(DataType::Grid),
        Just(DataType::Table),
        Just(DataType::Image),
        Just(DataType::Mesh),
    ];
    leaf.prop_recursive(3, 16, 4, |inner| {
        prop_oneof![
            inner.clone().prop_map(|t| DataType::List(Box::new(t))),
            proptest::collection::vec(("[a-c]{1,3}", inner), 0..3).prop_map(DataType::Record),
        ]
    })
}

fn arbitrary_param() -> impl Strategy<Value = ParamValue> {
    prop_oneof![
        any::<bool>().prop_map(ParamValue::Bool),
        any::<i64>().prop_map(ParamValue::Int),
        // Finite floats only: NaN breaks PartialEq-based comparisons by
        // design.
        (-1e12f64..1e12).prop_map(ParamValue::Float),
        "[ -~]{0,24}".prop_map(ParamValue::Text),
    ]
}

proptest! {
    #[test]
    fn topo_order_is_consistent_with_edges((n, edges) in dag_strategy()) {
        let mut g = Digraph::with_nodes(n);
        for &(a, b) in &edges {
            g.add_edge(a, b);
        }
        let order = g.topo_order().expect("construction guarantees a DAG");
        prop_assert_eq!(order.len(), n);
        let pos: Vec<usize> = {
            let mut p = vec![0; n];
            for (i, &v) in order.iter().enumerate() {
                p[v] = i;
            }
            p
        };
        for &(a, b) in &edges {
            prop_assert!(pos[a] < pos[b]);
        }
    }

    #[test]
    fn reachability_duality((n, edges) in dag_strategy()) {
        let mut g = Digraph::with_nodes(n);
        for &(a, b) in &edges {
            g.add_edge(a, b);
        }
        // v reachable from u  <=>  u reaches v via reverse traversal.
        for u in 0..n {
            let fwd = g.reachable_from(u);
            for (v, &fwd_uv) in fwd.iter().enumerate() {
                let back = g.reaching(v);
                prop_assert_eq!(fwd_uv, back[u], "u={} v={}", u, v);
            }
        }
    }

    #[test]
    fn transitive_reduction_preserves_reachability((n, edges) in dag_strategy()) {
        let mut g = Digraph::with_nodes(n);
        for &(a, b) in &edges {
            g.add_edge(a, b);
        }
        let kept = g.transitive_reduction();
        let mut h = Digraph::with_nodes(n);
        for (a, b) in &kept {
            h.add_edge(*a, *b);
        }
        for u in 0..n {
            prop_assert_eq!(g.reachable_from(u), h.reachable_from(u), "node {}", u);
        }
    }

    #[test]
    fn scc_of_dag_is_all_singletons((n, edges) in dag_strategy()) {
        let mut g = Digraph::with_nodes(n);
        for &(a, b) in &edges {
            g.add_edge(a, b);
        }
        let comp = g.tarjan_scc();
        let distinct: std::collections::BTreeSet<usize> = comp.iter().copied().collect();
        prop_assert_eq!(distinct.len(), n);
    }

    #[test]
    fn dtype_acceptance_is_reflexive(t in arbitrary_dtype()) {
        prop_assert!(t.accepts(&t));
    }

    #[test]
    fn dtype_serde_roundtrip(t in arbitrary_dtype()) {
        let s = serde_json::to_string(&t).unwrap();
        let back: DataType = serde_json::from_str(&s).unwrap();
        prop_assert_eq!(back, t);
    }

    #[test]
    fn any_accepts_everything(t in arbitrary_dtype()) {
        prop_assert!(DataType::Any.accepts(&t));
        prop_assert!(t.accepts(&DataType::Any));
    }

    #[test]
    fn param_value_serde_roundtrip(p in arbitrary_param()) {
        let s = serde_json::to_string(&p).unwrap();
        let back: ParamValue = serde_json::from_str(&s).unwrap();
        prop_assert_eq!(back, p);
    }

    #[test]
    fn workflow_edit_sequences_keep_dag(
        ops in proptest::collection::vec((0u8..3, 0u64..12, 0u64..12), 1..60)
    ) {
        // Random add-node / connect / remove-node sequences can never
        // produce a cyclic workflow through the public API.
        let mut wf = Workflow::new(WorkflowId(1), "fuzz");
        let mut ids = Vec::new();
        for (op, a, b) in ops {
            match op {
                0 => ids.push(wf.add_node("M", 1)),
                1 => {
                    if !ids.is_empty() {
                        let from = ids[(a as usize) % ids.len()];
                        let to = ids[(b as usize) % ids.len()];
                        let _ = wf.connect(
                            wf_model::Endpoint::new(from, "out"),
                            wf_model::Endpoint::new(to, &format!("in{}", a % 4)),
                        );
                    }
                }
                _ => {
                    if !ids.is_empty() {
                        let victim = ids.remove((a as usize) % ids.len());
                        if wf.nodes.contains_key(&victim) {
                            let _ = wf.remove_node(victim);
                        }
                    }
                }
            }
            prop_assert!(wf.topo_nodes().is_some(), "cycle slipped through");
        }
        // JSON round-trip at the end preserves the whole state.
        let json = wf.to_json().unwrap();
        let back = Workflow::from_json(&json).unwrap();
        prop_assert_eq!(back, wf);
    }
}
