//! Runtime values flowing along workflow connections, with stable content
//! hashing.
//!
//! Content hashes are the linchpin of the whole provenance platform: they
//! give *data artifacts* an identity independent of where they live, which
//! is (a) how retrospective provenance refers to data, (b) the cache key of
//! provenance-based memoization, (c) the join key when integrating
//! provenance captured by different systems (the Provenance Challenge), and
//! (d) the equality test of the reproducibility checker.
//!
//! The hash is FNV-1a (64-bit) over a canonical byte encoding. It is stable
//! across processes and platforms; it is *not* cryptographic — adequate for
//! a research platform where adversarial collisions are out of scope.

use bytes::Bytes;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;
use wf_model::DataType;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x1000_0000_01b3;

/// Incremental FNV-1a hasher over canonical byte encodings.
#[derive(Debug, Clone)]
pub struct ContentHasher {
    state: u64,
}

impl Default for ContentHasher {
    fn default() -> Self {
        Self { state: FNV_OFFSET }
    }
}

impl ContentHasher {
    /// Fresh hasher.
    pub fn new() -> Self {
        Self::default()
    }

    /// Absorb raw bytes.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= b as u64;
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// Absorb a u64 (little-endian).
    pub fn update_u64(&mut self, v: u64) {
        self.update(&v.to_le_bytes());
    }

    /// Absorb an f64 via its bit pattern (canonicalizing -0.0 to 0.0 so
    /// equal numbers hash equal).
    pub fn update_f64(&mut self, v: f64) {
        let v = if v == 0.0 { 0.0 } else { v };
        self.update(&v.to_bits().to_le_bytes());
    }

    /// Final hash value.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

/// Hash a standalone byte slice.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = ContentHasher::new();
    h.update(bytes);
    h.finish()
}

/// A structured volumetric grid — the stand-in for Figure 1's
/// `head.120.vtk` CT-scan dataset. Data is shared via `Arc` so that passing
/// grids between modules is O(1).
#[derive(Debug, Clone, PartialEq)]
pub struct Grid {
    /// Dimensions (nx, ny, nz).
    pub dims: (usize, usize, usize),
    /// Scalar values in x-fastest order; length = nx·ny·nz.
    pub data: Arc<Vec<f64>>,
}

impl Grid {
    /// Construct a grid; panics if `data` length does not match `dims`.
    /// Module bodies should prefer [`Grid::try_new`], which reports the
    /// mismatch as a typed error instead of tearing down the worker.
    pub fn new(dims: (usize, usize, usize), data: Vec<f64>) -> Self {
        match Self::try_new(dims, data) {
            Ok(g) => g,
            Err(e) => panic!("grid data length must equal nx*ny*nz: {e}"),
        }
    }

    /// Construct a grid, reporting a dims/data mismatch as
    /// [`crate::ExecError::BadInputType`].
    pub fn try_new(
        dims: (usize, usize, usize),
        data: Vec<f64>,
    ) -> Result<Self, crate::error::ExecError> {
        let expected = dims.0 * dims.1 * dims.2;
        if data.len() != expected {
            return Err(crate::error::ExecError::BadInputType {
                expected: format!(
                    "grid of {}x{}x{} = {expected} samples",
                    dims.0, dims.1, dims.2
                ),
                got: format!("{} samples", data.len()),
            });
        }
        Ok(Self {
            dims,
            data: Arc::new(data),
        })
    }

    /// Number of scalar samples.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Is the grid empty?
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Sample at (x, y, z); panics when out of range.
    pub fn at(&self, x: usize, y: usize, z: usize) -> f64 {
        let (nx, ny, _) = self.dims;
        self.data[x + nx * (y + ny * z)]
    }

    /// Minimum and maximum scalar values (0.0, 0.0 for empty grids).
    pub fn range(&self) -> (f64, f64) {
        self.data
            .iter()
            .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &v| {
                (lo.min(v), hi.max(v))
            })
            .into_finite()
    }
}

trait IntoFinite {
    fn into_finite(self) -> (f64, f64);
}
impl IntoFinite for (f64, f64) {
    fn into_finite(self) -> (f64, f64) {
        if self.0.is_finite() {
            self
        } else {
            (0.0, 0.0)
        }
    }
}

/// A numeric table: named columns over f64 rows (histograms, warp
/// parameters, statistics).
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    /// Column names.
    pub columns: Vec<String>,
    /// Rows; each row has `columns.len()` entries.
    pub rows: Arc<Vec<Vec<f64>>>,
}

impl Table {
    /// Construct a table; panics if any row width mismatches the header.
    /// Module bodies should prefer [`Table::try_new`].
    pub fn new(columns: Vec<String>, rows: Vec<Vec<f64>>) -> Self {
        match Self::try_new(columns, rows) {
            Ok(t) => t,
            Err(e) => panic!("row width must match header: {e}"),
        }
    }

    /// Construct a table, reporting a ragged row as
    /// [`crate::ExecError::BadInputType`].
    pub fn try_new(
        columns: Vec<String>,
        rows: Vec<Vec<f64>>,
    ) -> Result<Self, crate::error::ExecError> {
        for (i, r) in rows.iter().enumerate() {
            if r.len() != columns.len() {
                return Err(crate::error::ExecError::BadInputType {
                    expected: format!("rows of width {}", columns.len()),
                    got: format!("row {i} of width {}", r.len()),
                });
            }
        }
        Ok(Self {
            columns,
            rows: Arc::new(rows),
        })
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Is the table empty?
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Index of a column by name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c == name)
    }

    /// All values of one column.
    pub fn column(&self, name: &str) -> Option<Vec<f64>> {
        let i = self.column_index(name)?;
        Some(self.rows.iter().map(|r| r[i]).collect())
    }
}

/// A rendered grayscale image artifact.
#[derive(Debug, Clone, PartialEq)]
pub struct Image {
    /// Width in pixels.
    pub width: usize,
    /// Height in pixels.
    pub height: usize,
    /// Row-major grayscale pixels, length = width·height.
    pub pixels: Arc<Vec<u8>>,
}

impl Image {
    /// Construct an image; panics on size mismatch. Module bodies should
    /// prefer [`Image::try_new`].
    pub fn new(width: usize, height: usize, pixels: Vec<u8>) -> Self {
        match Self::try_new(width, height, pixels) {
            Ok(i) => i,
            Err(e) => panic!("pixel buffer size mismatch: {e}"),
        }
    }

    /// Construct an image, reporting a buffer-size mismatch as
    /// [`crate::ExecError::BadInputType`].
    pub fn try_new(
        width: usize,
        height: usize,
        pixels: Vec<u8>,
    ) -> Result<Self, crate::error::ExecError> {
        if pixels.len() != width * height {
            return Err(crate::error::ExecError::BadInputType {
                expected: format!("image of {width}x{height} = {} pixels", width * height),
                got: format!("{} pixels", pixels.len()),
            });
        }
        Ok(Self {
            width,
            height,
            pixels: Arc::new(pixels),
        })
    }

    /// A black image.
    pub fn blank(width: usize, height: usize) -> Self {
        Self::new(width, height, vec![0; width * height])
    }
}

/// Triangle-mesh geometry (isosurface output).
#[derive(Debug, Clone, PartialEq)]
pub struct Mesh {
    /// Vertex positions.
    pub vertices: Arc<Vec<[f64; 3]>>,
    /// Triangles as vertex-index triples.
    pub triangles: Arc<Vec<[u32; 3]>>,
}

impl Mesh {
    /// Construct a mesh.
    pub fn new(vertices: Vec<[f64; 3]>, triangles: Vec<[u32; 3]>) -> Self {
        Self {
            vertices: Arc::new(vertices),
            triangles: Arc::new(triangles),
        }
    }

    /// An empty mesh.
    pub fn empty() -> Self {
        Self::new(Vec::new(), Vec::new())
    }
}

/// A runtime value on a workflow connection.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Boolean.
    Bool(bool),
    /// 64-bit integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// UTF-8 text.
    Text(String),
    /// Raw bytes (simulated files).
    Bytes(Bytes),
    /// Homogeneous-ish list.
    List(Vec<Value>),
    /// Record with named fields.
    Record(BTreeMap<String, Value>),
    /// Volumetric grid.
    Grid(Grid),
    /// Numeric table.
    Table(Table),
    /// Image.
    Image(Image),
    /// Mesh.
    Mesh(Mesh),
}

impl Value {
    /// The [`DataType`] of this value (lists of mixed element types report
    /// `list<any>`).
    pub fn dtype(&self) -> DataType {
        match self {
            Value::Bool(_) => DataType::Boolean,
            Value::Int(_) => DataType::Integer,
            Value::Float(_) => DataType::Float,
            Value::Text(_) => DataType::Text,
            Value::Bytes(_) => DataType::Bytes,
            Value::List(items) => {
                let elem = match items.first() {
                    None => DataType::Any,
                    Some(first) => {
                        let t = first.dtype();
                        if items.iter().all(|v| v.dtype() == t) {
                            t
                        } else {
                            DataType::Any
                        }
                    }
                };
                DataType::List(Box::new(elem))
            }
            Value::Record(fields) => {
                DataType::Record(fields.iter().map(|(k, v)| (k.clone(), v.dtype())).collect())
            }
            Value::Grid(_) => DataType::Grid,
            Value::Table(_) => DataType::Table,
            Value::Image(_) => DataType::Image,
            Value::Mesh(_) => DataType::Mesh,
        }
    }

    /// Stable content hash: equal values hash equal across processes.
    pub fn content_hash(&self) -> u64 {
        let mut h = ContentHasher::new();
        self.hash_into(&mut h);
        h.finish()
    }

    /// Hex digest of the content hash, the display form used in provenance
    /// records and logs (like Figure 1's retrospective log entries).
    pub fn digest(&self) -> String {
        format!("{:016x}", self.content_hash())
    }

    fn hash_into(&self, h: &mut ContentHasher) {
        match self {
            Value::Bool(b) => {
                h.update(b"B");
                h.update(&[*b as u8]);
            }
            Value::Int(i) => {
                h.update(b"I");
                h.update(&i.to_le_bytes());
            }
            Value::Float(x) => {
                h.update(b"F");
                h.update_f64(*x);
            }
            Value::Text(s) => {
                h.update(b"T");
                h.update(s.as_bytes());
            }
            Value::Bytes(b) => {
                h.update(b"Y");
                h.update(b);
            }
            Value::List(items) => {
                h.update(b"L");
                h.update_u64(items.len() as u64);
                for v in items {
                    v.hash_into(h);
                }
            }
            Value::Record(fields) => {
                h.update(b"R");
                h.update_u64(fields.len() as u64);
                for (k, v) in fields {
                    h.update(k.as_bytes());
                    h.update(&[0]);
                    v.hash_into(h);
                }
            }
            Value::Grid(g) => {
                h.update(b"G");
                h.update_u64(g.dims.0 as u64);
                h.update_u64(g.dims.1 as u64);
                h.update_u64(g.dims.2 as u64);
                for &v in g.data.iter() {
                    h.update_f64(v);
                }
            }
            Value::Table(t) => {
                h.update(b"A");
                for c in &t.columns {
                    h.update(c.as_bytes());
                    h.update(&[0]);
                }
                h.update_u64(t.rows.len() as u64);
                for row in t.rows.iter() {
                    for &v in row {
                        h.update_f64(v);
                    }
                }
            }
            Value::Image(img) => {
                h.update(b"M");
                h.update_u64(img.width as u64);
                h.update_u64(img.height as u64);
                h.update(&img.pixels);
            }
            Value::Mesh(m) => {
                h.update(b"H");
                h.update_u64(m.vertices.len() as u64);
                for v in m.vertices.iter() {
                    h.update_f64(v[0]);
                    h.update_f64(v[1]);
                    h.update_f64(v[2]);
                }
                h.update_u64(m.triangles.len() as u64);
                for t in m.triangles.iter() {
                    h.update_u64(t[0] as u64);
                    h.update_u64(t[1] as u64);
                    h.update_u64(t[2] as u64);
                }
            }
        }
    }

    /// Approximate payload size in bytes, used by provenance records and
    /// cache accounting.
    pub fn size_bytes(&self) -> usize {
        match self {
            Value::Bool(_) => 1,
            Value::Int(_) | Value::Float(_) => 8,
            Value::Text(s) => s.len(),
            Value::Bytes(b) => b.len(),
            Value::List(items) => items.iter().map(Value::size_bytes).sum(),
            Value::Record(fields) => fields.iter().map(|(k, v)| k.len() + v.size_bytes()).sum(),
            Value::Grid(g) => g.len() * 8,
            Value::Table(t) => t.rows.iter().map(|r| r.len() * 8).sum(),
            Value::Image(i) => i.pixels.len(),
            Value::Mesh(m) => m.vertices.len() * 24 + m.triangles.len() * 12,
        }
    }

    /// The float value, widening integers; `None` otherwise.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Float(x) => Some(*x),
            Value::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// The integer value if this is an [`Value::Int`].
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The grid if this is a [`Value::Grid`].
    pub fn as_grid(&self) -> Option<&Grid> {
        match self {
            Value::Grid(g) => Some(g),
            _ => None,
        }
    }

    /// The table if this is a [`Value::Table`].
    pub fn as_table(&self) -> Option<&Table> {
        match self {
            Value::Table(t) => Some(t),
            _ => None,
        }
    }

    /// The mesh if this is a [`Value::Mesh`].
    pub fn as_mesh(&self) -> Option<&Mesh> {
        match self {
            Value::Mesh(m) => Some(m),
            _ => None,
        }
    }

    /// The image if this is an [`Value::Image`].
    pub fn as_image(&self) -> Option<&Image> {
        match self {
            Value::Image(i) => Some(i),
            _ => None,
        }
    }

    /// The text if this is a [`Value::Text`].
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Value::Text(s) => Some(s),
            _ => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Text(s) => write!(f, "{s:?}"),
            Value::Bytes(b) => write!(f, "<{} bytes>", b.len()),
            Value::List(items) => write!(f, "<list of {}>", items.len()),
            Value::Record(fields) => write!(f, "<record of {}>", fields.len()),
            Value::Grid(g) => write!(f, "<grid {}x{}x{}>", g.dims.0, g.dims.1, g.dims.2),
            Value::Table(t) => write!(f, "<table {}x{}>", t.len(), t.columns.len()),
            Value::Image(i) => write!(f, "<image {}x{}>", i.width, i.height),
            Value::Mesh(m) => write!(
                f,
                "<mesh {} verts, {} tris>",
                m.vertices.len(),
                m.triangles.len()
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_values_hash_equal_and_different_differ() {
        let a = Value::List(vec![Value::Int(1), Value::Text("x".into())]);
        let b = Value::List(vec![Value::Int(1), Value::Text("x".into())]);
        let c = Value::List(vec![Value::Int(2), Value::Text("x".into())]);
        assert_eq!(a.content_hash(), b.content_hash());
        assert_ne!(a.content_hash(), c.content_hash());
    }

    #[test]
    fn hash_distinguishes_types_with_same_payload() {
        assert_ne!(
            Value::Int(0).content_hash(),
            Value::Float(0.0).content_hash()
        );
        assert_ne!(
            Value::Text("ab".into()).content_hash(),
            Value::Bytes(Bytes::from_static(b"ab")).content_hash()
        );
    }

    #[test]
    fn negative_zero_hashes_like_zero() {
        assert_eq!(
            Value::Float(0.0).content_hash(),
            Value::Float(-0.0).content_hash()
        );
    }

    #[test]
    fn digest_is_16_hex_chars_and_stable() {
        let d = Value::Int(42).digest();
        assert_eq!(d.len(), 16);
        assert_eq!(d, Value::Int(42).digest());
    }

    #[test]
    fn grid_accessors() {
        let g = Grid::new((2, 2, 1), vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(g.at(1, 0, 0), 2.0);
        assert_eq!(g.at(0, 1, 0), 3.0);
        assert_eq!(g.range(), (1.0, 4.0));
        assert_eq!(g.len(), 4);
    }

    #[test]
    #[should_panic(expected = "grid data length")]
    fn grid_size_mismatch_panics() {
        let _ = Grid::new((2, 2, 2), vec![0.0; 3]);
    }

    #[test]
    fn try_new_reports_shape_errors_without_panicking() {
        use crate::error::ExecError;
        assert!(Grid::try_new((2, 2, 1), vec![0.0; 4]).is_ok());
        assert!(matches!(
            Grid::try_new((2, 2, 2), vec![0.0; 3]),
            Err(ExecError::BadInputType { .. })
        ));
        assert!(Table::try_new(vec!["a".into()], vec![vec![1.0]]).is_ok());
        assert!(matches!(
            Table::try_new(vec!["a".into()], vec![vec![1.0, 2.0]]),
            Err(ExecError::BadInputType { .. })
        ));
        assert!(Image::try_new(2, 2, vec![0; 4]).is_ok());
        let err = Image::try_new(2, 2, vec![0; 3]).unwrap_err();
        assert!(err.to_string().contains("4 pixels"), "{err}");
    }

    #[test]
    fn table_columns() {
        let t = Table::new(
            vec!["bin".into(), "count".into()],
            vec![vec![0.0, 5.0], vec![1.0, 7.0]],
        );
        assert_eq!(t.column("count"), Some(vec![5.0, 7.0]));
        assert_eq!(t.column("nope"), None);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn dtype_reflects_structure() {
        use wf_model::DataType as T;
        assert_eq!(Value::Int(1).dtype(), T::Integer);
        assert_eq!(
            Value::List(vec![Value::Float(1.0), Value::Float(2.0)]).dtype(),
            T::List(Box::new(T::Float))
        );
        assert_eq!(
            Value::List(vec![Value::Float(1.0), Value::Text("x".into())]).dtype(),
            T::List(Box::new(T::Any))
        );
        let mut rec = BTreeMap::new();
        rec.insert("a".to_string(), Value::Bool(true));
        assert_eq!(
            Value::Record(rec).dtype(),
            T::Record(vec![("a".into(), T::Boolean)])
        );
    }

    #[test]
    fn size_accounting() {
        assert_eq!(Value::Int(1).size_bytes(), 8);
        let g = Value::Grid(Grid::new((2, 1, 1), vec![0.0, 1.0]));
        assert_eq!(g.size_bytes(), 16);
        let img = Value::Image(Image::blank(4, 4));
        assert_eq!(img.size_bytes(), 16);
    }

    #[test]
    fn grid_clone_is_shallow() {
        let g = Grid::new((1, 1, 1), vec![9.0]);
        let g2 = g.clone();
        assert!(Arc::ptr_eq(&g.data, &g2.data));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Int(3).to_string(), "3");
        assert_eq!(
            Value::Grid(Grid::new((1, 2, 3), vec![0.0; 6])).to_string(),
            "<grid 1x2x3>"
        );
    }
}
