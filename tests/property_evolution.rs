//! Property-based tests over evolution provenance: action algebra,
//! version-tree replay, diff laws, and analogy behaviour.

use proptest::prelude::*;
use prov_evolution::{diff_workflows, Action, VersionTree};
use std::collections::BTreeMap;
use wf_model::workflow::Node;
use wf_model::{NodeId, ParamValue, Workflow, WorkflowId};

/// A random edit script, encoded so every op can be made applicable.
#[derive(Debug, Clone)]
enum Op {
    Add,
    Connect(u8, u8),
    SetParam(u8, i64),
    Relabel(u8),
    Delete(u8),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        Just(Op::Add),
        (0u8..20, 0u8..20).prop_map(|(a, b)| Op::Connect(a, b)),
        (0u8..20, -100i64..100).prop_map(|(a, v)| Op::SetParam(a, v)),
        (0u8..20).prop_map(Op::Relabel),
        (0u8..20).prop_map(Op::Delete),
    ]
}

/// Turn a random script into a list of concrete, applicable `Action`s by
/// simulating it on a scratch workflow.
fn concretize(script: &[Op]) -> Vec<Action> {
    let mut wf = Workflow::new(WorkflowId(1), "scratch");
    let mut actions = Vec::new();
    let mut alive: Vec<NodeId> = Vec::new();
    for op in script {
        match op {
            Op::Add => {
                let id = wf.add_node("Busy", 1);
                alive.push(id);
                actions.push(Action::AddNode {
                    node: wf.node(id).expect("just added").clone(),
                });
            }
            Op::Connect(a, b) => {
                if alive.len() >= 2 {
                    let from = alive[*a as usize % alive.len()];
                    let to = alive[*b as usize % alive.len()];
                    let port = format!("in{}", a % 4);
                    if let Ok(cid) = wf.connect(
                        wf_model::Endpoint::new(from, "out"),
                        wf_model::Endpoint::new(to, &port),
                    ) {
                        actions.push(Action::AddConnection {
                            conn: wf.connection(cid).expect("just added").clone(),
                        });
                    }
                }
            }
            Op::SetParam(a, v) => {
                if !alive.is_empty() {
                    let node = alive[*a as usize % alive.len()];
                    let old = wf
                        .set_param(node, "work", ParamValue::Int(*v))
                        .expect("node alive");
                    actions.push(Action::SetParam {
                        node,
                        name: "work".into(),
                        new: Some(ParamValue::Int(*v)),
                        old,
                    });
                }
            }
            Op::Relabel(a) => {
                if !alive.is_empty() {
                    let node = alive[*a as usize % alive.len()];
                    let new = format!("label{a}");
                    let old = wf.set_label(node, &new).expect("node alive");
                    actions.push(Action::SetLabel { node, new, old });
                }
            }
            Op::Delete(a) => {
                if !alive.is_empty() {
                    let idx = *a as usize % alive.len();
                    let node = alive.remove(idx);
                    let full = wf.node(node).expect("node alive").clone();
                    let (_, severed) = wf.remove_node(node).expect("removable");
                    actions.push(Action::DeleteNode {
                        node: full,
                        severed,
                    });
                }
            }
        }
    }
    actions
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn tree_replay_equals_direct_application(script in proptest::collection::vec(op_strategy(), 0..40)) {
        let actions = concretize(&script);
        // Direct application.
        let mut direct = Workflow::new(WorkflowId(1), "scratch");
        for a in &actions {
            a.apply(&mut direct).expect("applicable by construction");
        }
        // Through a version tree.
        let mut tree = VersionTree::new(WorkflowId(1), "scratch");
        let tip = tree.commit_all(tree.root(), actions.clone(), "prop").unwrap();
        prop_assert_eq!(tree.materialize(tip).unwrap(), direct);
        // And with snapshots enabled.
        let mut snap_tree = VersionTree::new(WorkflowId(1), "scratch").with_snapshots(3);
        let snap_tip = snap_tree.commit_all(snap_tree.root(), actions, "prop").unwrap();
        prop_assert_eq!(snap_tree.materialize(snap_tip).unwrap(), tree.materialize(tip).unwrap());
    }

    #[test]
    fn apply_then_inverse_is_identity(script in proptest::collection::vec(op_strategy(), 1..30)) {
        let actions = concretize(&script);
        let mut wf = Workflow::new(WorkflowId(1), "scratch");
        let mut states = vec![wf.clone()];
        for a in &actions {
            a.apply(&mut wf).unwrap();
            states.push(wf.clone());
        }
        // Undo in reverse order; each step must restore the prior state
        // (up to id-generator position, which only moves forward — compare
        // nodes, connections, and name).
        for (a, expected) in actions.iter().rev().zip(states.iter().rev().skip(1)) {
            a.invert().apply(&mut wf).unwrap();
            prop_assert_eq!(&wf.nodes, &expected.nodes);
            prop_assert_eq!(&wf.conns, &expected.conns);
            prop_assert_eq!(&wf.name, &expected.name);
        }
    }

    #[test]
    fn diff_is_empty_iff_equal(script in proptest::collection::vec(op_strategy(), 0..25)) {
        let actions = concretize(&script);
        let mut wf = Workflow::new(WorkflowId(1), "scratch");
        for a in &actions {
            a.apply(&mut wf).unwrap();
        }
        let d = diff_workflows(&wf, &wf.clone());
        prop_assert!(d.is_empty());
        // Any single extra add makes it non-empty.
        let mut wf2 = wf.clone();
        let extra = Action::AddNode {
            node: Node {
                id: NodeId(10_000),
                module: "Extra".into(),
                version: 1,
                label: "extra".into(),
                params: BTreeMap::new(),
            },
        };
        extra.apply(&mut wf2).unwrap();
        let d2 = diff_workflows(&wf, &wf2);
        prop_assert!(!d2.is_empty());
        prop_assert_eq!(d2.only_right.len(), 1);
    }

    #[test]
    fn diff_change_count_bounded_by_action_count(
        script in proptest::collection::vec(op_strategy(), 0..25)
    ) {
        let actions = concretize(&script);
        let mut before = Workflow::new(WorkflowId(1), "scratch");
        // Apply first half, snapshot, apply rest.
        let half = actions.len() / 2;
        for a in &actions[..half] {
            a.apply(&mut before).unwrap();
        }
        let mut after = before.clone();
        for a in &actions[half..] {
            a.apply(&mut after).unwrap();
        }
        let d = diff_workflows(&before, &after);
        // Deleting a node severs connections too, so each action causes at
        // most (1 + severed) differences; a loose but useful bound is the
        // total structural size.
        let bound = (actions.len() - half) * 8 + 1;
        prop_assert!(
            d.change_count() <= bound,
            "{} changes from {} actions",
            d.change_count(),
            actions.len() - half
        );
    }

    #[test]
    fn analogy_on_identical_target_reproduces_change(seed in 0u64..50) {
        // For any (a -> b) template, applying it by analogy to a == a
        // itself must reproduce b's module multiset.
        let _ = seed;
        let (a, b, _) = prov_evolution::scenario::figure2_triple();
        let result = prov_evolution::apply_by_analogy(&a, &b, &a.clone()).unwrap();
        prop_assert!(result.is_clean(), "{:?}", result.skipped);
        let multiset = |w: &Workflow| {
            let mut v: Vec<&str> = w.nodes.values().map(|n| n.module.as_str()).collect();
            v.sort();
            v.into_iter().map(str::to_string).collect::<Vec<_>>()
        };
        prop_assert_eq!(multiset(&result.workflow), multiset(&b));
        prop_assert_eq!(result.workflow.conn_count(), b.conn_count());
    }

    #[test]
    fn noisy_analogy_never_panics_and_reports(seed in 0u64..60, noise_pct in 0u32..101) {
        let noise = noise_pct as f64 / 100.0;
        let (a, b, _) = prov_evolution::scenario::figure2_triple();
        let target = prov_evolution::scenario::noisy_target(seed, noise);
        let result = prov_evolution::apply_by_analogy(&a, &b, &target).unwrap();
        // The result is always a valid DAG.
        prop_assert!(result.workflow.topo_nodes().is_some());
        // Accounting is consistent: every template change either applied
        // or was reported skipped.
        let template_changes = diff_workflows(&a, &b).change_count();
        prop_assert!(result.applied + result.skipped.len() >= template_changes,
            "applied {} + skipped {} < template {}",
            result.applied, result.skipped.len(), template_changes);
    }
}
