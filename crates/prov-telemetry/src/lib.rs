//! # prov-telemetry — observability over the provenance stream
//!
//! The engine already narrates every run as an [`wf_engine::EngineEvent`]
//! stream so provenance can be captured (§2.2 of the tutorial). This
//! crate points a second consumer at the *same* stream and turns it into
//! operational telemetry — the "analyzing provenance data to debug tasks
//! and understand results" opportunity of §2.4, applied to the running
//! system itself:
//!
//! * [`span`] — structured spans (run → module → attempt / backoff /
//!   cache-lookup) with parent/child links, collected by an ordinary
//!   [`wf_engine::ExecObserver`],
//! * [`metrics`] — counters, gauges, and fixed-bucket histograms with a
//!   Prometheus text renderer,
//! * [`profile`] — per-module self time, the duration-weighted critical
//!   path, and parallel speedup/utilization, computed from a live run
//!   *or* purely from stored retrospective provenance,
//! * [`export`] — Chrome `chrome://tracing` JSON and JSONL span logs,
//!   with validators and a re-importer,
//! * [`assemble`] — distributed span assembly: stitched multi-site probe
//!   logs (`prov-probe`) become one trace under a single W3C context,
//! * [`json`] — the dependency-free mini JSON reader backing the
//!   validators.
//!
//! Telemetry composes with provenance capture through
//! [`wf_engine::FanoutObserver`]: one run, many subscribers, no engine
//! changes. [`Telemetry`] bundles a span collector and a metrics
//! observer into a single subscriber for the common case.

pub mod assemble;
pub mod context;
pub mod export;
pub mod json;
pub mod metrics;
pub mod profile;
pub mod span;

pub use assemble::assemble_distributed;
pub use context::{
    parse_tracestate_attempt, render_tracestate_attempt, ContextError, TraceContext,
};
pub use export::{
    chrome_trace_json, spans_from_jsonl, spans_from_jsonl_lossy, spans_jsonl,
    validate_chrome_trace, JsonlSkip,
};
pub use json::{parse as parse_json, JsonError, JsonValue};
pub use metrics::{Counter, Gauge, Histogram, MetricsObserver, MetricsRegistry};
pub use profile::{profile_result, profile_retro, CriticalHop, ModuleStat, RunProfile};
pub use span::{Span, SpanCollector, SpanId, SpanKind, Trace};

use wf_engine::{EngineEvent, ExecObserver};

/// The all-in-one telemetry subscriber: spans + metrics from one stream.
///
/// ```
/// use prov_telemetry::Telemetry;
/// use wf_engine::{standard_registry, Executor};
/// use wf_model::WorkflowBuilder;
///
/// let mut b = WorkflowBuilder::new(1, "demo");
/// let n = b.add("ConstInt");
/// b.param(n, "value", 7i64);
/// let exec = Executor::new(standard_registry());
/// let mut tel = Telemetry::new();
/// exec.run_observed(&b.build(), &mut tel).unwrap();
/// let trace = tel.take_trace();
/// assert_eq!(trace.of_kind(prov_telemetry::SpanKind::Run).count(), 1);
/// assert!(tel.metrics.render_prometheus().contains("wf_runs_started_total 1"));
/// ```
#[derive(Debug, Default)]
pub struct Telemetry {
    /// The span collector.
    pub spans: SpanCollector,
    /// The metrics observer.
    pub metrics: MetricsObserver,
}

impl Telemetry {
    /// A fresh bundle with its own metrics registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Take the trace collected so far (see [`SpanCollector::take_trace`]).
    pub fn take_trace(&mut self) -> Trace {
        self.spans.take_trace()
    }

    /// Render all metrics in Prometheus text format.
    pub fn render_prometheus(&self) -> String {
        self.metrics.render_prometheus()
    }
}

impl ExecObserver for Telemetry {
    fn on_event(&mut self, event: &EngineEvent) {
        self.spans.on_event(event);
        self.metrics.on_event(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prov_core::{CaptureLevel, ProvenanceCapture};
    use wf_engine::{standard_registry, Executor, FanoutObserver};
    use wf_model::WorkflowBuilder;

    #[test]
    fn telemetry_composes_with_capture_via_fanout() {
        let mut b = WorkflowBuilder::new(1, "combo");
        let a = b.add("Busy");
        b.param(a, "work", 100i64);
        let c = b.add("Identity");
        b.connect(a, "out", c, "in");
        let wf = b.build();

        let exec = Executor::new(standard_registry());
        let mut tel = Telemetry::new();
        let mut cap = ProvenanceCapture::new(CaptureLevel::Fine);
        let exec_id = {
            let mut fan = FanoutObserver::new().with(&mut tel).with(&mut cap);
            exec.run_observed(&wf, &mut fan).unwrap().exec
        };

        // Both subscribers saw the whole run.
        let trace = tel.take_trace();
        assert_eq!(trace.of_kind(SpanKind::Module).count(), 2);
        let retro = cap.take(exec_id).unwrap();
        assert_eq!(retro.runs.len(), 2);

        // And the retrospective profile agrees with the live metrics.
        let profile = profile_retro(&retro);
        assert_eq!(profile.modules.len(), 2);
        assert_eq!(tel.metrics.modules_started.get(), 2);
    }
}
