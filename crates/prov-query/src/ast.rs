//! The PQL abstract syntax tree.

/// Traversal direction of a lineage-style query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// `lineage of …` — upstream, toward causes.
    Upstream,
    /// `impact of …` — downstream, toward effects.
    Downstream,
}

/// What a query is anchored on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Target {
    /// An artifact by content digest.
    Artifact(u64),
    /// A run by `exec/node`.
    Run(u64, u64),
}

/// Filterable fields.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Field {
    /// Module identity (`name@version`; bare `name` matches any version).
    Module,
    /// Run status: `succeeded` / `failed` / `skipped`.
    Status,
    /// Artifact data type (`grid`, `table`, …).
    Dtype,
    /// Execution id.
    Exec,
    /// Module-run attempt count (retried runs have `attempts > 1`).
    Attempts,
}

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// `=`.
    Eq,
    /// `!=`.
    Neq,
    /// `contains` (substring, case-insensitive).
    Contains,
}

/// One comparison.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comparison {
    /// The field.
    pub field: Field,
    /// The operator.
    pub op: Op,
    /// The right-hand side, as written.
    pub value: String,
}

/// A filter in disjunctive normal form: `where a = x and b != y or c = z`
/// parses as `(a = x AND b != y) OR (c = z)` — `and` binds tighter than
/// `or`. An empty condition is "always true".
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Condition {
    /// The disjuncts; each is a conjunction of comparisons. Empty means
    /// "always true".
    pub any_of: Vec<Vec<Comparison>>,
}

impl Condition {
    /// A condition with a single conjunction (the common case).
    pub fn all(clauses: Vec<Comparison>) -> Self {
        if clauses.is_empty() {
            Condition::default()
        } else {
            Condition {
                any_of: vec![clauses],
            }
        }
    }

    /// Is this the trivial always-true condition?
    pub fn is_trivial(&self) -> bool {
        self.any_of.is_empty()
    }
}

/// Entity class of `count` / `list` queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Entity {
    /// Module runs.
    Runs,
    /// Data artifacts.
    Artifacts,
    /// Whole workflow executions.
    Executions,
}

/// A parsed PQL query.
#[derive(Debug, Clone, PartialEq)]
pub enum Query {
    /// `lineage of <target> [depth N] [where …]` /
    /// `impact of <target> [depth N] [where …]`.
    Closure {
        /// Up- or downstream.
        direction: Direction,
        /// Anchor.
        target: Target,
        /// Optional depth bound (edges).
        depth: Option<usize>,
        /// Optional filter over the resulting nodes.
        filter: Condition,
    },
    /// `count runs|artifacts [where …]`.
    Count {
        /// Entity class.
        entity: Entity,
        /// Optional filter.
        filter: Condition,
    },
    /// `list runs|artifacts [where …]`.
    List {
        /// Entity class.
        entity: Entity,
        /// Optional filter.
        filter: Condition,
    },
    /// `paths from <target> to <target> [max N]` — all simple derivation
    /// paths in dataflow direction.
    Paths {
        /// Path source (cause side).
        from: Target,
        /// Path destination (effect side).
        to: Target,
        /// Optional maximum path length in edges.
        max_len: Option<usize>,
    },
}
