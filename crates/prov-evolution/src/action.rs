//! Edit actions: the atoms of change-based workflow evolution provenance.
//!
//! Each action is self-contained and invertible: it carries everything
//! needed to apply it to a workflow *and* everything needed to undo it.
//! (Deletion records the deleted node and its severed connections, so the
//! inverse can restore them with their original identifiers.)

use serde::{Deserialize, Serialize};
use wf_model::workflow::{Connection, Node};
use wf_model::{ModelError, NodeId, ParamValue, Workflow};

/// One edit to a workflow specification.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Action {
    /// Add a module instance (carries the full node, including its id).
    AddNode {
        /// The node to add.
        node: Node,
    },
    /// Delete a module instance and (implicitly) every connection touching
    /// it; the severed connections are recorded for invertibility.
    DeleteNode {
        /// The node being deleted.
        node: Node,
        /// Connections severed by the deletion.
        severed: Vec<Connection>,
    },
    /// Add a connection.
    AddConnection {
        /// The connection to add.
        conn: Connection,
    },
    /// Delete a connection.
    DeleteConnection {
        /// The connection being deleted.
        conn: Connection,
    },
    /// Set (or unset) a parameter.
    SetParam {
        /// Target node.
        node: NodeId,
        /// Parameter name.
        name: String,
        /// New value (`None` = unset).
        new: Option<ParamValue>,
        /// Previous value (`None` = was unset), for the inverse.
        old: Option<ParamValue>,
    },
    /// Relabel a node.
    SetLabel {
        /// Target node.
        node: NodeId,
        /// New label.
        new: String,
        /// Previous label, for the inverse.
        old: String,
    },
    /// Rename the workflow.
    Rename {
        /// New name.
        new: String,
        /// Previous name, for the inverse.
        old: String,
    },
    /// Change the module version a node references (a module *upgrade* —
    /// or downgrade, as the inverse).
    SetVersion {
        /// Target node.
        node: NodeId,
        /// New module version.
        new: u32,
        /// Previous version, for the inverse.
        old: u32,
    },
    /// Restore a previously deleted node together with its severed
    /// connections (the inverse of [`Action::DeleteNode`]).
    Restore {
        /// The node to restore, with its original id.
        node: Node,
        /// The connections to restore, with their original ids.
        conns: Vec<Connection>,
    },
}

impl Action {
    /// Apply the action to a workflow.
    pub fn apply(&self, wf: &mut Workflow) -> Result<(), ModelError> {
        match self {
            Action::AddNode { node } => {
                wf.insert_node(node.clone());
                Ok(())
            }
            Action::DeleteNode { node, .. } => wf.remove_node(node.id).map(|_| ()),
            Action::AddConnection { conn } => {
                // Validate through the public API; preserve the recorded id.
                wf.insert_connection(conn.clone());
                Ok(())
            }
            Action::DeleteConnection { conn } => wf.remove_connection(conn.id).map(|_| ()),
            Action::SetParam {
                node, name, new, ..
            } => match new {
                Some(v) => wf.set_param(*node, name, v.clone()).map(|_| ()),
                None => wf.unset_param(*node, name).map(|_| ()),
            },
            Action::SetLabel { node, new, .. } => wf.set_label(*node, new).map(|_| ()),
            Action::Rename { new, .. } => {
                wf.name = new.clone();
                Ok(())
            }
            Action::SetVersion { node, new, .. } => wf.set_version(*node, *new).map(|_| ()),
            Action::Restore { node, conns } => {
                wf.insert_node(node.clone());
                for c in conns {
                    wf.insert_connection(c.clone());
                }
                Ok(())
            }
        }
    }

    /// The inverse action.
    pub fn invert(&self) -> Action {
        match self {
            Action::AddNode { node } => Action::DeleteNode {
                node: node.clone(),
                severed: Vec::new(),
            },
            Action::DeleteNode { node, severed } => {
                // Restoring a deleted node must also restore its
                // connections; we express that as AddNode (connections are
                // re-added by replaying their own inverses where recorded).
                // For single-action invert, severed connections are restored
                // by compound application below.
                Action::Restore {
                    node: node.clone(),
                    conns: severed.clone(),
                }
            }
            Action::AddConnection { conn } => Action::DeleteConnection { conn: conn.clone() },
            Action::DeleteConnection { conn } => Action::AddConnection { conn: conn.clone() },
            Action::SetParam {
                node,
                name,
                new,
                old,
            } => Action::SetParam {
                node: *node,
                name: name.clone(),
                new: old.clone(),
                old: new.clone(),
            },
            Action::SetLabel { node, new, old } => Action::SetLabel {
                node: *node,
                new: old.clone(),
                old: new.clone(),
            },
            Action::Rename { new, old } => Action::Rename {
                new: old.clone(),
                old: new.clone(),
            },
            Action::SetVersion { node, new, old } => Action::SetVersion {
                node: *node,
                new: *old,
                old: *new,
            },
            Action::Restore { node, conns } => Action::DeleteNode {
                node: node.clone(),
                severed: conns.clone(),
            },
        }
    }

    /// One-line human description (shown in version-tree UIs).
    pub fn describe(&self) -> String {
        match self {
            Action::AddNode { node } => {
                format!("add {} ({})", node.id, node.kind_identity())
            }
            Action::DeleteNode { node, .. } => {
                format!("delete {} ({})", node.id, node.kind_identity())
            }
            Action::AddConnection { conn } => format!(
                "connect {}.{} -> {}.{}",
                conn.from.node, conn.from.port, conn.to.node, conn.to.port
            ),
            Action::DeleteConnection { conn } => format!(
                "disconnect {}.{} -> {}.{}",
                conn.from.node, conn.from.port, conn.to.node, conn.to.port
            ),
            Action::SetParam {
                node, name, new, ..
            } => match new {
                Some(v) => format!("set {node}.{name} = {v}"),
                None => format!("unset {node}.{name}"),
            },
            Action::SetLabel { node, new, .. } => format!("relabel {node} to '{new}'"),
            Action::Rename { new, .. } => format!("rename workflow to '{new}'"),
            Action::SetVersion { node, new, old } => {
                format!("upgrade {node} v{old} -> v{new}")
            }
            Action::Restore { node, .. } => {
                format!("restore {} ({})", node.id, node.kind_identity())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wf_model::WorkflowBuilder;

    fn base() -> Workflow {
        let mut b = WorkflowBuilder::new(1, "base");
        let a = b.add("LoadVolume");
        let h = b.add("Histogram");
        b.connect(a, "grid", h, "data");
        b.build()
    }

    #[test]
    fn apply_and_invert_set_param() {
        let mut wf = base();
        let node = *wf.nodes.keys().next().unwrap();
        let act = Action::SetParam {
            node,
            name: "path".into(),
            new: Some("x.vtk".into()),
            old: None,
        };
        act.apply(&mut wf).unwrap();
        assert_eq!(
            wf.node(node).unwrap().params.get("path"),
            Some(&ParamValue::Text("x.vtk".into()))
        );
        act.invert().apply(&mut wf).unwrap();
        assert!(!wf.node(node).unwrap().params.contains_key("path"));
    }

    #[test]
    fn delete_then_restore_roundtrips() {
        let mut wf = base();
        let orig = wf.clone();
        let victim = wf
            .nodes
            .values()
            .find(|n| n.module == "Histogram")
            .unwrap()
            .clone();
        let severed: Vec<Connection> = wf
            .conns
            .values()
            .filter(|c| c.from.node == victim.id || c.to.node == victim.id)
            .cloned()
            .collect();
        let del = Action::DeleteNode {
            node: victim,
            severed,
        };
        del.apply(&mut wf).unwrap();
        assert_eq!(wf.node_count(), 1);
        assert_eq!(wf.conn_count(), 0);
        del.invert().apply(&mut wf).unwrap();
        assert_eq!(wf.node_count(), orig.node_count());
        assert_eq!(wf.conn_count(), orig.conn_count());
        assert_eq!(wf.nodes, orig.nodes);
        assert_eq!(wf.conns, orig.conns);
    }

    #[test]
    fn label_and_rename_invert() {
        let mut wf = base();
        let node = *wf.nodes.keys().next().unwrap();
        let act = Action::SetLabel {
            node,
            new: "scan".into(),
            old: wf.node(node).unwrap().label.clone(),
        };
        act.apply(&mut wf).unwrap();
        assert_eq!(wf.node(node).unwrap().label, "scan");
        act.invert().apply(&mut wf).unwrap();
        assert_eq!(wf.node(node).unwrap().label, "LoadVolume");

        let r = Action::Rename {
            new: "v2".into(),
            old: wf.name.clone(),
        };
        r.apply(&mut wf).unwrap();
        assert_eq!(wf.name, "v2");
        r.invert().apply(&mut wf).unwrap();
        assert_eq!(wf.name, "base");
    }

    #[test]
    fn describe_is_readable() {
        let act = Action::SetParam {
            node: NodeId(3),
            name: "bins".into(),
            new: Some(ParamValue::Int(16)),
            old: None,
        };
        assert_eq!(act.describe(), "set n3.bins = 16");
    }

    #[test]
    fn actions_roundtrip_serde() {
        let mut wf = base();
        let node = *wf.nodes.keys().next().unwrap();
        let act = Action::SetLabel {
            node,
            new: "a".into(),
            old: "b".into(),
        };
        let s = serde_json::to_string(&act).unwrap();
        let back: Action = serde_json::from_str(&s).unwrap();
        assert_eq!(back, act);
        back.apply(&mut wf).unwrap();
    }
}
