//! Deterministic fault injection for testing recovery paths.
//!
//! Failure handling is the part of an engine that ordinary runs never
//! exercise; a [`FaultPlan`] makes faults first-class and *reproducible*.
//! A plan maps `(node, attempt)` to an injected [`FaultAction`] — report a
//! failure, stall the body, or panic — and can be generated pseudo-randomly
//! from a seed so that an observed failure schedule replays exactly, down
//! to the provenance it leaves behind.
//!
//! Injected faults flow through the same paths as real ones: a `Fail`
//! becomes [`crate::ExecError::ModuleFailed`], a `Panic` is caught and
//! becomes [`crate::ExecError::WorkerPanicked`], and a `Delay` can push a
//! body past its [`crate::Deadline`].

use crate::stdlib::SplitMix64;
use std::collections::BTreeMap;
use wf_model::{NodeId, Workflow};

/// One injected fault.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultAction {
    /// The module body reports failure with this message.
    Fail {
        /// The injected failure message.
        message: String,
    },
    /// The module body stalls for this long before running normally.
    Delay {
        /// The injected stall in microseconds.
        micros: u64,
    },
    /// The module body panics with this message.
    Panic {
        /// The injected panic payload.
        message: String,
    },
}

/// A deterministic schedule of faults to inject into named nodes on chosen
/// attempts (attempts are 1-based).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    faults: BTreeMap<(NodeId, u32), FaultAction>,
    permanent: BTreeMap<NodeId, FaultAction>,
}

impl FaultPlan {
    /// An empty plan (injects nothing).
    pub fn new() -> Self {
        Self::default()
    }

    /// Inject a failure into `node` on attempt `attempt`.
    pub fn fail_on(mut self, node: NodeId, attempt: u32, message: &str) -> Self {
        self.faults.insert(
            (node, attempt.max(1)),
            FaultAction::Fail {
                message: message.to_string(),
            },
        );
        self
    }

    /// Inject a stall of `micros` into `node` on attempt `attempt`.
    pub fn delay_on(mut self, node: NodeId, attempt: u32, micros: u64) -> Self {
        self.faults
            .insert((node, attempt.max(1)), FaultAction::Delay { micros });
        self
    }

    /// Inject a panic into `node` on attempt `attempt`.
    pub fn panic_on(mut self, node: NodeId, attempt: u32, message: &str) -> Self {
        self.faults.insert(
            (node, attempt.max(1)),
            FaultAction::Panic {
                message: message.to_string(),
            },
        );
        self
    }

    /// Inject a *permanent* failure: `node` fails on every attempt, so no
    /// retry policy can save it — the case checkpoint/resume exists for.
    pub fn fail_always(mut self, node: NodeId, message: &str) -> Self {
        self.permanent.insert(
            node,
            FaultAction::Fail {
                message: message.to_string(),
            },
        );
        self
    }

    /// A pseudo-random *transient* plan over the nodes of `wf`, fully
    /// determined by `seed`: roughly half the nodes get a fault on attempt
    /// 1 (fail, fail-twice, panic, or delay), and no node fails more than
    /// twice in a row — so any retry policy with three or more attempts
    /// recovers every injected fault.
    pub fn random(wf: &Workflow, seed: u64) -> Self {
        let mut rng = SplitMix64::new(seed ^ 0xfau64.rotate_left(33));
        let mut plan = Self::new();
        plan.seed = seed;
        for &node in wf.nodes.keys() {
            let roll = rng.next_f64();
            let magnitude = rng.next_u64(); // always drawn: keeps the stream aligned
            if roll < 0.20 {
                plan = plan.fail_on(node, 1, &format!("injected transient fault (seed {seed})"));
            } else if roll < 0.32 {
                plan = plan
                    .fail_on(node, 1, &format!("injected transient fault (seed {seed})"))
                    .fail_on(node, 2, &format!("injected repeat fault (seed {seed})"));
            } else if roll < 0.42 {
                plan = plan.panic_on(node, 1, &format!("injected panic (seed {seed})"));
            } else if roll < 0.50 {
                plan = plan.delay_on(node, 1, 50 + magnitude % 200);
            }
        }
        plan
    }

    /// The seed this plan was generated from (0 for hand-built plans).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The fault to inject into `node` on `attempt`, if any.
    pub fn action(&self, node: NodeId, attempt: u32) -> Option<&FaultAction> {
        self.permanent
            .get(&node)
            .or_else(|| self.faults.get(&(node, attempt)))
    }

    /// Number of scheduled injections (permanent faults count once).
    pub fn len(&self) -> usize {
        self.faults.len() + self.permanent.len()
    }

    /// Does this plan inject nothing?
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty() && self.permanent.is_empty()
    }

    /// The highest attempt number on which any transient fault fires for
    /// `node` — the number of failures a retry policy must outlast.
    pub fn worst_attempt(&self, node: NodeId) -> u32 {
        self.faults
            .keys()
            .filter(|(n, _)| *n == node)
            .map(|(_, a)| *a)
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wf_model::WorkflowBuilder;

    fn wf() -> Workflow {
        let mut b = WorkflowBuilder::new(1, "w");
        for _ in 0..12 {
            b.add("ConstInt");
        }
        b.build()
    }

    #[test]
    fn plans_are_deterministic_in_the_seed() {
        let w = wf();
        assert_eq!(FaultPlan::random(&w, 7), FaultPlan::random(&w, 7));
        // Across many seeds, at least one differs (sanity, not certainty).
        assert!((0..20u64).any(|s| FaultPlan::random(&w, s) != FaultPlan::random(&w, s + 1)));
    }

    #[test]
    fn random_plans_are_transient() {
        let w = wf();
        for seed in 0..50 {
            let plan = FaultPlan::random(&w, seed);
            for &node in w.nodes.keys() {
                assert!(plan.worst_attempt(node) <= 2, "recoverable in 3 attempts");
            }
        }
    }

    #[test]
    fn lookup_precedence_and_builders() {
        let n = NodeId(4);
        let plan = FaultPlan::new()
            .fail_on(n, 2, "flaky")
            .delay_on(NodeId(5), 1, 10)
            .panic_on(NodeId(6), 1, "boom");
        assert_eq!(plan.action(n, 1), None);
        assert!(matches!(plan.action(n, 2), Some(FaultAction::Fail { .. })));
        assert!(matches!(
            plan.action(NodeId(5), 1),
            Some(FaultAction::Delay { micros: 10 })
        ));
        assert!(matches!(
            plan.action(NodeId(6), 1),
            Some(FaultAction::Panic { .. })
        ));
        assert_eq!(plan.len(), 3);
        assert!(!plan.is_empty());

        let permanent = FaultPlan::new().fail_always(n, "dead");
        for attempt in 1..10 {
            assert!(matches!(
                permanent.action(n, attempt),
                Some(FaultAction::Fail { .. })
            ));
        }
    }
}
