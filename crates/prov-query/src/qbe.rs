//! Query-by-example: structural matching of a small example graph against
//! provenance.
//!
//! The tutorial contrasts textual query languages with "recent work on
//! intuitive visual interfaces to query workflows" [4, 34]. A visual
//! interface lets the user *draw* the pattern — a few boxes ("a Histogram
//! fed by some load module, feeding anything that saves a file") — and the
//! system finds all embeddings. This module is the matching engine beneath
//! such an interface: backtracking subgraph isomorphism over run-level
//! provenance with per-node label constraints.

use prov_core::model::RetrospectiveProvenance;
use std::collections::BTreeMap;
use wf_model::NodeId;

/// A constraint on the module identity of a matched run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LabelConstraint {
    /// Match any run.
    Any,
    /// Exact module identity (`name@version`).
    Exact(String),
    /// Module name prefix before `@` (any version).
    Name(String),
}

impl LabelConstraint {
    fn accepts(&self, identity: &str) -> bool {
        match self {
            LabelConstraint::Any => true,
            LabelConstraint::Exact(s) => identity == s,
            LabelConstraint::Name(s) => identity.split('@').next() == Some(s.as_str()),
        }
    }
}

/// The example (pattern) graph: pattern nodes with label constraints and
/// directed dataflow edges between them.
#[derive(Debug, Clone, Default)]
pub struct ExampleGraph {
    constraints: Vec<LabelConstraint>,
    edges: Vec<(usize, usize)>,
}

impl ExampleGraph {
    /// An empty example.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a pattern node matching any module.
    pub fn any(&mut self) -> usize {
        self.constraints.push(LabelConstraint::Any);
        self.constraints.len() - 1
    }

    /// Add a pattern node matching a module name (any version).
    pub fn module(&mut self, name: &str) -> usize {
        self.constraints
            .push(LabelConstraint::Name(name.to_string()));
        self.constraints.len() - 1
    }

    /// Add a pattern node matching an exact identity.
    pub fn exact(&mut self, identity: &str) -> usize {
        self.constraints
            .push(LabelConstraint::Exact(identity.to_string()));
        self.constraints.len() - 1
    }

    /// Require dataflow from pattern node `from` to pattern node `to`
    /// (matched runs must be connected by at least one artifact).
    pub fn edge(&mut self, from: usize, to: usize) {
        self.edges.push((from, to));
    }

    /// Number of pattern nodes.
    pub fn len(&self) -> usize {
        self.constraints.len()
    }

    /// Is the pattern empty?
    pub fn is_empty(&self) -> bool {
        self.constraints.is_empty()
    }
}

/// One embedding of the example in the provenance: pattern node index →
/// matched run node.
pub type Match = BTreeMap<usize, NodeId>;

/// Find all embeddings of `example` in `retro`'s run-level dataflow graph.
///
/// Matching is injective (two pattern nodes never map to the same run) and
/// edge-preserving (a pattern edge requires direct run→run dataflow).
pub fn find_matches(example: &ExampleGraph, retro: &RetrospectiveProvenance) -> Vec<Match> {
    // Build the run-level dataflow graph: r1 -> r2 iff some artifact
    // produced by r1 is consumed by r2.
    let mut produced: BTreeMap<u64, Vec<NodeId>> = BTreeMap::new();
    for run in &retro.runs {
        for (_, h) in &run.outputs {
            produced.entry(*h).or_default().push(run.node);
        }
    }
    let mut adj: BTreeMap<NodeId, Vec<NodeId>> = BTreeMap::new();
    let mut identities: BTreeMap<NodeId, &str> = BTreeMap::new();
    for run in &retro.runs {
        identities.insert(run.node, &run.identity);
        for (_, h) in &run.inputs {
            if let Some(sources) = produced.get(h) {
                for &s in sources {
                    adj.entry(s).or_default().push(run.node);
                }
            }
        }
    }
    let has_edge = |a: NodeId, b: NodeId| adj.get(&a).map(|v| v.contains(&b)).unwrap_or(false);

    let runs: Vec<NodeId> = retro.runs.iter().map(|r| r.node).collect();
    let mut matches = Vec::new();
    let mut assignment: Vec<Option<NodeId>> = vec![None; example.len()];

    fn backtrack(
        i: usize,
        example: &ExampleGraph,
        runs: &[NodeId],
        identities: &BTreeMap<NodeId, &str>,
        has_edge: &dyn Fn(NodeId, NodeId) -> bool,
        assignment: &mut Vec<Option<NodeId>>,
        matches: &mut Vec<Match>,
    ) {
        if i == example.len() {
            matches.push(
                assignment
                    .iter()
                    .enumerate()
                    .map(|(k, v)| (k, v.expect("complete assignment")))
                    .collect(),
            );
            return;
        }
        'candidates: for &run in runs {
            if assignment.iter().flatten().any(|&r| r == run) {
                continue;
            }
            if !example.constraints[i].accepts(identities.get(&run).copied().unwrap_or("")) {
                continue;
            }
            // Check edges to already-assigned pattern nodes.
            for &(a, b) in &example.edges {
                if a == i {
                    if let Some(Some(rb)) = assignment.get(b) {
                        if !has_edge(run, *rb) {
                            continue 'candidates;
                        }
                    }
                }
                if b == i {
                    if let Some(Some(ra)) = assignment.get(a) {
                        if !has_edge(*ra, run) {
                            continue 'candidates;
                        }
                    }
                }
            }
            assignment[i] = Some(run);
            backtrack(
                i + 1,
                example,
                runs,
                identities,
                has_edge,
                assignment,
                matches,
            );
            assignment[i] = None;
        }
    }

    backtrack(
        0,
        example,
        &runs,
        &identities,
        &has_edge,
        &mut assignment,
        &mut matches,
    );
    matches
}

#[cfg(test)]
mod tests {
    use super::*;
    use prov_core::capture::{CaptureLevel, ProvenanceCapture};
    use wf_engine::synth::figure1_workflow;
    use wf_engine::{standard_registry, Executor};

    fn fig1() -> (RetrospectiveProvenance, wf_engine::synth::Figure1Nodes) {
        let (wf, nodes) = figure1_workflow(1);
        let exec = Executor::new(standard_registry());
        let mut cap = ProvenanceCapture::new(CaptureLevel::Fine);
        let r = exec.run_observed(&wf, &mut cap).unwrap();
        (cap.take(r.exec).unwrap(), nodes)
    }

    #[test]
    fn single_node_pattern_matches_each_run_of_module() {
        let (retro, nodes) = fig1();
        let mut ex = ExampleGraph::new();
        ex.module("SaveFile");
        let ms = find_matches(&ex, &retro);
        assert_eq!(ms.len(), 2);
        let matched: Vec<NodeId> = ms.iter().map(|m| m[&0]).collect();
        assert!(matched.contains(&nodes.save_hist));
        assert!(matched.contains(&nodes.save_iso));
    }

    #[test]
    fn two_node_chain_pattern() {
        let (retro, nodes) = fig1();
        let mut ex = ExampleGraph::new();
        let h = ex.module("Histogram");
        let p = ex.any();
        ex.edge(h, p);
        let ms = find_matches(&ex, &retro);
        assert_eq!(ms.len(), 1, "only PlotTable consumes the histogram");
        assert_eq!(ms[0][&h], nodes.hist);
        assert_eq!(ms[0][&p], nodes.plot);
    }

    #[test]
    fn fanout_pattern_finds_both_branches() {
        let (retro, nodes) = fig1();
        // Load feeding two distinct consumers.
        let mut ex = ExampleGraph::new();
        let load = ex.module("LoadVolume");
        let c1 = ex.any();
        let c2 = ex.any();
        ex.edge(load, c1);
        ex.edge(load, c2);
        let ms = find_matches(&ex, &retro);
        // (hist, iso) and (iso, hist): 2 injective embeddings.
        assert_eq!(ms.len(), 2);
        for m in &ms {
            assert_eq!(m[&load], nodes.load);
            assert_ne!(m[&c1], m[&c2]);
        }
    }

    #[test]
    fn exact_constraint_filters_versions() {
        let (retro, _) = fig1();
        let mut ex = ExampleGraph::new();
        ex.exact("Histogram@1");
        assert_eq!(find_matches(&ex, &retro).len(), 1);
        let mut ex = ExampleGraph::new();
        ex.exact("Histogram@2");
        assert!(find_matches(&ex, &retro).is_empty());
    }

    #[test]
    fn unsatisfiable_edge_yields_no_match() {
        let (retro, _) = fig1();
        let mut ex = ExampleGraph::new();
        // Histogram feeding Isosurface never happens.
        let h = ex.module("Histogram");
        let i = ex.module("Isosurface");
        ex.edge(h, i);
        assert!(find_matches(&ex, &retro).is_empty());
    }

    #[test]
    fn three_stage_pipeline_pattern() {
        let (retro, nodes) = fig1();
        let mut ex = ExampleGraph::new();
        let a = ex.module("Isosurface");
        let b = ex.module("SmoothMesh");
        let c = ex.module("RenderMesh");
        ex.edge(a, b);
        ex.edge(b, c);
        let ms = find_matches(&ex, &retro);
        assert_eq!(ms.len(), 1);
        assert_eq!(ms[0][&b], nodes.smooth);
    }
}
