//! Generic directed-graph utilities shared across the platform.
//!
//! Workflows, causality graphs, OPM graphs, and version trees are all
//! directed graphs; this module centralizes the classic algorithms so each
//! crate works over a uniform, index-based representation. Callers map their
//! domain identifiers to dense `usize` indexes (see [`Digraph::with_nodes`]).

use std::collections::VecDeque;

/// A directed graph over dense `usize` node indexes with forward and
/// reverse adjacency lists.
#[derive(Debug, Clone, Default)]
pub struct Digraph {
    /// Forward adjacency: `succ[u]` lists v with an edge u → v.
    succ: Vec<Vec<usize>>,
    /// Reverse adjacency: `pred[v]` lists u with an edge u → v.
    pred: Vec<Vec<usize>>,
    edges: usize,
}

impl Digraph {
    /// An empty graph with `n` isolated nodes.
    pub fn with_nodes(n: usize) -> Self {
        Self {
            succ: vec![Vec::new(); n],
            pred: vec![Vec::new(); n],
            edges: 0,
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.succ.len()
    }

    /// Number of edges (parallel edges counted individually).
    pub fn edge_count(&self) -> usize {
        self.edges
    }

    /// Add a node, returning its index.
    pub fn add_node(&mut self) -> usize {
        self.succ.push(Vec::new());
        self.pred.push(Vec::new());
        self.succ.len() - 1
    }

    /// Add a directed edge `u → v`. Parallel edges are permitted (two
    /// connections between the same module pair on different ports).
    pub fn add_edge(&mut self, u: usize, v: usize) {
        assert!(
            u < self.succ.len() && v < self.succ.len(),
            "edge endpoint out of range"
        );
        self.succ[u].push(v);
        self.pred[v].push(u);
        self.edges += 1;
    }

    /// Successors of `u`.
    pub fn successors(&self, u: usize) -> &[usize] {
        &self.succ[u]
    }

    /// Predecessors of `u`.
    pub fn predecessors(&self, u: usize) -> &[usize] {
        &self.pred[u]
    }

    /// Kahn's algorithm. Returns a topological order, or `None` if the graph
    /// has a cycle.
    pub fn topo_order(&self) -> Option<Vec<usize>> {
        let n = self.node_count();
        let mut indeg: Vec<usize> = (0..n).map(|v| self.pred[v].len()).collect();
        let mut queue: VecDeque<usize> = (0..n).filter(|&v| indeg[v] == 0).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(u) = queue.pop_front() {
            order.push(u);
            for &v in &self.succ[u] {
                indeg[v] -= 1;
                if indeg[v] == 0 {
                    queue.push_back(v);
                }
            }
        }
        (order.len() == n).then_some(order)
    }

    /// True iff the graph is acyclic.
    pub fn is_dag(&self) -> bool {
        self.topo_order().is_some()
    }

    /// Nodes reachable from `start` following edges forward
    /// (`start` included).
    pub fn reachable_from(&self, start: usize) -> Vec<bool> {
        self.bfs(start, false)
    }

    /// Nodes that can reach `start` following edges backward
    /// (`start` included). This is the *upstream closure* used for lineage.
    pub fn reaching(&self, start: usize) -> Vec<bool> {
        self.bfs(start, true)
    }

    /// BFS with a depth bound; `None` depth means unbounded.
    /// Returns (visited flags, depth of each visited node).
    pub fn bfs_depths(
        &self,
        start: usize,
        reverse: bool,
        max_depth: Option<usize>,
    ) -> Vec<Option<usize>> {
        let n = self.node_count();
        let mut depth = vec![None; n];
        if start >= n {
            return depth;
        }
        let mut q = VecDeque::new();
        depth[start] = Some(0);
        q.push_back(start);
        while let Some(u) = q.pop_front() {
            let du = depth[u].expect("queued nodes have depths");
            if let Some(m) = max_depth {
                if du == m {
                    continue;
                }
            }
            let next = if reverse {
                &self.pred[u]
            } else {
                &self.succ[u]
            };
            for &v in next {
                if depth[v].is_none() {
                    depth[v] = Some(du + 1);
                    q.push_back(v);
                }
            }
        }
        depth
    }

    fn bfs(&self, start: usize, reverse: bool) -> Vec<bool> {
        self.bfs_depths(start, reverse, None)
            .into_iter()
            .map(|d| d.is_some())
            .collect()
    }

    /// Full transitive closure as a boolean matrix; `closure[u][v]` is true
    /// iff v is reachable from u (u reaches itself). O(V·(V+E)).
    pub fn transitive_closure(&self) -> Vec<Vec<bool>> {
        (0..self.node_count())
            .map(|u| self.reachable_from(u))
            .collect()
    }

    /// Strongly connected components via Tarjan's algorithm (iterative).
    /// Returns, for each node, its component index; components are numbered
    /// in reverse topological order of the condensation.
    pub fn tarjan_scc(&self) -> Vec<usize> {
        let n = self.node_count();
        let mut index = vec![usize::MAX; n];
        let mut low = vec![0usize; n];
        let mut on_stack = vec![false; n];
        let mut comp = vec![usize::MAX; n];
        let mut stack = Vec::new();
        let mut next_index = 0usize;
        let mut next_comp = 0usize;

        // Iterative DFS: frame = (node, next child position).
        for root in 0..n {
            if index[root] != usize::MAX {
                continue;
            }
            let mut call: Vec<(usize, usize)> = vec![(root, 0)];
            while let Some(&mut (u, ref mut ci)) = call.last_mut() {
                if *ci == 0 {
                    index[u] = next_index;
                    low[u] = next_index;
                    next_index += 1;
                    stack.push(u);
                    on_stack[u] = true;
                }
                if *ci < self.succ[u].len() {
                    let v = self.succ[u][*ci];
                    *ci += 1;
                    if index[v] == usize::MAX {
                        call.push((v, 0));
                    } else if on_stack[v] {
                        low[u] = low[u].min(index[v]);
                    }
                } else {
                    if low[u] == index[u] {
                        loop {
                            let w = stack.pop().expect("scc stack underflow");
                            on_stack[w] = false;
                            comp[w] = next_comp;
                            if w == u {
                                break;
                            }
                        }
                        next_comp += 1;
                    }
                    call.pop();
                    if let Some(&mut (p, _)) = call.last_mut() {
                        low[p] = low[p].min(low[u]);
                    }
                }
            }
        }
        comp
    }

    /// Transitive reduction of a DAG: the minimal edge set with the same
    /// reachability. Panics if the graph is not a DAG. Returns the list of
    /// retained `(u, v)` edges (deduplicated).
    pub fn transitive_reduction(&self) -> Vec<(usize, usize)> {
        let order = self
            .topo_order()
            .expect("transitive_reduction requires a DAG");
        let n = self.node_count();
        // position in topological order, for longest-path comparison
        let mut pos = vec![0usize; n];
        for (i, &u) in order.iter().enumerate() {
            pos[u] = i;
        }
        // An edge u→v is redundant iff v is reachable from u via a path of
        // length ≥ 2. Check by BFS from each distinct successor of u.
        let mut kept = Vec::new();
        for u in 0..n {
            let mut uniq: Vec<usize> = self.succ[u].clone();
            uniq.sort_unstable();
            uniq.dedup();
            for &v in &uniq {
                let mut redundant = false;
                // BFS from u through successors other than the direct edge.
                let mut seen = vec![false; n];
                let mut q: VecDeque<usize> = VecDeque::new();
                for &w in &uniq {
                    if w != v && pos[w] < pos[v] && !seen[w] {
                        seen[w] = true;
                        q.push_back(w);
                    }
                }
                while let Some(x) = q.pop_front() {
                    if x == v {
                        redundant = true;
                        break;
                    }
                    for &y in &self.succ[x] {
                        if !seen[y] && pos[y] <= pos[v] {
                            seen[y] = true;
                            q.push_back(y);
                        }
                    }
                }
                if !redundant {
                    kept.push((u, v));
                }
            }
        }
        kept
    }

    /// Longest path length (in edges) in a DAG; `None` if cyclic.
    pub fn longest_path_len(&self) -> Option<usize> {
        let order = self.topo_order()?;
        let mut dist = vec![0usize; self.node_count()];
        let mut best = 0;
        for &u in &order {
            for &v in &self.succ[u] {
                if dist[u] + 1 > dist[v] {
                    dist[v] = dist[u] + 1;
                    best = best.max(dist[v]);
                }
            }
        }
        Some(best)
    }

    /// All source nodes (no predecessors).
    pub fn sources(&self) -> Vec<usize> {
        (0..self.node_count())
            .filter(|&v| self.pred[v].is_empty())
            .collect()
    }

    /// All sink nodes (no successors).
    pub fn sinks(&self) -> Vec<usize> {
        (0..self.node_count())
            .filter(|&v| self.succ[v].is_empty())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Digraph {
        // 0 → 1 → 3, 0 → 2 → 3, plus shortcut 0 → 3
        let mut g = Digraph::with_nodes(4);
        g.add_edge(0, 1);
        g.add_edge(0, 2);
        g.add_edge(1, 3);
        g.add_edge(2, 3);
        g.add_edge(0, 3);
        g
    }

    #[test]
    fn topo_order_respects_edges() {
        let g = diamond();
        let order = g.topo_order().unwrap();
        let pos = |x: usize| order.iter().position(|&v| v == x).unwrap();
        assert!(pos(0) < pos(1));
        assert!(pos(0) < pos(2));
        assert!(pos(1) < pos(3));
        assert!(pos(2) < pos(3));
    }

    #[test]
    fn cycle_detected() {
        let mut g = Digraph::with_nodes(3);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(2, 0);
        assert!(!g.is_dag());
        assert!(g.topo_order().is_none());
    }

    #[test]
    fn reachability_forward_and_backward() {
        let g = diamond();
        let fwd = g.reachable_from(1);
        assert_eq!(fwd, vec![false, true, false, true]);
        let back = g.reaching(3);
        assert_eq!(back, vec![true, true, true, true]);
    }

    #[test]
    fn bfs_depth_bound_limits_frontier() {
        let mut g = Digraph::with_nodes(4);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(2, 3);
        let d = g.bfs_depths(0, false, Some(2));
        assert_eq!(d, vec![Some(0), Some(1), Some(2), None]);
    }

    #[test]
    fn scc_groups_cycles() {
        let mut g = Digraph::with_nodes(5);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(2, 0); // {0,1,2} is a component
        g.add_edge(2, 3);
        g.add_edge(3, 4);
        let comp = g.tarjan_scc();
        assert_eq!(comp[0], comp[1]);
        assert_eq!(comp[1], comp[2]);
        assert_ne!(comp[2], comp[3]);
        assert_ne!(comp[3], comp[4]);
    }

    #[test]
    fn transitive_reduction_removes_shortcut() {
        let g = diamond();
        let kept = g.transitive_reduction();
        assert!(kept.contains(&(0, 1)));
        assert!(kept.contains(&(0, 2)));
        assert!(kept.contains(&(1, 3)));
        assert!(kept.contains(&(2, 3)));
        assert!(!kept.contains(&(0, 3)), "the shortcut edge is redundant");
    }

    #[test]
    fn longest_path_of_chain() {
        let mut g = Digraph::with_nodes(4);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(2, 3);
        assert_eq!(g.longest_path_len(), Some(3));
    }

    #[test]
    fn sources_and_sinks() {
        let g = diamond();
        assert_eq!(g.sources(), vec![0]);
        assert_eq!(g.sinks(), vec![3]);
    }

    #[test]
    fn transitive_closure_matches_reachability() {
        let g = diamond();
        let tc = g.transitive_closure();
        assert!(tc[0][3]);
        assert!(!tc[1][2]);
        assert!(tc[2][3]);
    }
}
