//! Property-based tests of the engine's event stream as a telemetry
//! source: the parallel driver must emit a *complete*, *topologically
//! consistent* stream (telemetry is only trustworthy if the stream is),
//! and the fan-out observer must hand every sink the identical sequence.

use proptest::prelude::*;
use provenance_workflows::prelude::*;
use provenance_workflows::telemetry::{SpanCollector, SpanKind};
use std::collections::BTreeMap;
use wf_engine::event::RecordingObserver;
use wf_engine::synth::{layered_dag, LayeredSpec};
use wf_engine::EngineEvent;

/// The node a module-scoped event talks about, if any.
fn node_of(e: &EngineEvent) -> Option<NodeId> {
    match e {
        EngineEvent::ModuleStarted { node, .. }
        | EngineEvent::InputBound { node, .. }
        | EngineEvent::OutputProduced { node, .. }
        | EngineEvent::CacheChecked { node, .. }
        | EngineEvent::AttemptStarted { node, .. }
        | EngineEvent::AttemptFailed { node, .. }
        | EngineEvent::BackoffStarted { node, .. }
        | EngineEvent::ModuleTimedOut { node, .. }
        | EngineEvent::ModuleFinished { node, .. } => Some(*node),
        EngineEvent::WorkflowStarted { .. }
        | EngineEvent::RunResumed { .. }
        | EngineEvent::WorkflowFinished { .. } => None,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn parallel_stream_is_complete_and_topologically_consistent(
        depth in 1usize..5, width in 1usize..5, threads in 1usize..6, seed in 0u64..500
    ) {
        let (wf, _) = layered_dag(
            1,
            LayeredSpec { depth, width, fan_in: 2, work: 1, seed },
        );
        let exec = Executor::new(standard_registry());
        let mut obs = RecordingObserver::default();
        exec.run_parallel(&wf, threads, &mut obs).expect("runs");
        let events = &obs.events;

        // The run is bracketed: WorkflowStarted first, WorkflowFinished last.
        prop_assert!(matches!(events.first(), Some(EngineEvent::WorkflowStarted { .. })));
        prop_assert!(matches!(events.last(), Some(EngineEvent::WorkflowFinished { .. })));

        // Completeness: every node emits exactly one ModuleStarted and
        // exactly one terminal ModuleFinished, in that order.
        let mut started: BTreeMap<NodeId, usize> = BTreeMap::new();
        let mut finished: BTreeMap<NodeId, usize> = BTreeMap::new();
        for (i, e) in events.iter().enumerate() {
            match e {
                EngineEvent::ModuleStarted { node, .. } => {
                    prop_assert!(started.insert(*node, i).is_none(), "duplicate start");
                }
                EngineEvent::ModuleFinished { node, .. } => {
                    prop_assert!(finished.insert(*node, i).is_none(), "duplicate finish");
                }
                _ => {}
            }
        }
        prop_assert_eq!(started.len(), wf.node_count());
        prop_assert_eq!(finished.len(), wf.node_count());
        for (node, s) in &started {
            prop_assert!(finished[node] > *s, "finish after start for {node}");
        }

        // Per-node ordering: every event about a node sits inside that
        // node's [started, finished] bracket.
        for (i, e) in events.iter().enumerate() {
            if let Some(node) = node_of(e) {
                prop_assert!(i >= started[&node], "event before start: {e:?}");
                prop_assert!(i <= finished[&node], "event after finish: {e:?}");
            }
        }

        // Topological consistency: a module can only start after every
        // upstream producer finished — the dataflow order is visible in
        // the stream itself, which is what makes retrospective span
        // reconstruction sound.
        for node in started.keys() {
            for conn in wf.inputs_of(*node) {
                prop_assert!(
                    finished[&conn.from.node] < started[node],
                    "{} started before its input {} finished",
                    node, conn.from.node
                );
            }
        }
    }

    #[test]
    fn fanout_hands_every_sink_the_identical_stream(
        depth in 1usize..4, width in 1usize..4, threads in 1usize..5, seed in 0u64..500
    ) {
        let (wf, _) = layered_dag(
            1,
            LayeredSpec { depth, width, fan_in: 2, work: 1, seed },
        );
        let exec = Executor::new(standard_registry());
        let mut a = RecordingObserver::default();
        let mut b = RecordingObserver::default();
        {
            let mut fan = FanoutObserver::new().with(&mut a).with(&mut b);
            exec.run_parallel(&wf, threads, &mut fan).expect("runs");
        }
        prop_assert!(!a.events.is_empty());
        prop_assert_eq!(&a.events, &b.events, "sinks saw different streams");
    }

    #[test]
    fn spans_from_a_parallel_run_are_well_formed(
        depth in 1usize..4, width in 1usize..4, threads in 1usize..5, seed in 0u64..500
    ) {
        let (wf, _) = layered_dag(
            1,
            LayeredSpec { depth, width, fan_in: 2, work: 1, seed },
        );
        let exec = Executor::new(standard_registry());
        let mut col = SpanCollector::new();
        let r = exec.run_parallel(&wf, threads, &mut col).expect("runs");
        let trace = col.take_trace();

        // One run span; one module span per node; parents resolve; every
        // child interval nests inside its module span's extent.
        let run = trace.run_span(r.exec).expect("run span");
        prop_assert_eq!(trace.of_kind(SpanKind::Run).count(), 1);
        prop_assert_eq!(trace.of_kind(SpanKind::Module).count(), wf.node_count());
        for s in &trace.spans {
            prop_assert!(s.end_micros >= s.start_micros);
            match s.parent {
                None => prop_assert_eq!(s.kind, SpanKind::Run),
                Some(p) => {
                    let parent = trace.spans.iter().find(|x| x.id == p).expect("parent exists");
                    prop_assert!(parent.kind == SpanKind::Run || parent.kind == SpanKind::Module);
                }
            }
        }
        for m in trace.of_kind(SpanKind::Module) {
            prop_assert_eq!(m.parent, Some(run.id));
            for child in trace.children_of(m.id) {
                prop_assert!(child.start_micros >= m.start_micros);
                prop_assert!(child.end_micros <= m.end_micros);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// W3C traceparent propagation: parse/render round-trips, and *anything*
// that is not a well-formed header is rejected (the server then restarts
// the trace — it must never error on propagation input).
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn traceparent_round_trips_through_render_and_parse(
        seed in 1u64..u64::MAX, sequence in 0u64..10_000, attempt in 1u32..16
    ) {
        use provenance_workflows::telemetry::TraceContext;
        let root = TraceContext::root(seed, sequence);
        let reparsed = TraceContext::parse(&root.render()).expect("own rendering parses");
        prop_assert_eq!(root, reparsed);

        // Retried attempts stay inside the same trace with distinct spans.
        let retried = root.for_attempt(attempt);
        prop_assert_eq!(retried.trace_id, root.trace_id);
        let reparsed = TraceContext::parse(&retried.render()).expect("attempt parses");
        prop_assert_eq!(retried, reparsed);
    }

    #[test]
    fn arbitrary_garbage_never_parses_as_traceparent(header in "[ -~]{0,64}") {
        use provenance_workflows::telemetry::TraceContext;
        // Either the input is rejected, or it was a genuinely well-formed
        // header: exactly 4 dash-parts of the right widths, version 00,
        // lowercase hex, nonzero ids. Nothing else may slip through.
        if let Ok(ctx) = TraceContext::parse(&header) {
            let parts: Vec<&str> = header.trim().split('-').collect();
            prop_assert_eq!(parts.len(), 4);
            prop_assert_eq!(parts[0], "00");
            prop_assert_eq!(parts[1].len(), 32);
            prop_assert_eq!(parts[2].len(), 16);
            prop_assert_eq!(parts[3].len(), 2);
            for p in &parts[1..] {
                prop_assert!(p.chars().all(|c| c.is_ascii_hexdigit() && !c.is_ascii_uppercase()));
            }
            prop_assert!(ctx.trace_id != 0 && ctx.span_id != 0);
        }
    }

    #[test]
    fn truncations_and_mutations_of_a_valid_header_are_rejected(
        seed in 1u64..u64::MAX, cut in 0usize..55
    ) {
        use provenance_workflows::telemetry::TraceContext;
        let valid = TraceContext::root(seed, 0).render();
        prop_assert_eq!(valid.len(), 55, "00-<32>-<16>-<2> with three dashes");
        // Every proper prefix must fail to parse.
        let truncated = &valid[..cut];
        prop_assert!(TraceContext::parse(truncated).is_err(), "prefix '{}'", truncated);
        // Unknown versions must fail even with a valid tail.
        let wrong_version = format!("ff{}", &valid[2..]);
        prop_assert!(TraceContext::parse(&wrong_version).is_err());
        // Uppercasing breaks the lowercase-hex requirement whenever the
        // ids contain letters.
        let upper = valid.to_ascii_uppercase();
        if upper != valid {
            prop_assert!(TraceContext::parse(&upper).is_err());
        }
    }

    #[test]
    fn tracestate_attempt_round_trips_and_tolerates_noise(
        attempt in 1u32..1_000, noise in "[a-z0-9=:;,]{0,24}"
    ) {
        use provenance_workflows::telemetry::{
            parse_tracestate_attempt, render_tracestate_attempt,
        };
        let rendered = render_tracestate_attempt(attempt);
        prop_assert_eq!(parse_tracestate_attempt(&rendered), Some(attempt));
        // Other vendors' entries before ours must not confuse the parser.
        let padded = format!("{noise},{rendered}");
        if parse_tracestate_attempt(&noise).is_none() {
            prop_assert_eq!(parse_tracestate_attempt(&padded), Some(attempt));
        }
    }
}
