//! Provenance capture: turning the engine's event stream into
//! retrospective provenance.
//!
//! "Workflow systems … can be easily instrumented to automatically capture
//! provenance" (§2.2). [`ProvenanceCapture`] is that instrument: it
//! implements [`wf_engine::ExecObserver`] and accumulates a
//! [`RetrospectiveProvenance`] record per workflow run. The granularity is
//! configurable — the cost of each level is exactly what experiment E3
//! measures:
//!
//! * [`CaptureLevel::Off`] — record nothing (baseline).
//! * [`CaptureLevel::Coarse`] — module runs with parameters, status, and
//!   output artifacts; no input bindings, no previews.
//! * [`CaptureLevel::Fine`] — everything: input bindings per port, inline
//!   previews of small scalar values, full artifact records.

use crate::model::{Artifact, Environment, ModuleRun, RetrospectiveProvenance};
use std::collections::BTreeMap;
use wf_engine::{EngineEvent, ExecId, ExecObserver, ValueMeta};
use wf_model::{NodeId, ParamValue};

/// How much provenance to record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum CaptureLevel {
    /// Record nothing.
    Off,
    /// Runs, parameters, statuses, and outputs.
    Coarse,
    /// Everything, including input bindings and scalar previews.
    Fine,
}

/// In-progress record of one module run.
#[derive(Debug, Clone)]
struct PendingRun {
    identity: String,
    params: Vec<(String, ParamValue)>,
    started_millis: u64,
    inputs: Vec<(String, u64)>,
    outputs: Vec<(String, u64)>,
    attempts: u32,
    backoff_micros: u64,
}

/// In-progress record of one workflow run.
#[derive(Debug, Clone)]
struct PendingExec {
    workflow: wf_model::WorkflowId,
    workflow_name: String,
    started_millis: u64,
    pending: BTreeMap<NodeId, PendingRun>,
    finished: Vec<ModuleRun>,
    artifacts: BTreeMap<u64, Artifact>,
    resumed_from: Option<ExecId>,
}

/// The provenance-capture observer.
///
/// One capture instance can observe many executions (sequentially or
/// interleaved — records are keyed by [`ExecId`]); completed records are
/// retrieved with [`ProvenanceCapture::take`] or drained with
/// [`ProvenanceCapture::finish_all`].
#[derive(Debug)]
pub struct ProvenanceCapture {
    level: CaptureLevel,
    threads: usize,
    active: BTreeMap<ExecId, PendingExec>,
    completed: BTreeMap<ExecId, RetrospectiveProvenance>,
}

impl ProvenanceCapture {
    /// A capture instrument at the given level.
    pub fn new(level: CaptureLevel) -> Self {
        Self {
            level,
            threads: 1,
            active: BTreeMap::new(),
            completed: BTreeMap::new(),
        }
    }

    /// Record the executor thread count in the environment.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// The configured capture level.
    pub fn level(&self) -> CaptureLevel {
        self.level
    }

    /// Take the completed record of one run.
    pub fn take(&mut self, exec: ExecId) -> Option<RetrospectiveProvenance> {
        self.completed.remove(&exec)
    }

    /// Drain all completed records, in run order.
    pub fn finish_all(&mut self) -> Vec<RetrospectiveProvenance> {
        std::mem::take(&mut self.completed).into_values().collect()
    }

    /// Number of completed records waiting to be taken.
    pub fn completed_count(&self) -> usize {
        self.completed.len()
    }

    fn record_artifact(&mut self, exec: ExecId, meta: &ValueMeta) {
        if let Some(pe) = self.active.get_mut(&exec) {
            pe.artifacts.entry(meta.hash).or_insert_with(|| Artifact {
                hash: meta.hash,
                dtype: meta.dtype.clone(),
                size: meta.size,
                preview: meta.preview.clone(),
            });
        }
    }
}

impl ExecObserver for ProvenanceCapture {
    fn on_event(&mut self, event: &EngineEvent) {
        if self.level == CaptureLevel::Off {
            return;
        }
        let fine = self.level == CaptureLevel::Fine;
        match event {
            EngineEvent::WorkflowStarted {
                exec,
                workflow,
                name,
                at_millis,
            } => {
                self.active.insert(
                    *exec,
                    PendingExec {
                        workflow: *workflow,
                        workflow_name: name.clone(),
                        started_millis: *at_millis,
                        pending: BTreeMap::new(),
                        finished: Vec::new(),
                        artifacts: BTreeMap::new(),
                        resumed_from: None,
                    },
                );
            }
            EngineEvent::ModuleStarted {
                exec,
                node,
                identity,
                params,
                at_millis,
            } => {
                if let Some(pe) = self.active.get_mut(exec) {
                    pe.pending.insert(
                        *node,
                        PendingRun {
                            identity: identity.clone(),
                            params: params.clone(),
                            started_millis: *at_millis,
                            inputs: Vec::new(),
                            outputs: Vec::new(),
                            attempts: 1,
                            backoff_micros: 0,
                        },
                    );
                }
            }
            EngineEvent::InputBound {
                exec,
                node,
                port,
                meta,
            } => {
                if fine {
                    self.record_artifact(*exec, meta);
                    if let Some(pe) = self.active.get_mut(exec) {
                        if let Some(run) = pe.pending.get_mut(node) {
                            run.inputs.push((port.clone(), meta.hash));
                        }
                    }
                }
            }
            EngineEvent::OutputProduced {
                exec,
                node,
                port,
                meta,
            } => {
                self.record_artifact(*exec, meta);
                if let Some(pe) = self.active.get_mut(exec) {
                    if let Some(run) = pe.pending.get_mut(node) {
                        run.outputs.push((port.clone(), meta.hash));
                    }
                    if !fine {
                        // Coarse capture keeps artifact records lean.
                        if let Some(a) = pe.artifacts.get_mut(&meta.hash) {
                            a.preview = None;
                        }
                    }
                }
            }
            EngineEvent::ModuleFinished {
                exec,
                node,
                status,
                elapsed_micros,
                from_cache,
                error,
            } => {
                if let Some(pe) = self.active.get_mut(exec) {
                    // Skipped modules never emit ModuleStarted.
                    let partial = pe.pending.remove(node).unwrap_or(PendingRun {
                        identity: String::new(),
                        params: Vec::new(),
                        started_millis: 0,
                        inputs: Vec::new(),
                        outputs: Vec::new(),
                        attempts: 0,
                        backoff_micros: 0,
                    });
                    pe.finished.push(ModuleRun {
                        node: *node,
                        identity: partial.identity,
                        params: partial.params,
                        status: *status,
                        started_millis: partial.started_millis,
                        elapsed_micros: *elapsed_micros,
                        from_cache: *from_cache,
                        error: error.clone(),
                        inputs: partial.inputs,
                        outputs: partial.outputs,
                        attempts: partial.attempts,
                        backoff_micros: partial.backoff_micros,
                    });
                }
            }
            EngineEvent::WorkflowFinished {
                exec,
                status,
                at_millis,
            } => {
                if let Some(pe) = self.active.remove(exec) {
                    self.completed.insert(
                        *exec,
                        RetrospectiveProvenance {
                            exec: *exec,
                            workflow: pe.workflow,
                            workflow_name: pe.workflow_name,
                            status: *status,
                            started_millis: pe.started_millis,
                            finished_millis: *at_millis,
                            runs: pe.finished,
                            artifacts: pe.artifacts,
                            environment: Environment::current(self.threads),
                            resumed_from: pe.resumed_from,
                        },
                    );
                }
            }
            EngineEvent::AttemptStarted {
                exec,
                node,
                attempt,
            } => {
                if let Some(pe) = self.active.get_mut(exec) {
                    if let Some(run) = pe.pending.get_mut(node) {
                        run.attempts = (*attempt).max(run.attempts);
                    }
                }
            }
            EngineEvent::BackoffStarted {
                exec,
                node,
                delay_micros,
                ..
            } => {
                if let Some(pe) = self.active.get_mut(exec) {
                    if let Some(run) = pe.pending.get_mut(node) {
                        run.backoff_micros += *delay_micros;
                    }
                }
            }
            EngineEvent::RunResumed {
                exec, resumed_from, ..
            } => {
                if let Some(pe) = self.active.get_mut(exec) {
                    pe.resumed_from = Some(*resumed_from);
                }
            }
            // Per-attempt failures and timeouts are summarized by the
            // attempt counter and the final ModuleFinished error; cache
            // probes are summarized by `from_cache` (telemetry consumes
            // the raw lookup events instead).
            EngineEvent::AttemptFailed { .. }
            | EngineEvent::ModuleTimedOut { .. }
            | EngineEvent::CacheChecked { .. } => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wf_engine::synth::figure1_workflow;
    use wf_engine::{standard_registry, Executor, RunStatus};

    fn capture_fig1(level: CaptureLevel) -> RetrospectiveProvenance {
        let (wf, _) = figure1_workflow(1);
        let exec = Executor::new(standard_registry());
        let mut cap = ProvenanceCapture::new(level);
        let result = exec.run_observed(&wf, &mut cap).unwrap();
        cap.take(result.exec).expect("capture must complete")
    }

    #[test]
    fn fine_capture_records_full_log() {
        let retro = capture_fig1(CaptureLevel::Fine);
        assert_eq!(retro.status, RunStatus::Succeeded);
        assert_eq!(retro.run_count(), 8, "Figure 1 has eight modules");
        // Every non-source run has recorded inputs.
        let hist = retro
            .runs
            .iter()
            .find(|r| r.identity == "Histogram@1")
            .unwrap();
        assert_eq!(hist.inputs.len(), 1);
        assert_eq!(hist.outputs.len(), 1);
        // The grid artifact is shared between the two branches.
        let load = retro
            .runs
            .iter()
            .find(|r| r.identity == "LoadVolume@1")
            .unwrap();
        let grid_hash = load.outputs[0].1;
        assert_eq!(retro.users_of(grid_hash).len(), 2);
        assert!(!retro.artifacts.is_empty());
    }

    #[test]
    fn coarse_capture_drops_input_bindings() {
        let retro = capture_fig1(CaptureLevel::Coarse);
        assert_eq!(retro.run_count(), 8);
        assert!(retro.runs.iter().all(|r| r.inputs.is_empty()));
        assert!(retro.runs.iter().all(|r| !r.outputs.is_empty()));
        assert!(retro.artifacts.values().all(|a| a.preview.is_none()));
    }

    #[test]
    fn off_level_records_nothing() {
        let (wf, _) = figure1_workflow(1);
        let exec = Executor::new(standard_registry());
        let mut cap = ProvenanceCapture::new(CaptureLevel::Off);
        let result = exec.run_observed(&wf, &mut cap).unwrap();
        assert!(cap.take(result.exec).is_none());
        assert_eq!(cap.completed_count(), 0);
    }

    #[test]
    fn capture_works_across_multiple_runs() {
        let (wf, _) = figure1_workflow(1);
        let exec = Executor::new(standard_registry());
        let mut cap = ProvenanceCapture::new(CaptureLevel::Fine);
        let r1 = exec.run_observed(&wf, &mut cap).unwrap();
        let r2 = exec.run_observed(&wf, &mut cap).unwrap();
        assert_eq!(cap.completed_count(), 2);
        let p1 = cap.take(r1.exec).unwrap();
        let p2 = cap.take(r2.exec).unwrap();
        assert_ne!(p1.exec, p2.exec);
        // Same spec, same inputs: identical artifact sets.
        assert_eq!(
            p1.artifacts.keys().collect::<Vec<_>>(),
            p2.artifacts.keys().collect::<Vec<_>>()
        );
    }

    #[test]
    fn parallel_execution_capture_is_complete() {
        let wf = wf_engine::synth::challenge_workflow(2, 4, 3);
        let exec = Executor::new(standard_registry());
        let mut cap = ProvenanceCapture::new(CaptureLevel::Fine).with_threads(4);
        let result = exec.run_parallel(&wf, 4, &mut cap).unwrap();
        let retro = cap.take(result.exec).unwrap();
        assert_eq!(retro.run_count(), wf.node_count());
        assert_eq!(retro.environment.threads, 4);
    }

    #[test]
    fn failed_runs_still_have_provenance() {
        let mut b = wf_model::WorkflowBuilder::new(1, "failing");
        let src = b.add("ConstInt");
        let bad = b.add("FailIf");
        let sink = b.add("Identity");
        b.param(bad, "fail", true)
            .connect(src, "out", bad, "in")
            .connect(bad, "out", sink, "in");
        let wf = b.build();
        let exec = Executor::new(standard_registry());
        let mut cap = ProvenanceCapture::new(CaptureLevel::Fine);
        let result = exec.run_observed(&wf, &mut cap).unwrap();
        let retro = cap.take(result.exec).unwrap();
        assert_eq!(retro.status, RunStatus::Failed);
        assert_eq!(retro.run_of(bad).unwrap().status, RunStatus::Failed);
        assert_eq!(retro.run_of(sink).unwrap().status, RunStatus::Skipped);
        assert_eq!(retro.run_of(src).unwrap().status, RunStatus::Succeeded);
    }

    #[test]
    fn retries_and_resume_lineage_are_captured() {
        use wf_engine::{ExecPolicy, FaultPlan, RetryPolicy};
        let mut b = wf_model::WorkflowBuilder::new(1, "flaky");
        let src = b.add("ConstInt");
        let sink = b.add("Identity");
        b.connect(src, "out", sink, "in");
        let wf = b.build();

        // Transient fault: attempt 1 fails, attempt 2 succeeds; the full
        // recovery history lands in the retrospective record.
        let exec = Executor::new(standard_registry())
            .with_policy(
                ExecPolicy::new().with_retry(RetryPolicy::attempts(3).backoff(50, 2.0, 200)),
            )
            .with_faults(FaultPlan::new().fail_on(src, 1, "transient"));
        let mut cap = ProvenanceCapture::new(CaptureLevel::Fine);
        let result = exec.run_observed(&wf, &mut cap).unwrap();
        let retro = cap.take(result.exec).unwrap();
        assert_eq!(retro.status, RunStatus::Succeeded);
        let run = retro.run_of(src).unwrap();
        assert_eq!(run.attempts, 2, "both attempts recorded");
        assert!(run.backoff_micros >= 50, "backoff wait recorded");
        assert!(retro.render_log().contains("2 attempts"));

        // Permanent fault, then resume: the resumed record links back.
        let failing = Executor::new(standard_registry())
            .with_faults(FaultPlan::new().fail_always(src, "dead"));
        let mut cap = ProvenanceCapture::new(CaptureLevel::Fine);
        let previous = failing.run_observed(&wf, &mut cap).unwrap();
        assert_eq!(previous.status, RunStatus::Failed);

        let healthy = Executor::new(standard_registry()).with_cache(64);
        let resumed = healthy.resume(&wf, &previous, &mut cap).unwrap();
        assert_eq!(resumed.status, RunStatus::Succeeded);
        let retro = cap.take(resumed.exec).unwrap();
        assert_eq!(retro.resumed_from, Some(previous.exec));
        assert!(retro.render_log().contains("resumed from failed execution"));
    }

    #[test]
    fn cached_runs_are_flagged_in_provenance() {
        let (wf, _) = figure1_workflow(1);
        let exec = Executor::new(standard_registry()).with_cache(128);
        let mut cap = ProvenanceCapture::new(CaptureLevel::Fine);
        exec.run_observed(&wf, &mut cap).unwrap();
        let r2 = exec.run_observed(&wf, &mut cap).unwrap();
        let retro = cap.take(r2.exec).unwrap();
        assert!(retro.runs.iter().all(|r| r.from_cache));
        // Cached runs still record their output artifacts.
        assert!(retro.runs.iter().all(|r| !r.outputs.is_empty()));
    }
}
