//! E21: what does distributed capture cost, and how fast does stitching go?
//!
//! Two questions, answered on the same workloads. First, overhead: the
//! multi-worker driver runs the same workflow with probes on (vector
//! clocks, event rings, snapshot piggybacking) and off; the probed run
//! must sustain >= 95% of the unprobed throughput — CI gates on the
//! `overhead_ratio` field of `BENCH_distributed.json`. Second, stitch
//! throughput: for growing worker counts, the time to ingest every
//! per-site report blob and reassemble one coherent provenance record
//! (collector ordering + event replay + happens-before derivation),
//! reported in log entries per second.

use prov_core::stitch::stitch_blobs;
use prov_probe::Collector;
use wf_engine::synth::challenge_workflow;
use wf_engine::{standard_registry, DistribOptions, Executor};

/// One worker-count measurement of stitch throughput.
#[derive(Debug)]
pub struct StitchRow {
    /// Simulated worker sites the run was spread over.
    pub workers: usize,
    /// Report blobs stitched (workers + coordinator).
    pub blobs: usize,
    /// Total log entries across the blobs.
    pub entries: usize,
    /// Cross-site happens-before edges derived.
    pub hb_edges: usize,
    /// Median time to ingest + stitch all blobs (µs).
    pub stitch_us: f64,
    /// Entries stitched per second at the median.
    pub entries_per_sec: f64,
    /// Whether the stitched record was complete (no gaps/conflicts).
    pub complete: bool,
}

/// The probed-vs-unprobed driver comparison.
#[derive(Debug)]
pub struct OverheadRow {
    /// Worker sites in both variants.
    pub workers: usize,
    /// Workflow runs per repetition.
    pub runs_per_rep: usize,
    /// Median duration with probes off (µs).
    pub unprobed_us: f64,
    /// Median duration with probes on (µs).
    pub probed_us: f64,
}

impl OverheadRow {
    /// Probed throughput as a fraction of unprobed (1.0 = free).
    pub fn throughput_ratio(&self) -> f64 {
        self.unprobed_us / self.probed_us.max(1e-9)
    }
}

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

/// Interleaved two-variant medians (same discipline as E15's `medians3`):
/// one sample of each per round after a warm-up, so machine drift hits
/// both variants equally.
fn medians2(reps: usize, mut a: impl FnMut(), mut b: impl FnMut()) -> (f64, f64) {
    let mut sa = Vec::with_capacity(reps);
    let mut sb = Vec::with_capacity(reps);
    a();
    b();
    let sample = |f: &mut dyn FnMut()| {
        let t = std::time::Instant::now();
        f();
        t.elapsed().as_secs_f64() * 1e6
    };
    for _ in 0..reps {
        sa.push(sample(&mut a));
        sb.push(sample(&mut b));
    }
    (median(&mut sa), median(&mut sb))
}

/// Measure stitch throughput for each worker count: capture one probed
/// distributed run, then repeatedly re-stitch its encoded blobs.
pub fn experiment_stitch(worker_counts: &[usize], reps: usize) -> Vec<StitchRow> {
    let mut rows = Vec::new();
    for &workers in worker_counts {
        let wf = challenge_workflow(1, 4, 3);
        let exec = Executor::new(standard_registry());
        let dist = exec
            .run_distributed(&wf, DistribOptions::new(workers).with_trace_id(0xe21))
            .expect("distributed run");
        let blobs: Vec<Vec<u8>> = dist.reports.iter().map(|r| r.encode()).collect();
        let entries = {
            let mut c = Collector::new();
            for b in &blobs {
                c.ingest_blob(b).expect("fresh blobs decode");
            }
            c.entry_count()
        };
        let mut samples = Vec::with_capacity(reps);
        let mut hb_edges = 0;
        let mut complete = false;
        for _ in 0..=reps {
            let t = std::time::Instant::now();
            let s = stitch_blobs(blobs.iter().map(Vec::as_slice));
            let us = t.elapsed().as_secs_f64() * 1e6;
            hb_edges = s.hb_edges.len();
            complete = s.is_complete();
            samples.push(us);
        }
        samples.remove(0); // warm-up
        let stitch_us = median(&mut samples);
        rows.push(StitchRow {
            workers,
            blobs: blobs.len(),
            entries,
            hb_edges,
            stitch_us,
            entries_per_sec: entries as f64 / (stitch_us / 1e6).max(1e-9),
            complete,
        });
    }
    rows
}

/// Measure probe overhead: the distributed driver with probes on vs off,
/// interleaved, on a multi-subject challenge workload.
pub fn experiment_probe_overhead(workers: usize, reps: usize) -> OverheadRow {
    let wf = challenge_workflow(1, 4, 3);
    let runs_per_rep = 2;
    let exec = Executor::new(standard_registry());
    let (unprobed_us, probed_us) = medians2(
        reps,
        || {
            for _ in 0..runs_per_rep {
                exec.run_distributed(&wf, DistribOptions::new(workers).unprobed())
                    .expect("unprobed run");
            }
        },
        || {
            for _ in 0..runs_per_rep {
                exec.run_distributed(&wf, DistribOptions::new(workers))
                    .expect("probed run");
            }
        },
    );
    OverheadRow {
        workers,
        runs_per_rep,
        unprobed_us,
        probed_us,
    }
}

/// Render E21 results as the stable `BENCH_distributed.json` document.
pub fn distributed_json(stitch: &[StitchRow], overhead: &OverheadRow) -> String {
    let rows = stitch
        .iter()
        .map(|r| {
            format!(
                "{{\"workers\":{},\"blobs\":{},\"entries\":{},\"hb_edges\":{},\
                 \"stitch_us\":{:.1},\"entries_per_sec\":{:.0},\"complete\":{}}}",
                r.workers,
                r.blobs,
                r.entries,
                r.hb_edges,
                r.stitch_us,
                r.entries_per_sec,
                r.complete
            )
        })
        .collect::<Vec<_>>()
        .join(",\n    ");
    format!(
        "{{\n  \"benchmark\": \"distributed-capture\",\n  \"stitch\": [\n    {rows}\n  ],\n  \
         \"probe_overhead\": {{\n    \"workers\": {},\n    \"runs_per_rep\": {},\n    \
         \"unprobed_us\": {:.1},\n    \"probed_us\": {:.1}\n  }},\n  \
         \"overhead_ratio\": {:.4}\n}}\n",
        overhead.workers,
        overhead.runs_per_rep,
        overhead.unprobed_us,
        overhead.probed_us,
        overhead.throughput_ratio()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stitch_rows_are_complete_and_scale_with_workers() {
        let rows = experiment_stitch(&[1, 3], 2);
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert!(r.complete, "stitched record must be complete");
            assert!(r.entries > 0);
            assert!(r.entries_per_sec > 0.0);
            assert_eq!(r.blobs, r.workers + 1, "workers + coordinator");
        }
        assert_eq!(rows[0].hb_edges, 0, "one site has no cross-site edges");
        assert!(rows[1].hb_edges > 0);
    }

    #[test]
    fn json_document_carries_the_gate_field() {
        let rows = experiment_stitch(&[2], 1);
        let overhead = experiment_probe_overhead(2, 1);
        let doc = distributed_json(&rows, &overhead);
        assert!(doc.contains("\"overhead_ratio\":"));
        assert!(doc.contains("\"entries_per_sec\":"));
        let parsed = prov_telemetry::parse_json(&doc).expect("valid JSON");
        assert!(parsed.get("stitch").is_some());
    }
}
