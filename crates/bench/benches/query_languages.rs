//! E5 bench: lineage query latency per approach, as the provenance graph
//! deepens — the crossover experiment behind the tutorial's "simple
//! queries can be awkward and complex" claim.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use prov_core::capture::{CaptureLevel, ProvenanceCapture};
use prov_query::PqlEngine;
use prov_store::{GraphStore, ProvenanceStore, RelStore, TripleStore};
use wf_engine::synth::busy_chain;
use wf_engine::{standard_registry, Executor};

fn bench_query(c: &mut Criterion) {
    for depth in [16usize, 128] {
        let (wf, nodes) = busy_chain(1, depth, 1);
        let exec = Executor::new(standard_registry());
        let mut cap = ProvenanceCapture::new(CaptureLevel::Fine);
        let r = exec.run_observed(&wf, &mut cap).expect("runs");
        let retro = cap.take(r.exec).expect("captured");
        let last = *nodes.last().expect("chain");
        let target = retro.produced(last, "out").expect("artifact").hash;

        let mut pql = PqlEngine::new();
        pql.ingest(&retro);
        let mut graph = GraphStore::new();
        graph.ingest(&retro);
        let mut rel = RelStore::new();
        rel.ingest(&retro);
        let mut triple = TripleStore::new();
        triple.ingest(&retro);
        let query = format!("lineage of artifact {target:016x}");

        let mut group = c.benchmark_group(format!("query_lineage/depth={depth}"));
        group.bench_function(BenchmarkId::from_parameter("pql"), |b| {
            b.iter(|| pql.eval(&query).expect("query runs").len())
        });
        group.bench_function(BenchmarkId::from_parameter("graph_api"), |b| {
            b.iter(|| graph.lineage_runs(target).len())
        });
        group.bench_function(BenchmarkId::from_parameter("relational_joins"), |b| {
            b.iter(|| rel.lineage_runs(target).len())
        });
        group.bench_function(BenchmarkId::from_parameter("triple_fixpoint"), |b| {
            b.iter(|| triple.lineage_runs(target).len())
        });
        // Parsing alone, to separate language cost from evaluation cost.
        group.bench_function(BenchmarkId::from_parameter("pql_parse_only"), |b| {
            b.iter(|| prov_query::parse(&query).expect("parses"))
        });
        group.finish();
    }
}

criterion_group!(benches, bench_query);
criterion_main!(benches);
