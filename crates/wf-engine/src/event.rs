//! The provenance instrumentation surface of the engine.
//!
//! "One of the major advantages to using workflow systems is that they can
//! be easily instrumented to automatically capture provenance — this
//! information can be accessed directly through system APIs" (§2.2).
//! [`ExecObserver`] is that API: the executor emits one [`EngineEvent`] per
//! lifecycle transition, and provenance capture (in `prov-core`), progress
//! displays, and tests all subscribe to the same stream.

use crate::exec::{ExecId, RunStatus};
use crate::value::Value;
use wf_model::{NodeId, ParamValue, WorkflowId};

/// Lightweight description of a value that crossed a port: its type, its
/// content hash, and its approximate size — everything retrospective
/// provenance needs without retaining the payload.
#[derive(Debug, Clone, PartialEq)]
pub struct ValueMeta {
    /// Rendered data type (e.g. `grid`, `table`).
    pub dtype: String,
    /// Stable content hash of the value.
    pub hash: u64,
    /// Approximate payload size in bytes.
    pub size: usize,
    /// Inline preview for small scalar values (fine-grained capture);
    /// `None` for bulk data.
    pub preview: Option<String>,
}

impl ValueMeta {
    /// Describe a value; `with_preview` controls whether small scalars are
    /// inlined (fine-grained capture).
    pub fn of(value: &Value, with_preview: bool) -> Self {
        let preview = if with_preview && value.size_bytes() <= 64 {
            Some(value.to_string())
        } else {
            None
        };
        Self {
            dtype: value.dtype().to_string(),
            hash: value.content_hash(),
            size: value.size_bytes(),
            preview,
        }
    }
}

/// One engine lifecycle event.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineEvent {
    /// A workflow run began.
    WorkflowStarted {
        /// The run.
        exec: ExecId,
        /// The workflow specification being run.
        workflow: WorkflowId,
        /// Specification name.
        name: String,
        /// Wall-clock timestamp, milliseconds since the Unix epoch.
        at_millis: u64,
    },
    /// A module run began.
    ModuleStarted {
        /// The enclosing workflow run.
        exec: ExecId,
        /// The node being executed.
        node: NodeId,
        /// Module identity `name@version`.
        identity: String,
        /// Effective parameters (defaults merged with instance bindings).
        params: Vec<(String, ParamValue)>,
        /// Wall-clock timestamp, ms since epoch.
        at_millis: u64,
    },
    /// A value arrived on a module's input port.
    InputBound {
        /// The enclosing workflow run.
        exec: ExecId,
        /// Consuming node.
        node: NodeId,
        /// Input port name.
        port: String,
        /// Description of the consumed value.
        meta: ValueMeta,
    },
    /// A module produced a value on an output port.
    OutputProduced {
        /// The enclosing workflow run.
        exec: ExecId,
        /// Producing node.
        node: NodeId,
        /// Output port name.
        port: String,
        /// Description of the produced value.
        meta: ValueMeta,
    },
    /// A module run ended.
    ModuleFinished {
        /// The enclosing workflow run.
        exec: ExecId,
        /// The node.
        node: NodeId,
        /// Outcome.
        status: RunStatus,
        /// Duration of the module body in microseconds.
        elapsed_micros: u64,
        /// Whether the result came from the memoization cache.
        from_cache: bool,
        /// Failure message when `status` is `Failed`.
        error: Option<String>,
    },
    /// The workflow run ended.
    WorkflowFinished {
        /// The run.
        exec: ExecId,
        /// Outcome of the run as a whole.
        status: RunStatus,
        /// Wall-clock timestamp, ms since epoch.
        at_millis: u64,
    },
    /// A retry attempt of a module body began (the first attempt is implied
    /// by [`EngineEvent::ModuleStarted`]; this event fires for attempt 2
    /// onward).
    AttemptStarted {
        /// The enclosing workflow run.
        exec: ExecId,
        /// The node being re-attempted.
        node: NodeId,
        /// Attempt number, 1-based.
        attempt: u32,
    },
    /// One attempt of a module body failed. Fires once per failed attempt;
    /// the final failure is additionally summarized by
    /// [`EngineEvent::ModuleFinished`] with `status: Failed`.
    AttemptFailed {
        /// The enclosing workflow run.
        exec: ExecId,
        /// The failing node.
        node: NodeId,
        /// Attempt number, 1-based.
        attempt: u32,
        /// Rendered error.
        error: String,
        /// Whether the retry policy schedules another attempt.
        will_retry: bool,
    },
    /// The engine is waiting out a retry backoff.
    BackoffStarted {
        /// The enclosing workflow run.
        exec: ExecId,
        /// The node awaiting retry.
        node: NodeId,
        /// The attempt that will run after the backoff, 1-based.
        next_attempt: u32,
        /// Backoff duration in microseconds (deterministic given the
        /// policy's jitter seed).
        delay_micros: u64,
    },
    /// A module body overran its deadline and was abandoned.
    ModuleTimedOut {
        /// The enclosing workflow run.
        exec: ExecId,
        /// The node that timed out.
        node: NodeId,
        /// The attempt that timed out, 1-based.
        attempt: u32,
        /// The enforced limit in microseconds.
        limit_micros: u64,
    },
    /// This run resumes an earlier, failed run: already-successful work was
    /// replayed from its checkpoint (run cache + run record) rather than
    /// re-executed. Fires immediately after
    /// [`EngineEvent::WorkflowStarted`].
    RunResumed {
        /// The resuming run.
        exec: ExecId,
        /// The failed run being resumed.
        resumed_from: ExecId,
        /// Number of module results replayed from the checkpoint.
        reused: usize,
    },
}

/// Subscriber to the engine's event stream.
///
/// Observers run synchronously inside the executor (capture overhead is
/// measured in experiment E3, exactly because it sits on this path).
pub trait ExecObserver: Send {
    /// Receive one event.
    fn on_event(&mut self, event: &EngineEvent);
}

/// An observer that retains every event — used by tests and by simple
/// capture pipelines.
#[derive(Debug, Default)]
pub struct RecordingObserver {
    /// All events seen so far, in emission order.
    pub events: Vec<EngineEvent>,
}

impl ExecObserver for RecordingObserver {
    fn on_event(&mut self, event: &EngineEvent) {
        self.events.push(event.clone());
    }
}

/// Milliseconds since the Unix epoch (engine-wide wall clock).
pub fn now_millis() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_meta_previews_small_scalars_only() {
        let m = ValueMeta::of(&Value::Int(7), true);
        assert_eq!(m.preview.as_deref(), Some("7"));
        assert_eq!(m.dtype, "int");
        let big = Value::Bytes(bytes::Bytes::from(vec![0u8; 1024]));
        let m = ValueMeta::of(&big, true);
        assert!(m.preview.is_none());
        let m = ValueMeta::of(&Value::Int(7), false);
        assert!(m.preview.is_none());
    }

    #[test]
    fn recording_observer_accumulates() {
        let mut obs = RecordingObserver::default();
        let ev = EngineEvent::WorkflowFinished {
            exec: ExecId(1),
            status: RunStatus::Succeeded,
            at_millis: 0,
        };
        obs.on_event(&ev);
        obs.on_event(&ev);
        assert_eq!(obs.events.len(), 2);
    }

    #[test]
    fn clock_is_monotonic_enough() {
        let a = now_millis();
        let b = now_millis();
        assert!(b >= a);
    }
}
