//! Admission control: a bounded in-flight window and per-tenant token
//! buckets.
//!
//! A long-running service protecting shared stores cannot let load grow
//! without bound — the paper's collaboratory vision (§2.3) only works if
//! one greedy client cannot starve everyone else. Two mechanisms compose:
//!
//! * [`Admission`] bounds the number of requests being served at once.
//!   When the window is full the request is **rejected immediately**
//!   (503-style) rather than queued, keeping latency honest under
//!   overload — the closed-loop client owns the retry policy.
//! * [`RateLimiter`] meters each `(tenant, namespace)` pair with a token
//!   bucket (burst capacity + steady refill), so tenants get isolated
//!   throughput envelopes inside the shared window (429-style rejection).
//!
//! Both are purely `std`: a mutex-guarded counter and mutex-guarded
//! buckets. Neither is on a per-row hot path — they run once per request.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, RwLock};
use std::time::Instant;

/// Bounded-concurrency gate: at most `limit` permits outstanding.
#[derive(Debug)]
pub struct Admission {
    limit: usize,
    inflight: Mutex<usize>,
    rejected: AtomicU64,
    admitted: AtomicU64,
}

impl Admission {
    /// A gate admitting at most `limit` concurrent requests (minimum 1).
    pub fn new(limit: usize) -> Self {
        Admission {
            limit: limit.max(1),
            inflight: Mutex::new(0),
            rejected: AtomicU64::new(0),
            admitted: AtomicU64::new(0),
        }
    }

    /// Try to enter the window. `None` means the window is full and the
    /// request must be rejected with backpressure.
    pub fn try_acquire(&self) -> Option<Permit<'_>> {
        let mut inflight = self.inflight.lock().unwrap_or_else(|e| e.into_inner());
        if *inflight >= self.limit {
            self.rejected.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        *inflight += 1;
        self.admitted.fetch_add(1, Ordering::Relaxed);
        Some(Permit { gate: self })
    }

    /// The window size.
    pub fn limit(&self) -> usize {
        self.limit
    }

    /// Requests currently holding a permit.
    pub fn inflight(&self) -> usize {
        *self.inflight.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Requests admitted over the gate's lifetime.
    pub fn admitted(&self) -> u64 {
        self.admitted.load(Ordering::Relaxed)
    }

    /// Requests rejected over the gate's lifetime.
    pub fn rejected(&self) -> u64 {
        self.rejected.load(Ordering::Relaxed)
    }

    fn release(&self) {
        let mut inflight = self.inflight.lock().unwrap_or_else(|e| e.into_inner());
        *inflight = inflight.saturating_sub(1);
    }
}

/// An admission slot; releases its place in the window on drop.
#[derive(Debug)]
pub struct Permit<'a> {
    gate: &'a Admission,
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        self.gate.release()
    }
}

/// One tenant's token bucket.
#[derive(Debug)]
struct Bucket {
    tokens: f64,
    last: Instant,
}

/// Token-bucket rate limiting per `(tenant, namespace)`.
///
/// Each key gets `burst` tokens of headroom refilled at `per_second`
/// tokens per second; a request costs one token. A `per_second` of 0
/// disables metering (every request passes), which is the single-user
/// CLI default.
#[derive(Debug)]
pub struct RateLimiter {
    burst: f64,
    per_second: f64,
    buckets: RwLock<HashMap<(String, String), Mutex<Bucket>>>,
    throttled: AtomicU64,
}

impl RateLimiter {
    /// A limiter granting `burst` tokens of headroom and `per_second`
    /// steady-state requests per second to every `(tenant, namespace)`.
    pub fn new(burst: u32, per_second: f64) -> Self {
        RateLimiter {
            burst: f64::from(burst.max(1)),
            per_second,
            buckets: RwLock::new(HashMap::new()),
            throttled: AtomicU64::new(0),
        }
    }

    /// Spend one token for `tenant` on `namespace`. Returns false when the
    /// bucket is empty (the caller rejects with 429-style backpressure).
    pub fn try_take(&self, tenant: &str, namespace: &str) -> bool {
        if self.per_second <= 0.0 {
            return true;
        }
        let key = (tenant.to_string(), namespace.to_string());
        // Fast path: bucket exists.
        {
            let map = self.buckets.read().unwrap_or_else(|e| e.into_inner());
            if let Some(bucket) = map.get(&key) {
                return self.spend(bucket);
            }
        }
        let mut map = self.buckets.write().unwrap_or_else(|e| e.into_inner());
        let bucket = map.entry(key).or_insert_with(|| {
            Mutex::new(Bucket {
                tokens: self.burst,
                last: Instant::now(),
            })
        });
        self.spend(bucket)
    }

    fn spend(&self, bucket: &Mutex<Bucket>) -> bool {
        let mut b = bucket.lock().unwrap_or_else(|e| e.into_inner());
        let now = Instant::now();
        let elapsed = now.duration_since(b.last).as_secs_f64();
        b.last = now;
        b.tokens = (b.tokens + elapsed * self.per_second).min(self.burst);
        if b.tokens >= 1.0 {
            b.tokens -= 1.0;
            true
        } else {
            self.throttled.fetch_add(1, Ordering::Relaxed);
            false
        }
    }

    /// Requests rejected by metering over the limiter's lifetime.
    pub fn throttled(&self) -> u64 {
        self.throttled.load(Ordering::Relaxed)
    }

    /// Current token level for `(tenant, namespace)` without spending one.
    /// Accounts for refill since the last spend but does not advance the
    /// bucket clock. `None` when metering is off or the pair has never
    /// been seen (it would start at full burst).
    pub fn level(&self, tenant: &str, namespace: &str) -> Option<f64> {
        if self.per_second <= 0.0 {
            return None;
        }
        let key = (tenant.to_string(), namespace.to_string());
        let map = self.buckets.read().unwrap_or_else(|e| e.into_inner());
        map.get(&key).map(|bucket| {
            let b = bucket.lock().unwrap_or_else(|e| e.into_inner());
            let elapsed = b.last.elapsed().as_secs_f64();
            (b.tokens + elapsed * self.per_second).min(self.burst)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn window_admits_up_to_limit_then_rejects() {
        let gate = Admission::new(2);
        let a = gate.try_acquire().expect("first");
        let b = gate.try_acquire().expect("second");
        assert!(gate.try_acquire().is_none(), "window full");
        assert_eq!(gate.inflight(), 2);
        assert_eq!(gate.rejected(), 1);
        drop(a);
        let c = gate.try_acquire().expect("slot freed");
        drop(b);
        drop(c);
        assert_eq!(gate.inflight(), 0);
        assert_eq!(gate.admitted(), 3);
    }

    #[test]
    fn window_is_exact_under_contention() {
        let gate = Arc::new(Admission::new(4));
        let peak = Arc::new(AtomicU64::new(0));
        std::thread::scope(|scope| {
            for _ in 0..16 {
                let gate = Arc::clone(&gate);
                let peak = Arc::clone(&peak);
                scope.spawn(move || {
                    for _ in 0..500 {
                        if let Some(_permit) = gate.try_acquire() {
                            let now = gate.inflight() as u64;
                            peak.fetch_max(now, Ordering::Relaxed);
                            std::hint::spin_loop();
                        }
                    }
                });
            }
        });
        assert!(peak.load(Ordering::Relaxed) <= 4, "window never exceeded");
        assert_eq!(gate.inflight(), 0, "all permits returned");
    }

    #[test]
    fn token_bucket_meters_per_tenant() {
        let limiter = RateLimiter::new(3, 0.000001); // effectively no refill
        for _ in 0..3 {
            assert!(limiter.try_take("alice", "ns"));
        }
        assert!(!limiter.try_take("alice", "ns"), "alice's burst is spent");
        assert!(limiter.try_take("bob", "ns"), "bob has his own bucket");
        assert!(
            limiter.try_take("alice", "other"),
            "per-namespace isolation: alice has a fresh bucket elsewhere"
        );
        assert_eq!(limiter.throttled(), 1);
    }

    #[test]
    fn level_reads_without_spending() {
        let limiter = RateLimiter::new(4, 0.000001);
        assert_eq!(limiter.level("alice", "ns"), None, "never seen");
        assert!(limiter.try_take("alice", "ns"));
        let first = limiter.level("alice", "ns").expect("bucket exists");
        assert!(first <= 3.1, "one token spent, got {first}");
        let second = limiter.level("alice", "ns").expect("bucket exists");
        assert!(
            (first - second).abs() < 0.5,
            "reading the level does not spend tokens"
        );
        let off = RateLimiter::new(4, 0.0);
        assert!(off.try_take("alice", "ns"));
        assert_eq!(off.level("alice", "ns"), None, "metering disabled");
    }

    #[test]
    fn zero_rate_disables_metering() {
        let limiter = RateLimiter::new(1, 0.0);
        for _ in 0..100 {
            assert!(limiter.try_take("anyone", "ns"));
        }
        assert_eq!(limiter.throttled(), 0);
    }
}
