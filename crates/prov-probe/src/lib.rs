//! # prov-probe — causal-clock capture probes for distributed provenance
//!
//! The paper's hardest capture setting is the distributed one: workflow
//! modules run at different sites, no single observer sees the whole run,
//! and provenance must be reassembled after the fact. This crate is the
//! capture side of that story, in the spirit of interaction-recording
//! probes (modality-probe / ekotrace) and pipeline-centric provenance
//! models:
//!
//! * [`Probe`] — a per-worker instrument: a compact ring buffer of opaque
//!   event payloads, a vector [`LogicalClock`], and snapshot exchange
//!   ([`Probe::produce_snapshot`] / [`Probe::merge_snapshot`]) at module
//!   handoffs, so causality rides the dataflow edges themselves.
//! * [`Report`] — a drained window of one probe's log, with a
//!   dependency-free binary codec ([`Report::encode`] /
//!   [`Report::decode`]) suitable for files, sockets, or logs.
//! * [`Collector`] — ingests report blobs in any order (duplicates,
//!   missing windows, late stragglers) and [`Collector::stitch`]es them
//!   into one deterministic total order consistent with happens-before,
//!   reporting every [`Gap`] it cannot close instead of fabricating
//!   order.
//!
//! The crate is deliberately dependency-free and knows nothing about the
//! workflow engine: payloads are bytes, and the engine's event codec
//! lives with the engine. `wf-engine`'s distributed driver feeds probes,
//! and `prov-core`'s stitcher replays collector output back into ordinary
//! retrospective provenance.

pub mod clock;
pub mod collector;
pub mod probe;
pub mod report;

pub use clock::{LogicalClock, ProbeId};
pub use collector::{Collector, Gap, Stitched, StitchedEntry};
pub use probe::{LogEntry, Probe, Snapshot, DEFAULT_RING_CAPACITY};
pub use report::{CodecError, Report};
